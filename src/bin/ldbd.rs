//! ldbd — the multi-session debug daemon.
//!
//! Usage: ldbd [--listen ADDR] [--max-sessions N] [--watchdog-ms N]
//!             [--idle-ms N]
//!
//! Serves the ldb line protocol over TCP (see [`ldb_suite::daemon`]):
//! each `open` builds a whole debugger session (compiler, nub,
//! interpreter, health counters) on its own worker thread; `cmd` runs
//! script-runner commands against a tenant; `health` returns the
//! tenant's counters as JSON; `close` detaches its target with a typed
//! reason; `shutdown` closes every tenant and exits.
//!
//!     $ ldbd --listen 127.0.0.1:7180 &
//!     $ printf 'open mips\n' | nc 127.0.0.1 7180
//!     ok 1
//!     $ printf 'cmd 1 b clamp\ncmd 1 c\nhealth 1\n' | nc 127.0.0.1 7180

use std::sync::Arc;
use std::time::Duration;

use ldb_suite::daemon::{Daemon, DaemonConfig};

fn main() {
    if let Err(e) = run() {
        eprintln!("ldbd: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:7180".to_string();
    let mut cfg = DaemonConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                listen = args.get(i).ok_or("--listen needs an address")?.clone();
            }
            "--max-sessions" => {
                i += 1;
                cfg.max_sessions =
                    args.get(i).ok_or("--max-sessions needs a count")?.parse::<usize>()?;
            }
            "--watchdog-ms" => {
                i += 1;
                let ms: u64 = args.get(i).ok_or("--watchdog-ms needs a count")?.parse()?;
                cfg.watchdog = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--idle-ms" => {
                i += 1;
                let ms: u64 = args.get(i).ok_or("--idle-ms needs a count")?.parse()?;
                cfg.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (usage: ldbd [--listen ADDR] \
                     [--max-sessions N] [--watchdog-ms N] [--idle-ms N])"
                )
                .into())
            }
        }
        i += 1;
    }
    let listener = std::net::TcpListener::bind(&listen)?;
    println!("ldbd: listening on {} (max {} sessions)", listener.local_addr()?, cfg.max_sessions);
    let daemon = Arc::new(Daemon::new(cfg));
    daemon.serve(listener)?;
    println!("ldbd: shut down; all sessions closed and targets detached");
    Ok(())
}
