//! ldbd — the multi-session debug daemon.
//!
//! Usage: ldbd [--listen ADDR] [--max-sessions N] [--watchdog-ms N]
//!             [--idle-ms N] [--max-conns N] [--max-request-bytes N]
//!             [--conn-idle-ms N] [--retry-after-ms N] [--strikes N]
//!             [--drain-ms N]
//!
//! The connection edge is hardened by default: request lines are capped
//! at `--max-request-bytes` (oversized requests get a typed `err`;
//! repeat offenders are quarantined after `--strikes`), connections
//! idle past `--conn-idle-ms` are disconnected, accepts beyond
//! `--max-conns` are shed with `err overloaded retry_after_ms=N`, and
//! shutdown drains in-flight replies for `--drain-ms` before hanging
//! up.
//!
//! Serves the ldb line protocol over TCP (see [`ldb_suite::daemon`]):
//! each `open` builds a whole debugger session (compiler, nub,
//! interpreter, health counters) on its own worker thread; `cmd` runs
//! script-runner commands against a tenant; `health` returns the
//! tenant's counters as JSON; `close` detaches its target with a typed
//! reason; `shutdown` closes every tenant and exits.
//!
//!     $ ldbd --listen 127.0.0.1:7180 &
//!     $ printf 'open mips\n' | nc 127.0.0.1 7180
//!     ok 1
//!     $ printf 'cmd 1 b clamp\ncmd 1 c\nhealth 1\n' | nc 127.0.0.1 7180

use std::sync::Arc;
use std::time::Duration;

use ldb_suite::daemon::{Daemon, DaemonConfig};

fn main() {
    if let Err(e) = run() {
        eprintln!("ldbd: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:7180".to_string();
    let mut cfg = DaemonConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                listen = args.get(i).ok_or("--listen needs an address")?.clone();
            }
            "--max-sessions" => {
                i += 1;
                cfg.max_sessions =
                    args.get(i).ok_or("--max-sessions needs a count")?.parse::<usize>()?;
            }
            "--watchdog-ms" => {
                i += 1;
                let ms: u64 = args.get(i).ok_or("--watchdog-ms needs a count")?.parse()?;
                cfg.watchdog = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--idle-ms" => {
                i += 1;
                let ms: u64 = args.get(i).ok_or("--idle-ms needs a count")?.parse()?;
                cfg.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-conns" => {
                i += 1;
                cfg.limits.max_conns =
                    args.get(i).ok_or("--max-conns needs a count")?.parse::<usize>()?;
            }
            "--max-request-bytes" => {
                i += 1;
                cfg.limits.max_request_bytes =
                    args.get(i).ok_or("--max-request-bytes needs a count")?.parse::<usize>()?;
            }
            "--conn-idle-ms" => {
                i += 1;
                let ms: u64 = args.get(i).ok_or("--conn-idle-ms needs a count")?.parse()?;
                cfg.limits.idle = Duration::from_millis(ms.max(1));
            }
            "--retry-after-ms" => {
                i += 1;
                cfg.limits.retry_after_ms =
                    args.get(i).ok_or("--retry-after-ms needs a count")?.parse()?;
            }
            "--strikes" => {
                i += 1;
                let n: u32 = args.get(i).ok_or("--strikes needs a count")?.parse()?;
                cfg.limits.strikes = n.max(1);
            }
            "--drain-ms" => {
                i += 1;
                let ms: u64 = args.get(i).ok_or("--drain-ms needs a count")?.parse()?;
                cfg.limits.drain = Duration::from_millis(ms);
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (usage: ldbd [--listen ADDR] \
                     [--max-sessions N] [--watchdog-ms N] [--idle-ms N] \
                     [--max-conns N] [--max-request-bytes N] [--conn-idle-ms N] \
                     [--retry-after-ms N] [--strikes N] [--drain-ms N])"
                )
                .into())
            }
        }
        i += 1;
    }
    let listener = std::net::TcpListener::bind(&listen)?;
    println!(
        "ldbd: listening on {} (max {} sessions, {} connections, {}-byte requests)",
        listener.local_addr()?,
        cfg.max_sessions,
        cfg.limits.max_conns,
        cfg.limits.max_request_bytes
    );
    let daemon = Arc::new(Daemon::new(cfg));
    daemon.serve(listener)?;
    println!("ldbd: shut down; all sessions closed and targets detached");
    Ok(())
}
