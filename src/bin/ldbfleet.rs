//! `ldbfleet`: the headless debugging fleet — thousands of supervised
//! scripted sessions, crash bucketing, and chaos-seed minimization.
//!
//! ```text
//! Usage: ldbfleet [--sessions N] [--workers N] [--retries N]
//!                 [--cap N] [--mem-budget BYTES]
//!                 [--report PATH] [--buckets PATH] [--trace PATH]
//!                 [--minimize]
//! ```
//!
//! Runs `N` sessions of the built-in demo corpus (healthy, chaos,
//! script-error, wire-fault, panic, and wedge sessions over all four
//! architectures) across a worker pool bounded by core count, and
//! prints the canonical bucket report. `--report` writes the
//! per-session JSONL, `--buckets` the bucket report, `--trace` a
//! fleet-layer flight-recorder journal. `--minimize` additionally
//! bisects the first bucketed chaos session's corruption schedule to a
//! minimal reproducer.
//!
//! Both reports are deterministic: two runs with the same arguments
//! produce byte-identical bytes, whatever the machine's core count or
//! scheduling (wall-clock is printed to stderr, never into a report).

use std::io::Write;
use std::time::Instant;

use ldb_suite::core::ModuleCache;
use ldb_suite::fleet::{corpus, minimize, report, FleetConfig};

fn main() {
    if let Err(e) = run() {
        eprintln!("ldbfleet: {e}");
        std::process::exit(1);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ldbfleet [--sessions N] [--workers N] [--retries N] [--cap N] \
         [--mem-budget BYTES] [--report PATH] [--buckets PATH] [--trace PATH] [--minimize]"
    );
    std::process::exit(2);
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FleetConfig::default();
    let mut sessions = 256usize;
    let mut report_path: Option<String> = None;
    let mut buckets_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut do_minimize = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sessions" => {
                i += 1;
                sessions = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--workers" => {
                i += 1;
                cfg.workers = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--retries" => {
                i += 1;
                cfg.max_retries =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--cap" => {
                i += 1;
                cfg.session_cap =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--mem-budget" => {
                i += 1;
                cfg.memory_budget =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--report" => {
                i += 1;
                report_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--buckets" => {
                i += 1;
                buckets_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--minimize" => do_minimize = true,
            _ => usage(),
        }
        i += 1;
    }
    if let Some(path) = &trace_path {
        let file = std::fs::File::create(path)?;
        cfg.trace = ldb_trace_for_fleet(Box::new(std::io::BufWriter::new(file)));
    }

    let specs = corpus::demo_corpus(sessions);
    eprintln!("ldbfleet: {sessions} sessions across {} workers", cfg.workers);
    let started = Instant::now();
    let results = ldb_suite::fleet::run_fleet(&cfg, &specs)?;
    let wall = started.elapsed();
    cfg.trace.flush();

    let bucket_report = report::bucket_report(&results);
    print!("{bucket_report}");
    eprintln!("ldbfleet: completed in {:.2}s", wall.as_secs_f64());
    if let Some(path) = &report_path {
        std::fs::File::create(path)?.write_all(report::session_report(&results).as_bytes())?;
    }
    if let Some(path) = &buckets_path {
        std::fs::File::create(path)?.write_all(bucket_report.as_bytes())?;
    }

    if do_minimize {
        let Some(victim) = results
            .iter()
            .find(|r| r.bucket.is_some() && specs[r.id as usize].chaos.is_some())
        else {
            eprintln!("ldbfleet: no bucketed chaos session to minimize");
            return Ok(());
        };
        let spec = &specs[victim.id as usize];
        eprintln!("ldbfleet: minimizing {} (bucket {})", spec.name, victim.bucket.as_deref().unwrap_or(""));
        let cache = ModuleCache::new();
        let prepared = std::sync::Arc::new(
            ldb_suite::fleet::prepare_target(spec.arch, &spec.source, &cache)
                .map_err(|e| format!("prepare: {e}"))?,
        );
        match minimize::minimize_chaos(spec, &prepared, &cfg) {
            Ok(m) => {
                println!(
                    "minimized {}: {} of {} corruption events suffice \
                     (window {}..{}, {} runs, bucket {})",
                    spec.name,
                    m.window_events,
                    m.full_events,
                    m.window.0,
                    m.window.1,
                    m.runs,
                    m.bucket
                );
                println!("replay: --chaos {}", m.replay);
            }
            Err(skip) => eprintln!("ldbfleet: minimization skipped: {skip}"),
        }
    }
    Ok(())
}

/// A fleet-layer trace writing JSONL to `w` (wall-clock off: the journal
/// should diff cleanly between runs even though record order may not).
fn ldb_trace_for_fleet(w: Box<dyn std::io::Write + Send>) -> ldb_suite::trace::Trace {
    ldb_suite::trace::Trace::with_writer(ldb_suite::trace::TraceConfig::default(), w)
}
