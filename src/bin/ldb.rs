//! The `ldb` command-line debugger: compile a C file for a simulated
//! target and debug it interactively.
//!
//! ```text
//! Usage: ldb <file.c>... [--arch ...] [--order big|little] [--tcp]
//!        ldb <file.c>... --fault seed=1,drop=0.05,corrupt=0.02   lossy-wire drill
//!        ldb <file.c>... --chaos <seed>          hostile-target drill (seed, or seed=N,rate=R)
//!        ldb <file.c>... --run [--core <path>]   run undebugged; fault dumps core
//!        ldb <file.c>... --core <path>           post-mortem on a core file
//!        ldb <file.c>... --no-wire-cache         word-at-a-time wire (no block cache)
//!        ldb <file.c>... --trace <path>          flight recorder: JSONL journal to path
//!        ldb <file.c>... --checkpoint-every <n>  checkpoint every n steps during `c`
//!        ldb <file.c>... --script <path>         headless batch mode: run the script, exit typed
//!
//! `--script` runs a command script (the `run_script` replay format)
//! instead of the interactive loop, prints the transcript, and exits
//! with a typed status a fleet supervisor can branch on: 0 clean, 3 at
//! least one `error:` line, 4 a command panicked and was quarantined,
//! 5 the target's wire was lost. (1 remains the internal-error exit and
//! 2 the usage exit, so shells can tell a failed *session* from a
//! failed *invocation*.)
//!
//! `--fault` wraps the debugger's wire in a deterministic fault injector
//! (keys: seed, drop, corrupt, truncate, dup, delay, disconnect); the
//! hardened protocol retries through drops and corruption, and after a
//! `disconnect=N` severance the `reconnect` command resumes the session.
//!
//! `--chaos` corrupts what the debugger *reads* from target data memory —
//! saved frame pointers, return addresses, pointed-to data — with a
//! deterministic seeded schedule. Run control stays reliable; every
//! inspection result is suspect. `info health` reports how often the
//! defensive layers (guarded stack walks, cycle-safe printing, the
//! crash-proof command loop) fired.
//!
//! Commands:
//!   b <func> [n] [if <expr>]  breakpoint, optionally conditional
//!   bl <line>        breakpoint at the first stopping point on a line
//!   ba <addr>        single-step breakpoint at a raw code address
//!   d <addr>         delete the breakpoint at addr
//!   w <name>         watch a variable (single-steps; stops on change)
//!   dw <name>        delete the watchpoint on name
//!   info b           list breakpoints, watchpoints, displays
//!   info wire        wire transaction counters and cache statistics
//!   info trace       flight-recorder record counts and recent journal tail
//!   c | run          continue
//!   s                single-step one instruction
//!   n                run to the next stopping point in this frame
//!   fin              run until the selected frame returns
//!   checkpoint       capture a restore point (info checkpoints lists them)
//!   rs | rn | rc     reverse-step / reverse-next / reverse-continue
//!   display <expr>   re-evaluate and print expr at every stop
//!   undisplay <n>    remove display n
//!   x <addr> [n]     hex dump of target data memory
//!   pc <addr>        set the program counter (repair-and-resume)
//!   p <name>         print a variable via its type's printer
//!   e <expr>         evaluate a C expression (assignments allowed)
//!   call <f>(<args>) call a target function, print its return value
//!   bt               backtrace
//!   f <n>            select frame n
//!   regs             registers (machine-dependent names)
//!   disas [n]        disassemble n bytes around the current pc
//!   list             source annotated with stopping points
//!   ps <code>        run raw PostScript in the embedded interpreter
//!   detach           detach, preserving target state in the nub
//!   attach           reconnect to the detached target
//!   reconnect        replace a lost/faulty wire with a fresh one
//!   h | help         this list
//!   q                quit
//! ```

use std::io::{BufRead, Write};

use ldb_cc::driver::{compile_many, program_load_plan, CompileOpts, CompiledProgram};
use ldb_cc::pssym;
use ldb_core::{ChaosConfig, Ldb, ModuleTable, StopEvent};
use ldb_machine::{Arch, ByteOrder};
use ldb_machine::core::read_core;
use ldb_nub::{spawn_machine, FaultConfig, FaultyWire, NubConfig, NubHandle, TcpWire, Wire};
use ldb_trace::{Trace, TraceConfig};

fn main() {
    if let Err(e) = run() {
        eprintln!("ldb: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut arch = Arch::Mips;
    let mut order = None;
    let mut tcp = false;
    let mut run_only = false;
    let mut core: Option<String> = None;
    let mut fault: Option<FaultConfig> = None;
    let mut chaos: Option<ChaosConfig> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut trace_path: Option<String> = None;
    let mut script_path: Option<String> = None;
    let mut wire_cache = true;
    let mut ps_fuel: Option<u64> = None;
    let mut ps_mem: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-wire-cache" => wire_cache = false,
            "--ps-fuel" => {
                i += 1;
                ps_fuel =
                    Some(args.get(i).ok_or("--ps-fuel needs a step count")?.parse::<u64>()?);
            }
            "--ps-mem" => {
                i += 1;
                ps_mem = Some(args.get(i).ok_or("--ps-mem needs a byte count")?.parse::<u64>()?);
            }
            "--fault" => {
                i += 1;
                let spec = args.get(i).ok_or("--fault needs a spec (e.g. seed=1,drop=0.05)")?;
                fault = Some(FaultConfig::parse(spec)?);
            }
            "--chaos" => {
                i += 1;
                let spec =
                    args.get(i).ok_or("--chaos needs a seed (e.g. 7, or seed=7,rate=0.1)")?;
                chaos = Some(ChaosConfig::parse(spec)?);
            }
            "--checkpoint-every" => {
                i += 1;
                checkpoint_every = Some(
                    args.get(i)
                        .ok_or("--checkpoint-every needs a step count")?
                        .parse::<u64>()?,
                );
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).ok_or("--trace needs a path")?.clone());
            }
            "--script" => {
                i += 1;
                script_path = Some(args.get(i).ok_or("--script needs a path")?.clone());
            }
            "--arch" => {
                i += 1;
                arch = Arch::from_name(args.get(i).map(String::as_str).unwrap_or(""))
                    .ok_or("unknown architecture")?;
            }
            "--tcp" => tcp = true,
            "--run" => run_only = true,
            "--core" => {
                i += 1;
                core = Some(args.get(i).ok_or("--core needs a path")?.clone());
            }
            "--order" => {
                i += 1;
                order = Some(match args.get(i).map(String::as_str) {
                    Some("big") => ByteOrder::Big,
                    Some("little") => ByteOrder::Little,
                    _ => return Err("order must be big or little".into()),
                });
            }
            other => files.push(other.to_string()),
        }
        i += 1;
    }
    if files.is_empty() {
        eprintln!(
            "usage: ldb <file.c>... [--arch mips|m68k|sparc|vax] [--order big|little] \
             [--ps-fuel <steps>] [--ps-mem <bytes>]"
        );
        std::process::exit(2);
    }
    // Post-mortem: the core file fixes the architecture; the sources are
    // recompiled (deterministically) for the symbol tables.
    let loaded_core = match (&core, run_only) {
        (Some(path), false) => {
            let bytes = std::fs::read(path)?;
            let (machine, sig, code, context) = read_core(&bytes)?;
            arch = machine.cpu.arch;
            Some((machine, sig, code, context))
        }
        _ => None,
    };
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|f| Ok::<_, std::io::Error>((f.clone(), std::fs::read_to_string(f)?)))
        .collect::<Result<_, _>>()?;
    let src = sources.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>().join("
");
    let parts: Vec<(&str, &str)> =
        sources.iter().map(|(f, s)| (f.as_str(), s.as_str())).collect();
    let c: CompiledProgram =
        compile_many(&parts, arch, CompileOpts { order, ..Default::default() })
            .map_err(|e| format!("{e}"))?;
    let (frame_ps, modules) = c_plan(&c);
    if run_only {
        // Run undebugged; a fault dumps core (UNIX semantics) when
        // --core names a path.
        let cfg = NubConfig {
            core_path: core.clone().map(std::path::PathBuf::from),
            ..Default::default()
        };
        let handle = ldb_nub::spawn(&c.linked.image, cfg);
        let m = handle.join.join().expect("nub thread");
        print!("{}", m.output);
        match m.exited {
            Some(status) => println!("exited with status {status}"),
            None => match &core {
                Some(p) if std::path::Path::new(p).exists() => {
                    println!("faulted; core dumped to {p}");
                }
                Some(p) => println!("faulted; could not write core to {p}"),
                None => println!("faulted (no --core path; state discarded)"),
            },
        }
        return Ok(());
    }
    let mut ldb = Ldb::new();
    ldb.set_wire_cache(wire_cache);
    ldb.set_ps_limits(ps_fuel, ps_mem);
    ldb.set_chaos(chaos.clone());
    ldb.set_checkpoint_every(checkpoint_every);
    // The flight recorder always keeps an in-memory ring for `info trace`;
    // `--trace` additionally streams every record to a JSONL journal with
    // wall-clock timestamps.
    let trace = match &trace_path {
        Some(path) => {
            let file = std::fs::File::create(path)?;
            Trace::with_writer(
                TraceConfig { wall_clock: true, ..TraceConfig::default() },
                Box::new(std::io::BufWriter::new(file)),
            )
        }
        None => Trace::ring(4096),
    };
    ldb.set_trace(trace.clone());
    if let Some((machine, sig, code, context)) = loaded_core {
        let pc = machine.cpu.pc;
        let handle = spawn_machine(machine, context, NubConfig::default());
        let wire = handle.connect_channel()?;
        ldb.attach_plan(maybe_faulty(wire, &fault, &trace), &frame_ps, &modules, Some(handle))?;
        println!(
            "core: signal {sig} (code {code:#x}) at pc {pc:#x}; post-mortem session"
        );
    } else if tcp {
        // Debug over a real socket: the nub thread is the "remote
        // machine"; an acceptor plays inetd and hands it the connection.
        let handle =
            ldb_nub::spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let connect = handle.connect.clone();
        std::thread::spawn(move || {
            if let Ok((s, _)) = listener.accept() {
                let _ = connect.send(Box::new(TcpWire::new(s)));
            }
        });
        let stream = std::net::TcpStream::connect(addr)?;
        ldb.attach_plan(maybe_faulty(TcpWire::new(stream), &fault, &trace), &frame_ps, &modules, Some(handle))?;
        println!("connected over tcp://{addr}");
    } else {
        let handle =
            ldb_nub::spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
        let wire = handle.connect_channel()?;
        ldb.attach_plan(maybe_faulty(wire, &fault, &trace), &frame_ps, &modules, Some(handle))?;
    }
    warn_quarantined(&ldb);
    // Headless batch mode: run the script, print the transcript, exit
    // with the typed BatchOutcome code. No banners — the transcript is
    // the whole contract, byte-identical to a run_script replay.
    if let Some(path) = &script_path {
        let text = std::fs::read_to_string(path)?;
        let transcript = ldb_core::run_script(&mut ldb, &text);
        print!("{transcript}");
        let outcome = ldb_core::BatchOutcome::classify(&ldb, &transcript);
        trace.flush();
        if trace.write_failed() {
            eprintln!("ldb: warning: trace journal write failed; the file is incomplete");
        }
        std::process::exit(outcome.exit_code());
    }
    if let Some(f) = &fault {
        println!("fault injection active on the wire: {f:?}");
    }
    if let Some(cfg) = &chaos {
        println!(
            "chaos injection active on target data memory: seed={} rate={} \
             (run control is reliable; inspection results are suspect)",
            cfg.seed, cfg.rate
        );
    }
    println!(
        "ldb: {} for {arch} ({} instructions)",
        files.join(" "),
        c.linked.stats.insn_count
    );

    let mut sess = Session { fault, trace: trace.clone(), ..Session::default() };
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("(ldb) ");
        std::io::stdout().flush()?;
        let Some(Ok(line)) = lines.next() else { break };
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        // One hostile command must not take the session down: a residual
        // panic anywhere in dispatch quarantines that command (journaled,
        // counted by `info health`), re-validates session state, and the
        // loop keeps going.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch(&mut ldb, &mut sess, &c, &src, cmd, &rest)
        }));
        match result {
            Ok(Ok(true)) => break,
            Ok(Ok(false)) => {}
            Ok(Err(e)) => println!("error: {e}"),
            Err(payload) => {
                let msg = ldb_core::panic_text(payload.as_ref());
                trace.emit(
                    ldb_trace::Layer::Dbg,
                    ldb_trace::Severity::Warn,
                    "panic",
                    &[("cmd", cmd.to_string().into()), ("msg", msg.clone().into())],
                );
                ldb.note_quarantined();
                ldb.recover_session();
                println!("error: command quarantined (internal panic: {msg})");
            }
        }
        // Keep the on-disk journal current between commands so a crashed
        // session still leaves a usable trace behind.
        trace.flush();
    }
    trace.flush();
    if trace.write_failed() {
        eprintln!("ldb: warning: trace journal write failed; the file is incomplete");
    }
    Ok(())
}

/// Per-session CLI state layered over the library: auto-display
/// expressions (breakpoint conditions live in the library, so every
/// resume path honors them).
#[derive(Default)]
struct Session {
    /// Expressions re-evaluated and printed at every stop.
    displays: Vec<String>,
    /// A detached target: the nub handle keeps the program's thread (and
    /// preserved state) alive for a later `attach` (the load plan is
    /// regenerated from the compiled program).
    parked: Option<NubHandle>,
    /// Active fault-injection spec; fresh wires (attach, reconnect) are
    /// wrapped with it too, so the drill follows the session.
    fault: Option<FaultConfig>,
    /// The session flight recorder; fresh fault injectors journal into it.
    trace: Trace,
}

/// Wrap a wire in the session's fault injector, if one is configured; the
/// injector journals every injected fault into the flight recorder.
fn maybe_faulty<W: Wire + 'static>(
    wire: W,
    fault: &Option<FaultConfig>,
    trace: &Trace,
) -> Box<dyn Wire> {
    match fault {
        Some(cfg) => {
            let mut fw = FaultyWire::wrap(wire, cfg.clone());
            fw.set_trace(trace.clone());
            Box::new(fw)
        }
        None => Box::new(wire),
    }
}

/// Print the auto-display expressions after a stop.
fn show_displays(ldb: &mut Ldb, sess: &Session) {
    for (k, expr) in sess.displays.iter().enumerate() {
        match ldb.eval(expr) {
            Ok(v) => println!("{k}: {expr} = {v}"),
            Err(e) => println!("{k}: {expr} = <{e}>"),
        }
    }
}

/// The load plan for the compiled program (regenerated on demand; it is
/// deterministic): the trusted linker frame plus named per-module symbol
/// tables, each sandboxed and quarantinable on its own.
fn c_plan(c: &CompiledProgram) -> (String, Vec<ModuleTable>) {
    let (frame, modules) = program_load_plan(c, pssym::PsMode::Deferred);
    let modules =
        modules.into_iter().map(|(name, ps)| ModuleTable { name, ps }).collect();
    (frame, modules)
}

/// Report any modules the sandbox quarantined during a load.
fn warn_quarantined(ldb: &Ldb) {
    for (module, reason) in ldb.quarantined_modules() {
        println!("warning: module {module} quarantined: {reason}");
        println!("         (its symbols are unavailable; `reload` retries)");
    }
}

fn dispatch(
    ldb: &mut Ldb,
    sess: &mut Session,
    c: &CompiledProgram,
    src: &str,
    cmd: &str,
    rest: &[&str],
) -> Result<bool, Box<dyn std::error::Error>> {
    match cmd {
        "" => {}
        "q" | "quit" => return Ok(true),
        "h" | "help" => {
            println!(
                "\
b <func> [n] [if <expr>]  breakpoint at stopping point n (default 0), optionally conditional
bl <line> | ba <addr>     breakpoint by line / raw address (single-step scheme)
d <addr>                  delete breakpoint        info   list breakpoints/watches/displays
info wire                 wire transaction counters and cache statistics
info ps                   sandbox budgets, fuel/allocation spent, quarantined modules
info trace                flight-recorder counts, cross-checks, recent journal records
info health [--json]      defensive-layer counters (truncated walks, cycles, quarantines)
reload                    retry quarantined symbol tables
w <name> | dw <name>      watch a variable / stop watching
c                         continue                 s      step one instruction
n                         step over (same frame)   fin    run until this frame returns
checkpoint                capture a restore point  info checkpoints  list restore points
rs | reverse-step         rewind one instruction (restore + deterministic replay)
rn | reverse-next         rewind to the previous source line, skipping calls
rc | reverse-continue     rewind to the most recent breakpoint hit
p <name>                  print via the type's printer
e <expr>                  evaluate (assignments and calls allowed)
call <f>(<args>)          call a target function
display <expr> | undisplay <k>   re-evaluate at every stop / remove
x <addr> [n]              hex dump data memory     pc <addr>  set the program counter
bt | f <n>                backtrace / select frame
regs | list | disas [a]   registers / annotated source / disassembly
ps <code>                 run PostScript in the embedded interpreter
detach | attach           park the target in the nub / reconnect
reconnect                 replace a lost/faulty wire with a fresh one
q                         quit"
            );
        }
        "b" | "break" => {
            let func = rest.first().ok_or("usage: b <func> [n] [if <expr>]")?;
            // `b f 3 if i > 2` — everything after `if` is the condition.
            let if_pos = rest.iter().position(|w| *w == "if");
            let args = &rest[1..if_pos.unwrap_or(rest.len())];
            let idx: usize = args.first().map(|s| s.parse()).transpose()?.unwrap_or(0);
            let cond = if_pos.map(|p| rest[p + 1..].join(" "));
            if cond.as_deref() == Some("") {
                return Err("usage: b <func> [n] if <expr>".into());
            }
            let addr = ldb.break_at(func, idx)?;
            match &cond {
                Some(c) => println!("breakpoint at {addr:#x} ({func} stop {idx}) if {c}"),
                None => println!("breakpoint at {addr:#x} ({func} stop {idx})"),
            }
            ldb.set_break_condition(addr, cond)?;
        }
        "bl" => {
            let line: u32 = rest.first().ok_or("usage: bl <line>")?.parse()?;
            let addr = ldb.break_at_line(line)?;
            println!("breakpoint at {addr:#x} (line {line})");
        }
        "ba" => {
            let a = rest.first().ok_or("usage: ba <hex-addr>")?;
            let addr = u32::from_str_radix(a.trim_start_matches("0x"), 16)?;
            ldb.break_at_pc(addr)?;
            println!("single-step breakpoint at {addr:#x}");
        }
        "d" | "delete" => {
            let a = rest.first().ok_or("usage: d <hex-addr>")?;
            let addr = u32::from_str_radix(a.trim_start_matches("0x"), 16)?;
            ldb.clear_breakpoint(addr)?;
        }
        "w" | "watch" => {
            let name = rest.first().ok_or("usage: w <name>")?;
            let val = ldb.watch_var(name)?;
            println!("watching {name} (currently {val})");
        }
        "dw" => {
            let name = rest.first().ok_or("usage: dw <name>")?;
            ldb.clear_watch(name)?;
        }
        "info" if rest.first() == Some(&"ps") => {
            let b = ldb.ps_budgets();
            let s = ldb.interp.budget_stats();
            println!(
                "budgets: load {} steps / {} bytes; interactive {} steps / {} bytes",
                b.load.max_fuel, b.load.max_alloc, b.interactive.max_fuel, b.interactive.max_alloc
            );
            println!(
                "sandbox: {} steps spent, {} bytes charged ({} peak), {} budget trips",
                s.fuel_spent_total, s.alloc_charged_total, s.alloc_peak, s.budget_trips
            );
            let q = ldb.quarantined_modules();
            if q.is_empty() {
                println!("quarantine: empty");
            } else {
                for (module, reason) in q {
                    println!("quarantine: module {module}: {reason}");
                }
            }
        }
        "reload" => {
            let rows = ldb.reload_modules()?;
            if rows.is_empty() {
                println!("nothing quarantined");
            }
            for (module, outcome) in rows {
                match outcome {
                    Ok(()) => println!("module {module}: reloaded"),
                    Err(reason) => println!("module {module}: still quarantined: {reason}"),
                }
            }
        }
        "info" if rest.first() == Some(&"trace") => {
            println!("{}", ldb_core::trace_report(ldb));
            let tail = ldb.trace().tail(8);
            if !tail.is_empty() {
                println!("recent:");
                for r in &tail {
                    println!("  {}", r.to_json());
                }
            }
            if ldb.trace().write_failed() {
                println!("warning: journal write failed; records are missing from the file");
            }
        }
        "info" if rest.first() == Some(&"health") => {
            if rest.get(1) == Some(&"--json") {
                println!("{}", ldb.health().to_json());
            } else {
                println!("{}", ldb.health());
            }
        }
        "info" if rest.first() == Some(&"checkpoints") => {
            let s = ldb.checkpoint_stats()?;
            println!(
                "checkpoints: {}/{} held, {} raw bytes ({} compressed)",
                s.len, s.cap, s.raw, s.compressed
            );
            for (steps, raw, packed) in ldb.checkpoint_rows()? {
                println!("  step {steps}: {raw} bytes ({packed} compressed)");
            }
        }
        "info" if rest.first() == Some(&"wire") => {
            let id = ldb.current().ok_or("no target")?;
            let t = ldb.target(id);
            let m = t.client.borrow().metrics();
            println!(
                "wire:  {} transactions, {} retransmits, {} bytes sent, {} bytes received",
                m.transactions, m.retransmits, m.bytes_sent, m.bytes_received
            );
            match &t.cache {
                Some(cache) => {
                    let s = cache.stats();
                    println!(
                        "cache: {} hits, {} misses, {} line fills, {} lines invalidated, {} resident",
                        s.hits, s.misses, s.fills, s.invalidated, cache.resident_lines()
                    );
                }
                None => println!("cache: disabled (--no-wire-cache)"),
            }
        }
        "info" => {
            if let Some(id) = ldb.current() {
                for a in ldb.target(id).breakpoints.addresses() {
                    match ldb.target(id).conds.get(&a) {
                        Some(cond) => println!("breakpoint at {a:#x} if {cond}"),
                        None => println!("breakpoint at {a:#x}"),
                    }
                }
            }
            for (name, val) in ldb.watchpoints() {
                println!("watchpoint on {name} (last {val})");
            }
            for (k, expr) in sess.displays.iter().enumerate() {
                println!("display {k}: {expr}");
            }
        }
        "c" | "cont" | "run" | "r" => {
            let ev = ldb.cont_watch()?;
            let exited = matches!(ev, StopEvent::Exited(_));
            report(ev);
            if !exited {
                show_displays(ldb, sess);
            }
        }
        "n" | "next" => {
            let ev = ldb.step_over()?;
            let exited = matches!(ev, StopEvent::Exited(_));
            report(ev);
            if !exited {
                show_displays(ldb, sess);
            }
        }
        "fin" | "finish" => {
            let (ev, rv) = ldb.finish()?;
            let exited = matches!(ev, StopEvent::Exited(_));
            report(ev);
            if let Some(rv) = rv {
                println!("value returned: {rv}");
            }
            if !exited {
                show_displays(ldb, sess);
            }
        }
        "s" | "step" => {
            let ev = ldb.step_insn()?;
            let exited = matches!(ev, StopEvent::Exited(_));
            report(ev);
            if !exited {
                show_displays(ldb, sess);
            }
        }
        "checkpoint" => {
            let steps = ldb.checkpoint_now()?;
            println!("checkpoint at step {steps}");
        }
        "rs" | "reverse-step" => {
            report(ldb.reverse_step_insn()?);
            show_displays(ldb, sess);
        }
        "rn" | "reverse-next" => {
            report(ldb.reverse_next()?);
            show_displays(ldb, sess);
        }
        "rc" | "reverse-continue" => {
            report(ldb.reverse_cont()?);
            show_displays(ldb, sess);
        }
        "display" => {
            let expr = rest.join(" ");
            if expr.is_empty() {
                return Err("usage: display <expr>".into());
            }
            // Evaluate once now for immediate feedback; an expression
            // that is not yet in scope still arms (it will print once
            // the target reaches a scope where it evaluates).
            match ldb.eval(&expr) {
                Ok(v) => println!("{}: {expr} = {v}", sess.displays.len()),
                Err(e) => println!("{}: {expr} = <{e}>", sess.displays.len()),
            }
            sess.displays.push(expr);
        }
        "undisplay" => {
            let k: usize = rest.first().ok_or("usage: undisplay <n>")?.parse()?;
            if k >= sess.displays.len() {
                return Err(format!("no display {k}").into());
            }
            sess.displays.remove(k);
        }
        "x" | "examine" => {
            // x <hex-addr> [n-bytes] — hex dump of target data memory.
            let a = rest.first().ok_or("usage: x <hex-addr> [nbytes]")?;
            let addr = u32::from_str_radix(a.trim_start_matches("0x"), 16)?;
            let n: u32 = rest.get(1).map(|s| s.parse()).transpose()?.unwrap_or(64);
            let id = ldb.current().ok_or("no target")?;
            let client = std::rc::Rc::clone(&ldb.target(id).client);
            let mut client = client.borrow_mut();
            for row in 0..n.div_ceil(16) {
                let base = addr + row * 16;
                let mut hex = String::new();
                let mut ascii = String::new();
                for b in 0..16.min(n - row * 16) {
                    let byte = client.fetch('d', base + b, 1)? as u8;
                    hex.push_str(&format!("{byte:02x} "));
                    ascii.push(if byte.is_ascii_graphic() || byte == b' ' {
                        byte as char
                    } else {
                        '.'
                    });
                }
                println!("{base:#010x}  {hex:<48} {ascii}");
            }
        }
        "pc" => {
            // Redirect execution: `pc <hex-addr>` (repair-and-resume).
            let a = rest.first().ok_or("usage: pc <hex-addr>")?;
            let addr = u32::from_str_radix(a.trim_start_matches("0x"), 16)?;
            ldb.set_pc(addr)?;
            println!("pc set to {addr:#x}");
        }
        "detach" => {
            let handle = ldb
                .detach_current()?
                .ok_or("this target has no local nub handle (already taken)")?;
            sess.parked = Some(handle);
            println!("detached; program state preserved in the nub (reconnect with `attach`)");
        }
        "attach" => {
            let handle = sess.parked.take().ok_or("nothing detached in this session")?;
            let (frame_ps, modules) = c_plan(c);
            let wire = handle.connect_channel()?;
            match ldb.attach_plan(maybe_faulty(wire, &sess.fault, &sess.trace), &frame_ps, &modules, Some(handle))
            {
                Ok(_) => {
                    warn_quarantined(ldb);
                    println!("reattached; breakpoints recovered from the nub");
                }
                Err(e) => {
                    // The handle went into the failed target; nothing to
                    // re-park, but say so rather than dropping silently.
                    return Err(format!("reattach failed: {e}").into());
                }
            }
        }
        "reconnect" => {
            // Replace the current target's wire with a fresh one — the
            // recovery move after a lost or fault-severed connection. The
            // nub kept the target's state; planted breakpoints are
            // re-learned from its plant records.
            let id = ldb.current().ok_or("no target")?;
            let wire = {
                let t = ldb.target(id);
                let handle = t
                    .nub
                    .as_ref()
                    .ok_or("this target has no local nub handle to reconnect through")?;
                handle.connect_channel()?
            };
            let ev = ldb.reconnect(id, maybe_faulty(wire, &sess.fault, &sess.trace))?;
            report(ev);
            println!("reconnected; breakpoints recovered from the nub");
        }
        "call" => {
            // call f(expr, expr, ...) — each argument is evaluated by the
            // expression server, so variables and arithmetic work.
            let joined = rest.join(" ");
            if !joined.contains('(') || !joined.trim_end().ends_with(')') {
                return Err("usage: call <func>(<args>)".into());
            }
            // The library's expression evaluator handles the whole call
            // (including float arguments and the return type recorded in
            // the symbol table), so just hand it the text.
            println!("{}", ldb.eval(&joined)?);
        }
        "p" | "print" => {
            let name = rest.first().ok_or("usage: p <name>")?;
            println!("{} = {}", name, ldb.print_var(name)?);
        }
        "e" | "eval" => {
            let expr = rest.join(" ");
            println!("{}", ldb.eval(&expr)?);
        }
        "bt" | "where" => {
            let (rows, stop) = ldb.backtrace();
            if rows.is_empty() {
                println!("no stack");
            }
            for (lvl, name, pc, vfp) in rows {
                println!("#{lvl}  {name}  pc={pc:#x}  frame={vfp:#x}");
            }
            if !stop.is_clean() {
                println!("walk truncated: {stop}");
            }
        }
        "f" | "frame" => {
            let n: usize = rest.first().ok_or("usage: f <n>")?.parse()?;
            ldb.select_frame(n)?;
            println!("frame {n} selected");
        }
        "regs" => {
            for (chunkno, chunk) in ldb.registers()?.chunks(4).enumerate() {
                let _ = chunkno;
                let row: Vec<String> =
                    chunk.iter().map(|(n, v)| format!("{n:>5} = {v:08x}")).collect();
                println!("  {}", row.join("   "));
            }
        }
        "list" | "l" => {
            let fib: Vec<&ldb_cc::ir::FuncIr> =
                c.units.iter().flat_map(|(u, _)| u.funcs.iter()).collect();
            for (lineno, line) in src.lines().enumerate() {
                let lineno = lineno as u32 + 1;
                let marks: Vec<String> = fib
                    .iter()
                    .flat_map(|f| f.stops.iter())
                    .filter(|s| s.line == lineno)
                    .map(|s| s.index.to_string())
                    .collect();
                let tag = if marks.is_empty() {
                    String::new()
                } else {
                    format!("  % stops {}", marks.join(","))
                };
                println!("{lineno:>4}  {line}{tag}");
            }
        }
        "disas" | "di" => {
            let id = ldb.current().ok_or("no target")?;
            let t = ldb.target(id);
            let f = t.frames.get(t.cur_frame).ok_or("not stopped")?;
            let pc = f.pc;
            let n: u32 = rest.first().map(|s| s.parse()).transpose()?.unwrap_or(32);
            // Disassemble forward from the pc: backing up is unreliable on
            // the variable-length targets.
            let start = pc;
            let mut bytes = Vec::new();
            for a in start..start + n {
                bytes.push(t.client.borrow_mut().fetch('c', a, 1)? as u8);
            }
            let arch = t.arch;
            let order = c.order;
            for (addr, _, text) in ldb_machine::disas::disassemble(arch, order, &bytes, start) {
                let mark = if addr == pc { "=>" } else { "  " };
                println!("{mark} {addr:#07x}  {text}");
            }
        }
        "ps" => {
            let code = rest.join(" ");
            match ldb.interp.run_str(&code) {
                Ok(()) => {
                    while ldb.interp.depth() > 0 {
                        let o = ldb.interp.pop()?;
                        println!("{}", o.to_syntactic());
                    }
                }
                Err(e) => println!("postscript error: {e}"),
            }
        }
        other => println!("unknown command `{other}` (q quits)"),
    }
    Ok(false)
}

fn report(ev: StopEvent) {
    match ev {
        StopEvent::Paused => println!("paused before main"),
        StopEvent::Attached => println!("attached"),
        StopEvent::Breakpoint { func, line, addr } => {
            println!("breakpoint in {func} at line {line} ({addr:#x})")
        }
        StopEvent::Stepped { func, line, addr } => {
            println!("stepped: {func} line {line} ({addr:#x})")
        }
        StopEvent::Watchpoint { name, old, new, func, line, addr } => {
            println!("watchpoint: {name} changed {old} -> {new} in {func} at line {line} ({addr:#x})");
        }
        StopEvent::Fault { sig, code } => println!("fault: {sig} (code {code:#x})"),
        StopEvent::Exited(status) => println!("target exited with status {status}"),
    }
}
