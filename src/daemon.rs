//! `ldbd`: the multi-session debug daemon — many tenants, one process,
//! per-tenant fault containment.
//!
//! The paper's machine-independent core was designed so "the debugger
//! need not run on the target machine"; `ldbd` takes the next step and
//! detaches the debugger from the *client* too. Each tenant's whole
//! debugger (interpreter, compiled target, nub, cache, chaos, trace,
//! health counters) lives on its own worker thread behind an
//! [`ldb_core::Session`]; the daemon multiplexes them through an
//! [`ldb_core::SessionRegistry`] with a hard session cap, per-command
//! watchdog deadlines, idle eviction, and bounded best-effort `Detach`
//! on every teardown path.
//!
//! The front end is a line protocol over TCP, one request per line, one
//! reply per line (payloads are newline-escaped, see [`escape_line`]):
//!
//! ```text
//! open <arch> [prog=count|spin] [chaos=SPEC] [fault=SPEC] [watchdog_ms=N] [jitter=N]
//!     -> ok <session-id>
//! cmd <id> <command line>      -> ok <transcript>     (run_script format)
//! health <id>                  -> ok <health json>
//! health                       -> ok <daemon json>    (sessions + module cache)
//! close <id>                   -> ok closed <reason>
//! ping                         -> ok pong
//! shutdown                     -> ok shutdown <n-closed>
//! anything else                -> err <message>
//! ```
//!
//! Targets are built-in programs compiled in the session's own worker
//! (compilation is deterministic, so a tenant's transcript matches a
//! solo run byte for byte): `count`, a healthy compute loop with
//! breakpoint-friendly structure, and `spin`, which never stops — the
//! wedge that demonstrates watchdog recovery.
//!
//! Symbol tables, by contrast, are compiled *once per distinct unit*:
//! the daemon owns a shared read-only [`ModuleCache`] keyed by table
//! content, so N tenants attached to the same binary pay one bytecode
//! compile and share the `Arc`-interned result (the no-argument `health`
//! verb reports the hit/miss counters).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ldb_cc::driver::{compile_many, program_load_plan, CompileOpts};
use ldb_cc::pssym::PsMode;
use ldb_core::{
    ChaosConfig, CloseReason, CompiledTable, ModuleCache, SessionBuilder, SessionConfig,
    SessionError, SessionRegistry,
};
use ldb_machine::Arch;
use ldb_nub::{spawn, ClientConfig, FaultConfig, FaultyWire, NubConfig, Wire};

/// The healthy built-in target: enough structure for breakpoints, stack
/// walks, typed prints, and expression evaluation.
pub const PROG_COUNT: &str = r#"
char msg[16] = "hi there";
char *p;
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int main(void) {
    int i; int s;
    s = 0;
    p = msg;
    for (i = 0; i < 10; i++) s += clamp(i * 30);
    printf("%d\n", s);
    return 0;
}
"#;

/// The wedge built-in: never stops, never exits. A `c` against it blocks
/// until the tenant's watchdog cancels the command.
pub const PROG_SPIN: &str = r#"
int main(void) {
    int i;
    i = 0;
    while (1) i = i + 1;
    return 0;
}
"#;

/// Look up a built-in target program by protocol name.
pub fn builtin_program(name: &str) -> Option<&'static str> {
    match name {
        "count" => Some(PROG_COUNT),
        "spin" => Some(PROG_SPIN),
        _ => None,
    }
}

/// Escape a payload onto one protocol line: `\` → `\\`, newline → `\n`,
/// carriage return → `\r` (a bare `\r` would be eaten as framing by
/// CRLF-terminating clients).
pub fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_line`]. Unknown escapes pass the escaped character
/// through, so output from older peers (which left `\r` bare) still
/// decodes.
pub fn unescape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => out.push(c),
            None => out.push('\\'),
        }
    }
    out
}

/// Daemon-wide policy.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Hard cap on simultaneous sessions; opens beyond it are rejected
    /// with `err`, never a crash.
    pub max_sessions: usize,
    /// Default per-command watchdog for tenants that don't pass
    /// `watchdog_ms` at open.
    pub watchdog: Option<Duration>,
    /// Grace after a watchdog cancellation before a tenant is declared
    /// wedged.
    pub grace: Duration,
    /// Per-target deadline for the best-effort `Detach` on teardown.
    pub detach_deadline: Duration,
    /// Evict sessions idle at least this long (`None` disables the
    /// reaper).
    pub idle_timeout: Option<Duration>,
    /// How often the idle reaper sweeps.
    pub reap_every: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            max_sessions: 128,
            watchdog: Some(Duration::from_secs(10)),
            grace: Duration::from_secs(2),
            detach_deadline: Duration::from_millis(200),
            idle_timeout: None,
            reap_every: Duration::from_secs(5),
        }
    }
}

/// Build the [`SessionBuilder`] for one tenant with a private
/// single-tenant module cache. The daemon itself uses
/// [`session_builder_with_cache`] so tenants share compiled tables; this
/// entry point is for solo baselines and tests, which must behave
/// identically (same compiled-lazy load path, cache population aside).
pub fn session_builder(
    arch: Arch,
    src: &str,
    chaos: Option<ChaosConfig>,
    fault: Option<FaultConfig>,
    jitter_seed: u64,
) -> SessionBuilder {
    session_builder_with_cache(arch, src, chaos, fault, jitter_seed, Arc::new(ModuleCache::new()))
}

/// Build the [`SessionBuilder`] for one tenant: compile `src` for
/// `arch`, intern its symbol tables in `cache` (one bytecode compile per
/// distinct table content, however many tenants attach), spawn a fresh
/// nub, optionally wrap the wire in a fault injector, optionally arm the
/// chaos layer, and attach lazily — all of it on the session's worker
/// thread.
pub fn session_builder_with_cache(
    arch: Arch,
    src: &str,
    chaos: Option<ChaosConfig>,
    fault: Option<FaultConfig>,
    jitter_seed: u64,
    cache: Arc<ModuleCache>,
) -> SessionBuilder {
    let src = src.to_string();
    Box::new(move |ldb| {
        let p = compile_many(&[("target.c", src.as_str())], arch, CompileOpts::default())
            .map_err(|e| ldb_core::LdbError::msg(format!("compile: {e}")))?;
        let (frame_ps, modules) = program_load_plan(&p, PsMode::Deferred);
        let (frame, _hit) = cache
            .get_or_compile(&frame_ps)
            .map_err(|e| ldb_core::LdbError::msg(format!("loader frame: {e}")))?;
        let modules: Vec<CompiledTable> = modules
            .into_iter()
            .map(|(name, ps)| {
                let (module, _hit) = cache
                    .get_or_compile(&ps)
                    .map_err(|e| ldb_core::LdbError::msg(format!("table `{name}`: {e}")))?;
                Ok(CompiledTable { name, module })
            })
            .collect::<Result<_, ldb_core::LdbError>>()?;
        let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
        let wire = handle
            .connect_channel()
            .map_err(|e| ldb_core::LdbError::msg(format!("connect: {e}")))?;
        let wire: Box<dyn Wire> = match fault {
            Some(cfg) => {
                let mut fw = FaultyWire::wrap(wire, cfg);
                fw.set_trace(ldb.trace().clone());
                Box::new(fw)
            }
            None => Box::new(wire),
        };
        ldb.set_chaos(chaos);
        let client = ClientConfig {
            reply_timeout: Duration::from_secs(2),
            retries: 4,
            backoff: Duration::from_millis(1),
            event_poll: Duration::from_millis(100),
            jitter_seed,
        };
        ldb.attach_compiled_with_config(wire, &frame, &modules, Some(handle), client)?;
        Ok(format!("{arch}"))
    })
}

/// The daemon proper: a [`SessionRegistry`] plus the line-protocol front
/// end. [`Daemon::handle_line`] is the whole protocol — the TCP layer
/// ([`Daemon::serve`]) and tests drive the same entry point.
pub struct Daemon {
    cfg: DaemonConfig,
    registry: Arc<SessionRegistry>,
    /// Compiled symbol tables shared by every tenant (read-only entries,
    /// keyed by table content).
    cache: Arc<ModuleCache>,
    shutdown: Arc<AtomicBool>,
}

impl Daemon {
    /// A daemon with an empty registry and an empty module cache.
    pub fn new(cfg: DaemonConfig) -> Daemon {
        let registry = Arc::new(SessionRegistry::new(cfg.max_sessions));
        Daemon {
            cfg,
            registry,
            cache: Arc::new(ModuleCache::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The tenant table (tests aggregate per-tenant health through it).
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// The shared compiled-module cache (tests assert its counters).
    pub fn module_cache(&self) -> &Arc<ModuleCache> {
        &self.cache
    }

    /// Whether `shutdown` has been processed.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Execute one protocol request and produce one reply line (without
    /// the trailing newline). Never panics a caller: every failure is an
    /// `err …` reply.
    pub fn handle_line(&self, line: &str) -> String {
        // Strip the line terminator only (CRLF clients leave a trailing
        // `\r` after `lines()` takes the `\n`); anything else trailing
        // may be a whitespace-significant escaped payload. Leading
        // whitespace precedes the verb, so it is always framing.
        let line = line.strip_suffix('\n').unwrap_or(line);
        let line = line.strip_suffix('\r').unwrap_or(line);
        match self.dispatch(line.trim_start()) {
            Ok(reply) => format!("ok {}", escape_line(&reply)),
            Err(msg) => format!("err {}", escape_line(&msg)),
        }
    }

    fn dispatch(&self, line: &str) -> Result<String, String> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err("daemon is shutting down".to_string());
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        match verb {
            "ping" => Ok("pong".to_string()),
            "open" => self.open(rest.trim()),
            "cmd" => {
                // The id is framing; everything after the single
                // separator is the escaped payload, whitespace included.
                let (id, commands) = rest
                    .trim_start()
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| "usage: cmd <id> <command>".to_string())?;
                let id = parse_id(id)?;
                let commands = unescape_line(commands);
                self.registry.run(id, &commands).map_err(|e| self.after_error(id, e))
            }
            "health" => {
                let rest = rest.trim();
                if rest.is_empty() {
                    // No id: daemon-level health — the session count and
                    // the shared module-cache counters.
                    return Ok(self.health_json());
                }
                let id = parse_id(rest)?;
                self.registry
                    .health(id)
                    .map(|h| h.to_json())
                    .map_err(|e| self.after_error(id, e))
            }
            "close" => {
                let id = parse_id(rest)?;
                match self.registry.close(id, CloseReason::ClientRequest) {
                    Ok(reason) => Ok(format!("closed {reason}")),
                    Err(e) => Err(e.to_string()),
                }
            }
            "shutdown" => {
                self.shutdown.store(true, Ordering::Relaxed);
                let closed = self.registry.close_all(CloseReason::Shutdown);
                Ok(format!("shutdown {closed}"))
            }
            "" => Err("empty request".to_string()),
            other => Err(format!("unknown verb `{other}`")),
        }
    }

    /// The daemon-level health document: live session count plus the
    /// shared module-cache counters. `misses` is the number of bytecode
    /// compiles actually paid; N same-binary tenants should show N-1
    /// hits and one miss per table.
    fn health_json(&self) -> String {
        let s = self.cache.stats();
        format!(
            "{{\"sessions\":{},\"module_cache\":{{\"hits\":{},\"misses\":{},\"entries\":{}}}}}",
            self.registry.len(),
            s.hits,
            s.misses,
            s.entries
        )
    }

    /// A wedged tenant is unusable: close it (typed) so the id stops
    /// answering and its worker tears down once it unwedges.
    fn after_error(&self, id: u64, e: SessionError) -> String {
        if matches!(e, SessionError::Wedged) {
            let _ = self.registry.close(id, CloseReason::Wedged);
        }
        e.to_string()
    }

    fn open(&self, rest: &str) -> Result<String, String> {
        let mut words = rest.split_whitespace();
        let arch_name = words.next().ok_or("usage: open <arch> [k=v]...")?;
        let arch = Arch::from_name(arch_name).ok_or_else(|| format!("unknown arch `{arch_name}`"))?;
        let mut prog = PROG_COUNT;
        let mut chaos = None;
        let mut fault = None;
        let mut jitter = 0u64;
        let mut cfg = SessionConfig {
            watchdog: self.cfg.watchdog,
            grace: self.cfg.grace,
            detach_deadline: self.cfg.detach_deadline,
        };
        for word in words {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| format!("bad open option `{word}` (want k=v)"))?;
            match key {
                "prog" => {
                    prog = builtin_program(value)
                        .ok_or_else(|| format!("unknown program `{value}` (count|spin)"))?;
                }
                "chaos" => chaos = Some(ChaosConfig::parse(value)?),
                "fault" => fault = Some(FaultConfig::parse(value)?),
                "watchdog_ms" => {
                    let ms: u64 = value.parse().map_err(|_| "bad watchdog_ms".to_string())?;
                    cfg.watchdog = (ms > 0).then(|| Duration::from_millis(ms));
                }
                "jitter" => {
                    jitter = value.parse().map_err(|_| "bad jitter seed".to_string())?;
                }
                other => return Err(format!("unknown open option `{other}`")),
            }
        }
        let builder =
            session_builder_with_cache(arch, prog, chaos, fault, jitter, Arc::clone(&self.cache));
        match self.registry.open(cfg, builder) {
            Ok(id) => Ok(format!("{id}")),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Serve the line protocol on `listener` until a client sends
    /// `shutdown`: one thread per connection, a reaper sweeping idle
    /// sessions, and on the way out a registry close that detaches every
    /// live target. Returns once shutdown completes.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut clients: Vec<(std::thread::JoinHandle<()>, TcpStream)> = Vec::new();
        let reaper = self.cfg.idle_timeout.map(|idle| {
            let daemon = Arc::clone(self);
            std::thread::spawn(move || {
                while !daemon.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(daemon.cfg.reap_every.min(Duration::from_millis(100)));
                    daemon.registry.evict_idle(idle);
                }
            })
        });
        while !self.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let daemon = Arc::clone(self);
                    // Keep a handle to the socket: a handler blocked in a
                    // read only notices shutdown when its client speaks,
                    // so the serve loop must be able to hang up for it.
                    let sock = stream.try_clone()?;
                    clients.push((
                        std::thread::spawn(move || daemon.serve_client(stream)),
                        sock,
                    ));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        for (handle, sock) in clients {
            let _ = sock.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
        if let Some(r) = reaper {
            let _ = r.join();
        }
        // Belt and braces: `shutdown` already closed the registry, but a
        // serve loop ending any other way must still detach every target.
        self.registry.close_all(CloseReason::Shutdown);
        Ok(())
    }

    fn serve_client(&self, stream: TcpStream) {
        let Ok(peer) = stream.try_clone() else { return };
        let mut writer = peer;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let reply = self.handle_line(&line);
            if writeln!(writer, "{reply}").is_err() {
                break;
            }
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
        }
    }
}

fn parse_id(s: &str) -> Result<u64, String> {
    s.trim().parse::<u64>().map_err(|_| format!("bad session id `{s}`"))
}

/// A line-protocol client for tests and tools: connects, sends one
/// request per call, reads one reply.
pub struct DaemonClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl DaemonClient {
    /// Connect to a serving daemon.
    ///
    /// # Errors
    /// Socket failures.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<DaemonClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(DaemonClient { reader: BufReader::new(stream), writer })
    }

    /// Send one request line, read one reply line. Returns
    /// `Ok(payload)` for `ok …` replies and `Err(message)` for `err …`
    /// (payloads unescaped).
    ///
    /// # Errors
    /// Socket failures surface as `Err` with an `io:` prefix.
    pub fn request(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("io: {e}"))?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply).map_err(|e| format!("io: {e}"))?;
        let reply = reply.trim_end_matches('\n');
        if let Some(payload) = reply.strip_prefix("ok ") {
            Ok(unescape_line(payload))
        } else if let Some(payload) = reply.strip_prefix("err ") {
            Err(unescape_line(payload))
        } else if reply.is_empty() {
            Err("io: connection closed".to_string())
        } else {
            Err(format!("malformed reply `{reply}`"))
        }
    }
}
