//! `ldbd`: the multi-session debug daemon — many tenants, one process,
//! per-tenant fault containment.
//!
//! The paper's machine-independent core was designed so "the debugger
//! need not run on the target machine"; `ldbd` takes the next step and
//! detaches the debugger from the *client* too. Each tenant's whole
//! debugger (interpreter, compiled target, nub, cache, chaos, trace,
//! health counters) lives on its own worker thread behind an
//! [`ldb_core::Session`]; the daemon multiplexes them through an
//! [`ldb_core::SessionRegistry`] with a hard session cap, per-command
//! watchdog deadlines, idle eviction, and bounded best-effort `Detach`
//! on every teardown path.
//!
//! The front end is a line protocol over TCP, one request per line, one
//! reply per line (payloads are newline-escaped, see [`escape_line`]):
//!
//! ```text
//! open <arch> [prog=count|spin] [chaos=SPEC] [fault=SPEC] [watchdog_ms=N] [jitter=N]
//!     -> ok <session-id>
//! cmd <id> <command line>      -> ok <transcript>     (run_script format)
//! health <id>                  -> ok <health json>
//! health                       -> ok <daemon json>    (sessions + module cache)
//! close <id>                   -> ok closed <reason>
//! ping                         -> ok pong
//! shutdown                     -> ok shutdown <n-closed>
//! anything else                -> err <message>
//! ```
//!
//! Targets are built-in programs compiled in the session's own worker
//! (compilation is deterministic, so a tenant's transcript matches a
//! solo run byte for byte): `count`, a healthy compute loop with
//! breakpoint-friendly structure, and `spin`, which never stops — the
//! wedge that demonstrates watchdog recovery.
//!
//! Symbol tables, by contrast, are compiled *once per distinct unit*:
//! the daemon owns a shared read-only [`ModuleCache`] keyed by table
//! content, so N tenants attached to the same binary pay one bytecode
//! compile and share the `Arc`-interned result (the no-argument `health`
//! verb reports the hit/miss counters).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ldb_cc::driver::{compile_many, program_load_plan, CompileOpts};
use ldb_cc::pssym::PsMode;
use ldb_core::{
    ChaosConfig, CloseReason, CompiledTable, ModuleCache, SessionBuilder, SessionConfig,
    SessionError, SessionRegistry,
};
use ldb_machine::Arch;
use ldb_nub::{spawn, ClientConfig, FaultConfig, FaultyWire, NubConfig, Wire};
use ldb_trace::{Layer, Severity, Trace};

use crate::net::{BoundedLineReader, ConnLimits, ConnMetrics, LineOutcome, SweepTimer};

/// The healthy built-in target: enough structure for breakpoints, stack
/// walks, typed prints, and expression evaluation.
pub const PROG_COUNT: &str = r#"
char msg[16] = "hi there";
char *p;
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int main(void) {
    int i; int s;
    s = 0;
    p = msg;
    for (i = 0; i < 10; i++) s += clamp(i * 30);
    printf("%d\n", s);
    return 0;
}
"#;

/// The wedge built-in: never stops, never exits. A `c` against it blocks
/// until the tenant's watchdog cancels the command.
pub const PROG_SPIN: &str = r#"
int main(void) {
    int i;
    i = 0;
    while (1) i = i + 1;
    return 0;
}
"#;

/// Look up a built-in target program by protocol name.
pub fn builtin_program(name: &str) -> Option<&'static str> {
    match name {
        "count" => Some(PROG_COUNT),
        "spin" => Some(PROG_SPIN),
        _ => None,
    }
}

/// Escape a payload onto one protocol line: `\` → `\\`, newline → `\n`,
/// carriage return → `\r` (a bare `\r` would be eaten as framing by
/// CRLF-terminating clients).
pub fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_line`]. Unknown escapes pass the escaped character
/// through, so output from older peers (which left `\r` bare) still
/// decodes.
pub fn unescape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => out.push(c),
            None => out.push('\\'),
        }
    }
    out
}

/// Daemon-wide policy.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Hard cap on simultaneous sessions; opens beyond it are rejected
    /// with `err`, never a crash.
    pub max_sessions: usize,
    /// Default per-command watchdog for tenants that don't pass
    /// `watchdog_ms` at open.
    pub watchdog: Option<Duration>,
    /// Grace after a watchdog cancellation before a tenant is declared
    /// wedged.
    pub grace: Duration,
    /// Per-target deadline for the best-effort `Detach` on teardown.
    pub detach_deadline: Duration,
    /// Evict sessions idle at least this long (`None` disables the
    /// reaper).
    pub idle_timeout: Option<Duration>,
    /// How often the idle reaper sweeps.
    pub reap_every: Duration,
    /// The connection edge: caps, deadlines, shedding and quarantine
    /// policy (see [`ConnLimits`]).
    pub limits: ConnLimits,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            max_sessions: 128,
            watchdog: Some(Duration::from_secs(10)),
            grace: Duration::from_secs(2),
            detach_deadline: Duration::from_millis(200),
            idle_timeout: None,
            reap_every: Duration::from_secs(5),
            limits: ConnLimits::default(),
        }
    }
}

/// Build the [`SessionBuilder`] for one tenant with a private
/// single-tenant module cache. The daemon itself uses
/// [`session_builder_with_cache`] so tenants share compiled tables; this
/// entry point is for solo baselines and tests, which must behave
/// identically (same compiled-lazy load path, cache population aside).
pub fn session_builder(
    arch: Arch,
    src: &str,
    chaos: Option<ChaosConfig>,
    fault: Option<FaultConfig>,
    jitter_seed: u64,
) -> SessionBuilder {
    session_builder_with_cache(arch, src, chaos, fault, jitter_seed, Arc::new(ModuleCache::new()))
}

/// Build the [`SessionBuilder`] for one tenant: compile `src` for
/// `arch`, intern its symbol tables in `cache` (one bytecode compile per
/// distinct table content, however many tenants attach), spawn a fresh
/// nub, optionally wrap the wire in a fault injector, optionally arm the
/// chaos layer, and attach lazily — all of it on the session's worker
/// thread.
pub fn session_builder_with_cache(
    arch: Arch,
    src: &str,
    chaos: Option<ChaosConfig>,
    fault: Option<FaultConfig>,
    jitter_seed: u64,
    cache: Arc<ModuleCache>,
) -> SessionBuilder {
    let src = src.to_string();
    Box::new(move |ldb| {
        let p = compile_many(&[("target.c", src.as_str())], arch, CompileOpts::default())
            .map_err(|e| ldb_core::LdbError::msg(format!("compile: {e}")))?;
        let (frame_ps, modules) = program_load_plan(&p, PsMode::Deferred);
        let (frame, _hit) = cache
            .get_or_compile(&frame_ps)
            .map_err(|e| ldb_core::LdbError::msg(format!("loader frame: {e}")))?;
        let modules: Vec<CompiledTable> = modules
            .into_iter()
            .map(|(name, ps)| {
                let (module, _hit) = cache
                    .get_or_compile(&ps)
                    .map_err(|e| ldb_core::LdbError::msg(format!("table `{name}`: {e}")))?;
                Ok(CompiledTable { name, module })
            })
            .collect::<Result<_, ldb_core::LdbError>>()?;
        let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
        let wire = handle
            .connect_channel()
            .map_err(|e| ldb_core::LdbError::msg(format!("connect: {e}")))?;
        let wire: Box<dyn Wire> = match fault {
            Some(cfg) => {
                let mut fw = FaultyWire::wrap(wire, cfg);
                fw.set_trace(ldb.trace().clone());
                Box::new(fw)
            }
            None => Box::new(wire),
        };
        ldb.set_chaos(chaos);
        let client = ClientConfig {
            reply_timeout: Duration::from_secs(2),
            retries: 4,
            backoff: Duration::from_millis(1),
            event_poll: Duration::from_millis(100),
            jitter_seed,
        };
        ldb.attach_compiled_with_config(wire, &frame, &modules, Some(handle), client)?;
        Ok(format!("{arch}"))
    })
}

/// The daemon proper: a [`SessionRegistry`] plus the line-protocol front
/// end. [`Daemon::handle_line`] is the whole protocol — the TCP layer
/// ([`Daemon::serve`]) and tests drive the same entry point.
pub struct Daemon {
    cfg: DaemonConfig,
    registry: Arc<SessionRegistry>,
    /// Compiled symbol tables shared by every tenant (read-only entries,
    /// keyed by table content).
    cache: Arc<ModuleCache>,
    /// Connection-edge counters (`health` folds a snapshot in).
    net: Arc<ConnMetrics>,
    /// Monotonic connection ids for the net-layer journal.
    next_conn: AtomicU64,
    /// Flight recorder for the connection edge ([`Layer::Net`] records:
    /// accept, shed, oversize, malformed, quarantine, idle disconnect),
    /// so hostile-client incidents replay deterministically.
    trace: Trace,
    shutdown: Arc<AtomicBool>,
}

impl Daemon {
    /// A daemon with an empty registry and an empty module cache.
    pub fn new(cfg: DaemonConfig) -> Daemon {
        Daemon::with_trace(cfg, Trace::off())
    }

    /// A daemon journaling its connection edge to `trace` as
    /// [`Layer::Net`] records.
    pub fn with_trace(cfg: DaemonConfig, trace: Trace) -> Daemon {
        let registry = Arc::new(SessionRegistry::new(cfg.max_sessions));
        Daemon {
            cfg,
            registry,
            cache: Arc::new(ModuleCache::new()),
            net: Arc::new(ConnMetrics::default()),
            next_conn: AtomicU64::new(0),
            trace,
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The tenant table (tests aggregate per-tenant health through it).
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// The shared compiled-module cache (tests assert its counters).
    pub fn module_cache(&self) -> &Arc<ModuleCache> {
        &self.cache
    }

    /// The connection-edge counters (tests assert every rejection is
    /// accounted for).
    pub fn conn_metrics(&self) -> &Arc<ConnMetrics> {
        &self.net
    }

    /// Whether `shutdown` has been processed.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Execute one protocol request and produce one reply line (without
    /// the trailing newline). Never panics a caller: every failure is an
    /// `err …` reply.
    pub fn handle_line(&self, line: &str) -> String {
        // Strip the line terminator only (CRLF clients leave a trailing
        // `\r` after `lines()` takes the `\n`); anything else trailing
        // may be a whitespace-significant escaped payload. Leading
        // whitespace precedes the verb, so it is always framing.
        let line = line.strip_suffix('\n').unwrap_or(line);
        let line = line.strip_suffix('\r').unwrap_or(line);
        match self.dispatch(line.trim_start()) {
            Ok(reply) => format!("ok {}", escape_line(&reply)),
            Err(msg) => format!("err {}", escape_line(&msg)),
        }
    }

    fn dispatch(&self, line: &str) -> Result<String, String> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err("daemon is shutting down".to_string());
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        match verb {
            "ping" => Ok("pong".to_string()),
            "open" => self.open(rest.trim()),
            "cmd" => {
                // The id is framing; everything after the single
                // separator is the escaped payload, whitespace included.
                let (id, commands) = rest
                    .trim_start()
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| "usage: cmd <id> <command>".to_string())?;
                let id = parse_id(id)?;
                let commands = unescape_line(commands);
                self.registry.run(id, &commands).map_err(|e| self.after_error(id, e))
            }
            "health" => {
                let rest = rest.trim();
                if rest.is_empty() {
                    // No id: daemon-level health — the session count and
                    // the shared module-cache counters.
                    return Ok(self.health_json());
                }
                let id = parse_id(rest)?;
                self.registry
                    .health(id)
                    .map(|h| h.to_json())
                    .map_err(|e| self.after_error(id, e))
            }
            "close" => {
                let id = parse_id(rest)?;
                match self.registry.close(id, CloseReason::ClientRequest) {
                    Ok(reason) => Ok(format!("closed {reason}")),
                    Err(e) => Err(e.to_string()),
                }
            }
            "shutdown" => {
                self.shutdown.store(true, Ordering::Relaxed);
                let closed = self.registry.close_all(CloseReason::Shutdown);
                Ok(format!("shutdown {closed}"))
            }
            "" => Err("empty request".to_string()),
            other => Err(format!("unknown verb `{other}`")),
        }
    }

    /// The daemon-level health document: live session count, the
    /// abandoned-worker gauge, the shared module-cache counters, and the
    /// connection-edge counters. `misses` is the number of bytecode
    /// compiles actually paid; N same-binary tenants should show N-1
    /// hits and one miss per table.
    fn health_json(&self) -> String {
        let s = self.cache.stats();
        format!(
            "{{\"sessions\":{},\"leaked_workers\":{},\
             \"module_cache\":{{\"hits\":{},\"misses\":{},\"entries\":{}}},\
             \"connections\":{}}}",
            self.registry.len(),
            self.registry.leaked_workers(),
            s.hits,
            s.misses,
            s.entries,
            self.net.snapshot().to_json()
        )
    }

    /// A wedged tenant is unusable: close it (typed) so the id stops
    /// answering and its worker tears down once it unwedges.
    fn after_error(&self, id: u64, e: SessionError) -> String {
        if matches!(e, SessionError::Wedged) {
            let _ = self.registry.close(id, CloseReason::Wedged);
        }
        e.to_string()
    }

    fn open(&self, rest: &str) -> Result<String, String> {
        let mut words = rest.split_whitespace();
        let arch_name = words.next().ok_or("usage: open <arch> [k=v]...")?;
        let arch = Arch::from_name(arch_name).ok_or_else(|| format!("unknown arch `{arch_name}`"))?;
        let mut prog = PROG_COUNT;
        let mut chaos = None;
        let mut fault = None;
        let mut jitter = 0u64;
        let mut cfg = SessionConfig {
            watchdog: self.cfg.watchdog,
            grace: self.cfg.grace,
            detach_deadline: self.cfg.detach_deadline,
        };
        for word in words {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| format!("bad open option `{word}` (want k=v)"))?;
            match key {
                "prog" => {
                    prog = builtin_program(value)
                        .ok_or_else(|| format!("unknown program `{value}` (count|spin)"))?;
                }
                "chaos" => chaos = Some(ChaosConfig::parse(value)?),
                "fault" => fault = Some(FaultConfig::parse(value)?),
                "watchdog_ms" => {
                    let ms: u64 = value.parse().map_err(|_| "bad watchdog_ms".to_string())?;
                    cfg.watchdog = (ms > 0).then(|| Duration::from_millis(ms));
                }
                "jitter" => {
                    jitter = value.parse().map_err(|_| "bad jitter seed".to_string())?;
                }
                other => return Err(format!("unknown open option `{other}`")),
            }
        }
        let builder =
            session_builder_with_cache(arch, prog, chaos, fault, jitter, Arc::clone(&self.cache));
        match self.registry.open(cfg, builder) {
            Ok(id) => Ok(format!("{id}")),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Serve the line protocol on `listener` until a client sends
    /// `shutdown`: one thread per connection up to
    /// [`ConnLimits::max_conns`] (accepts beyond the cap are shed with a
    /// typed `err overloaded` and a clean hangup), a reaper sweeping
    /// idle sessions on the configured interval, a bounded per-request
    /// reader with idle disconnect on every connection, and on the way
    /// out a drain window that lets in-flight replies finish before
    /// sockets are forced shut. Returns once shutdown completes.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut clients: Vec<(std::thread::JoinHandle<()>, TcpStream)> = Vec::new();
        let reaper = self.cfg.idle_timeout.map(|idle| {
            let daemon = Arc::clone(self);
            std::thread::spawn(move || {
                let mut timer = SweepTimer::new(daemon.cfg.reap_every);
                while !daemon.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(timer.poll_interval());
                    // Sweep only when the configured interval has really
                    // elapsed — the short sleep is for noticing shutdown,
                    // not for sweeping faster than asked.
                    if timer.due(Instant::now()) {
                        daemon.registry.evict_idle(idle);
                    }
                }
            })
        });
        while !self.shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    // Finished handlers retire their slots here, so the
                    // handle list does not grow with connection churn.
                    clients.retain(|(h, _)| !h.is_finished());
                    let conn = self.next_conn.fetch_add(1, Ordering::Relaxed) + 1;
                    if self.net.active() >= self.cfg.limits.max_conns as u64 {
                        self.shed(stream, conn);
                        continue;
                    }
                    self.net.note_accepted();
                    self.trace.emit(
                        Layer::Net,
                        Severity::Info,
                        "accept",
                        &[("conn", conn.into())],
                    );
                    let daemon = Arc::clone(self);
                    // Keep a handle to the socket: if a handler outlives
                    // the drain window at shutdown, the serve loop must
                    // be able to hang up for it.
                    let sock = stream.try_clone()?;
                    clients.push((
                        std::thread::spawn(move || daemon.serve_client(stream, conn)),
                        sock,
                    ));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        // Graceful drain: handlers poll the shutdown flag between reads
        // and finish writing the reply they owe first; give them the
        // drain window before cutting sockets out from under them.
        let deadline = Instant::now() + self.cfg.limits.drain;
        while clients.iter().any(|(h, _)| !h.is_finished()) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        for (handle, sock) in clients {
            let _ = sock.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
        if let Some(r) = reaper {
            let _ = r.join();
        }
        // Belt and braces: `shutdown` already closed the registry, but a
        // serve loop ending any other way must still detach every target.
        self.registry.close_all(CloseReason::Shutdown);
        Ok(())
    }

    /// Reject a connection beyond the cap: one typed `err` carrying the
    /// backoff hint, then a clean hangup. Runs on the accept thread, so
    /// the write is deadline-bounded — a shed client that never reads
    /// cannot stall the accept loop.
    fn shed(&self, stream: TcpStream, conn: u64) {
        self.net.note_shed();
        self.trace.emit(
            Layer::Net,
            Severity::Warn,
            "shed",
            &[("conn", conn.into()), ("retry_after_ms", self.cfg.limits.retry_after_ms.into())],
        );
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(self.cfg.limits.write_timeout));
        let reply = format!(
            "err overloaded retry_after_ms={} ({} connections at cap)\n",
            self.cfg.limits.retry_after_ms, self.cfg.limits.max_conns
        );
        if stream.write_all(reply.as_bytes()).is_ok() {
            self.net.add_bytes_out(reply.len() as u64);
        }
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    /// One client connection: a bounded reader, per-read and per-write
    /// deadlines, an idle clock, and a strike counter — repeat protocol
    /// offenders (oversized or non-UTF-8 requests) are quarantined with
    /// a typed `err` and a hangup. Every exit path lowers the active
    /// gauge.
    fn serve_client(&self, stream: TcpStream, conn: u64) {
        let sock = stream.try_clone().ok();
        self.serve_client_inner(stream, conn);
        // The serve loop holds its own clone of this socket for the
        // shutdown drain, so dropping the handler's fds is not a hangup
        // — send the FIN explicitly, or an idle-disconnected or
        // quarantined client would dangle half-open until the next
        // accept retires the slot.
        if let Some(sock) = sock {
            let _ = sock.shutdown(std::net::Shutdown::Both);
        }
        self.net.note_closed();
        self.trace.emit(Layer::Net, Severity::Debug, "conn_end", &[("conn", conn.into())]);
    }

    fn serve_client_inner(&self, stream: TcpStream, conn: u64) {
        // Read in short slices so shutdown and the idle clock are
        // noticed even while a client stalls mid-line.
        let poll = self.cfg.limits.idle.min(Duration::from_millis(100));
        if stream.set_read_timeout(Some(poll)).is_err()
            || stream.set_write_timeout(Some(self.cfg.limits.write_timeout)).is_err()
        {
            return;
        }
        let Ok(peer) = stream.try_clone() else { return };
        let mut writer = peer;
        let mut reader = BoundedLineReader::new(stream, self.cfg.limits.max_request_bytes);
        let mut strikes = 0u32;
        let mut synced_bytes = 0u64;
        let mut last_progress = Instant::now();
        let write_reply = |w: &mut TcpStream, net: &ConnMetrics, reply: &str| -> bool {
            let mut line = String::with_capacity(reply.len() + 1);
            line.push_str(reply);
            line.push('\n');
            let ok = w.write_all(line.as_bytes()).is_ok();
            if ok {
                net.add_bytes_out(line.len() as u64);
            }
            ok
        };
        loop {
            let outcome = reader.read_line();
            self.net.add_bytes_in(reader.bytes_read() - synced_bytes);
            synced_bytes = reader.bytes_read();
            let offense: Option<String> = match outcome {
                LineOutcome::Line(bytes) => {
                    last_progress = Instant::now();
                    self.net.note_request();
                    match String::from_utf8(bytes) {
                        Ok(line) => {
                            let reply = self.handle_line(&line);
                            if !write_reply(&mut writer, &self.net, &reply) {
                                return;
                            }
                            if self.shutdown.load(Ordering::Relaxed) {
                                // The reply this client was owed is out;
                                // drain over, hang up.
                                return;
                            }
                            // A long-running command is progress, not
                            // idling: the idle clock restarts at the
                            // reply, not the request.
                            last_progress = Instant::now();
                            None
                        }
                        Err(_) => {
                            self.net.note_malformed();
                            self.trace.emit(
                                Layer::Net,
                                Severity::Warn,
                                "malformed",
                                &[("conn", conn.into())],
                            );
                            Some("err request is not valid UTF-8".to_string())
                        }
                    }
                }
                LineOutcome::Oversized { discarded } => {
                    last_progress = Instant::now();
                    self.net.note_request();
                    self.net.note_oversized();
                    self.trace.emit(
                        Layer::Net,
                        Severity::Warn,
                        "oversize",
                        &[("conn", conn.into()), ("discarded", discarded.into())],
                    );
                    Some(format!(
                        "err request too long ({discarded} bytes, cap {})",
                        self.cfg.limits.max_request_bytes
                    ))
                }
                LineOutcome::Flooded { discarded } => {
                    // An unterminated flood: no resync point exists, so
                    // quarantine immediately regardless of strikes.
                    self.net.note_quarantined();
                    self.trace.emit(
                        Layer::Net,
                        Severity::Warn,
                        "quarantine",
                        &[
                            ("conn", conn.into()),
                            ("why", "flood".into()),
                            ("discarded", discarded.into()),
                        ],
                    );
                    let _ = write_reply(
                        &mut writer,
                        &self.net,
                        &format!("err connection quarantined (unterminated {discarded}-byte flood)"),
                    );
                    return;
                }
                LineOutcome::TimedOut => {
                    if self.shutdown.load(Ordering::Relaxed) {
                        // Idle at shutdown: nothing is owed, hang up.
                        return;
                    }
                    if last_progress.elapsed() >= self.cfg.limits.idle {
                        self.net.note_idle_disconnect();
                        self.trace.emit(
                            Layer::Net,
                            Severity::Info,
                            "idle_close",
                            &[("conn", conn.into())],
                        );
                        let _ = write_reply(&mut writer, &self.net, "err idle timeout, disconnecting");
                        return;
                    }
                    None
                }
                LineOutcome::Eof | LineOutcome::Err(_) => return,
            };
            if let Some(err_reply) = offense {
                strikes += 1;
                if strikes >= self.cfg.limits.strikes {
                    self.net.note_quarantined();
                    self.trace.emit(
                        Layer::Net,
                        Severity::Warn,
                        "quarantine",
                        &[("conn", conn.into()), ("why", "strikes".into()), ("strikes", strikes.into())],
                    );
                    let _ = write_reply(
                        &mut writer,
                        &self.net,
                        &format!("err connection quarantined ({strikes} protocol offenses)"),
                    );
                    return;
                }
                if !write_reply(&mut writer, &self.net, &err_reply) {
                    return;
                }
            }
        }
    }
}

fn parse_id(s: &str) -> Result<u64, String> {
    s.trim().parse::<u64>().map_err(|_| format!("bad session id `{s}`"))
}

/// Retry policy for a [`DaemonClient`] riding through transient
/// rejections: overload shedding, the session cap, and dropped
/// connections.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: u32,
    /// Backoff between attempts when the server did not advertise a
    /// `retry_after_ms` hint; doubles per retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 8, backoff: Duration::from_millis(10) }
    }
}

/// Whether a failed request is worth retrying: transient overload
/// (connection shedding, session cap) and transport loss. Protocol
/// errors (`unknown verb`, `bad session id`…) are not — the request
/// itself is wrong.
fn retryable(err: &str) -> bool {
    err.starts_with("io:")
        || err.contains("overloaded retry_after_ms=")
        || err.contains("session limit reached")
}

/// The server's `retry_after_ms=N` backoff hint, if the error carries
/// one.
fn retry_after(err: &str) -> Option<Duration> {
    let n = err.split("retry_after_ms=").nth(1)?;
    let n: u64 = n.split(|c: char| !c.is_ascii_digit()).next()?.parse().ok()?;
    Some(Duration::from_millis(n))
}

/// A line-protocol client for tests and tools: connects, sends one
/// request per call, reads one reply. [`DaemonClient::request_with_retry`]
/// adds reconnect-and-backoff so well-behaved callers ride through
/// overload shedding and dropped connections.
pub struct DaemonClient {
    addr: std::net::SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl DaemonClient {
    /// Connect to a serving daemon.
    ///
    /// # Errors
    /// Socket failures.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<DaemonClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(DaemonClient { addr, reader: BufReader::new(stream), writer })
    }

    /// Send one request line, read one reply line. Returns
    /// `Ok(payload)` for `ok …` replies and `Err(message)` for `err …`
    /// (payloads unescaped).
    ///
    /// A request containing a line terminator is rejected with a typed
    /// error *before* anything hits the wire: an embedded `\n` would
    /// silently frame as two requests and desynchronize every subsequent
    /// reply. Escape payloads with [`escape_line`].
    ///
    /// # Errors
    /// Socket failures surface as `Err` with an `io:` prefix.
    pub fn request(&mut self, line: &str) -> Result<String, String> {
        if line.contains('\n') || line.contains('\r') {
            return Err(
                "request contains a line terminator (escape payloads with escape_line)"
                    .to_string(),
            );
        }
        writeln!(self.writer, "{line}").map_err(|e| format!("io: {e}"))?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply).map_err(|e| format!("io: {e}"))?;
        let reply = reply.trim_end_matches('\n');
        if let Some(payload) = reply.strip_prefix("ok ") {
            Ok(unescape_line(payload))
        } else if let Some(payload) = reply.strip_prefix("err ") {
            Err(unescape_line(payload))
        } else if reply.is_empty() {
            Err("io: connection closed".to_string())
        } else {
            Err(format!("malformed reply `{reply}`"))
        }
    }

    /// [`DaemonClient::request`], but transient failures — overload
    /// shedding, the session cap, a dropped or reset connection — are
    /// retried with a fresh connection and backoff (the server's
    /// `retry_after_ms` hint when it gave one, doubling otherwise).
    /// Protocol errors are returned immediately.
    ///
    /// Note the at-most-once caveat: a request lost to a mid-flight
    /// transport error *may* have been executed before the connection
    /// died. Idempotent requests (`ping`, `health`, `cmd` re-runs) are
    /// always safe; `open` may in the worst case leave an extra session
    /// for the idle reaper.
    ///
    /// # Errors
    /// The final attempt's error.
    pub fn request_with_retry(
        &mut self,
        line: &str,
        policy: &RetryPolicy,
    ) -> Result<String, String> {
        let mut backoff = policy.backoff;
        let mut last = String::new();
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(retry_after(&last).unwrap_or(backoff));
                backoff = backoff.saturating_mul(2);
                // The old connection may be half-dead (shed, reset, or
                // drained); start clean.
                if let Ok(fresh) = DaemonClient::connect(self.addr) {
                    *self = fresh;
                }
            }
            match self.request(line) {
                Ok(reply) => return Ok(reply),
                Err(e) if retryable(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }
}
