//! The daemon's service edge: the hardened connection layer between
//! untrusted TCP clients and the session registry.
//!
//! The daemon's *tenants* have been hard to kill since PR 5 (chaos
//! memory, panic quarantine, per-tenant watchdogs), but a server must
//! also survive its *clients*: Hanson's client/server split (*A
//! Machine-Independent Debugger—Revisited*) exists precisely because the
//! debugger core must not trust whatever speaks the protocol at it. This
//! module supplies the pieces `ldbd`'s front end is built from:
//!
//! - [`BoundedLineReader`] — a line reader that cannot be ballooned: a
//!   request longer than the cap is *discarded*, not buffered, and the
//!   reader resynchronizes at the next newline so the connection keeps
//!   working. A line that overruns the drain budget too is flooding, and
//!   the caller hangs up.
//! - [`ConnLimits`] / [`ConnMetrics`] — the edge policy (connection cap,
//!   request-size cap, per-connection deadlines, shedding and quarantine
//!   thresholds) and the counters the no-arg `health` verb reports.
//! - [`ChaosClient`] — the TCP-side sibling of the nub's `FaultyWire`: a
//!   seeded misbehaving client that replays partial writes, mid-line
//!   stalls, garbage bytes, abrupt disconnects, and slow-loris
//!   drip-feeding, so hostile-client handling is exercised
//!   deterministically instead of waited for.
//! - [`SweepTimer`] — the idle reaper's schedule, split out so "sweep
//!   every `reap_every`, but notice shutdown every 100 ms" is testable
//!   without a daemon.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Policy for the connection edge (all of it daemon-wide; the per-tenant
/// policy lives in `SessionConfig`).
#[derive(Debug, Clone)]
pub struct ConnLimits {
    /// Hard cap on simultaneous client connections. Accepts beyond it
    /// are shed: one `err overloaded retry_after_ms=N` line and a clean
    /// hangup, never an unbounded thread-per-connection pile-up.
    pub max_conns: usize,
    /// Longest request line the reader will buffer. Oversized lines are
    /// discarded (typed `err`), and the reader resynchronizes at the
    /// next newline.
    pub max_request_bytes: usize,
    /// Disconnect a connection that has not completed a request for this
    /// long (a mid-line stall counts as idle — bytes without a newline
    /// are not progress).
    pub idle: Duration,
    /// Per-write deadline; a client that stops reading its replies is
    /// hung up on rather than wedging a handler thread.
    pub write_timeout: Duration,
    /// The backoff hint advertised in overload rejections.
    pub retry_after_ms: u64,
    /// Protocol offenses (oversized or non-UTF-8 requests) tolerated
    /// before the connection is quarantined — hung up with a typed
    /// `err`, counted, journaled.
    pub strikes: u32,
    /// On shutdown, how long to let in-flight handlers finish writing
    /// their current reply before sockets are forced shut.
    pub drain: Duration,
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits {
            max_conns: 256,
            max_request_bytes: 64 * 1024,
            idle: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            retry_after_ms: 50,
            strikes: 3,
            drain: Duration::from_secs(2),
        }
    }
}

/// Connection-edge counters, shared by the accept loop and every handler
/// thread. `active` is a gauge; everything else is monotonic. The no-arg
/// `health` verb folds a [`ConnStats`] snapshot into its JSON.
#[derive(Debug, Default)]
pub struct ConnMetrics {
    accepted: AtomicU64,
    active: AtomicU64,
    shed: AtomicU64,
    quarantined: AtomicU64,
    idle_disconnects: AtomicU64,
    oversized: AtomicU64,
    malformed: AtomicU64,
    requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// A point-in-time copy of [`ConnMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Connections admitted past the cap check.
    pub accepted: u64,
    /// Handlers currently live.
    pub active: u64,
    /// Connections rejected by overload shedding.
    pub shed: u64,
    /// Connections hung up on after repeated protocol offenses.
    pub quarantined: u64,
    /// Connections dropped for idling past the deadline.
    pub idle_disconnects: u64,
    /// Requests discarded for exceeding the size cap.
    pub oversized: u64,
    /// Requests discarded as non-UTF-8.
    pub malformed: u64,
    /// Complete request lines received (well-formed or not).
    pub requests: u64,
    /// Bytes read from clients.
    pub bytes_in: u64,
    /// Bytes written to clients.
    pub bytes_out: u64,
}

impl ConnStats {
    /// The stats as one JSON object (a fragment of the daemon `health`
    /// document). Keys are the field names; values are unsigned.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"active\":{},\"shed\":{},\"quarantined\":{},\
             \"idle_disconnects\":{},\"oversized\":{},\"malformed\":{},\
             \"requests\":{},\"bytes_in\":{},\"bytes_out\":{}}}",
            self.accepted,
            self.active,
            self.shed,
            self.quarantined,
            self.idle_disconnects,
            self.oversized,
            self.malformed,
            self.requests,
            self.bytes_in,
            self.bytes_out
        )
    }
}

impl ConnMetrics {
    /// Snapshot every counter.
    pub fn snapshot(&self) -> ConnStats {
        ConnStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            idle_disconnects: self.idle_disconnects.load(Ordering::Relaxed),
            oversized: self.oversized.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }

    /// Book an admitted connection and raise the active gauge.
    pub fn note_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// Lower the active gauge (handler exit, any reason).
    pub fn note_closed(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// The live-connection gauge (the accept loop's cap check).
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Book a shed (overloaded) connection.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Book a quarantined connection.
    pub fn note_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Book an idle disconnect.
    pub fn note_idle_disconnect(&self) {
        self.idle_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Book an oversized request.
    pub fn note_oversized(&self) {
        self.oversized.fetch_add(1, Ordering::Relaxed);
    }

    /// Book a malformed (non-UTF-8) request.
    pub fn note_malformed(&self) {
        self.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Book a completed request line.
    pub fn note_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to the bytes-read counter.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Add to the bytes-written counter.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }
}

/// How much of an oversized line the reader will discard while hunting
/// for its terminating newline before declaring the client a flooder
/// (as a multiple of the request cap).
pub const DRAIN_BUDGET_MULT: usize = 8;

/// One attempt to read a request line from a bounded reader.
#[derive(Debug)]
pub enum LineOutcome {
    /// A complete line within the cap (terminator stripped, raw bytes —
    /// UTF-8 validation is the caller's protocol decision).
    Line(Vec<u8>),
    /// The line exceeded the cap; all `discarded` bytes of it were
    /// thrown away and the reader has resynchronized past its newline.
    Oversized {
        /// Bytes of the oversized line discarded (excluding the
        /// terminator).
        discarded: usize,
    },
    /// The line exceeded the drain budget without ever ending: the
    /// client is flooding and the connection should be quarantined.
    Flooded {
        /// Bytes discarded before giving up.
        discarded: usize,
    },
    /// The peer closed the connection (a partial unterminated line, if
    /// any, is discarded — a truncated request is not a request).
    Eof,
    /// No bytes arrived within the transport's read timeout; the caller
    /// decides between polling again and an idle disconnect.
    TimedOut,
    /// Transport failure.
    Err(std::io::Error),
}

/// A line reader with a hard per-line memory bound — the replacement for
/// `BufReader::lines()`, which buffers a never-terminated line forever
/// and lets one hostile client OOM the daemon.
///
/// The reader never holds more than `max + 4096` bytes: a line that
/// grows past `max` flips it into drain mode, where bytes are counted
/// and dropped until the newline (bounded resynchronization) or the
/// drain budget (flooding — hang up). Partial lines survive
/// [`LineOutcome::TimedOut`], so a slow sender accumulates across calls.
#[derive(Debug)]
pub struct BoundedLineReader<R> {
    inner: R,
    max: usize,
    pending: Vec<u8>,
    /// `Some(discarded)` while draining an oversized line.
    draining: Option<usize>,
    bytes_read: u64,
}

impl<R: Read> BoundedLineReader<R> {
    /// A reader capping lines at `max` bytes (terminator excluded).
    pub fn new(inner: R, max: usize) -> BoundedLineReader<R> {
        BoundedLineReader { inner, max, pending: Vec::new(), draining: None, bytes_read: 0 }
    }

    /// Total bytes consumed from the transport, accepted or discarded.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Read until one of the [`LineOutcome`]s.
    pub fn read_line(&mut self) -> LineOutcome {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(already) = self.draining {
                // Drain mode: hunt for the oversized line's newline,
                // dropping everything on the way.
                if let Some(i) = self.pending.iter().position(|&b| b == b'\n') {
                    self.draining = None;
                    let discarded = already + i;
                    self.pending.drain(..=i);
                    return LineOutcome::Oversized { discarded };
                }
                let discarded = already + self.pending.len();
                self.pending.clear();
                if discarded > self.max.saturating_mul(DRAIN_BUDGET_MULT) {
                    self.draining = None;
                    return LineOutcome::Flooded { discarded };
                }
                self.draining = Some(discarded);
            } else if let Some(i) = self.pending.iter().position(|&b| b == b'\n') {
                if i <= self.max {
                    let line = self.pending[..i].to_vec();
                    self.pending.drain(..=i);
                    return LineOutcome::Line(line);
                }
                let discarded = i;
                self.pending.drain(..=i);
                return LineOutcome::Oversized { discarded };
            } else if self.pending.len() > self.max {
                // Too long with no end in sight: stop buffering, start
                // counting.
                self.draining = Some(self.pending.len());
                self.pending.clear();
                continue;
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => return LineOutcome::Eof,
                Ok(n) => {
                    self.bytes_read += n as u64;
                    self.pending.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineOutcome::TimedOut
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return LineOutcome::Err(e),
            }
        }
    }
}

/// The idle reaper's schedule: sweep every `every`, but wake often
/// enough (≤ 100 ms) that shutdown is noticed promptly. Split from the
/// daemon so the "configured sweep intervals above 100 ms are honored"
/// contract is a unit test, not a timing-dependent soak.
#[derive(Debug)]
pub struct SweepTimer {
    every: Duration,
    last: Instant,
}

impl SweepTimer {
    /// A timer that first comes due `every` from now.
    pub fn new(every: Duration) -> SweepTimer {
        SweepTimer { every, last: Instant::now() }
    }

    /// How long the reaper should sleep between shutdown checks.
    pub fn poll_interval(&self) -> Duration {
        self.every.min(Duration::from_millis(100))
    }

    /// Whether a sweep is due at `now`; if so, the schedule advances.
    pub fn due(&mut self, now: Instant) -> bool {
        if now.saturating_duration_since(self.last) >= self.every {
            self.last = now;
            true
        } else {
            false
        }
    }
}

/// splitmix64 — the same tiny seeded generator the chaos memory layer
/// uses, so scenarios are reproducible from one `u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What one hostile connection did and saw — the harness asserts over
/// these in aggregate: every reply the server produced was well-formed,
/// and every ending was a reply or a clean hangup, never a wedge.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChaosOutcome {
    /// Newline-terminated requests this client sent (well- or
    /// ill-formed).
    pub requests_sent: u64,
    /// `ok …` replies received.
    pub replies_ok: u64,
    /// `err …` replies received.
    pub replies_err: u64,
    /// Reply lines that were neither — must stay zero.
    pub malformed_replies: u64,
    /// The server hung up (expected for quarantine/flood scenarios).
    pub hangups: u64,
}

/// A seeded misbehaving client — the TCP-side sibling of the nub's
/// `FaultyWire`. Each [`ChaosClient::run`] opens one connection and
/// replays a seed-determined scenario against it: drip-fed valid
/// requests, garbage bytes (invalid UTF-8, NULs, bare `\r` framing),
/// oversized lines, abrupt mid-line disconnects, or a slow-loris
/// unterminated drip. It never panics; everything it observed comes back
/// as a [`ChaosOutcome`].
#[derive(Debug)]
pub struct ChaosClient {
    addr: SocketAddr,
    rng: u64,
}

/// The scenario a seed maps to (exposed so tests can pin a behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// Valid requests written one byte at a time with micro-stalls.
    Drip,
    /// Random garbage lines: invalid UTF-8, NULs, bare `\r`.
    Garbage,
    /// Lines past the request cap (repeat offenses court quarantine).
    Oversize,
    /// Half a request, then an abrupt disconnect.
    Truncate,
    /// An unterminated line fed a few bytes at a time, forever (until
    /// the server gives up).
    SlowLoris,
}

impl ChaosScenario {
    /// All scenarios, in seed order.
    pub const ALL: [ChaosScenario; 5] = [
        ChaosScenario::Drip,
        ChaosScenario::Garbage,
        ChaosScenario::Oversize,
        ChaosScenario::Truncate,
        ChaosScenario::SlowLoris,
    ];
}

impl ChaosClient {
    /// A client that will attack `addr` with the scenario `seed` maps
    /// to.
    pub fn new(addr: SocketAddr, seed: u64) -> ChaosClient {
        ChaosClient { addr, rng: seed.max(1) }
    }

    /// The scenario this client's seed selects.
    pub fn scenario(&self) -> ChaosScenario {
        ChaosScenario::ALL[(self.rng as usize) % ChaosScenario::ALL.len()]
    }

    fn next(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    /// Open one connection and run the scenario to completion. Socket
    /// errors are expected outcomes (the server is allowed — sometimes
    /// required — to hang up on us) and are folded into the outcome.
    pub fn run(&mut self, request_cap: usize) -> ChaosOutcome {
        let scenario = self.scenario();
        let mut out = ChaosOutcome::default();
        let Ok(stream) = TcpStream::connect(self.addr) else {
            out.hangups += 1;
            return out;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_nodelay(true);
        let mut reader = match stream.try_clone() {
            Ok(s) => BoundedLineReader::new(s, 1 << 20),
            Err(_) => {
                out.hangups += 1;
                return out;
            }
        };
        let mut writer = stream;
        match scenario {
            ChaosScenario::Drip => {
                for _ in 0..2 + self.next() % 3 {
                    if !self.drip(&mut writer, b"ping\n", &mut out) {
                        return out;
                    }
                    out.requests_sent += 1;
                    self.read_reply(&mut reader, &mut out);
                }
            }
            ChaosScenario::Garbage => {
                for _ in 0..2 + self.next() % 4 {
                    let mut line: Vec<u8> = (0..1 + self.next() % 64)
                        .map(|_| {
                            // Anything but the terminator: invalid UTF-8
                            // continuation bytes, NULs, bare CRs.
                            let b = (self.next() % 256) as u8;
                            if b == b'\n' {
                                0xff
                            } else {
                                b
                            }
                        })
                        .collect();
                    line.push(b'\n');
                    if writer.write_all(&line).is_err() {
                        out.hangups += 1;
                        return out;
                    }
                    out.requests_sent += 1;
                    if !self.read_reply(&mut reader, &mut out) {
                        return out;
                    }
                }
            }
            ChaosScenario::Oversize => {
                // Keep offending until the server quarantines us.
                for _ in 0..8 {
                    let mut line = vec![b'x'; request_cap + 64];
                    line.push(b'\n');
                    if writer.write_all(&line).is_err() {
                        out.hangups += 1;
                        return out;
                    }
                    out.requests_sent += 1;
                    if !self.read_reply(&mut reader, &mut out) {
                        return out;
                    }
                }
            }
            ChaosScenario::Truncate => {
                let cut = 1 + (self.next() as usize) % 4;
                let _ = writer.write_all(&b"open mips"[..cut.min(9)]);
                let _ = writer.shutdown(std::net::Shutdown::Both);
                out.hangups += 1;
            }
            ChaosScenario::SlowLoris => {
                // An unterminated line, a few bytes at a time, until the
                // server stops accepting them. Bounded by the drain
                // budget: the server must flood-quarantine us long
                // before this loop ends on its own.
                let chunk = vec![b'z'; 256.max(request_cap / 8)];
                for _ in 0..DRAIN_BUDGET_MULT * 16 {
                    if writer.write_all(&chunk).is_err() {
                        out.hangups += 1;
                        return out;
                    }
                    std::thread::sleep(Duration::from_millis(1 + self.next() % 3));
                }
                // Server never hung up: finish the line and see what it
                // says.
                let _ = writer.write_all(b"\n");
                out.requests_sent += 1;
                self.read_reply(&mut reader, &mut out);
            }
        }
        out
    }

    /// Write `bytes` one byte at a time with seed-sized stalls; `false`
    /// means the server hung up mid-write.
    fn drip(&mut self, writer: &mut TcpStream, bytes: &[u8], out: &mut ChaosOutcome) -> bool {
        for &b in bytes {
            if writer.write_all(&[b]).is_err() {
                out.hangups += 1;
                return false;
            }
            if self.next().is_multiple_of(4) {
                std::thread::sleep(Duration::from_millis(self.next() % 3));
            }
        }
        true
    }

    /// Read one reply line and classify it; `false` means hangup (or
    /// nothing arrived before the timeout, which the caller treats the
    /// same — stop talking).
    fn read_reply<R: Read>(&mut self, reader: &mut BoundedLineReader<R>, out: &mut ChaosOutcome) -> bool {
        match reader.read_line() {
            LineOutcome::Line(bytes) => {
                let line = String::from_utf8_lossy(&bytes);
                if line.starts_with("ok ") || line == "ok" {
                    out.replies_ok += 1;
                } else if line.starts_with("err ") {
                    out.replies_err += 1;
                } else {
                    out.malformed_replies += 1;
                }
                true
            }
            LineOutcome::Eof | LineOutcome::Err(_) => {
                out.hangups += 1;
                false
            }
            LineOutcome::TimedOut => false,
            LineOutcome::Oversized { .. } | LineOutcome::Flooded { .. } => {
                out.malformed_replies += 1;
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_reader_reads_ordinary_lines() {
        let mut r = BoundedLineReader::new(Cursor::new(b"ping\nhealth 1\n".to_vec()), 64);
        assert!(matches!(r.read_line(), LineOutcome::Line(l) if l == b"ping"));
        assert!(matches!(r.read_line(), LineOutcome::Line(l) if l == b"health 1"));
        assert!(matches!(r.read_line(), LineOutcome::Eof));
        assert_eq!(r.bytes_read(), 14);
    }

    #[test]
    fn a_line_of_exactly_the_cap_is_allowed() {
        let mut data = vec![b'a'; 8];
        data.push(b'\n');
        let mut r = BoundedLineReader::new(Cursor::new(data), 8);
        assert!(matches!(r.read_line(), LineOutcome::Line(l) if l.len() == 8));
    }

    #[test]
    fn oversized_lines_are_discarded_and_the_reader_resyncs() {
        let mut data = vec![b'a'; 100];
        data.extend_from_slice(b"\nping\n");
        let mut r = BoundedLineReader::new(Cursor::new(data), 8);
        match r.read_line() {
            LineOutcome::Oversized { discarded } => assert_eq!(discarded, 100),
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The oversized line did not poison the stream: the next request
        // parses.
        assert!(matches!(r.read_line(), LineOutcome::Line(l) if l == b"ping"));
    }

    #[test]
    fn memory_stays_bounded_while_draining() {
        // A 1 MiB line against an 8-byte cap: the reader must never
        // buffer it (pending is cleared each drain step), and the drain
        // budget (8 × cap) gives up long before the newline.
        let data = vec![b'a'; 1 << 20];
        let mut r = BoundedLineReader::new(Cursor::new(data), 8);
        match r.read_line() {
            LineOutcome::Flooded { discarded } => assert!(discarded > 8 * DRAIN_BUDGET_MULT),
            other => panic!("expected Flooded, got {other:?}"),
        }
        assert!(r.pending.capacity() <= 8192, "drain mode buffered the flood");
    }

    #[test]
    fn eof_mid_line_discards_the_partial_request() {
        let mut r = BoundedLineReader::new(Cursor::new(b"open mi".to_vec()), 64);
        assert!(matches!(r.read_line(), LineOutcome::Eof));
    }

    #[test]
    fn sweep_timer_honors_intervals_above_the_poll_rate() {
        let every = Duration::from_millis(500);
        let mut t = SweepTimer::new(every);
        let start = t.last;
        // Polling every 100 ms: not due until the full interval elapsed.
        assert_eq!(t.poll_interval(), Duration::from_millis(100));
        assert!(!t.due(start + Duration::from_millis(100)));
        assert!(!t.due(start + Duration::from_millis(499)));
        assert!(t.due(start + Duration::from_millis(500)));
        // The schedule advanced: the next sweep is a full interval out.
        assert!(!t.due(start + Duration::from_millis(700)));
        assert!(t.due(start + Duration::from_millis(1000)));
    }

    #[test]
    fn sweep_timer_short_intervals_poll_at_the_interval() {
        let t = SweepTimer::new(Duration::from_millis(20));
        assert_eq!(t.poll_interval(), Duration::from_millis(20));
    }

    #[test]
    fn chaos_seeds_cover_every_scenario() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut seen = [false; ChaosScenario::ALL.len()];
        for seed in 1..=32u64 {
            let c = ChaosClient::new(addr, seed);
            let i = ChaosScenario::ALL.iter().position(|&s| s == c.scenario()).unwrap();
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "seeds 1..=32 miss a scenario: {seen:?}");
    }

    #[test]
    fn conn_stats_json_shape() {
        let m = ConnMetrics::default();
        m.note_accepted();
        m.note_request();
        m.add_bytes_in(5);
        m.add_bytes_out(7);
        m.note_closed();
        let j = m.snapshot().to_json();
        assert!(j.contains("\"accepted\":1"), "{j}");
        assert!(j.contains("\"active\":0"), "{j}");
        assert!(j.contains("\"bytes_in\":5"), "{j}");
        assert!(j.contains("\"bytes_out\":7"), "{j}");
    }
}
