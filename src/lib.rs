//! Umbrella crate for the ldb reproduction: re-exports every subsystem so the
//! examples and integration tests can reach the whole stack through one name.
pub mod daemon;
pub mod net;

pub use ldb_cc as cc;
pub use ldb_compress as compress;
pub use ldb_core as core;
pub use ldb_exprserver as exprserver;
pub use ldb_fleet as fleet;
pub use ldb_machine as machine;
pub use ldb_nub as nub;
pub use ldb_postscript as postscript;
pub use ldb_stabs as stabs;
pub use ldb_trace as trace;
