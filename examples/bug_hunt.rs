//! A realistic debugging hunt, scripted: a program computes checksums
//! into a table, but one slot comes out wrong. The session narrows it
//! down with the features a working debugger needs — a watchpoint to
//! catch the corrupting store, a conditional breakpoint to stop on the
//! culprit iteration only, `finish` to read a return value, and a
//! debugger-initiated call to probe the helper with chosen inputs.
//!
//! Run with `cargo run --example bug_hunt`.

use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_core::{Ldb, StopEvent};
use ldb_machine::Arch;

// The bug: the "normalize" helper clamps to 99 with `>` instead of
// `>=`, so a checksum of exactly 100 sneaks through un-clamped and the
// table's invariant (every entry < 100) breaks for one input.
const SRC: &str = r#"
int table[8];
int bad_writes;

int normalize(int v) {
    if (v > 100) return 99;
    return v;
}

int checksum(int seed) {
    return seed + seed / 2;
}

int main(void) {
    int k;
    for (k = 0; k < 8; k++) {
        table[k] = normalize(checksum(17 + k * 25));
        if (table[k] > 99) bad_writes++;
    }
    printf("%d\n", bad_writes);
    return 0;
}
"#;

fn main() {
    let arch = Arch::Mips;
    let c = compile("chk.c", SRC, arch, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    println!("-- the report: one table entry breaks the `< 100` invariant\n");

    // Step 1: watch the failure counter; the watchpoint names the exact
    // iteration without knowing where the bad store happens.
    ldb.break_at("main", 1).unwrap();
    ldb.cont().unwrap();
    ldb.watch_var("bad_writes").unwrap();
    let (culprit, at_line) = match ldb.cont_watch().unwrap() {
        StopEvent::Watchpoint { name, old, new, func, line, .. } => {
            println!("watchpoint: {name} changed {old} -> {new} in {func} at line {line}");
            (ldb.eval("k").unwrap(), line)
        }
        other => panic!("{other:?}"),
    };
    println!("culprit iteration: k = {culprit} (line {at_line})");
    let bad_value = ldb.eval(&format!("table[{culprit}]")).unwrap();
    println!("table[{culprit}] = {bad_value}  <- escaped the clamp\n");
    ldb.clear_watch("bad_writes").unwrap();

    // Step 2: probe the helper directly with debugger-initiated calls —
    // no recompiling, no test harness.
    println!("-- probing normalize() from the debugger:");
    for v in [99, 100, 101] {
        let r = ldb.call_function("normalize", &[v]).unwrap();
        let verdict = if r <= 99 { "ok" } else { "BUG" };
        println!("   normalize({v}) = {r}   {verdict}");
    }
    println!("   -> the boundary case: normalize(100) returns 100 (`>` should be `>=`)\n");

    // Step 3: confirm where 100 comes from — a conditional breakpoint on
    // the checksum return for the culprit seed, then `finish` to read
    // the value it hands back.
    let mut ldb = fresh(arch);
    let addr = ldb.break_at("checksum", 0).unwrap();
    let seed = 17 + culprit.parse::<i64>().unwrap() * 25;
    ldb.set_break_condition(addr, Some(format!("seed == {seed}"))).unwrap();
    ldb.cont_watch().unwrap();
    let (_, rv) = ldb.finish().unwrap();
    println!("-- checksum({seed}) returns {:?}: exactly the unclamped 100", rv.unwrap());
    println!("\nfix: `if (v >= 100) return 99;`");

    fn fresh(arch: Arch) -> Ldb {
        let c = compile("chk.c", SRC, arch, CompileOpts::default()).unwrap();
        let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
        let loader = nm::loader_table_for(&c.linked.image, &symtab);
        let mut ldb = Ldb::new();
        ldb.spawn_program(&c.linked.image, &loader).unwrap();
        ldb
    }
}
