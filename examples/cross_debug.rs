//! Cross-architecture debugging: one ldb session driving four targets on
//! four different architectures (and both MIPS byte orders) at once.
//!
//! "ldb's machine-dependent code depends only on which architecture the
//! target program and its nub run on, not on which architecture ldb runs
//! on. As a result, cross-architecture debugging with ldb is identical to
//! single-architecture debugging, and ldb can change architectures
//! dynamically."
//!
//! Run with: `cargo run --example cross_debug`

use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_core::Ldb;
use ldb_machine::{Arch, ByteOrder};

const SRC: &str = r#"
int counter;
int bump(int by) { counter += by; return counter; }
int main(void) {
    int k;
    for (k = 1; k <= 5; k++) bump(k);
    printf("%d\n", counter);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ldb = Ldb::new();
    let mut ids = Vec::new();
    let setups: Vec<(Arch, Option<ByteOrder>, &str)> = vec![
        (Arch::Mips, Some(ByteOrder::Big), "big-endian MIPS"),
        (Arch::Mips, Some(ByteOrder::Little), "little-endian MIPS"),
        (Arch::M68k, None, "68020"),
        (Arch::Sparc, None, "SPARC"),
        (Arch::Vax, None, "VAX"),
    ];
    for (arch, order, label) in &setups {
        let c = compile(
            "bump.c",
            SRC,
            *arch,
            CompileOpts { order: *order, ..Default::default() },
        )?;
        let symtab = pssym::emit(&c.unit, &c.funcs, *arch, pssym::PsMode::Deferred);
        let loader = nm::loader_table_for(&c.linked.image, &symtab);
        let id = ldb.spawn_program(&c.linked.image, &loader)?;
        ids.push((id, *label));
        println!("target {id}: {label} attached");
    }

    // Break in bump() on every target and advance each a different number
    // of times — all through identical machine-independent code paths.
    for (hits, (id, label)) in ids.iter().enumerate() {
        ldb.select_target(*id)?;
        ldb.break_at("bump", 1)?; // the `counter += by` statement
        for _ in 0..=hits {
            ldb.cont()?;
        }
        println!(
            "{label}: stopped in bump, by = {}, counter = {}",
            ldb.print_var("by")?,
            ldb.print_var("counter")?
        );
    }

    // Hop between stopped targets, reading state; the dictionary stack
    // rebinds the machine-dependent PostScript on each switch.
    for (id, label) in ids.iter().rev() {
        ldb.select_target(*id)?;
        ldb.interp.run_str("&nregs")?;
        let nregs = ldb.interp.pop()?.as_int()?;
        println!("{label}: &nregs = {nregs}, counter = {}", ldb.print_var("counter")?);
    }
    println!("one debugger, five targets, four architectures, two byte orders.");
    Ok(())
}
