//! Quickstart: the full ldb pipeline on the paper's Figure 1 program.
//!
//! Compiles `fib.c` with `-g` for the MIPS, spawns it under a debug nub,
//! plants a breakpoint at a stopping point, prints variables through the
//! abstract-memory DAG and the PostScript printer procedures, walks the
//! stack, and runs to completion.
//!
//! Run with: `cargo run --example quickstart`

use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_core::{Ldb, StopEvent};
use ldb_machine::Arch;

const FIB_C: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
int main(void) { fib(10); return 0; }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile with -g: stopping-point no-ops, PostScript symbol table.
    let arch = Arch::Mips;
    let c = compile("fib.c", FIB_C, arch, CompileOpts::default())?;
    println!(
        "compiled fib.c for {arch}: {} instructions ({} stopping-point no-ops)",
        c.linked.stats.insn_count, c.linked.stats.nop_count
    );

    // 2. The compiler driver runs `nm` over the linked image and wraps the
    //    PostScript symbol table into a loader table.
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    println!("symbol table: {} bytes of PostScript", symtab.len());

    // 3. Start the program under a nub and attach.
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader)?;
    println!("attached; target paused before main");

    // 4. Breakpoint at stopping point 7 of fib (the i++ of Figure 1).
    let addr = ldb.break_at("fib", 7)?;
    println!("breakpoint planted at {addr:#x} (overwrote the no-op with `break`)");

    // 5. Run to the breakpoint and look around.
    while let StopEvent::Breakpoint { func, line, .. } = ldb.cont()? {
        println!("stopped in {func} at line {line}:");
        println!("  i = {}", ldb.print_var("i")?);
        println!("  n = {}", ldb.print_var("n")?);
        println!("  a = {}", ldb.print_var("a")?);
        print!("  backtrace:");
        for (lvl, name, pc, _) in ldb.backtrace().0 {
            print!("  #{lvl} {name} (pc={pc:#x})");
        }
        println!();
        // One visit is enough for the demo: remove the breakpoint.
        ldb.clear_breakpoint(addr)?;
    }

    // 6. The program ran to completion; fetch its output from the nub.
    let handle = ldb.take_nub_handle(0).expect("spawned");
    let machine = handle.join.join().expect("nub thread");
    println!("target exited; program output: {}", machine.output.trim_end());
    Ok(())
}
