//! Regenerate the paper's figures from live data structures:
//!
//! * **Figure 1** — the example program annotated with its stopping points,
//! * **Figure 2** — the tree structure of fib's symbol table (uplinks),
//! * **Figure 4** — the abstract-memory DAG for a frame, with a fetch of
//!   `i` traced through it (the paper's worked example).
//!
//! Run with: `cargo run --example figures`

use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::ir::{SymKindIr, WhereIr};
use ldb_cc::{nm, pssym};
use ldb_core::Ldb;
use ldb_machine::Arch;

const FIB_C: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
int main(void) { fib(10); return 0; }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Arch::Mips;
    let c = compile("fib.c", FIB_C, arch, CompileOpts::default())?;

    // ---- Figure 1: stopping points as superscripts ----
    println!("Figure 1: fib.c with stopping points (superscripts in the paper)");
    let fib = &c.unit.funcs[0];
    for (lineno, line) in FIB_C.lines().enumerate() {
        let lineno = lineno as u32 + 1;
        let mut marks: Vec<(u32, u32)> = fib
            .stops
            .iter()
            .filter(|s| s.line == lineno)
            .map(|s| (s.col, s.index))
            .collect();
        marks.sort();
        let mut out = String::new();
        let mut next = marks.into_iter().peekable();
        for (col, ch) in line.chars().enumerate() {
            while next.peek().map(|(c, _)| *c as usize == col + 1).unwrap_or(false) {
                let (_, idx) = next.next().unwrap();
                out.push_str(&format!("^{idx}"));
            }
            out.push(ch);
        }
        for (_, idx) in next {
            out.push_str(&format!("^{idx}"));
        }
        println!("  {lineno:>2}  {out}");
    }

    // ---- Figure 2: the uplink tree ----
    println!();
    println!("Figure 2: the tree structure of fib's symbol table (child -> uplink)");
    for (i, s) in c.unit.syms.iter().enumerate() {
        if s.name.starts_with("$t") || s.kind == SymKindIr::Procedure && s.name == "main" {
            continue;
        }
        let up = match s.uplink {
            Some(u) => format!("-> {}", c.unit.syms[u].name),
            None => "(root)".to_string(),
        };
        let whe = match &s.where_ {
            WhereIr::Reg(r) => format!("register {r}"),
            WhereIr::Frame(off) => format!("frame offset {off}"),
            WhereIr::Anchor(k) => format!("anchor slot {k} (lazy)"),
            WhereIr::None => "code".to_string(),
        };
        println!("  S{i:<3} {:<6} {:<10} {up:<10} [{whe}]", s.name, format!("{:?}", s.kind));
    }

    // ---- Figure 4: the abstract-memory DAG, with a live fetch ----
    println!();
    println!("Figure 4: abstract memory for a frame");
    println!(
        r#"
      frame memory (joined)
        |-- r, f, x ----> register memory ----> alias memory --+--> wire --> nub
        |-- l (locals) -----------------------> alias memory --+
        `-- c, d (code and data) ------------------------------+
"#
    );
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader)?;
    ldb.break_at("fib", 7)?;
    ldb.cont()?;
    let (frame, ctx, layout) = {
        let t = ldb.target(0);
        (std::rc::Rc::clone(&t.frames[0]), t.stop.unwrap().context, t.data.ctx)
    };
    println!("  the paper's worked example — printing i (register 30):");
    println!("    joined memory routes space r to the register memory;");
    println!("    the register memory widens the fetch to the full word;");
    println!(
        "    the alias memory maps (r, 30) to data address {:#x} (context {ctx:#x} + {});",
        ctx + layout.reg(30),
        layout.reg(30)
    );
    println!("    the wire asks the nub, which reads target memory in its own byte order");
    println!("    and ships the value back little-endian.");
    let i_through_dag = frame.mem.fetch('r', 30, 4)?;
    println!("  fetched through the DAG: i = {i_through_dag}");
    println!("  printed via the PostScript printer: i = {}", ldb.print_var("i")?);
    println!("  the extra registers: pc = x0 = {:#x}, vfp = x1 = {:#x}",
        frame.mem.fetch('x', 0, 4)?, frame.mem.fetch('x', 1, 4)?);
    Ok(())
}
