//! Expression evaluation through the expression server, tracing the
//! communication paths of the paper's Figure 3:
//!
//! ```text
//!   ldb  --- expression text --->  expression server
//!   ldb  <-- /a ExpressionServer.lookup --  server      (unknown symbol)
//!   ldb  --- symbol information --->        server
//!   ldb  <-- PostScript procedure + ExpressionServer.result -- server
//! ```
//!
//! Run with: `cargo run --example expr_eval`

use std::io::Read;

use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_core::Ldb;
use ldb_machine::Arch;

const SRC: &str = r#"
double scale;
int total;
int weigh(int grams) {
    int adjusted;
    adjusted = grams + total;
    return adjusted;
}
int main(void) {
    int k;
    scale = 2.5;
    total = 0;
    for (k = 1; k < 50; k++) total = weigh(k);
    printf("%d\n", total);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: watch the raw protocol by playing the debugger by hand.
    println!("--- the Figure 3 message flow, verbatim ---");
    let mut server = ldb_exprserver::spawn();
    server
        .to_server
        .send(ldb_exprserver::ToServer::Expr("grams + total * 2".into()))?;
    let mut text = String::new();
    let answers =
        [("grams", "var E1 int %s"), ("total", "var E2 int %s")];
    loop {
        let mut chunk = [0u8; 256];
        let n = server.reply_pipe.read(&mut chunk)?;
        text.push_str(std::str::from_utf8(&chunk[..n])?);
        while let Some(idx) = text.find("ExpressionServer.lookup") {
            let line = text[..idx].trim().to_string();
            println!("server -> ldb : {line} ExpressionServer.lookup");
            let name = line.rsplit('/').next().unwrap().trim();
            let reply = answers.iter().find(|(n, _)| *n == name).map(|(_, r)| *r).unwrap();
            println!("ldb -> server : {reply}");
            server.to_server.send(ldb_exprserver::ToServer::Symbol(reply.into()))?;
            text = text[idx + "ExpressionServer.lookup".len()..].to_string();
        }
        if text.contains("ExpressionServer.result") {
            println!("server -> ldb : {}", text.trim());
            break;
        }
    }
    server.to_server.send(ldb_exprserver::ToServer::Shutdown)?;

    // Part 2: the same machinery end to end against a live target.
    println!();
    println!("--- live evaluation against a stopped target (68020) ---");
    let arch = Arch::M68k;
    let c = compile("weigh.c", SRC, arch, CompileOpts::default())?;
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader)?;
    ldb.break_at("weigh", 2)?; // the return statement
    ldb.cont()?;
    ldb.cont()?;
    ldb.cont()?;

    for expr in [
        "grams",
        "adjusted",
        "total + grams",
        "adjusted * 2 - 1",
        "scale",
        "scale * 4.0",
        "adjusted == grams + total",
        "total = 1000", // assignment writes through to the target
        "total",
    ] {
        match ldb.eval(expr) {
            Ok(v) => println!("  (ldb) print {expr:<28} => {v}"),
            Err(e) => println!("  (ldb) print {expr:<28} !! {e}"),
        }
    }
    // The assignment redirected the program's arithmetic.
    let bp = ldb.stop_address("weigh", 2)?;
    ldb.clear_breakpoint(bp)?;
    ldb.cont()?;
    let out = ldb
        .take_nub_handle(0)
        .map(|h| h.join.join().expect("nub").output)
        .unwrap_or_default();
    println!("program output (total was patched mid-run): {}", out.trim_end());
    Ok(())
}
