//! Post-mortem debugging of a faulting process — and surviving a debugger
//! crash.
//!
//! "Since the nub is always loaded with the target program, it can catch
//! unexpected faults and wait for a connection from ldb; the target
//! program need not be a child of the debugger." And: "even by a debugger
//! crash, the nub preserves the state of the target program and waits for
//! a new connection from another instance of ldb."
//!
//! Run with: `cargo run --example postmortem`

use ldb_cc::driver::{compile, CompileOpts};
use ldb_cc::{nm, pssym};
use ldb_core::{Ldb, StopEvent};
use ldb_machine::Arch;
use ldb_nub::NubConfig;

const SRC: &str = r#"
int values[8];
int pick(int *table, int idx) { return table[idx]; }
int broken(int k) {
    int *p;
    p = 0;
    if (k > 3) p = values;
    return pick(p, k);
}
int main(void) {
    int i;
    for (i = 0; i < 8; i++) values[i] = i * i;
    return broken(2);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Arch::Sparc;
    let c = compile("broken.c", SRC, arch, CompileOpts::default())?;
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);

    // The program starts on its own — no debugger anywhere near it.
    let nub = ldb_nub::spawn(&c.linked.image, NubConfig::default());
    std::thread::sleep(std::time::Duration::from_millis(50));
    println!("program started without a debugger... and has now crashed.");

    // A debugger connects to the faulted process (the "network" path).
    let mut ldb = Ldb::new();
    let wire = nub.connect_channel().unwrap();
    ldb.attach(Box::new(wire), &loader, None)?;
    let t = ldb.target(0);
    let stop = t.stop.expect("stopped at the fault");
    println!("attached: signal {:?}, faulting address {:#x}", stop.sig, stop.code);

    print!("backtrace:");
    for (lvl, name, pc, _) in ldb.backtrace().0 {
        print!("  #{lvl} {name} (pc={pc:#x})");
    }
    println!();
    println!("in pick: idx = {}", ldb.print_var("idx")?);
    println!("in pick: table = {}", ldb.print_var("table")?);
    ldb.select_frame(1)?;
    println!("in broken (frame 1): k = {}", ldb.print_var("k")?);

    // Simulate a debugger crash: drop the session without detaching.
    drop(ldb);
    std::thread::sleep(std::time::Duration::from_millis(30));
    println!("debugger crashed! the nub preserves the target's state...");

    // A second ldb picks the target up where the first left it.
    let mut ldb2 = Ldb::new();
    let wire = nub.connect_channel().unwrap();
    ldb2.attach(Box::new(wire), &loader, None)?;
    println!("new debugger attached; k is still {}", {
        ldb2.select_frame(1)?;
        ldb2.print_var("k")?
    });

    // Repair the damage from the new debugger: steer the pointer to the
    // real table, rewind the pc to the statement's stopping point so the
    // faulting statement re-executes from scratch, and let the program
    // finish.
    ldb2.select_frame(0)?;
    println!("patching `table` to &values[0] and re-running the statement...");
    let values_addr = c.linked.data_addrs["_values"];
    ldb2.eval(&format!("table = (int *){values_addr}"))?;
    let retry = ldb2.stop_address("pick", 1)?; // the `return table[idx]`
    ldb2.set_pc(retry)?;
    match ldb2.cont()? {
        StopEvent::Exited(code) => println!("program resumed and exited with {code} (= 2*2)"),
        other => println!("unexpected: {other:?}"),
    }
    Ok(())
}
