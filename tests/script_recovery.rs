//! Mid-script panic recovery: a command that panics inside the
//! interpreter must be quarantined — the script keeps running, the
//! transcript carries a typed error line, the health report books the
//! quarantine, and the flight recorder journals the panic.

use std::time::Duration;

use ldb_suite::cc::driver::{compile_many, program_load_plan, CompileOpts};
use ldb_suite::cc::pssym::PsMode;
use ldb_suite::core::{script, Ldb, ModuleTable};
use ldb_suite::machine::Arch;
use ldb_suite::nub::{spawn, ClientConfig, NubConfig};
use ldb_suite::trace::{Trace, TraceConfig};

const SRC: &str = r#"
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 10; i++) s += clamp(i * 30);
    printf("%d\n", s);
    return 0;
}
"#;

fn quiet_client() -> ClientConfig {
    ClientConfig {
        reply_timeout: Duration::from_secs(2),
        retries: 4,
        backoff: Duration::from_millis(1),
        event_poll: Duration::from_millis(300),
        jitter_seed: 0,
    }
}

/// Build an attached session for `arch`, with an optional shared trace.
fn attached_session(arch: Arch, trace: Option<Trace>) -> Ldb {
    let p = compile_many(&[("rec.c", SRC)], arch, CompileOpts::default())
        .unwrap_or_else(|e| panic!("{arch:?}: compile: {e}"));
    let (frame_ps, modules) = program_load_plan(&p, PsMode::Deferred);
    let modules: Vec<ModuleTable> =
        modules.into_iter().map(|(n, ps)| ModuleTable { name: n, ps }).collect();
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let mut ldb = Ldb::new();
    if let Some(t) = trace {
        ldb.set_trace(t);
    }
    ldb.attach_plan_with_config(Box::new(wire), &frame_ps, &modules, Some(handle), quiet_client())
        .unwrap_or_else(|e| panic!("{arch:?}: attach: {e}"));
    ldb
}

/// Silence the panic hook's backtrace spray for the deliberate `__panic`
/// drills below, while leaving real test failures fully reported.
fn hush_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("drill") && msg != "first" && msg != "second" {
                prev(info);
            }
        }));
    });
}

#[test]
fn panic_mid_script_is_quarantined_and_script_continues() {
    hush_panics();
    let mut ldb = attached_session(Arch::Mips, None);
    let transcript =
        script::run_script(&mut ldb, "b clamp\nc\n__panic recovery drill\np calls\nbt\nc\n");

    // The panicking command produced a typed error line, not a crash.
    assert!(
        transcript.contains("error: command quarantined (internal panic: recovery drill)"),
        "missing quarantine line:\n{transcript}"
    );
    // Commands *after* the panic still ran and produced real output.
    assert!(transcript.contains("calls = 0"), "post-panic `p calls` lost:\n{transcript}");
    assert!(transcript.contains("#0 clamp"), "post-panic `bt` lost:\n{transcript}");
    // The health ledger booked exactly the one quarantine.
    assert_eq!(ldb.health().quarantined_commands, 1, "\n{transcript}");
    // The outcome classifier sees the quarantine (wire stayed up).
    let outcome = script::BatchOutcome::classify(&ldb, &transcript);
    assert_eq!(outcome, script::BatchOutcome::PanicQuarantined);
    assert_eq!(outcome.exit_code(), 4);
}

#[test]
fn repeated_panics_each_quarantine_independently() {
    hush_panics();
    let mut ldb = attached_session(Arch::Sparc, None);
    let transcript = script::run_script(
        &mut ldb,
        "b clamp\nc\n__panic first\np calls\n__panic second\np calls\nc\n",
    );
    assert!(transcript.contains("internal panic: first"), "{transcript}");
    assert!(transcript.contains("internal panic: second"), "{transcript}");
    assert_eq!(ldb.health().quarantined_commands, 2, "\n{transcript}");
    // Both `p calls` commands (after each panic) still answered.
    assert_eq!(transcript.matches("calls = 0").count(), 2, "{transcript}");
}

#[test]
fn panic_recovery_is_journaled() {
    hush_panics();
    let (trace, buf) = Trace::to_shared_buffer(TraceConfig::default());
    let mut ldb = attached_session(Arch::Vax, Some(trace.clone()));
    let script_text = "b clamp\nc\n__panic journal drill\np calls\nc\n";
    let transcript = script::run_script(&mut ldb, script_text);
    assert_eq!(ldb.health().quarantined_commands, 1, "\n{transcript}");
    drop(ldb);
    trace.flush();

    let journal = String::from_utf8(buf.contents()).expect("journal is UTF-8");
    let mut cmd_records = 0u64;
    let mut panic_records = 0u64;
    for line in journal.lines() {
        let rec = ldb_suite::trace::validate(line)
            .unwrap_or_else(|e| panic!("invalid journal line: {e}\n{line}"));
        if rec.layer == ldb_suite::trace::Layer::Dbg && rec.kind == "cmd" {
            cmd_records += 1;
        }
        if rec.layer == ldb_suite::trace::Layer::Dbg && rec.kind == "panic" {
            panic_records += 1;
        }
    }
    // One `cmd` record per scripted command, one `panic` record for the
    // quarantined one: the journal cross-checks the transcript.
    assert_eq!(cmd_records, script::command_count(script_text), "\n{journal}");
    assert_eq!(panic_records, 1, "\n{journal}");
}
