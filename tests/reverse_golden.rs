//! Pinned transcripts for a scripted time-travel session on every
//! architecture (MIPS in both byte orders). The session runs with
//! periodic checkpoints enabled, travels backward three ways
//! (`reverse-step`, `reverse-next`, `reverse-continue`), interleaves
//! forward motion, and reads back the checkpoint table and health
//! counters. Two runs must produce byte-identical transcripts, and both
//! must match the golden copy under `tests/golden/` — re-record with
//! `REVERSE_BLESS=1 cargo test --test reverse_golden` when a change is
//! intended.

use std::time::Duration;

use ldb_suite::cc::driver::{compile_many, program_load_plan, CompileOpts};
use ldb_suite::cc::pssym::PsMode;
use ldb_suite::core::{script, Ldb, ModuleTable};
use ldb_suite::machine::{Arch, ByteOrder};
use ldb_suite::nub::{spawn, ClientConfig, NubConfig};

const SRC: &str = r#"
char msg[16] = "hi there";
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 10; i++) s += clamp(i * 30);
    printf("%d %d\n", s, calls);
    return 0;
}
"#;

/// The canonical time-travel session: run to a breakpoint, pin a
/// checkpoint, move forward by instruction and by line, rewind each way,
/// prove the rewound state by re-printing target data, and read the
/// recorder's own accounting.
const SCRIPT: &str = "\
# canonical time-travel session
b clamp
c
checkpoint
p calls
s
s
rs
p calls
n
rn
p calls
c
c
rc
p calls
c
info checkpoints
info health
";

const CONFIGS: &[(&str, Arch, Option<ByteOrder>)] = &[
    ("mips-big", Arch::Mips, Some(ByteOrder::Big)),
    ("mips-little", Arch::Mips, Some(ByteOrder::Little)),
    ("sparc", Arch::Sparc, None),
    ("m68k", Arch::M68k, None),
    ("vax", Arch::Vax, None),
];

fn quiet_client() -> ClientConfig {
    ClientConfig {
        reply_timeout: Duration::from_secs(2),
        retries: 4,
        backoff: Duration::from_millis(1),
        event_poll: Duration::from_millis(300),
        jitter_seed: 0,
    }
}

fn run_session(name: &str, arch: Arch, order: Option<ByteOrder>) -> String {
    let p = compile_many(&[("rev.c", SRC)], arch, CompileOpts { order, ..Default::default() })
        .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    let (frame_ps, modules) = program_load_plan(&p, PsMode::Deferred);
    let modules: Vec<ModuleTable> =
        modules.into_iter().map(|(n, ps)| ModuleTable { name: n, ps }).collect();
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let mut ldb = Ldb::new();
    // Periodic checkpoints on the continue path, dense enough that every
    // reverse command in the script has a nearby anchor.
    ldb.set_checkpoint_every(Some(64));
    ldb.attach_plan_with_config(Box::new(wire), &frame_ps, &modules, Some(handle), quiet_client())
        .unwrap_or_else(|e| panic!("{name}: attach: {e}"));
    script::run_script(&mut ldb, SCRIPT)
}

fn golden_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(file)
}

fn check_golden(name: &str, file: &str, got: &str) {
    let path = golden_path(file);
    if std::env::var_os("REVERSE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{name}: no golden at {}: {e} (bless with REVERSE_BLESS=1)", path.display())
    });
    assert_eq!(
        got,
        want,
        "{name}: transcript diverged from {} (re-record with REVERSE_BLESS=1 if intended)",
        path.display()
    );
}

#[test]
fn reverse_session_is_deterministic_and_matches_goldens() {
    for &(name, arch, order) in CONFIGS {
        let t1 = run_session(name, arch, order);
        let t2 = run_session(name, arch, order);
        assert_eq!(t1, t2, "{name}: replayed reverse session diverged");
        // The session actually traveled: reverse commands produced stop
        // reports, not errors, and the store held checkpoints.
        assert!(!t1.contains("error: reverse truncated"), "{name}: truncated reverse\n{t1}");
        assert!(t1.contains("checkpoints: "), "{name}: no checkpoint report\n{t1}");
        assert!(t1.contains(" restores"), "{name}: health lost the restore counter\n{t1}");
        check_golden(name, &format!("reverse_{name}.txt"), &t1);
    }
}
