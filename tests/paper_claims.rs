//! Executable checks of the paper's quantitative claims — the *shapes*
//! (who is bigger/faster and by roughly what factor), since the absolute
//! numbers belonged to 1992 hardware.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{ir, pssym, stabs};
use ldb_suite::machine::Arch;

const FIB: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
int main(void) { fib(10); return 0; }
"#;

fn suite() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fib", FIB),
        (
            "loops",
            "int g; int main(void) { int i; int s; s = 0; for (i=0;i<50;i++) { s += i; if (s > 100) s -= 10; } g = s; printf(\"%d\\n\", s); return 0; }",
        ),
    ]
}

/// Sec. 3: "The no-ops increase the number of instructions by 16–19%,
/// depending on the target." Allow a slightly wider band for our targets.
#[test]
fn noop_overhead_is_15_to_20_percent_and_varies_by_target() {
    let mut growths = Vec::new();
    for arch in Arch::ALL {
        let (mut base, mut dbg) = (0u32, 0u32);
        for (name, src) in suite() {
            base += compile(name, src, arch, CompileOpts { debug: false, ..Default::default() })
                .unwrap()
                .linked
                .stats
                .insn_count;
            dbg += compile(name, src, arch, CompileOpts::default())
                .unwrap()
                .linked
                .stats
                .insn_count;
        }
        let growth = dbg as f64 / base as f64 - 1.0;
        assert!(
            (0.10..=0.25).contains(&growth),
            "{arch}: no-op growth {:.1}% outside the paper's ballpark",
            growth * 100.0
        );
        growths.push(growth);
    }
    // "depending on the target": the four targets differ.
    let min = growths.iter().cloned().fold(f64::MAX, f64::min);
    let max = growths.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max - min > 0.005, "growth should vary by target: {growths:?}");
}

/// Sec. 7: PostScript symbol tables ≈ 9× stabs raw; ≈ 2× after compress.
#[test]
fn symbol_table_size_ratios() {
    let c = compile("fib.c", FIB, Arch::Mips, CompileOpts::default()).unwrap();
    let ps = pssym::emit(&c.unit, &c.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let st = stabs::emit(&c);
    let raw_ratio = ps.len() as f64 / st.len() as f64;
    assert!(
        (4.0..=12.0).contains(&raw_ratio),
        "raw PS/stabs ratio {raw_ratio:.1} (paper: ~9)"
    );
    let packed = ldb_suite::compress::compress(ps.as_bytes());
    let packed_ratio = packed.len() as f64 / st.len() as f64;
    assert!(
        packed_ratio < raw_ratio / 1.8,
        "compression should close most of the gap: {packed_ratio:.1} vs {raw_ratio:.1}"
    );
}

/// Sec. 5: the IR has ~112 operators and the rewriter handles all of them.
#[test]
fn operator_inventory_matches_lcc_scale() {
    let n = ir::operator_inventory().len();
    assert!((100..=140).contains(&n), "{n} operators (lcc: 112)");
}

/// Sec. 4.3: each port needs only 250–550 lines of machine-dependent code,
/// and the MIPS (no frame pointer) needs the most.
#[test]
fn machine_dependent_code_is_bounded_and_mips_is_largest() {
    let root = env!("CARGO_MANIFEST_DIR");
    let loc = |p: &str| {
        std::fs::read_to_string(format!("{root}/{p}"))
            .map(|s| {
                s.lines()
                    .map(str::trim)
                    .filter(|l| {
                        !l.is_empty()
                            && !l.starts_with("//")
                            && !l.starts_with('%')
                            && !l.starts_with("///")
                    })
                    .count()
            })
            .unwrap_or_else(|_| panic!("missing {p}"))
    };
    let per_target = |t: &str| {
        loc(&format!("crates/core/src/frame/{t}.rs"))
            + loc(&format!("crates/cc/src/gen/{t}.rs"))
            + loc(&format!("crates/machine/src/encode/{t}.rs"))
            + loc(&format!("crates/core/src/ps/{t}.ps"))
            + loc(&format!("crates/nub/src/arch/{t}.rs"))
    };
    let mips = per_target("mips");
    for t in ["m68k", "sparc", "vax"] {
        let n = per_target(t);
        assert!(n <= mips, "{t} ({n}) should need no more than the MIPS ({mips})");
        assert!((150..=700).contains(&n), "{t}: {n} lines");
    }
    assert!((250..=700).contains(&mips), "mips: {mips} lines");
    // The SPARC nub is the smallest of the four (the paper's 5 lines).
    let nub = |t: &str| loc(&format!("crates/nub/src/arch/{t}.rs"));
    assert!(nub("sparc") < nub("mips"));
    assert!(nub("sparc") < nub("m68k"));
    assert!(nub("sparc") < nub("vax"));
}

/// Sec. 3: breakpoints need exactly four items of machine-dependent data,
/// and the patterns differ across the four targets.
#[test]
fn breakpoint_data_is_four_items() {
    let mut seen = std::collections::HashSet::new();
    for arch in Arch::ALL {
        let d = arch.data();
        seen.insert((d.nop_pattern, d.break_pattern, d.insn_unit, d.pc_advance));
    }
    assert_eq!(seen.len(), 4, "all four targets have distinct breakpoint data");
}

/// Sec. 5: deferred tables read faster. (The timing claim is exercised by
/// the e4 bench; here we check the structural precondition: deferral
/// replaces procedure bodies with quoted strings.)
#[test]
fn deferral_quotes_code() {
    let c = compile("fib.c", FIB, Arch::Vax, CompileOpts::default()).unwrap();
    let eager = pssym::emit(&c.unit, &c.funcs, Arch::Vax, pssym::PsMode::Eager);
    let deferred = pssym::emit(&c.unit, &c.funcs, Arch::Vax, pssym::PsMode::Deferred);
    let eager_procs = eager.matches('{').count();
    let deferred_procs = deferred.matches('{').count();
    assert!(
        deferred_procs * 4 < eager_procs,
        "deferred mode should have few brace procedures: {deferred_procs} vs {eager_procs}"
    );
    assert!(deferred.matches(") cvx").count() > 10);
}
