//! The hostile-client marathon: the service-edge analogue of the
//! chaos soak. PR 5 proved the daemon survives its *tenants*; this
//! suite proves it survives its *clients*.
//!
//! - ≥64 concurrent seeded [`ChaosClient`]s (slow-loris drip-feeding,
//!   garbage bytes, oversized lines, mid-line disconnects) hammer a
//!   daemon that is simultaneously serving ≥16 healthy tenants over
//!   real TCP — and every healthy transcript stays byte-identical to a
//!   solo run, every chaos reply is well-formed (`ok`/`err`, never
//!   torn), and every rejection is a typed counter in `health`;
//! - overload shedding beyond the connection cap is a typed
//!   `err overloaded retry_after_ms=N`, and a [`DaemonClient`] rides
//!   back in with `request_with_retry` once load drops (same for the
//!   session cap);
//! - `shutdown` drains: a client blocked on `cmd <id> c` against a spin
//!   tenant still receives its full reply when another client shuts the
//!   daemon down;
//! - framing abuse (oversize, floods, invalid UTF-8, NULs, bare `\r`,
//!   embedded `\n`) is rejected with typed errors, escalating to
//!   quarantine, without ever desynchronizing a well-behaved stream;
//! - proptest: arbitrary byte streams — in-process into `handle_line`
//!   and over real TCP — always produce one typed reply per request or
//!   a clean hangup, never a panic, never a stuck server.
//!
//! Memory boundedness under floods is proven structurally in
//! `ldb_suite::net` (the reader's pending buffer never exceeds one
//! chunk past the cap) — here the megabyte-line test confirms the
//! quarantine that bound implies.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::Duration;

use ldb_suite::core::Ldb;
use ldb_suite::daemon::{self, Daemon, DaemonClient, DaemonConfig, RetryPolicy};
use ldb_suite::machine::Arch;
use ldb_suite::net::{ChaosClient, ChaosOutcome, ChaosScenario, ConnLimits};
use ldb_suite::trace::{Layer, Trace};
use proptest::prelude::*;

/// These tests saturate CPUs and sockets; run them one at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Bind an ephemeral port and serve `cfg` on a background thread.
fn serve(cfg: DaemonConfig) -> (Arc<Daemon>, SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    serve_with_trace(cfg, Trace::off())
}

fn serve_with_trace(
    cfg: DaemonConfig,
    trace: Trace,
) -> (Arc<Daemon>, SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");
    let daemon = Arc::new(Daemon::with_trace(cfg, trace));
    let serving = {
        let daemon = Arc::clone(&daemon);
        thread::spawn(move || daemon.serve(listener))
    };
    (daemon, addr, serving)
}

/// Pull one unsigned counter out of a health JSON document.
fn counter(json: &str, key: &str) -> u64 {
    json.split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no counter `{key}` in {json}"))
}

/// Read one `\n`-terminated line (or EOF) from a raw test socket,
/// polling with short read timeouts until `budget` is spent.
///
/// The raw-socket tests used to arm one long `SO_RCVTIMEO` and block —
/// but on the virtualized kernels these tests run under, a timed
/// blocking read can miss the wakeup for data that races (or even
/// precedes) it and return `WouldBlock` at expiry with the reply still
/// sitting in the receive queue. A fresh `read()` entry always sees
/// queued data, so the tests poll instead of trusting one long block.
/// Returns the line (`""` on EOF) or the last error once over budget.
fn poll_line(r: &mut BufReader<TcpStream>, budget: Duration) -> std::io::Result<String> {
    let deadline = std::time::Instant::now() + budget;
    r.get_ref().set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut line = String::new();
    loop {
        // `read_line` appends across retries, so a line split by a
        // timeout mid-read is reassembled rather than torn.
        match r.read_line(&mut line) {
            Ok(_) => return Ok(line),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) && std::time::Instant::now() < deadline => {}
            Err(e) => return Err(e),
        }
    }
}

/// The healthy workload (the marathon's inspection-heavy script),
/// ending with the tenant's own machine-readable health report.
const SCRIPT: &str = "\
b clamp
c
bt
p calls
p p
e v * 2 + 1
s
bt
regs
c
info health --json
";

/// A solo single-thread run of the healthy workload: the interference
/// baseline, built with the daemon's own session builder.
fn solo_healthy(arch: Arch) -> String {
    let mut ldb = Ldb::new();
    let build = daemon::session_builder(arch, daemon::PROG_COUNT, None, None, 0);
    build(&mut ldb).unwrap_or_else(|e| panic!("{arch}: solo build: {e}"));
    ldb_suite::core::script::run_script(&mut ldb, SCRIPT)
}

/// The tenant's own final health report: the last `{…}` transcript line.
fn embedded_health(transcript: &str) -> String {
    transcript
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no health json in transcript:\n{transcript}"))
        .to_string()
}

const N_HEALTHY: usize = 16;
const N_CHAOS: usize = 64;
const MARATHON_REQUEST_CAP: usize = 512;

struct HealthyReport {
    i: usize,
    transcript: String,
    health_reply: String,
    close_reply: String,
}

#[test]
fn hostile_marathon_64_chaos_clients_against_16_healthy_tenants() {
    let _serial = lock();
    // Interference baselines first (solo by construction).
    let baselines: Vec<(Arch, String)> =
        Arch::ALL.iter().map(|&a| (a, solo_healthy(a))).collect();
    let baseline = |arch: Arch| -> &str {
        baselines.iter().find(|(a, _)| *a == arch).map(|(_, t)| t.as_str()).unwrap()
    };

    let (_daemon, addr, serving) = serve(DaemonConfig {
        max_sessions: N_HEALTHY,
        // Healthy tenants run un-deadlined: the marathon's point is
        // load, and load makes wall-clock deadlines flaky.
        watchdog: None,
        limits: ConnLimits {
            max_conns: 200,
            max_request_bytes: MARATHON_REQUEST_CAP,
            ..ConnLimits::default()
        },
        ..Default::default()
    });

    // Everyone — healthy drivers and attackers — starts together, so
    // the hostile fleet is live for the whole healthy workload.
    let start = Arc::new(Barrier::new(N_HEALTHY + N_CHAOS));
    let done = Arc::new(AtomicBool::new(false));

    let healthy: Vec<thread::JoinHandle<HealthyReport>> = (0..N_HEALTHY)
        .map(|i| {
            let start = Arc::clone(&start);
            thread::spawn(move || {
                let arch = Arch::ALL[i % Arch::ALL.len()];
                let mut c = DaemonClient::connect(addr).expect("healthy connect");
                start.wait();
                let id = c.request(&format!("open {arch}")).expect("open");
                let transcript = c
                    .request(&format!("cmd {id} {}", daemon::escape_line(SCRIPT)))
                    .expect("cmd");
                let health_reply = c.request(&format!("health {id}")).expect("health");
                let close_reply = c.request(&format!("close {id}")).expect("close");
                HealthyReport { i, transcript, health_reply, close_reply }
            })
        })
        .collect();

    let chaos: Vec<thread::JoinHandle<Vec<(ChaosScenario, ChaosOutcome)>>> = (0..N_CHAOS)
        .map(|i| {
            let start = Arc::clone(&start);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                start.wait();
                let mut results = Vec::new();
                let mut round = 0u64;
                // Keep attacking (fresh connection and scenario each
                // round) until the healthy fleet is done.
                while !done.load(Ordering::Relaxed) && round < 64 {
                    let seed = (i as u64) * 131 + round * 7 + 1;
                    let mut c = ChaosClient::new(addr, seed);
                    let scenario = c.scenario();
                    results.push((scenario, c.run(MARATHON_REQUEST_CAP)));
                    round += 1;
                }
                results
            })
        })
        .collect();

    let reports: Vec<HealthyReport> =
        healthy.into_iter().map(|h| h.join().expect("healthy driver panicked")).collect();
    done.store(true, Ordering::Relaxed);
    let outcomes: Vec<(ChaosScenario, ChaosOutcome)> = chaos
        .into_iter()
        .flat_map(|h| h.join().expect("chaos driver panicked"))
        .collect();

    // Zero cross-session interference: byte-identical to the solo runs,
    // with 64 hostile connections live the whole time.
    for r in &reports {
        let arch = Arch::ALL[r.i % Arch::ALL.len()];
        assert_eq!(
            r.transcript,
            baseline(arch),
            "tenant {} ({arch}): healthy transcript diverged from solo run",
            r.i
        );
        assert_eq!(
            r.health_reply.trim(),
            embedded_health(&r.transcript),
            "tenant {}: daemon health diverges from the tenant's own report",
            r.i
        );
        assert!(
            r.health_reply.contains("\"quarantined_commands\":0"),
            "tenant {}: a command panicked: {}",
            r.i,
            r.health_reply
        );
        assert_eq!(r.close_reply.trim(), "closed client-request", "tenant {}", r.i);
    }

    // Every reply the server produced under attack was well-formed.
    let mut per_scenario = [(0u64, ChaosOutcome::default()); ChaosScenario::ALL.len()];
    for (scenario, out) in &outcomes {
        let i = ChaosScenario::ALL.iter().position(|s| s == scenario).unwrap();
        per_scenario[i].0 += 1;
        let agg = &mut per_scenario[i].1;
        agg.requests_sent += out.requests_sent;
        agg.replies_ok += out.replies_ok;
        agg.replies_err += out.replies_err;
        agg.malformed_replies += out.malformed_replies;
        agg.hangups += out.hangups;
    }
    let torn: u64 = per_scenario.iter().map(|(_, o)| o.malformed_replies).sum();
    assert_eq!(torn, 0, "server produced torn replies under attack: {per_scenario:?}");
    for (i, (rounds, _)) in per_scenario.iter().enumerate() {
        assert!(*rounds > 0, "scenario {:?} never ran", ChaosScenario::ALL[i]);
    }
    let sc = |s: ChaosScenario| {
        &per_scenario[ChaosScenario::ALL.iter().position(|&x| x == s).unwrap()].1
    };
    // Polite drip clients get real service; offenders get typed errs
    // and (for floods/truncation) hangups.
    assert!(sc(ChaosScenario::Drip).replies_ok > 0, "{per_scenario:?}");
    assert!(sc(ChaosScenario::Oversize).replies_err > 0, "{per_scenario:?}");
    assert!(sc(ChaosScenario::Garbage).replies_err > 0, "{per_scenario:?}");
    assert!(sc(ChaosScenario::SlowLoris).hangups > 0, "{per_scenario:?}");
    assert!(sc(ChaosScenario::Truncate).hangups > 0, "{per_scenario:?}");

    // The daemon outlived the attack, and every rejection is a typed
    // counter in the health document.
    let mut probe = DaemonClient::connect(addr).expect("daemon died during the marathon");
    assert_eq!(probe.request("ping").expect("ping"), "pong");
    let health = probe.request("health").expect("daemon health");
    assert_eq!(counter(&health, "sessions"), 0, "{health}");
    assert_eq!(counter(&health, "leaked_workers"), 0, "{health}");
    assert!(counter(&health, "oversized") > 0, "{health}");
    assert!(counter(&health, "malformed") > 0, "{health}");
    assert!(counter(&health, "quarantined") > 0, "{health}");
    assert_eq!(counter(&health, "shed"), 0, "80 conns under a 200 cap shed: {health}");
    assert!(counter(&health, "requests") > 0, "{health}");

    assert_eq!(probe.request("shutdown").expect("shutdown").trim(), "shutdown 0");
    serving.join().expect("serve thread panicked").expect("serve failed");
}

#[test]
fn overload_shedding_is_typed_and_retry_recovers() {
    let _serial = lock();
    let (_daemon, addr, serving) = serve(DaemonConfig {
        limits: ConnLimits { max_conns: 2, retry_after_ms: 25, ..ConnLimits::default() },
        ..Default::default()
    });

    // Fill the cap (a request round-trip proves each was accepted).
    let mut c1 = DaemonClient::connect(addr).unwrap();
    assert_eq!(c1.request("ping").unwrap(), "pong");
    let mut c2 = DaemonClient::connect(addr).unwrap();
    assert_eq!(c2.request("ping").unwrap(), "pong");

    // The next connection is shed: one typed err with the backoff hint,
    // written unprompted, then a clean hangup.
    let shed = TcpStream::connect(addr).unwrap();
    let line = poll_line(&mut BufReader::new(shed), Duration::from_secs(5)).unwrap();
    assert!(
        line.starts_with("err overloaded retry_after_ms=25"),
        "shed reply: `{line}`"
    );

    // A retrying client rides through: its first attempts are shed, a
    // slot frees, and the retry (fresh connection each time) lands.
    let mut c3 = DaemonClient::connect(addr).unwrap();
    drop(c1); // free a slot; the handler notices EOF within its poll
    let policy = RetryPolicy { attempts: 40, backoff: Duration::from_millis(10) };
    assert_eq!(c3.request_with_retry("ping", &policy).expect("retry never landed"), "pong");

    let health = c2.request("health").unwrap();
    assert!(counter(&health, "shed") >= 1, "{health}");
    assert_eq!(c2.request("shutdown").unwrap().trim(), "shutdown 0");
    serving.join().unwrap().unwrap();
}

#[test]
fn session_cap_rejection_recovers_with_retry() {
    let _serial = lock();
    let (_daemon, addr, serving) =
        serve(DaemonConfig { max_sessions: 1, ..Default::default() });

    let mut a = DaemonClient::connect(addr).unwrap();
    let id = a.request("open m68k").expect("first open");
    let mut b = DaemonClient::connect(addr).unwrap();
    let err = b.request("open m68k").expect_err("cap should reject");
    assert!(err.contains("session limit reached"), "{err}");

    // B retries in the background; A eventually closes, freeing the
    // slot.
    let retrying = thread::spawn(move || {
        let policy = RetryPolicy { attempts: 20, backoff: Duration::from_millis(50) };
        b.request_with_retry("open m68k", &policy)
    });
    thread::sleep(Duration::from_millis(300));
    assert_eq!(a.request(&format!("close {id}")).unwrap().trim(), "closed client-request");
    let new_id = retrying.join().unwrap().expect("retry never claimed the freed slot");
    assert!(new_id.trim().parse::<u64>().is_ok(), "bad session id `{new_id}`");

    let mut probe = DaemonClient::connect(addr).unwrap();
    assert_eq!(probe.request("shutdown").unwrap().trim(), "shutdown 1");
    serving.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_the_reply_owed_to_a_blocked_client() {
    let _serial = lock();
    let (_daemon, addr, serving) = serve(DaemonConfig {
        limits: ConnLimits { drain: Duration::from_secs(10), ..ConnLimits::default() },
        ..Default::default()
    });

    // A spin tenant with no watchdog: `c` blocks until something
    // cancels it.
    let mut a = DaemonClient::connect(addr).unwrap();
    let id = a.request("open m68k prog=spin watchdog_ms=0").expect("open spin");
    let blocked = thread::spawn(move || a.request(&format!("cmd {id} c")));
    thread::sleep(Duration::from_millis(300));

    // Shutdown cancels the in-flight command; the drain window lets A's
    // handler finish writing the transcript A is owed before the socket
    // is cut.
    let mut b = DaemonClient::connect(addr).unwrap();
    assert_eq!(b.request("shutdown").unwrap().trim(), "shutdown 1");
    let transcript = blocked
        .join()
        .unwrap()
        .expect("blocked client lost its reply to shutdown");
    assert!(
        transcript.contains("cancelled by session watchdog"),
        "no cancellation in drained reply:\n{transcript}"
    );
    serving.join().unwrap().unwrap();
}

#[test]
fn oversize_requests_get_typed_errs_then_quarantine() {
    let _serial = lock();
    let trace = Trace::ring(256);
    let (_daemon, addr, serving) = serve_with_trace(
        DaemonConfig {
            limits: ConnLimits {
                max_request_bytes: 64,
                strikes: 2,
                ..ConnLimits::default()
            },
            ..Default::default()
        },
        trace.clone(),
    );

    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = BufReader::new(stream);
    let mut big = vec![b'a'; 100];
    big.push(b'\n');

    // First offense: a typed err, and the connection keeps working.
    w.write_all(&big).unwrap();
    let line = poll_line(&mut r, Duration::from_secs(5)).unwrap();
    assert_eq!(line.trim_end(), "err request too long (100 bytes, cap 64)");

    // Second offense: quarantine (strikes=2), then hangup.
    w.write_all(&big).unwrap();
    let line = poll_line(&mut r, Duration::from_secs(5)).unwrap();
    assert_eq!(line.trim_end(), "err connection quarantined (2 protocol offenses)");
    let line = poll_line(&mut r, Duration::from_secs(5)).unwrap();
    assert_eq!(line, "", "expected hangup after quarantine, got `{line}`");

    // The offender's fate never touched anyone else, and everything is
    // journaled and counted.
    let mut probe = DaemonClient::connect(addr).unwrap();
    assert_eq!(probe.request("ping").unwrap(), "pong");
    let health = probe.request("health").unwrap();
    assert_eq!(counter(&health, "oversized"), 2, "{health}");
    assert_eq!(counter(&health, "quarantined"), 1, "{health}");
    assert_eq!(counter(&health, "accepted"), 2, "{health}");
    assert_eq!(trace.kind_count(Layer::Net, "oversize"), 2);
    assert_eq!(trace.kind_count(Layer::Net, "quarantine"), 1);
    assert!(trace.kind_count(Layer::Net, "accept") >= 2);

    assert_eq!(probe.request("shutdown").unwrap().trim(), "shutdown 0");
    serving.join().unwrap().unwrap();
}

#[test]
fn a_megabyte_line_floods_into_quarantine_not_memory() {
    let _serial = lock();
    let (_daemon, addr, serving) = serve(DaemonConfig {
        limits: ConnLimits { max_request_bytes: 1024, ..ConnLimits::default() },
        ..Default::default()
    });

    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = BufReader::new(stream);
    // A megabyte with no newline: the reader drains (never buffers)
    // until the budget, then quarantines. The write may be cut off
    // mid-flood — that *is* the defense working.
    let big = vec![b'x'; 1 << 20];
    let _ = w.write_all(&big);
    let line = poll_line(&mut r, Duration::from_secs(5)).unwrap_or_default();
    if !line.is_empty() {
        assert!(
            line.starts_with("err connection quarantined"),
            "flood reply: `{line}`"
        );
    }

    let mut probe = DaemonClient::connect(addr).expect("daemon died in the flood");
    assert_eq!(probe.request("ping").unwrap(), "pong");
    let health = probe.request("health").unwrap();
    assert!(counter(&health, "quarantined") >= 1, "{health}");
    assert_eq!(probe.request("shutdown").unwrap().trim(), "shutdown 0");
    serving.join().unwrap().unwrap();
}

#[test]
fn idle_connections_are_disconnected_with_a_typed_err() {
    let _serial = lock();
    let (_daemon, addr, serving) = serve(DaemonConfig {
        limits: ConnLimits { idle: Duration::from_millis(250), ..ConnLimits::default() },
        ..Default::default()
    });

    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = BufReader::new(stream);
    w.write_all(b"ping\n").unwrap();
    let line = poll_line(&mut r, Duration::from_secs(5)).unwrap();
    assert_eq!(line.trim_end(), "ok pong");

    // Go quiet: the idle clock fires, typed, then hangup.
    let line = poll_line(&mut r, Duration::from_secs(5)).unwrap();
    assert_eq!(line.trim_end(), "err idle timeout, disconnecting");
    let line = poll_line(&mut r, Duration::from_secs(5)).unwrap();
    assert_eq!(line, "", "expected hangup after idle close, got `{line}`");

    let mut probe = DaemonClient::connect(addr).unwrap();
    let health = probe.request("health").unwrap();
    assert!(counter(&health, "idle_disconnects") >= 1, "{health}");
    assert_eq!(probe.request("shutdown").unwrap().trim(), "shutdown 0");
    serving.join().unwrap().unwrap();
}

#[test]
fn hostile_framing_gets_typed_errs_without_desync() {
    let _serial = lock();
    let (_daemon, addr, serving) = serve(DaemonConfig::default());

    let stream = TcpStream::connect(addr).unwrap();
    let mut w = stream.try_clone().unwrap();
    let mut r = BufReader::new(stream);
    let mut roundtrip = |req: &[u8]| -> String {
        w.write_all(req).unwrap();
        let line = poll_line(&mut r, Duration::from_secs(5)).unwrap();
        line.trim_end_matches('\n').to_string()
    };

    // Invalid UTF-8 is a typed offense, not a poisoned stream: the same
    // connection answers the next request normally.
    assert_eq!(roundtrip(b"\xff\xfe oops\n"), "err request is not valid UTF-8");
    assert_eq!(roundtrip(b"ping\r\n"), "ok pong"); // CRLF framing tolerated
    assert!(roundtrip(b"ping\0\n").starts_with("err unknown verb")); // NUL is data, not framing
    assert_eq!(roundtrip(b"\n"), "err empty request");
    assert_eq!(roundtrip(b"\r\n"), "err empty request");

    let health = roundtrip(b"health\n");
    assert!(counter(&health, "malformed") >= 1, "{health}");
    assert!(roundtrip(b"shutdown\n").contains("shutdown 0"), "{health}");
    serving.join().unwrap().unwrap();
}

#[test]
fn client_rejects_embedded_line_terminators_before_the_wire() {
    let _serial = lock();
    let (_daemon, addr, serving) = serve(DaemonConfig::default());

    let mut c = DaemonClient::connect(addr).unwrap();
    // A raw newline in the request would frame as two requests and
    // desynchronize every later reply; the client refuses it outright…
    let err = c.request("cmd 1 b clamp\nc").expect_err("embedded newline accepted");
    assert!(err.contains("line terminator"), "{err}");
    let err = c.request("cmd 1 b clamp\rc").expect_err("embedded CR accepted");
    assert!(err.contains("line terminator"), "{err}");
    // …and the connection is *not* desynchronized: nothing hit the wire.
    assert_eq!(c.request("ping").unwrap(), "pong");
    // The sanctioned path — escape_line — frames onto one line.
    let err = c.request(&format!("cmd 1 {}", daemon::escape_line("b clamp\nc"))).unwrap_err();
    assert!(err.contains("no session 1"), "{err}");

    assert_eq!(c.request("shutdown").unwrap().trim(), "shutdown 0");
    serving.join().unwrap().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Protocol fuzz, in-process: whatever bytes (lossily decoded) or
    /// unicode reaches `handle_line`, the reply is exactly one typed
    /// line — `ok …` or `err …`, no embedded newline, no panic.
    #[test]
    fn handle_line_always_produces_one_typed_reply(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        chars in prop::collection::vec(any::<char>(), 0..64),
    ) {
        let daemon = Daemon::new(DaemonConfig { max_sessions: 0, ..Default::default() });
        for line in [String::from_utf8_lossy(&bytes).into_owned(), chars.iter().collect()] {
            let reply = daemon.handle_line(&line);
            prop_assert!(
                reply.starts_with("ok ") || reply.starts_with("err "),
                "untyped reply `{reply}` for input `{line:?}`"
            );
            prop_assert!(!reply.contains('\n'), "unframed reply for input `{line:?}`");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Protocol fuzz over real TCP: arbitrary bytes (invalid UTF-8,
    /// NULs, bare `\r`, oversized lines) into a live daemon. Every
    /// reply line is typed; the connection either answers the trailing
    /// sentinel ping or was cleanly hung up (quarantine); the daemon
    /// never wedges or panics.
    #[test]
    fn arbitrary_tcp_byte_streams_get_typed_replies_or_clean_hangup(
        bytes in prop::collection::vec(any::<u8>(), 0..768),
    ) {
        let _serial = lock();
        let (_daemon, addr, serving) = serve(DaemonConfig {
            max_sessions: 0,
            limits: ConnLimits { max_request_bytes: 128, ..ConnLimits::default() },
            ..Default::default()
        });

        let stream = TcpStream::connect(addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        let _ = w.write_all(&bytes);
        // Terminate any partial line, then a sentinel we can wait for.
        let _ = w.write_all(b"\nping\n");
        loop {
            match poll_line(&mut r, Duration::from_secs(5)) {
                Ok(line) if line.is_empty() => break, // clean hangup (quarantine) — allowed
                Ok(line) => {
                    let line = line.trim_end_matches('\n');
                    prop_assert!(
                        line.starts_with("ok ") || line.starts_with("err "),
                        "untyped reply `{line}` for input {bytes:?}"
                    );
                    if line == "ok pong" {
                        break;
                    }
                }
                Err(e) => prop_assert!(false, "server stuck or dead: {e}"),
            }
        }

        // The daemon survived whatever that was.
        let mut probe = DaemonClient::connect(addr).expect("daemon died");
        let _ = probe.request("shutdown");
        serving.join().unwrap().unwrap();
    }
}
