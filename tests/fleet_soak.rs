//! Fleet soak: the acceptance gate at scale. 10 000 supervised sessions,
//! twice with the same corpus, asserting the canonical reports are
//! byte-identical, no worker thread leaks, retries stay booked against
//! injected faults only, and at least one chaos seed minimizes into its
//! own bucket.
//!
//! Ignored by default — debug builds would take many minutes. Run it
//! release-mode via `scripts/check.sh --soak`, or directly:
//!
//! ```text
//! cargo test -q --release --test fleet_soak -- --ignored
//! ```

use std::sync::Arc;

use ldb_suite::core::ModuleCache;
use ldb_suite::fleet::{corpus, minimize, prepare_target, report, run_fleet, FleetConfig};

const SOAK_SESSIONS: usize = 10_000;

/// Live threads in this process, per the kernel.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(1, |d| d.count())
}

#[test]
#[ignore = "10k-session soak; run via scripts/check.sh --soak"]
fn soak_ten_thousand_sessions_deterministic_and_leak_free() {
    let specs = corpus::demo_corpus(SOAK_SESSIONS);
    let cfg = FleetConfig::default();
    let threads_before = thread_count();

    let started = std::time::Instant::now();
    let first = run_fleet(&cfg, &specs).expect("first soak run");
    let first_wall = started.elapsed();
    eprintln!(
        "soak: first pass {} sessions in {:.1}s on {} workers",
        SOAK_SESSIONS,
        first_wall.as_secs_f64(),
        cfg.workers
    );

    // Every session ran (or shed as a typed outcome) — nothing lost.
    assert_eq!(first.len(), SOAK_SESSIONS);

    // The worker pool wound down completely: thread count back where it
    // started (the pool is scoped, so anything left is a leak).
    let threads_after = thread_count();
    assert_eq!(
        threads_after, threads_before,
        "leaked threads: {threads_before} before, {threads_after} after"
    );

    // Retries only ever book against injector-marked transient faults.
    for r in &first {
        if r.retries > 0 {
            assert!(
                specs[r.id as usize].fault.is_some(),
                "{}: retried without a fault injector",
                r.name
            );
        }
    }

    // Second pass, same corpus and policy: byte-identical canon.
    let second = run_fleet(&cfg, &specs).expect("second soak run");
    assert_eq!(
        report::bucket_report(&first),
        report::bucket_report(&second),
        "bucket report must be byte-identical across same-seed runs"
    );
    assert_eq!(
        report::session_report(&first),
        report::session_report(&second),
        "session JSONL must be byte-identical across same-seed runs"
    );
    assert_eq!(thread_count(), threads_before, "second pass leaked threads");

    // At least one chaos seed minimizes to a (no larger) reproducer that
    // lands in the same bucket.
    let victim = first
        .iter()
        .find(|r| r.bucket.is_some() && specs[r.id as usize].chaos.is_some())
        .expect("10k sessions must bucket at least one chaos session");
    let spec = &specs[victim.id as usize];
    let cache = ModuleCache::new();
    let prepared =
        Arc::new(prepare_target(spec.arch, &spec.source, &cache).expect("prepare target"));
    let m = minimize::minimize_chaos(spec, &prepared, &cfg).expect("minimization");
    assert_eq!(&m.bucket, victim.bucket.as_ref().unwrap(), "minimized seed changed bucket");
    assert!(m.window_events <= m.full_events);
    eprintln!(
        "soak: minimized {} from {} to {} corruption events in {} runs",
        spec.name, m.full_events, m.window_events, m.runs
    );

    // Sanity on the outcome mix: the wheel guarantees each class appears.
    let counts = report::outcome_counts(&first);
    for tok in ["clean", "script-error", "panic-quarantined", "wire-lost", "wedged"] {
        assert!(
            counts.iter().any(|(o, n)| o.token() == tok && *n > 0),
            "outcome {tok} missing at 10k scale: {counts:?}"
        );
    }
}
