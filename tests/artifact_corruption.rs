//! Artifact corruption: symbol tables are compiler *artifacts*, shipped as
//! PostScript programs, and the debugger must treat them as untrusted
//! input. These tests take real cc-emitted tables for all four targets,
//! corrupt them in seeded, repeatable ways — bit flips, truncation, token
//! splicing, injected infinite loops, allocation bombs — and assert the
//! sandbox holds: the load never panics, never exceeds its budgets, the
//! corrupt module is quarantined with a typed error, and the healthy
//! modules still debug.

use ldb_suite::cc::driver::{compile_many, program_load_plan, CompileOpts, CompiledProgram};
use ldb_suite::cc::pssym::PsMode;
use ldb_suite::core::{Ldb, ModuleTable, PsBudgets, StopEvent};
use ldb_suite::machine::Arch;
use ldb_suite::nub::{spawn, NubConfig};
use ldb_suite::postscript::Budget;

const LIB_C: &str = r#"
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int lib_calls(void) { return calls; }
"#;

const MAIN_C: &str = r#"
static int calls;
int clamp(int v);
int lib_calls(void);
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 10; i++) {
        calls = calls + 2;
        s += clamp(i * 30);
    }
    printf("%d %d %d\n", s, lib_calls(), calls);
    return 0;
}
"#;

/// Compile the two-unit program and split its loader table into the plan.
fn plan_for(arch: Arch) -> (CompiledProgram, String, Vec<ModuleTable>) {
    let p = compile_many(&[("lib.c", LIB_C), ("main.c", MAIN_C)], arch, CompileOpts::default())
        .unwrap_or_else(|e| panic!("{arch}: {e}"));
    let (frame, modules) = program_load_plan(&p, PsMode::Deferred);
    let modules = modules.into_iter().map(|(name, ps)| ModuleTable { name, ps }).collect();
    (p, frame, modules)
}

/// A tight budget so even the fuel-exhaustion cases finish in
/// milliseconds under an unoptimized test build. Real tables for these
/// programs load in well under 100k steps.
fn test_budgets() -> PsBudgets {
    PsBudgets {
        load: Budget { max_fuel: 300_000, max_alloc: 16 << 20, max_operands: 1 << 18 },
        interactive: Budget::INTERACTIVE,
    }
}

/// Attach a sandboxed session to a fresh nub running `p`.
fn attach(
    p: &CompiledProgram,
    frame: &str,
    modules: &[ModuleTable],
) -> Result<Ldb, String> {
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().map_err(|e| e.to_string())?;
    let mut ldb = Ldb::new();
    ldb.set_ps_budgets(test_budgets());
    match ldb.attach_plan(Box::new(wire), frame, modules, Some(handle)) {
        Ok(_) => Ok(ldb),
        Err(e) => Err(e.to_string()),
    }
}

/// A tiny deterministic generator (xorshift64*), so corruption is seeded
/// and repeatable without pulling in a random-number crate.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Flip a low bit in `count` pseudo-random bytes. Tables are ASCII, and
/// flipping only bits 0-4 keeps them ASCII (possibly control characters),
/// so the mutation stays a valid Rust string.
fn bit_flip(ps: &str, seed: u64, count: usize) -> String {
    let mut bytes = ps.as_bytes().to_vec();
    let mut rng = Rng(seed | 1);
    for _ in 0..count {
        let i = rng.below(bytes.len());
        bytes[i] ^= 1 << rng.below(5);
    }
    String::from_utf8(bytes).expect("ascii stays utf-8")
}

/// Cut the table off mid-stream.
fn truncate(ps: &str, seed: u64) -> String {
    let mut rng = Rng(seed | 1);
    let cut = ps.len() / 4 + rng.below(ps.len() / 2);
    ps[..cut].to_string()
}

/// Splice a run of tokens from one place into another — the "page from
/// another book" corruption: everything is still lexically valid
/// PostScript, but the structure is wrong.
fn splice(ps: &str, seed: u64) -> String {
    let mut rng = Rng(seed | 1);
    let words: Vec<&str> = ps.split_whitespace().collect();
    let mut out: Vec<&str> = Vec::with_capacity(words.len() + 32);
    let at = rng.below(words.len());
    let from = rng.below(words.len());
    let n = 8 + rng.below(24.min(words.len() - from).max(1));
    out.extend_from_slice(&words[..at]);
    out.extend_from_slice(&words[from..(from + n).min(words.len())]);
    out.extend_from_slice(&words[at..]);
    out.join(" ")
}

/// Append an unbounded loop after the table proper: the classic hang.
fn inject_loop(ps: &str, _seed: u64) -> String {
    format!("{ps}\n{{ }} loop\n")
}

/// Append an allocation bomb: each iteration copies the whole operand
/// stack, so both memory and stack depth grow without bound.
fn inject_alloc_bomb(ps: &str, _seed: u64) -> String {
    format!("{ps}\n1 {{ count copy }} loop\n")
}

/// Drive the surviving program a little: break in `main`, continue to the
/// breakpoint, and read a local through the full print path.
fn assert_main_debuggable(ldb: &mut Ldb, arch: Arch, tag: &str) {
    let addr = ldb
        .break_at("main", 1)
        .unwrap_or_else(|e| panic!("{arch}/{tag}: break in healthy module: {e}"));
    assert_ne!(addr, 0, "{arch}/{tag}");
    let ev = ldb.cont().unwrap_or_else(|e| panic!("{arch}/{tag}: continue: {e}"));
    assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}/{tag}: {ev:?}");
    let s = ldb.eval("s").unwrap_or_else(|e| panic!("{arch}/{tag}: eval s: {e}"));
    s.trim().parse::<i64>().unwrap_or_else(|_| panic!("{arch}/{tag}: `s` printed as {s:?}"));
}

#[test]
fn seeded_corruptions_never_panic_and_quarantine_cleanly() {
    type Corruption = (&'static str, fn(&str, u64) -> String);
    let corruptions: [Corruption; 5] = [
        ("bitflip", |ps, seed| bit_flip(ps, seed, 12)),
        ("truncate", truncate),
        ("splice", splice),
        ("loop", inject_loop),
        ("allocbomb", inject_alloc_bomb),
    ];
    for arch in Arch::ALL {
        for (tag, mutate) in corruptions {
            for seed in [3, 17, 40] {
                let (p, frame, mut modules) = plan_for(arch);
                // Corrupt the library unit; main stays healthy.
                modules[0].ps = mutate(&modules[0].ps, seed);
                let mut ldb = match attach(&p, &frame, &modules) {
                    Ok(ldb) => ldb,
                    Err(e) => panic!(
                        "{arch}/{tag}/{seed}: attach must survive one corrupt module: {e}"
                    ),
                };
                // Either the mutation was harmless (a bit flip inside a
                // string literal) and everything loaded, or the module is
                // quarantined with its provenance in the reason.
                let q = ldb.quarantined_modules();
                assert!(q.len() <= 1, "{arch}/{tag}/{seed}: {q:?}");
                if let Some((module, reason)) = q.first() {
                    assert_eq!(module, "lib.c", "{arch}/{tag}/{seed}");
                    assert!(
                        reason.contains("lib.c"),
                        "{arch}/{tag}/{seed}: reason lacks provenance: {reason}"
                    );
                }
                assert_main_debuggable(&mut ldb, arch, tag);
            }
        }
    }
}

#[test]
fn injected_infinite_loop_times_out_and_is_quarantined() {
    for arch in Arch::ALL {
        let (p, frame, mut modules) = plan_for(arch);
        modules[0].ps = inject_loop(&modules[0].ps, 0);
        let mut ldb = attach(&p, &frame, &modules).unwrap_or_else(|e| panic!("{arch}: {e}"));
        let q = ldb.quarantined_modules();
        assert_eq!(q.len(), 1, "{arch}: {q:?}");
        assert!(
            q[0].1.contains("timeout") && q[0].1.contains("fuel"),
            "{arch}: want a typed fuel error, got: {}",
            q[0].1
        );
        // Referencing the quarantined module's symbols says why.
        let err = ldb.break_at("clamp", 0).unwrap_err().to_string();
        assert!(err.contains("quarantined"), "{arch}: {err}");
        assert_main_debuggable(&mut ldb, arch, "loop");
    }
}

#[test]
fn allocation_bomb_trips_a_budget_error_not_the_host() {
    for arch in Arch::ALL {
        let (p, frame, mut modules) = plan_for(arch);
        modules[0].ps = inject_alloc_bomb(&modules[0].ps, 0);
        let ldb = attach(&p, &frame, &modules).unwrap_or_else(|e| panic!("{arch}: {e}"));
        let q = ldb.quarantined_modules();
        assert_eq!(q.len(), 1, "{arch}: {q:?}");
        // The bomb dies on whichever budget it hits first (bytes, stack
        // entries, or fuel) — all typed, none host-fatal.
        let r = &q[0].1;
        assert!(
            r.contains("vmerror") || r.contains("budget") || r.contains("timeout"),
            "{arch}: want a typed budget error, got: {r}"
        );
    }
}

#[test]
fn every_module_corrupt_fails_the_attach_with_reasons() {
    let arch = Arch::Mips;
    let (p, frame, mut modules) = plan_for(arch);
    for m in &mut modules {
        m.ps = truncate(&m.ps, 9);
    }
    let err = match attach(&p, &frame, &modules) {
        Ok(_) => panic!("attach must fail when every module is quarantined"),
        Err(e) => e,
    };
    assert!(err.contains("quarantined"), "{err}");
    assert!(err.contains("lib.c") && err.contains("main.c"), "{err}");
}

#[test]
fn reload_retries_quarantined_modules() {
    for arch in [Arch::Mips, Arch::Vax] {
        let (p, frame, mut modules) = plan_for(arch);
        // A table that is *valid but over the tight fuel budget*: burn
        // fuel with a long no-op loop before the real table. Raising the
        // budget and reloading must then succeed.
        modules[0].ps = format!("0 1 200000 {{ pop }} for\n{}", modules[0].ps);
        let mut ldb = attach(&p, &frame, &modules).unwrap_or_else(|e| panic!("{arch}: {e}"));
        assert_eq!(ldb.quarantined_modules().len(), 1, "{arch}");
        assert!(ldb.break_at("clamp", 0).is_err(), "{arch}");

        // Same budget: the retry fails the same way and stays quarantined.
        let rows = ldb.reload_modules().unwrap();
        assert_eq!(rows.len(), 1, "{arch}");
        assert!(rows[0].1.is_err(), "{arch}: {rows:?}");
        assert_eq!(ldb.quarantined_modules().len(), 1, "{arch}");

        // Generous budget: the module loads and its symbols come back.
        ldb.set_ps_limits(Some(50_000_000), None);
        let rows = ldb.reload_modules().unwrap();
        assert_eq!(rows.len(), 1, "{arch}");
        assert!(rows[0].1.is_ok(), "{arch}: {rows:?}");
        assert!(ldb.quarantined_modules().is_empty(), "{arch}");
        let addr = ldb.break_at("clamp", 0).unwrap_or_else(|e| panic!("{arch}: {e}"));
        assert_ne!(addr, 0, "{arch}");
        let ev = ldb.cont().unwrap_or_else(|e| panic!("{arch}: {e}"));
        assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: {ev:?}");
    }
}

#[test]
fn default_limits_stop_an_unbounded_loop_in_bounded_time() {
    // One arch, stock budgets: the acceptance criterion is that the
    // default profile — not just a test-tightened one — terminates a
    // hostile table with a typed error.
    let arch = Arch::Mips;
    let (p, frame, mut modules) = plan_for(arch);
    modules[0].ps = inject_loop(&modules[0].ps, 0);
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let mut ldb = Ldb::new(); // default PsBudgets
    let started = std::time::Instant::now();
    ldb.attach_plan(Box::new(wire), &frame, &modules, Some(handle)).unwrap();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(120),
        "fuel budget did not bound the load: {:?}",
        started.elapsed()
    );
    let q = ldb.quarantined_modules();
    assert_eq!(q.len(), 1);
    assert!(q[0].1.contains("timeout"), "{}", q[0].1);
}
