//! Graceful teardown of the multi-session daemon: shutdown arriving
//! while tenants are mid-command must cancel the in-flight work, detach
//! every live target within its deadline, journal a typed close reason
//! per tenant, and leave no thread behind. Idle eviction is the same
//! machinery with a different reason.
//!
//! Tests in this binary serialize on a file-local mutex: the leaked-
//! thread assertion counts the whole process's threads, so nothing else
//! may be spawning sessions concurrently.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ldb_suite::core::{
    CloseReason, SessionBuilder, SessionConfig, SessionError, SessionRegistry,
};
use ldb_suite::daemon::{self, Daemon, DaemonClient, DaemonConfig};
use ldb_suite::machine::Arch;
use ldb_suite::trace::{SharedBuf, Trace, TraceConfig};

static SERIAL: Mutex<()> = Mutex::new(());

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("/proc/self/status")
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// A tenant builder that records its journal into a shared buffer the
/// test can read after teardown.
fn journaled_builder(arch: Arch, prog: &'static str) -> (SessionBuilder, SharedBuf, Trace) {
    let (trace, buf) = Trace::to_shared_buffer(TraceConfig::default());
    let inner = daemon::session_builder(arch, prog, None, None, 0);
    let t = trace.clone();
    let builder: SessionBuilder = Box::new(move |ldb| {
        ldb.set_trace(t);
        inner(ldb)
    });
    (builder, buf, trace)
}

/// Wait for the process's thread count to drop back to `baseline`
/// (teardown joins are asynchronous only for abandoned workers; a clean
/// shutdown must converge).
fn assert_threads_converge(baseline: usize) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let now = thread_count();
        if now <= baseline {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "leaked threads: {now} alive, baseline {baseline}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn shutdown_mid_command_detaches_quarantines_and_journals_every_tenant() {
    let _serial = SERIAL.lock().unwrap();
    let baseline = thread_count();

    let registry = Arc::new(SessionRegistry::new(8));
    // Three wedge tenants (their `c` never returns on its own) and one
    // healthy tenant, each with its own journal.
    let mut bufs = Vec::new();
    let mut traces = Vec::new();
    let mut ids = Vec::new();
    for i in 0..4 {
        let prog = if i < 3 { daemon::PROG_SPIN } else { daemon::PROG_COUNT };
        let (builder, buf, trace) = journaled_builder(Arch::M68k, prog);
        // No watchdog: the commands stay wedged until shutdown cancels
        // them — exactly the mid-command state the daemon must survive.
        let id = registry
            .open(SessionConfig::default(), builder)
            .unwrap_or_else(|e| panic!("open {i}: {e}"));
        bufs.push(buf);
        traces.push(trace);
        ids.push(id);
    }
    assert_eq!(registry.len(), 4);

    // Drive the three wedge tenants into the middle of a command.
    let drivers: Vec<_> = ids[..3]
        .iter()
        .map(|&id| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || registry.run(id, "c"))
        })
        .collect();
    // Let them reach the blocking continue.
    std::thread::sleep(Duration::from_millis(400));

    // Shutdown while they are mid-command.
    let closed = registry.close_all(CloseReason::Shutdown);
    assert_eq!(closed, 4, "every tenant must close");
    assert_eq!(registry.len(), 0);

    // The in-flight commands were cancelled, not abandoned: each driver
    // got its transcript back with the cancellation as a typed error.
    for d in drivers {
        let transcript = d.join().unwrap().expect("cancelled run still returns its transcript");
        assert!(
            transcript.contains("cancelled by session watchdog"),
            "in-flight command not cancelled:\n{transcript}"
        );
    }

    // Every tenant's journal carries its typed close reason.
    for (i, (buf, trace)) in bufs.iter().zip(&traces).enumerate() {
        trace.flush();
        let journal = buf.text();
        assert!(
            journal.contains("\"kind\":\"close\"") && journal.contains("\"reason\":\"shutdown\""),
            "tenant {i}: no typed close record in journal:\n{}",
            journal.lines().rev().take(5).collect::<Vec<_>>().join("\n")
        );
    }

    // A closed id answers nothing.
    assert!(matches!(registry.run(ids[0], "regs"), Err(SessionError::UnknownSession(_))));

    // No leaked threads: workers joined, nubs reclaimed (the spinning
    // targets exit once detached and unreachable).
    drop(registry);
    assert_threads_converge(baseline);
}

#[test]
fn idle_sessions_are_evicted_with_typed_reason() {
    let _serial = SERIAL.lock().unwrap();
    let registry = SessionRegistry::new(4);
    let (builder, buf, trace) = journaled_builder(Arch::Mips, daemon::PROG_COUNT);
    let id = registry.open(SessionConfig::default(), builder).unwrap();
    let transcript = registry.run(id, "b clamp\nc").unwrap();
    assert!(transcript.contains("breakpoint in clamp"), "{transcript}");

    // Not yet idle: a generous threshold evicts nothing.
    assert!(registry.evict_idle(Duration::from_secs(3600)).is_empty());
    assert_eq!(registry.len(), 1);

    // Everything is idle against a zero threshold.
    let evicted = registry.evict_idle(Duration::ZERO);
    assert_eq!(evicted, vec![id]);
    assert_eq!(registry.len(), 0);
    assert!(matches!(registry.run(id, "regs"), Err(SessionError::UnknownSession(_))));

    trace.flush();
    let journal = buf.text();
    assert!(
        journal.contains("\"kind\":\"close\"") && journal.contains("\"reason\":\"idle\""),
        "no typed idle-eviction record:\n{journal}"
    );
}

/// A busy tenant is not idle: eviction must skip a session whose lock is
/// held by an in-flight command rather than wait for it.
#[test]
fn eviction_skips_busy_tenants() {
    let _serial = SERIAL.lock().unwrap();
    let registry = Arc::new(SessionRegistry::new(4));
    let (builder, _buf, _trace) = journaled_builder(Arch::M68k, daemon::PROG_SPIN);
    let id = registry.open(SessionConfig::default(), builder).unwrap();
    let driver = {
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || registry.run(id, "c"))
    };
    std::thread::sleep(Duration::from_millis(300));
    // Mid-command: even a zero idle threshold must not touch it.
    assert!(registry.evict_idle(Duration::ZERO).is_empty());
    assert_eq!(registry.len(), 1);
    // Clean up: shutdown cancels the wedged command.
    assert_eq!(registry.close_all(CloseReason::Shutdown), 1);
    let transcript = driver.join().unwrap().expect("run returns after cancel");
    assert!(transcript.contains("cancelled by session watchdog"), "{transcript}");
}

/// The README quickstart, end to end over real sockets: start the
/// daemon, attach two clients, debug, read health, shut down.
#[test]
fn tcp_daemon_serves_two_clients_and_shuts_down_cleanly() {
    let _serial = SERIAL.lock().unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = Arc::new(Daemon::new(DaemonConfig {
        max_sessions: 4,
        watchdog: Some(Duration::from_secs(30)),
        ..Default::default()
    }));
    let server = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || daemon.serve(listener))
    };

    let mut alice = DaemonClient::connect(addr).unwrap();
    let mut bob = DaemonClient::connect(addr).unwrap();
    assert_eq!(alice.request("ping").unwrap(), "pong");

    let a = alice.request("open mips").unwrap();
    let b = bob.request("open vax").unwrap();
    assert_ne!(a, b, "tenants must get distinct ids");

    let t = alice.request(&format!("cmd {a} b clamp\\nc\\np calls")).unwrap();
    assert!(t.contains("breakpoint in clamp"), "{t}");
    let t = bob.request(&format!("cmd {b} b clamp\\nc\\nbt")).unwrap();
    assert!(t.contains("#0 clamp"), "{t}");

    let h = alice.request(&format!("health {a}")).unwrap();
    assert!(h.starts_with('{') && h.contains("\"watchdog_timeouts\":0"), "{h}");

    assert_eq!(bob.request(&format!("close {b}")).unwrap(), "closed client-request");
    // Alice never closed hers: shutdown sweeps it.
    assert_eq!(alice.request("shutdown").unwrap(), "shutdown 1");
    server.join().unwrap().unwrap();
    assert!(daemon.is_shut_down());
    assert_eq!(daemon.registry().len(), 0);
}
