//! Fleet smoke: the 64-session demo corpus (every script template ×
//! every architecture) exercises the whole supervised pipeline in a few
//! seconds — outcome coverage, deterministic reports, the retry policy,
//! graceful shedding, the per-session journal cross-check, and one
//! end-to-end chaos-seed minimization.
//!
//! The 10k-scale version of the same assertions lives in
//! `tests/fleet_soak.rs` behind `#[ignore]` (`scripts/check.sh --soak`).

use std::sync::Arc;

use ldb_suite::core::ModuleCache;
use ldb_suite::fleet::{
    corpus, minimize, prepare_target, report, run_fleet, FleetConfig, FleetOutcome, SessionResult,
    ShedReason,
};
use ldb_suite::machine::Arch;

const SMOKE_SESSIONS: usize = 64;

fn smoke_config(workers: usize) -> FleetConfig {
    FleetConfig { workers, ..FleetConfig::default() }
}

fn run_smoke(workers: usize) -> Vec<SessionResult> {
    let specs = corpus::demo_corpus(SMOKE_SESSIONS);
    run_fleet(&smoke_config(workers), &specs).expect("fleet run")
}

#[test]
fn demo_corpus_covers_every_outcome_and_arch() {
    let results = run_smoke(4);
    assert_eq!(results.len(), SMOKE_SESSIONS);
    // Results come back dense and ordered whatever the completion order.
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.id as usize, i, "results must be sorted by id");
    }

    let counts = report::outcome_counts(&results);
    let count = |tok: &str| counts.iter().find(|(o, _)| o.token() == tok).map_or(0, |(_, n)| *n);
    assert!(count("clean") > 0, "no clean sessions: {counts:?}");
    assert!(count("script-error") > 0, "no script errors: {counts:?}");
    assert!(count("panic-quarantined") > 0, "no quarantines: {counts:?}");
    assert!(count("wire-lost") > 0, "no wire losses: {counts:?}");
    assert!(count("wedged") > 0, "no wedges: {counts:?}");

    // All four architectures participated (the wheel rotates arch every
    // 16 sessions; 64 sessions = full coverage).
    let specs = corpus::demo_corpus(SMOKE_SESSIONS);
    for arch in Arch::ALL {
        assert!(specs.iter().any(|s| s.arch == arch), "{arch:?} missing from corpus");
    }

    // Every bucketed outcome carries a bucket id and a readable key;
    // clean sessions carry neither.
    for r in &results {
        if r.outcome.is_bucketed() {
            assert!(r.bucket.is_some() && r.bucket_key.is_some(), "{}: unbucketed {:?}", r.name, r.outcome);
            assert_eq!(r.bucket.as_deref().unwrap().len(), 16, "{}: bucket id shape", r.name);
        } else {
            assert!(r.bucket.is_none(), "{}: {:?} must not bucket", r.name, r.outcome);
        }
    }
}

#[test]
fn reports_are_byte_identical_across_runs_and_worker_counts() {
    let a = run_smoke(4);
    let b = run_smoke(2);
    assert_eq!(
        report::session_report(&a),
        report::session_report(&b),
        "session JSONL must not depend on scheduling or worker count"
    );
    assert_eq!(
        report::bucket_report(&a),
        report::bucket_report(&b),
        "bucket report must not depend on scheduling or worker count"
    );
}

#[test]
fn retries_booked_only_against_injected_transient_faults() {
    let specs = corpus::demo_corpus(SMOKE_SESSIONS);
    let results = run_fleet(&smoke_config(4), &specs).expect("fleet run");
    let mut retried = 0u32;
    for r in &results {
        if r.retries > 0 {
            retried += r.retries;
            let spec = &specs[r.id as usize];
            assert!(
                spec.fault.is_some(),
                "{}: retried without a fault injector (outcome {:?})",
                r.name,
                r.outcome
            );
        }
        assert_eq!(r.attempts, r.retries + 1, "{}: attempt arithmetic", r.name);
    }
    // The wheel's injected-disconnect sessions always lose the wire, so
    // the retry path is actually exercised, not vacuously true.
    assert!(retried > 0, "no retries booked; the transient path went untested");
}

#[test]
fn session_cap_and_memory_budget_shed_deterministically() {
    let specs = corpus::demo_corpus(SMOKE_SESSIONS);

    let cap = 10usize;
    let capped = run_fleet(
        &FleetConfig { session_cap: Some(cap), ..smoke_config(4) },
        &specs,
    )
    .expect("capped run");
    for r in &capped {
        let want_shed = r.id as usize >= cap;
        let is_shed = matches!(r.outcome, FleetOutcome::Shed(ShedReason::SessionCap));
        assert_eq!(is_shed, want_shed, "{}: cap shedding must be by corpus index", r.name);
        if is_shed {
            assert!(r.transcript.is_empty() && r.health.is_none() && r.journal.is_none());
        }
    }

    // A one-byte budget sheds everything — typed outcomes, no errors.
    let starved =
        run_fleet(&FleetConfig { memory_budget: Some(1), ..smoke_config(4) }, &specs)
            .expect("starved run");
    assert!(starved
        .iter()
        .all(|r| matches!(r.outcome, FleetOutcome::Shed(ShedReason::MemoryBudget))));

    // Shed decisions are a pure function of the spec: same inputs, same
    // report bytes.
    let capped2 = run_fleet(
        &FleetConfig { session_cap: Some(cap), ..smoke_config(2) },
        &specs,
    )
    .expect("capped rerun");
    assert_eq!(report::session_report(&capped), report::session_report(&capped2));
}

#[test]
fn journal_cross_check_holds_for_every_executed_session() {
    let results = run_smoke(4);
    for r in &results {
        if matches!(r.outcome, FleetOutcome::Shed(_)) {
            continue;
        }
        let j = r.journal.unwrap_or_else(|| panic!("{}: executed session lost its journal", r.name));
        assert!(j.parsed, "{}: journal line failed strict schema validation", r.name);
        // Wedged sessions can die mid-script (the worker never answers),
        // so only settled outcomes must balance the command ledger.
        if !matches!(r.outcome, FleetOutcome::Wedged) {
            assert!(
                j.consistent(),
                "{}: journal disagrees with session bookkeeping: {j:?}",
                r.name
            );
        }
    }
}

#[test]
fn minimization_shrinks_a_chaos_seed_into_the_same_bucket() {
    let specs = corpus::demo_corpus(SMOKE_SESSIONS);
    let cfg = smoke_config(4);
    let results = run_fleet(&cfg, &specs).expect("fleet run");
    let victim = results
        .iter()
        .find(|r| r.bucket.is_some() && specs[r.id as usize].chaos.is_some())
        .expect("the demo corpus always buckets at least one chaos session");
    let spec = &specs[victim.id as usize];
    let cache = ModuleCache::new();
    let prepared =
        Arc::new(prepare_target(spec.arch, &spec.source, &cache).expect("prepare target"));

    let m = minimize::minimize_chaos(spec, &prepared, &cfg).expect("minimization");
    assert_eq!(&m.bucket, victim.bucket.as_ref().unwrap(), "minimized seed changed bucket");
    assert!(
        m.window_events <= m.full_events,
        "minimizer grew the schedule: {} > {}",
        m.window_events,
        m.full_events
    );
    assert!(m.window_events > 0, "an empty schedule cannot reproduce a chaos bucket");
    // The replay string is a valid `--chaos` spec that lands in the same
    // bucket deterministically.
    let chaos = ldb_suite::core::ChaosConfig::parse(&m.replay)
        .unwrap_or_else(|e| panic!("replay spec `{}` unparseable: {e}", m.replay));
    let mut replay_spec = spec.clone();
    replay_spec.chaos = Some(chaos);
    let rerun = ldb_suite::fleet::run_session(&replay_spec, &prepared, &cfg, victim.id);
    assert_eq!(rerun.bucket.as_ref(), Some(&m.bucket), "replay spec did not reproduce");
}
