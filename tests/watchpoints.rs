//! Software watchpoints (built on the nub's step extension, paper
//! Sec. 7.1) and the dbx-style string printers for `char *`.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{nm, pssym};
use ldb_suite::core::{Ldb, StopEvent};
use ldb_suite::machine::Arch;

fn session(src: &str, arch: Arch) -> Ldb {
    let c = compile("w.c", src, arch, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb
}

const COUNTER: &str = r#"
int hits;
int bump(int by) {
    hits = hits + by;
    return hits;
}
int main(void) {
    int i;
    for (i = 0; i < 3; i++)
        bump(i + 1);
    printf("%d\n", hits);
    return 0;
}
"#;

#[test]
fn global_watch_fires_on_every_store() {
    for arch in Arch::ALL {
        let mut ldb = session(COUNTER, arch);
        ldb.break_at("main", 1).unwrap();
        ldb.cont().unwrap();
        assert_eq!(ldb.watch_var("hits").unwrap(), "0", "{arch}");
        for expect in ["1", "3", "6"] {
            match ldb.cont_watch().unwrap() {
                StopEvent::Watchpoint { name, new, func, .. } => {
                    assert_eq!(name, "hits", "{arch}");
                    assert_eq!(new, expect, "{arch}");
                    assert_eq!(func, "bump", "{arch}");
                }
                other => panic!("{arch}: expected watchpoint, got {other:?}"),
            }
        }
        ldb.clear_watch("hits").unwrap();
        assert!(ldb.watchpoints().is_empty(), "{arch}");
        assert_eq!(ldb.cont_watch().unwrap(), StopEvent::Exited(0), "{arch}");
    }
}

#[test]
fn local_watch_is_scoped_to_its_frame() {
    // Watch `d` in the outermost invocation of a recursive procedure:
    // stores to the inner frames' `d` must not fire.
    let src = r#"
int depth(int n) {
    int d;
    d = n;
    if (n == 0) return 0;
    return 1 + depth(n - 1);
}
int main(void) {
    printf("%d\n", depth(3));
    return 0;
}
"#;
    let mut ldb = session(src, Arch::Mips);
    ldb.break_at("depth", 1).unwrap();
    ldb.cont().unwrap(); // outermost depth(3), before d = n
    ldb.watch_var("d").unwrap();
    let addr = ldb.target(0).breakpoints.addresses()[0];
    ldb.clear_breakpoint(addr).unwrap();
    match ldb.cont_watch().unwrap() {
        StopEvent::Watchpoint { name, new, .. } => {
            assert_eq!(name, "d");
            // Straight to 3: the inner frames' d = 2, 1, 0 were skipped.
            assert_eq!(new, "3");
        }
        other => panic!("expected watchpoint, got {other:?}"),
    }
}

#[test]
fn watch_without_watchpoints_is_plain_cont() {
    let mut ldb = session(COUNTER, Arch::Vax);
    ldb.break_at("bump", 1).unwrap();
    ldb.cont().unwrap();
    assert!(matches!(
        ldb.cont_watch().unwrap(),
        StopEvent::Breakpoint { .. }
    ));
}

#[test]
fn breakpoints_still_fire_while_watching() {
    let mut ldb = session(COUNTER, Arch::M68k);
    ldb.break_at("main", 1).unwrap();
    ldb.cont().unwrap();
    ldb.watch_var("hits").unwrap();
    ldb.break_at("bump", 2).unwrap(); // the stopping point right after the store
    // The store and the breakpoint coincide on one step; the breakpoint
    // wins (stepping onto a planted trap is a hit), and the watch reports
    // the change on the next resume.
    assert!(matches!(
        ldb.cont_watch().unwrap(),
        StopEvent::Breakpoint { func, .. } if func == "bump"
    ));
    match ldb.cont_watch().unwrap() {
        StopEvent::Watchpoint { name, old, new, .. } => {
            assert_eq!(name, "hits");
            assert_eq!(old, "0");
            assert_eq!(new, "1");
        }
        other => panic!("expected watchpoint, got {other:?}"),
    }
}

#[test]
fn watch_unknown_name_is_an_error() {
    let mut ldb = session(COUNTER, Arch::Sparc);
    ldb.break_at("main", 1).unwrap();
    ldb.cont().unwrap();
    assert!(ldb.watch_var("nothere").is_err());
    assert!(ldb.clear_watch("hits").is_err());
}

#[test]
fn char_pointers_print_address_and_string() {
    let src = r#"
char msg[16] = "hi there";
char *p;
char *q;
int main(void) {
    p = msg;
    q = p + 3;
    printf("%s\n", q);
    return 0;
}
"#;
    for arch in [Arch::Mips, Arch::Vax] {
        let mut ldb = session(src, arch);
        ldb.break_at("main", 3).unwrap();
        ldb.cont().unwrap();
        let p = ldb.print_var("p").unwrap();
        assert!(p.ends_with(" \"hi there\""), "{arch}: {p}");
        assert!(p.starts_with("0x"), "{arch}: {p}");
        let q = ldb.print_var("q").unwrap();
        assert!(q.ends_with(" \"there\""), "{arch}: {q}");
    }
}

#[test]
fn null_and_dangling_char_pointers_print_cleanly() {
    let src = r#"
char msg[8] = "ok";
char *p;
char *bad;
int main(void) {
    p = msg;
    bad = p + 9000000;
    printf("x\n");
    return 0;
}
"#;
    let mut ldb = session(src, Arch::M68k);
    ldb.break_at("main", 1).unwrap();
    ldb.cont().unwrap();
    // Before the assignments both are null: address only, no string.
    assert_eq!(ldb.print_var("p").unwrap(), "0x0");
    ldb.break_at("main", 3).unwrap();
    ldb.cont().unwrap();
    let bad = ldb.print_var("bad").unwrap();
    assert!(bad.ends_with("<bad address>"), "{bad}");
}
