//! Multi-unit programs: separately compiled units linked into one image,
//! with a combined top-level dictionary — "a single compilation unit or
//! any combination of compilation units, up to an entire program" (paper,
//! Sec. 2). Each unit has its own anchor symbol and statics; same-named
//! statics in different units stay distinct.

use ldb_suite::cc::driver::{compile_many, program_loader_ps, CompileOpts};
use ldb_suite::cc::pssym::PsMode;
use ldb_suite::core::{Ldb, StopEvent};
use ldb_suite::machine::{Arch, Machine, RunEvent};

const LIB_C: &str = r#"
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int lib_calls(void) { return calls; }
"#;

const MAIN_C: &str = r#"
static int calls;
int clamp(int v);
int lib_calls(void);
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 10; i++) {
        calls = calls + 2;
        s += clamp(i * 30);
    }
    printf("%d %d %d\n", s, lib_calls(), calls);
    return 0;
}
"#;

#[test]
fn two_units_link_and_run_on_all_targets() {
    for arch in Arch::ALL {
        let p = compile_many(
            &[("lib.c", LIB_C), ("main.c", MAIN_C)],
            arch,
            CompileOpts::default(),
        )
        .unwrap_or_else(|e| panic!("{arch}: {e}"));
        let mut m = Machine::load(&p.linked.image);
        loop {
            match m.run(10_000_000) {
                RunEvent::Paused { .. } => continue,
                RunEvent::Exited(0) => break,
                other => panic!("{arch}: {other:?} {}", m.output),
            }
        }
        // 0+30+60+90+100*6 = 780; lib's calls = 10; main's calls = 20.
        assert_eq!(m.output, "780 10 20\n", "{arch}");
        // Two anchor symbols in the image.
        let anchors = p
            .linked
            .image
            .symbols
            .iter()
            .filter(|s| s.name.starts_with("_stanchor"))
            .count();
        assert_eq!(anchors, 2, "{arch}");
    }
}

#[test]
fn debugging_across_units_with_a_combined_dictionary() {
    for arch in [Arch::Mips, Arch::Vax] {
        let p = compile_many(
            &[("lib.c", LIB_C), ("main.c", MAIN_C)],
            arch,
            CompileOpts::default(),
        )
        .unwrap();
        let loader = program_loader_ps(&p, PsMode::Deferred);
        let mut ldb = Ldb::new();
        ldb.spawn_program(&p.linked.image, &loader).unwrap();

        // Break in the library unit on the 4th call.
        ldb.break_at("clamp", 1).unwrap();
        for _ in 0..4 {
            let ev = ldb.cont().unwrap();
            assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: {ev:?}");
        }
        // Same-named statics resolve per unit: in clamp's scope, `calls`
        // is the library's counter (3 before this call's ++ runs... the
        // breakpoint is at `calls++`, so 3 completed).
        assert_eq!(ldb.print_var("calls").unwrap(), "3", "{arch}");
        assert_eq!(ldb.print_var("limit").unwrap(), "100", "{arch}");
        assert_eq!(ldb.eval("v").unwrap(), "90", "{arch}");
        // Walk into main's frame: its own static `calls` is 8 (2 per
        // iteration, 4 iterations).
        let (bt, _) = ldb.backtrace();
        let names: Vec<&str> = bt.iter().map(|(_, n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["clamp", "main"], "{arch}");
        ldb.select_frame(1).unwrap();
        assert_eq!(ldb.print_var("calls").unwrap(), "8", "{arch}: main's own static");
        assert_eq!(ldb.print_var("s").unwrap(), "90", "{arch}: 0+30+60");
        // Globals from either unit resolve everywhere.
        ldb.select_frame(0).unwrap();
        let addr = ldb.target(0).breakpoints.addresses()[0];
        ldb.clear_breakpoint(addr).unwrap();
        assert_eq!(ldb.cont().unwrap(), StopEvent::Exited(0), "{arch}");
    }
}

#[test]
fn sourcemap_and_line_breakpoints_span_units() {
    let p = compile_many(
        &[("lib.c", LIB_C), ("main.c", MAIN_C)],
        Arch::Sparc,
        CompileOpts::default(),
    )
    .unwrap();
    let loader = program_loader_ps(&p, PsMode::Eager);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&p.linked.image, &loader).unwrap();
    // Line 5 of lib.c is `calls++` — found through the merged tables.
    let addr = ldb.break_at_line(5).unwrap();
    let ev = ldb.cont().unwrap();
    let StopEvent::Breakpoint { func, addr: hit, .. } = ev else { panic!("{ev:?}") };
    assert_eq!(func, "clamp");
    assert_eq!(hit, addr);
}

#[test]
fn file_qualified_line_breakpoints_via_sourcemap() {
    // Both units have code on line 5; the sourcemap disambiguates.
    let p = compile_many(
        &[("lib.c", LIB_C), ("main.c", MAIN_C)],
        Arch::M68k,
        CompileOpts::default(),
    )
    .unwrap();
    let loader = program_loader_ps(&p, PsMode::Deferred);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&p.linked.image, &loader).unwrap();
    // lib.c line 5 is `calls++` inside clamp.
    let a1 = ldb.break_at_file_line("lib.c", 5).unwrap();
    let ev = ldb.cont().unwrap();
    let StopEvent::Breakpoint { func, addr, .. } = ev else { panic!("{ev:?}") };
    assert_eq!(func, "clamp");
    assert_eq!(addr, a1);
    ldb.clear_breakpoint(a1).unwrap();
    // main.c line 9 is `calls = calls + 2` inside main.
    let a2 = ldb.break_at_file_line("main.c", 9).unwrap();
    assert_ne!(a1, a2);
    let ev = ldb.cont().unwrap();
    let StopEvent::Breakpoint { func, .. } = ev else { panic!("{ev:?}") };
    assert_eq!(func, "main");
    // Unknown files are clean errors.
    assert!(ldb.break_at_file_line("nope.c", 1).is_err());
}

#[test]
fn detach_and_run_lets_the_target_finish_alone() {
    let p = compile_many(
        &[("lib.c", LIB_C), ("main.c", MAIN_C)],
        Arch::Mips,
        CompileOpts::default(),
    )
    .unwrap();
    let loader = program_loader_ps(&p, PsMode::Deferred);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&p.linked.image, &loader).unwrap();
    ldb.break_at("clamp", 1).unwrap();
    ldb.cont().unwrap();
    // Remove the breakpoint, then detach *running*: the target must
    // complete with no debugger attached.
    let addr = ldb.target(0).breakpoints.addresses()[0];
    ldb.clear_breakpoint(addr).unwrap();
    let nub = ldb.take_nub_handle(0).unwrap();
    ldb.target(0).client.borrow_mut().detach_and_run().unwrap();
    let m = nub.join.join().unwrap();
    assert_eq!(m.output, "780 10 20\n");
}
