//! The daemon line protocol's framing layer: `escape_line`/
//! `unescape_line` must round-trip any payload (embedded carriage
//! returns, trailing backslashes, text that *looks* like an escape),
//! and the server must strip only the line terminator — CRLF clients
//! and whitespace-significant payloads both survive.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use ldb_suite::daemon::{escape_line, unescape_line, Daemon, DaemonConfig};
use proptest::prelude::*;

/// Arbitrary payloads, weighted toward the characters the escaper cares
/// about: backslashes, both line terminators, and whitespace.
fn payload() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('\\'),
            Just('\n'),
            Just('\r'),
            Just('\t'),
            Just(' '),
            Just('n'),
            Just('r'),
            any::<char>(),
        ],
        0..64,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    /// Any payload — control characters, backslash runs, unicode —
    /// survives a round trip, and its escaped form never contains the
    /// line-framing characters.
    #[test]
    fn escape_round_trips_any_payload(s in payload()) {
        let escaped = escape_line(&s);
        prop_assert!(!escaped.contains('\n'), "framing byte escaped the escaper: {escaped:?}");
        prop_assert!(!escaped.contains('\r'), "CR must be escaped for CRLF clients: {escaped:?}");
        prop_assert_eq!(unescape_line(&escaped), s);
    }
}

#[test]
fn escape_covers_the_awkward_payloads() {
    // Embedded carriage return: escaped, not smuggled bare.
    assert_eq!(escape_line("a\rb"), "a\\rb");
    assert_eq!(unescape_line("a\\rb"), "a\rb");
    // Trailing backslash.
    assert_eq!(escape_line("x\\"), "x\\\\");
    assert_eq!(unescape_line(&escape_line("x\\")), "x\\");
    // Text that looks like an escape sequence (a literal `\` then `n`).
    assert_eq!(escape_line("a\\nb"), "a\\\\nb");
    assert_eq!(unescape_line(&escape_line("a\\nb")), "a\\nb");
    // CRLF inside a payload.
    assert_eq!(unescape_line(&escape_line("one\r\ntwo")), "one\r\ntwo");
    // Decoder leniency for older peers: unknown escapes pass the
    // escaped character through, a dangling backslash stays literal.
    assert_eq!(unescape_line("a\\qb"), "aqb");
    assert_eq!(unescape_line("tail\\"), "tail\\");
}

/// Only the line terminator is framing: a `cmd` payload keeps its
/// leading/trailing whitespace through dispatch (the old server trimmed
/// the escaped payload, silently altering whitespace-significant
/// commands).
#[test]
fn cmd_payload_whitespace_is_not_framing() {
    let daemon = Daemon::new(DaemonConfig {
        max_sessions: 3,
        watchdog: Some(Duration::from_secs(30)),
        ..Default::default()
    });
    let id = daemon.handle_line("open mips").strip_prefix("ok ").unwrap().to_string();
    let id2 = daemon.handle_line("open mips").strip_prefix("ok ").unwrap().to_string();

    // Identical commands on identical fresh tenants, with and without
    // edge whitespace in the payload: the script runner treats
    // blank-edge whitespace as insignificant, so both must succeed
    // identically — the payload must not be corrupted on the way there.
    let plain = daemon.handle_line(&format!("cmd {id} b clamp\\nc\\np calls"));
    let padded = daemon.handle_line(&format!("cmd {id2} \tb clamp\\nc\\np calls \t"));
    assert!(plain.starts_with("ok "), "{plain}");
    assert_eq!(plain, padded);

    // An escaped carriage return inside the payload reaches the tenant
    // as a real CR (the old decoder turned `\r` into a literal `r`,
    // corrupting the command).
    let t = daemon.handle_line(&format!("cmd {id} e 2+3\\r\\ne 10+20"));
    assert!(t.starts_with("ok "), "{t}");
    assert!(t.contains('5') && t.contains("30"), "{t}");
    assert!(!t.contains("error:"), "CR-bearing payload was corrupted: {t}");

    assert!(daemon.handle_line("shutdown").starts_with("ok "));
}

/// A CRLF-terminating client over a real socket: the server strips the
/// `\r` left behind by line splitting, and nothing else.
#[test]
fn crlf_client_over_tcp() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let daemon = Arc::new(Daemon::new(DaemonConfig {
        max_sessions: 2,
        watchdog: Some(Duration::from_secs(30)),
        ..Default::default()
    }));
    let server = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || daemon.serve(listener))
    };

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut request = |line: &str| -> String {
        write!(writer, "{line}\r\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let reply = reply.trim_end_matches(['\r', '\n']);
        reply
            .strip_prefix("ok ")
            .unwrap_or_else(|| panic!("`{line}` failed: {reply}"))
            .to_string()
    };

    assert_eq!(request("ping"), "pong");
    let id = request("open vax");
    let t = unescape_line(&request(&format!("cmd {id} b clamp\\nc\\nbt")));
    assert!(t.contains("breakpoint in clamp"), "{t}");
    assert!(t.contains("#0 clamp"), "{t}");
    let h = request("health");
    assert!(h.contains("\"sessions\":1"), "{h}");
    assert!(request("shutdown").starts_with("shutdown"));
    server.join().unwrap().unwrap();
}
