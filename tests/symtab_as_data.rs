//! "ldb's PostScript symbol tables can be manipulated by PostScript
//! programs. For example, we wrote PostScript code that reads the
//! top-level dictionary for the nub and constructs a Modula-3 description
//! of one of the nub's machine-dependent data structures." (paper, Sec. 7)
//!
//! The analog here: PostScript programs that walk a loaded symbol table
//! and generate (a) C extern declarations — a header file — and (b) a
//! summary report, exercising the tables as plain data.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::pssym::{emit, PsMode};
use ldb_suite::machine::Arch;
use ldb_suite::postscript::Interp;

const SRC: &str = r#"
struct pair { int lo; int hi; };
double ratio;
int counts[8];
static int hidden;
int bump(int by) { hidden += by; return hidden; }
int main(void) { return bump(1); }
"#;

/// PostScript that regenerates a C header from /externs: for every
/// variable entry, substitute the name into the type's %s declaration
/// pattern and print `extern <decl>;`.
const HEADER_GEN: &str = r#"
/emit-decl {                 % name entry -> (prints one line)
    dup /kind get (variable) eq {
        /type get /decl get  % name declpattern
        exch                 % declpattern name
        % Substitute the name for %s by scanning the pattern.
        (extern ) Put
        2 dict begin /&name exch def /&pat exch def
        /&i 0 def
        {
            &i &pat length ge { exit } if
            &pat &i get 37 eq               % '%'
            &i 1 add &pat length lt and
            { &pat &i 1 add get 115 eq } { false } ifelse  % 's'
            {
                &name Put
                /&i &i 2 add def
            } {
                &pat &i get CvChar Put
                /&i &i 1 add def
            } ifelse
        } loop
        end
        (;) Put Newline
    } { pop pop } ifelse
} def
/externs get { exch cvs exch emit-decl } forall
"#;

fn load_table(interp: &mut Interp, arch: Arch) {
    let c = compile("mix.c", SRC, arch, CompileOpts::default()).unwrap();
    let ps = emit(&c.unit, &c.funcs, arch, PsMode::Eager);
    interp.run_str(&ps).unwrap();
    // The top-level dictionary is left on the stack.
}

fn debug_interp() -> (Interp, std::rc::Rc<std::cell::RefCell<String>>) {
    let mut interp = Interp::new();
    let ctx = std::rc::Rc::new(std::cell::RefCell::new(ldb_suite::core::EvalCtx::new()));
    let dict = ldb_suite::core::psops::make_debug_dict(&mut interp, ctx);
    interp.push_dict(dict);
    let buf = std::rc::Rc::new(std::cell::RefCell::new(String::new()));
    interp.set_output(ldb_suite::postscript::Out::Shared(std::rc::Rc::clone(&buf)));
    (interp, buf)
}

#[test]
fn postscript_regenerates_a_c_header_from_the_symbol_table() {
    let (mut interp, buf) = debug_interp();
    load_table(&mut interp, Arch::Vax);
    interp
        .run_str(HEADER_GEN)
        .unwrap_or_else(|e| panic!("{e}\noutput so far: {}", buf.borrow()));
    let header = buf.borrow().clone();
    assert!(header.contains("extern double ratio;"), "{header}");
    assert!(header.contains("extern int counts[8];"), "{header}");
    // Statics are unit-private: not in /externs, so not in the header.
    assert!(!header.contains("hidden"), "{header}");
}

/// A second manipulation: count stopping points per procedure straight
/// from the tables.
#[test]
fn postscript_summarizes_stopping_points() {
    let (mut interp, buf) = debug_interp();
    load_table(&mut interp, Arch::Mips);
    interp
        .run_str(
            r#"/procs get {
                 dup /name get Put (: ) Put
                 /loci get length cvs Put ( stopping points) Put Newline
               } forall"#,
        )
        .unwrap();
    let report = buf.borrow().clone();
    assert!(report.contains("bump: 4 stopping points"), "{report}");
    assert!(report.contains("main: "), "{report}");
}

/// And a third: machine-dependent extras are ordinary dictionary data
/// (the 68020's register-save masks, paper Sec. 5).
#[test]
fn postscript_reads_save_masks() {
    let (mut interp, buf) = debug_interp();
    load_table(&mut interp, Arch::M68k);
    interp
        .run_str(
            r#"/externs get /bump get
               dup /framesize get cvs Put ( ) Put /savemask get cvs Put"#,
        )
        .unwrap();
    let out = buf.borrow().clone();
    let parts: Vec<&str> = out.split_whitespace().collect();
    assert_eq!(parts.len(), 2, "{out}");
    let framesize: u32 = parts[0].parse().unwrap();
    assert!(framesize > 0, "{out}");
}
