//! The newer features (watchpoints, target calls, step-over, conditions)
//! against multi-unit programs: symbols resolve per unit, so each feature
//! must work when the interesting code lives in a separately compiled
//! file.

use ldb_suite::cc::driver::{compile_many, program_loader_ps, CompileOpts};
use ldb_suite::cc::pssym;
use ldb_suite::core::{Ldb, StopEvent};
use ldb_suite::machine::Arch;

const LIB: &str = r#"
static int calls;
int tally;
int clamp(int v, int lo, int hi) {
    calls++;
    tally = tally + v;
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}
int callcount(void) { return calls; }
"#;

const MAIN: &str = r#"
int clamp(int v, int lo, int hi);
int callcount(void);
int total;
int main(void) {
    int i;
    for (i = 0; i < 5; i++)
        total += clamp(i * 10, 5, 25);
    printf("%d %d\n", total, callcount());
    return 0;
}
"#;

fn session(arch: Arch) -> Ldb {
    let c = compile_many(
        &[("lib.c", LIB), ("mainx.c", MAIN)],
        arch,
        CompileOpts::default(),
    )
    .unwrap();
    let loader = program_loader_ps(&c, pssym::PsMode::Deferred);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb
}

#[test]
fn watchpoint_on_another_units_global() {
    let mut ldb = session(Arch::Mips);
    ldb.break_at("main", 1).unwrap();
    ldb.cont().unwrap();
    // `tally` lives in lib.c; the watch must still resolve and fire.
    assert_eq!(ldb.watch_var("tally").unwrap(), "0");
    match ldb.cont_watch().unwrap() {
        StopEvent::Watchpoint { name, old, new, func, .. } => {
            assert_eq!(name, "tally");
            // clamp(0) stores the same value (tally += 0), which is not a
            // change; the first visible change is clamp(10).
            assert_eq!(old, "0");
            assert_eq!(new, "10");
            assert_eq!(func, "clamp");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn call_into_another_unit() {
    for arch in [Arch::Vax, Arch::Sparc] {
        let mut ldb = session(arch);
        ldb.break_at("main", 1).unwrap();
        ldb.cont().unwrap();
        // Call lib.c's extern directly, and observe its static moving
        // through its accessor.
        assert_eq!(ldb.call_function("clamp", &[40, 5, 25]).unwrap(), 25, "{arch}");
        assert_eq!(ldb.call_function("callcount", &[]).unwrap(), 1, "{arch}");
        // And from an expression, mixing units.
        assert_eq!(ldb.eval("clamp(3, 5, 25) + total").unwrap(), "5", "{arch}");
    }
}

#[test]
fn condition_on_a_lib_breakpoint_references_lib_locals() {
    let mut ldb = session(Arch::M68k);
    let addr = ldb.break_at("clamp", 1).unwrap();
    ldb.set_break_condition(addr, Some("v == 30".into())).unwrap();
    ldb.cont_watch().unwrap();
    assert_eq!(ldb.print_var("v").unwrap(), "30");
    // The unit-private static is visible at the stop (the stop precedes
    // this call's calls++, so three prior calls are recorded).
    assert_eq!(ldb.print_var("calls").unwrap(), "3");
}

#[test]
fn step_over_a_cross_unit_call() {
    let mut ldb = session(Arch::Mips);
    let a = ldb.break_at("main", 3).unwrap(); // the += body with the call
    ldb.cont().unwrap();
    ldb.clear_breakpoint(a).unwrap();
    // next over `total += clamp(...)`: the callee is in the other unit.
    ldb.step_over().unwrap();
    assert_eq!(ldb.eval("total").unwrap(), "5"); // clamp(0,5,25) = 5
    let (bt, _) = ldb.backtrace();
    assert_eq!(bt[0].1, "main");
}
