//! The flight-recorder journal is a *versioned format*, not incidental
//! debug output: every record a real session emits must parse under the
//! strict schema reader, re-encode to the exact bytes it came from, and
//! carry the current schema version. The reader must also be strict the
//! other way — records from the future (unknown version), records with
//! unknown or duplicate keys, and structurally illegal values are
//! rejected, so a replay tool can trust what it accepts.

use std::time::Duration;

use ldb_suite::cc::driver::{compile_many, program_load_plan, CompileOpts};
use ldb_suite::cc::pssym::PsMode;
use ldb_suite::core::{script, Ldb, ModuleTable};
use ldb_suite::machine::Arch;
use ldb_suite::nub::{spawn, ClientConfig, NubConfig};
use ldb_suite::trace::{validate, Layer, Severity, Trace, TraceConfig};

const SRC: &str = r#"
int square(int n) {
    return n * n;
}
int main(void) {
    int s;
    s = square(7);
    printf("%d\n", s);
    return 0;
}
"#;

/// A short session that makes all three layers talk: wire traffic from
/// attach and stepping, sandbox records from the module load, debugger
/// records from commands, plants, stops, and frame walks.
fn record_session(arch: Arch) -> String {
    let p = compile_many(&[("t.c", SRC)], arch, CompileOpts::default())
        .unwrap_or_else(|e| panic!("{arch}: compile: {e}"));
    let (frame_ps, modules) = program_load_plan(&p, PsMode::Deferred);
    let modules: Vec<ModuleTable> =
        modules.into_iter().map(|(name, ps)| ModuleTable { name, ps }).collect();
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let (trace, journal) = Trace::to_shared_buffer(TraceConfig::default());
    let mut ldb = Ldb::new();
    ldb.set_trace(trace.clone());
    // Long reply timeout: no retransmits on an in-process channel. The
    // 300ms event poll is hit exactly once, at attach (the nub's initial
    // bare announcement), keeping the journal timing-independent.
    let cfg = ClientConfig {
        reply_timeout: Duration::from_secs(2),
        retries: 4,
        backoff: Duration::from_millis(1),
        event_poll: Duration::from_millis(300),
        jitter_seed: 0,
    };
    ldb.attach_plan_with_config(Box::new(wire), &frame_ps, &modules, Some(handle), cfg)
        .unwrap_or_else(|e| panic!("{arch}: attach: {e}"));
    script::run_script(&mut ldb, "b square\nc\np n\nbt\ns\nc\n");
    trace.flush();
    journal.text()
}

#[test]
fn every_record_from_a_real_session_round_trips() {
    for arch in Arch::ALL {
        let journal = record_session(arch);
        assert!(!journal.is_empty(), "{arch}: empty journal");
        let mut layers = [false; Layer::ALL.len()];
        for (i, line) in journal.lines().enumerate() {
            let rec = validate(line)
                .unwrap_or_else(|e| panic!("{arch}: line {i} fails the schema: {e}\n  {line}"));
            // Canonical encoding: parsing and re-encoding reproduces the
            // journal line byte for byte.
            assert_eq!(rec.to_json(), line, "{arch}: line {i} is not canonical");
            assert_eq!(rec.seq, i as u64 + 1, "{arch}: line {i}: non-dense seq");
            layers[rec.layer.idx()] = true;
        }
        // An in-process session exercises the three session layers; the
        // net layer belongs to the daemon's TCP edge and the fleet layer
        // to the `ldbfleet` supervisor, so neither speaks here.
        for l in [Layer::Wire, Layer::Ps, Layer::Dbg] {
            assert!(layers[l.idx()], "{arch}: layer {} never spoke: {layers:?}", l.name());
        }
    }
}

#[test]
fn cross_check_is_not_applicable_when_wire_debug_is_filtered() {
    // The info-trace cross-check counts Debug-level `send`/`retx` wire
    // records; with the wire layer's minimum severity above Debug those
    // are filtered, and the report must say so rather than compare the
    // truncated journal against WireMetrics and cry MISMATCH.
    let arch = Arch::Mips;
    let p = compile_many(&[("t.c", SRC)], arch, CompileOpts::default()).unwrap();
    let (frame_ps, modules) = program_load_plan(&p, PsMode::Deferred);
    let modules: Vec<ModuleTable> =
        modules.into_iter().map(|(name, ps)| ModuleTable { name, ps }).collect();
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let trace = Trace::new(TraceConfig {
        min_sev: [
            Severity::Info,
            Severity::Debug,
            Severity::Debug,
            Severity::Debug,
            Severity::Debug,
        ],
        ..TraceConfig::default()
    });
    let mut ldb = Ldb::new();
    ldb.set_trace(trace.clone());
    ldb.attach_plan(Box::new(wire), &frame_ps, &modules, Some(handle)).unwrap();
    script::run_script(&mut ldb, "b square\nc\n");
    let report = script::trace_report(&ldb);
    assert!(report.contains("wire cross-check: n/a"), "unexpected report:\n{report}");
    assert!(!report.contains("MISMATCH"), "spurious mismatch:\n{report}");
}

#[test]
fn hand_built_records_encode_canonically() {
    let trace = Trace::ring(16);
    trace.emit(
        Layer::Wire,
        Severity::Debug,
        "send",
        &[("seq", 42u64.into()), ("req", "Fetch".into()), ("attempt", 0u64.into())],
    );
    trace.emit(Layer::Dbg, Severity::Info, "cmd", &[("text", "p \"x\\y\"".into())]);
    for rec in trace.tail(2) {
        let line = rec.to_json();
        let back = validate(&line).unwrap_or_else(|e| panic!("{e}\n  {line}"));
        assert_eq!(back, rec, "parse(to_json) must be the identity");
        assert_eq!(back.to_json(), line);
    }
}

#[test]
fn schema_rejects_malformed_and_foreign_records() {
    let good = r#"{"v":1,"seq":7,"layer":"wire","sev":"debug","kind":"send","fields":{"seq":42,"req":"Fetch","attempt":0,"len":18}}"#;
    let rec = validate(good).expect("the reference record is valid");
    assert_eq!(rec.to_json(), good);

    let bad: &[(String, &str)] = &[
        (good.replace("\"v\":1", "\"v\":2"), "future schema version"),
        (good.replace("\"v\":1,", ""), "missing version"),
        (good.replace("\"seq\":7,", ""), "missing seq"),
        (good.replace("\"layer\":\"wire\"", "\"layer\":\"disk\""), "unknown layer"),
        (good.replace("\"sev\":\"debug\"", "\"sev\":\"fatal\""), "unknown severity"),
        (good.replace("\"seq\":7", "\"seq\":7,\"extra\":1"), "unknown top-level key"),
        (good.replace("\"seq\":7", "\"seq\":7,\"seq\":8"), "duplicate top-level key"),
        (good.replace("\"seq\":42", "\"seq\":42,\"seq\":43"), "duplicate field key"),
        (good.replace("\"seq\":42", "\"seq\":[42]"), "nested container in fields"),
        (good.replace("\"seq\":42", "\"seq\":null"), "null field value"),
        (format!("{good}trailing"), "trailing garbage"),
        (good.replace("\"kind\":\"send\"", "\"kind\":7"), "non-string kind"),
        (String::new(), "empty line"),
    ];
    for (line, what) in bad {
        assert!(validate(line).is_err(), "schema accepted a record with {what}:\n  {line}");
    }
}
