//! Whole-pipeline integration tests spanning every crate: compiler →
//! linker → nub → debugger → PostScript symbol tables → expression server.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{nm, pssym};
use ldb_suite::core::{Ldb, StopEvent};
use ldb_suite::machine::Arch;

/// A program exercising structs, pointers, floats, statics, recursion, and
/// sub-word data at once.
const KITCHEN_SINK: &str = r#"
struct acc { int count; double sum; };
struct acc global;
static short history[16];
char tag;

void record(struct acc *a, double v) {
    a->count = a->count + 1;
    a->sum = a->sum + v;
    history[a->count % 16] = (short)a->count;
}

double mean(struct acc *a) {
    if (a->count == 0) return 0.0;
    return a->sum / a->count;
}

int main(void) {
    int i;
    tag = 'm';
    for (i = 1; i <= 10; i++)
        record(&global, i * 1.5);
    printf("%d %g %c\n", global.count, mean(&global), tag);
    return 0;
}
"#;

fn debug_on(arch: Arch) -> Ldb {
    let c = compile("sink.c", KITCHEN_SINK, arch, CompileOpts::default())
        .unwrap_or_else(|e| panic!("{arch}: {e}"));
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb
}

#[test]
fn structs_floats_and_subword_data_on_all_targets() {
    for arch in Arch::ALL {
        let mut ldb = debug_on(arch);
        // Stop inside record() on its 4th call.
        ldb.break_at("record", 3).unwrap(); // history[...] = ...
        for _ in 0..4 {
            let ev = ldb.cont().unwrap();
            assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: {ev:?}");
        }
        // The struct printer walks fields through the abstract memory.
        let g = ldb.print_var("global").unwrap();
        assert_eq!(g, "{count=4, sum=15.0}", "{arch}: {g}");
        // Pointer parameter: prints as an address, dereferences in
        // expressions.
        assert_eq!(ldb.eval("a->count").unwrap(), "4", "{arch}");
        assert_eq!(ldb.eval("a->sum").unwrap(), "15.0", "{arch}");
        // Float expression arithmetic.
        assert_eq!(ldb.eval("v * 2.0").unwrap(), "12.0", "{arch}");
        // Sub-word static array (shorts) through the ARRAY printer.
        let h = ldb.print_var("history").unwrap();
        assert!(h.starts_with("{0, 1, 2, 3,"), "{arch}: {h}");
        // A char global, printed with quotes.
        assert_eq!(ldb.print_var("tag").unwrap(), "'m'", "{arch}");
        // Run to completion and verify the program's own output.
        let addr = ldb.target(0).breakpoints.addresses()[0];
        ldb.clear_breakpoint(addr).unwrap();
        assert_eq!(ldb.cont().unwrap(), StopEvent::Exited(0), "{arch}");
        let out = ldb.take_nub_handle(0).unwrap().join.join().unwrap().output;
        assert_eq!(out, "10 8.25 m\n", "{arch}");
    }
}

#[test]
fn assignment_through_expressions_changes_execution() {
    for arch in [Arch::Sparc, Arch::Vax] {
        let mut ldb = debug_on(arch);
        ldb.break_at("mean", 1).unwrap(); // the a->count == 0 test
        ldb.cont().unwrap();
        // Lie about the count: the mean changes.
        ldb.eval("a->count = 5").unwrap();
        let addr = ldb.target(0).breakpoints.addresses()[0];
        ldb.clear_breakpoint(addr).unwrap();
        assert_eq!(ldb.cont().unwrap(), StopEvent::Exited(0), "{arch}");
        let out = ldb.take_nub_handle(0).unwrap().join.join().unwrap().output;
        assert_eq!(out, "10 16.5 m\n", "{arch}: 82.5/5 = 16.5");
    }
}

#[test]
fn registers_and_frames_agree_with_machine_data() {
    for arch in Arch::ALL {
        let mut ldb = debug_on(arch);
        ldb.break_at("record", 1).unwrap();
        ldb.cont().unwrap();
        let regs = ldb.registers().unwrap();
        assert_eq!(regs.len(), arch.data().nregs as usize, "{arch}");
        // The stack pointer register holds a plausible stack address.
        let sp = arch.data().sp as usize;
        assert!(regs[sp].1 > 0x2000, "{arch}: sp = {:#x}", regs[sp].1);
        // Frames: record <- main.
        let names: Vec<String> =
            ldb.backtrace().0.into_iter().map(|(_, n, _, _)| n).collect();
        assert_eq!(names, vec!["record", "main"], "{arch}");
    }
}

#[test]
fn breakpoints_at_source_lines() {
    // Line-based breakpoints resolve through the loci tables.
    let mut ldb = debug_on(Arch::Mips);
    // Line 10 is `history[a->count % 16] = ...`.
    let addr = ldb.break_at_line(10).unwrap();
    let ev = ldb.cont().unwrap();
    let StopEvent::Breakpoint { func, line, addr: hit } = ev else { panic!("{ev:?}") };
    assert_eq!(func, "record");
    assert_eq!(line, 10);
    assert_eq!(hit, addr);
}

#[test]
fn detach_and_reattach_from_a_new_session() {
    let arch = Arch::M68k;
    let c = compile("sink.c", KITCHEN_SINK, arch, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb.break_at("mean", 0).unwrap();
    ldb.cont().unwrap();
    assert_eq!(ldb.eval("a->count").unwrap(), "10");
    // Detach: the nub keeps the (stopped) target alive.
    let nub = ldb.detach_current().unwrap().expect("we spawned it");
    drop(ldb);

    // A brand-new session (fresh interpreter, fresh everything) attaches,
    // recovers the planted breakpoint from the nub, and carries on.
    let mut ldb2 = Ldb::new();
    let wire = nub.connect_channel().unwrap();
    ldb2.attach(Box::new(wire), &loader, None).unwrap();
    assert_eq!(
        ldb2.target(0).breakpoints.addresses().len(),
        1,
        "breakpoint recovered from the nub's plant records"
    );
    assert_eq!(ldb2.eval("a->count").unwrap(), "10");
    let addr = ldb2.target(0).breakpoints.addresses()[0];
    ldb2.clear_breakpoint(addr).unwrap();
    assert_eq!(ldb2.cont().unwrap(), StopEvent::Exited(0));
    let out = nub.join.join().unwrap().output;
    assert_eq!(out, "10 8.25 m\n");
}

#[test]
fn char_arrays_print_as_string_literals() {
    let src = r#"
        char greeting[32] = "hello, debugger";
        char partial[4];
        char tricky[8];
        int main(void) {
            partial[0] = 'h'; partial[1] = 'i';
            tricky[0] = 34; tricky[1] = 92; tricky[2] = 7;
            printf("%s\n", greeting);
            return 0;
        }
    "#;
    for arch in [Arch::Mips, Arch::M68k] {
        let c = compile("s.c", src, arch, CompileOpts::default()).unwrap();
        let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
        let loader = nm::loader_table_for(&c.linked.image, &symtab);
        let mut ldb = Ldb::new();
        ldb.spawn_program(&c.linked.image, &loader).unwrap();
        ldb.break_at("main", 6).unwrap(); // the printf
        ldb.cont().unwrap();
        assert_eq!(ldb.print_var("greeting").unwrap(), "\"hello, debugger\"", "{arch}");
        assert_eq!(ldb.print_var("partial").unwrap(), "\"hi\"", "{arch}");
        // Quote/backslash escaped; non-printables as octal.
        assert_eq!(ldb.print_var("tricky").unwrap(), r#""\"\\\007""#, "{arch}");
    }
}
