//! Chaos soak: seeded corruption of everything the debugger reads from
//! target data memory — saved frame pointers, return addresses, globals,
//! pointed-to strings — across all four architectures (MIPS in both byte
//! orders), 40 seeds each: 200 hostile-target scenarios.
//!
//! The contract under chaos is *graceful degradation*, not correct
//! answers: every command terminates, no command panics (the crash-proof
//! loop must stay idle — zero quarantines means the layers below it held),
//! every truncated backtrace carries a typed reason, and `info health`
//! accounts for what the defensive layers absorbed.

use std::time::Duration;

use ldb_suite::cc::driver::{compile_many, program_load_plan, CompileOpts, CompiledProgram};
use ldb_suite::cc::pssym::PsMode;
use ldb_suite::core::{script, ChaosConfig, Ldb, ModuleTable};
use ldb_suite::machine::{Arch, ByteOrder};
use ldb_suite::nub::{spawn, ClientConfig, NubConfig};

const SRC: &str = r#"
char msg[16] = "hi there";
char *p;
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int main(void) {
    int i; int s;
    s = 0;
    p = msg;
    for (i = 0; i < 10; i++) s += clamp(i * 30);
    printf("%d\n", s);
    return 0;
}
"#;

/// Inspection-heavy script: stack walks, typed prints (including a char
/// pointer the PSTRING printer will chase through corrupted memory),
/// expression evaluation, stepping, registers, and the health report.
const SCRIPT: &str = "\
b clamp
c
bt
p calls
p p
e v * 2 + 1
s
bt
regs
info health
c
";

const SEEDS_PER_CONFIG: u64 = 40;
const RATE: f64 = 0.05;

fn quiet_client() -> ClientConfig {
    ClientConfig {
        reply_timeout: Duration::from_secs(2),
        retries: 4,
        backoff: Duration::from_millis(1),
        event_poll: Duration::from_millis(300),
        jitter_seed: 0,
    }
}

fn compile_cfg(arch: Arch, order: Option<ByteOrder>) -> CompiledProgram {
    compile_many(&[("soak.c", SRC)], arch, CompileOpts { order, ..Default::default() })
        .unwrap_or_else(|e| panic!("{arch:?}: compile: {e}"))
}

/// One hostile session: attach with the chaos layer armed, run the
/// script, and return (transcript, the session's health counters).
fn run_chaos_session(name: &str, p: &CompiledProgram, seed: u64) -> (String, ldb_suite::core::Health) {
    let (frame_ps, modules) = program_load_plan(p, PsMode::Deferred);
    let modules: Vec<ModuleTable> =
        modules.into_iter().map(|(n, ps)| ModuleTable { name: n, ps }).collect();
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let mut ldb = Ldb::new();
    ldb.set_chaos(Some(ChaosConfig { seed, rate: RATE, window: None }));
    ldb.attach_plan_with_config(Box::new(wire), &frame_ps, &modules, Some(handle), quiet_client())
        .unwrap_or_else(|e| panic!("{name} seed {seed}: attach: {e}"));
    let transcript = script::run_script(&mut ldb, SCRIPT);
    (transcript, ldb.health())
}

/// The soak proper for one configuration.
fn soak(name: &str, arch: Arch, order: Option<ByteOrder>) {
    let p = compile_cfg(arch, order);
    let mut corruptions = 0u64;
    let mut truncated = 0u64;
    for seed in 1..=SEEDS_PER_CONFIG {
        let (transcript, health) = run_chaos_session(name, &p, seed);
        // The crash-proof loop never had to fire: the layers below it
        // absorbed every corruption.
        assert_eq!(
            health.quarantined_commands, 0,
            "{name} seed {seed}: a command panicked\n{transcript}"
        );
        // Every truncated walk states a typed reason.
        for line in transcript.lines() {
            if let Some(reason) = line.strip_prefix("walk truncated: ") {
                assert!(
                    ["Cycle", "DepthCap", "BadFrame", "WireError"]
                        .iter()
                        .any(|k| reason.starts_with(k)),
                    "{name} seed {seed}: untyped truncation `{line}`"
                );
            }
        }
        assert!(
            transcript.contains("health: "),
            "{name} seed {seed}: no health report\n{transcript}"
        );
        corruptions += health.chaos_corruptions;
        truncated += health.walks_truncated;
    }
    // The chaos layer actually fired — a soak that corrupts nothing
    // proves nothing.
    assert!(corruptions > 0, "{name}: chaos layer never fired over {SEEDS_PER_CONFIG} seeds");
    // And at least one seed produced a walk the guard had to truncate.
    assert!(truncated > 0, "{name}: no walk was ever truncated — rate too low to exercise the guard?");
}

#[test]
fn chaos_soak_mips_little() {
    soak("mips-little", Arch::Mips, Some(ByteOrder::Little));
}

#[test]
fn chaos_soak_mips_big() {
    soak("mips-big", Arch::Mips, Some(ByteOrder::Big));
}

#[test]
fn chaos_soak_sparc() {
    soak("sparc", Arch::Sparc, None);
}

#[test]
fn chaos_soak_m68k() {
    soak("m68k", Arch::M68k, None);
}

#[test]
fn chaos_soak_vax() {
    soak("vax", Arch::Vax, None);
}

/// Chaos is deterministic: the same seed replays byte-identically (the
/// corruption schedule is part of the recorded session, so the flight
/// recorder can replay hostile sessions too).
#[test]
fn chaos_is_deterministic_per_seed() {
    let p = compile_cfg(Arch::M68k, None);
    let (t1, h1) = run_chaos_session("m68k-replay", &p, 7);
    let (t2, h2) = run_chaos_session("m68k-replay", &p, 7);
    assert_eq!(t1, t2, "same seed, different transcript");
    assert_eq!(h1, h2, "same seed, different health counters");
    // A different seed corrupts a different schedule.
    let (t3, _) = run_chaos_session("m68k-replay", &p, 8);
    assert_ne!(t1, t3, "different seeds produced identical transcripts (chaos inert?)");
}

/// One hostile time-travel session: run to the last breakpoint stop
/// before the program would end, then rewind — reverse-step twice,
/// re-step forward, reverse-continue, continue back. Returns a log of
/// every stop report and machine fingerprint plus the health counters.
///
/// The chaos layer corrupts what the *debugger* reads, never what the
/// machine executes, so the journaled corruption schedule replays
/// deterministically and rewinding a hostile session is exactly as
/// bit-identical as rewinding a healthy one.
fn run_rewind_session(name: &str, p: &CompiledProgram, seed: u64) -> (String, ldb_suite::core::Health) {
    use ldb_suite::core::script::report_stop;

    let (frame_ps, modules) = program_load_plan(p, PsMode::Deferred);
    let modules: Vec<ModuleTable> =
        modules.into_iter().map(|(n, ps)| ModuleTable { name: n, ps }).collect();
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let mut ldb = Ldb::new();
    ldb.set_chaos(Some(ChaosConfig { seed, rate: RATE, window: None }));
    ldb.set_checkpoint_every(Some(50));
    ldb.attach_plan_with_config(Box::new(wire), &frame_ps, &modules, Some(handle), quiet_client())
        .unwrap_or_else(|e| panic!("{name} seed {seed}: attach: {e}"));
    let mut log = String::new();
    let mut put = |line: String| {
        log.push_str(&line);
        log.push('\n');
    };
    let fingerprint = |ldb: &mut Ldb| -> (u64, Vec<u8>) {
        (ldb.steps_retired().unwrap(), ldb.snapshot_bytes().unwrap())
    };
    ldb.break_at("clamp", 0).unwrap();
    // To the last stop: clamp is called ten times; stop at the tenth.
    for _ in 0..10 {
        put(report_stop(&ldb.cont_watch().unwrap()));
    }
    let last = fingerprint(&mut ldb);
    put(format!("last stop at step {}", last.0));
    // Rewind: two instructions back, two forward — bit-identical return.
    put(report_stop(&ldb.reverse_step_insn().unwrap()));
    put(report_stop(&ldb.reverse_step_insn().unwrap()));
    put(report_stop(&ldb.step_insn().unwrap()));
    put(report_stop(&ldb.step_insn().unwrap()));
    let again = fingerprint(&mut ldb);
    assert_eq!(last, again, "{name} seed {seed}: reverse-step round trip diverged");
    // And a whole breakpoint interval back and forward.
    put(report_stop(&ldb.reverse_cont().unwrap()));
    put(report_stop(&ldb.cont_watch().unwrap()));
    let again = fingerprint(&mut ldb);
    assert_eq!(last, again, "{name} seed {seed}: reverse-continue round trip diverged");
    (log, ldb.health())
}

/// Seeded last-stop rewinds under chaos, every architecture: zero
/// panics (no quarantined commands), deterministic per seed — the same
/// seed yields byte-identical logs and *exactly* equal health counters,
/// including the new checkpoint/restore accounting.
#[test]
fn chaos_rewinds_are_deterministic_and_exact() {
    for (name, arch, order) in [
        ("mips-little", Arch::Mips, Some(ByteOrder::Little)),
        ("mips-big", Arch::Mips, Some(ByteOrder::Big)),
        ("sparc", Arch::Sparc, None),
        ("m68k", Arch::M68k, None),
        ("vax", Arch::Vax, None),
    ] {
        let p = compile_cfg(arch, order);
        for seed in 1..=3 {
            let (log1, h1) = run_rewind_session(name, &p, seed);
            let (log2, h2) = run_rewind_session(name, &p, seed);
            assert_eq!(log1, log2, "{name} seed {seed}: rewind log diverged");
            assert_eq!(h1, h2, "{name} seed {seed}: health counters diverged");
            assert_eq!(h1.quarantined_commands, 0, "{name} seed {seed}: a command panicked");
            // Two reverse-steps restore once each; reverse-continue
            // restores once more (twice when its scan overshoots).
            assert!(h1.restores >= 3, "{name} seed {seed}: rewinds not counted: {h1:?}");
            assert!(h1.checkpoints_taken > 0, "{name} seed {seed}: no checkpoints: {h1:?}");
        }
    }
}

/// A deliberate panic inside a command is caught, journaled, counted, and
/// the session keeps answering: the crash-proof command loop end to end.
/// The panic is planted by poisoning the INT printer with a host operator
/// that panics, so a routine `p calls` blows up deep inside the
/// interpreter — about as far from the dispatch loop as a failure can be.
#[test]
fn panicking_command_is_quarantined_and_session_recovers() {
    let p = compile_cfg(Arch::M68k, None);
    let (frame_ps, modules) = program_load_plan(&p, PsMode::Deferred);
    let modules: Vec<ModuleTable> =
        modules.into_iter().map(|(n, ps)| ModuleTable { name: n, ps }).collect();
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let mut ldb = Ldb::new();
    ldb.attach_plan_with_config(Box::new(wire), &frame_ps, &modules, Some(handle), quiet_client())
        .unwrap();
    ldb.interp.register("BOOM", |_| panic!("deliberate test panic"));
    let before = script::run_script(&mut ldb, "b clamp\nc\np calls");
    assert!(before.contains("calls = "), "{before}");
    // Shadow the INT printer in the top (unit) dictionary: every int
    // print now panics.
    ldb.interp.run_str("/INT { BOOM } def").unwrap();
    let err = script::run_command_guarded(&mut ldb, "p", "calls")
        .expect_err("a panicking print must be quarantined, not Ok");
    let msg = err.to_string();
    assert!(msg.contains("command quarantined"), "{msg}");
    assert!(msg.contains("deliberate test panic"), "{msg}");
    assert_eq!(ldb.health().quarantined_commands, 1);
    // Heal the printer (the shadowing definition survives recovery: the
    // unit dictionary is the target's own) and keep debugging.
    ldb.interp.run_str("/INT { pop Fetch32 cvs Put } def").unwrap();
    let after = script::run_script(&mut ldb, "p calls\nbt\ninfo health");
    assert!(after.contains("calls = "), "session dead after recovery:\n{after}");
    assert!(after.contains("#0 clamp"), "stack gone after recovery:\n{after}");
    assert!(after.contains("1 quarantined commands"), "{after}");
}
