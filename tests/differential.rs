//! Differential testing: randomly generated programs must print exactly
//! the same output on all four simulated targets, debug and release, both
//! MIPS byte orders. Any divergence points at a back end, encoder,
//! scheduler, or simulator bug.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::machine::{Arch, ByteOrder, Machine, RunEvent};
use proptest::prelude::*;

/// A tiny expression grammar over variables a..e (always initialized).
#[derive(Debug, Clone)]
enum E {
    Var(u8),
    Lit(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    DivSafe(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Neg(Box<E>),
    Cmp(Box<E>, Box<E>),
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0u8..5).prop_map(E::Var),
        any::<i8>().prop_map(E::Lit),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| E::DivSafe(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..8).prop_map(|(a, s)| E::Shl(Box::new(a), s)),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Cmp(Box::new(a), Box::new(b))),
        ]
    })
}

fn emit(e: &E) -> String {
    match e {
        E::Var(v) => format!("{}", (b'a' + v % 5) as char),
        E::Lit(n) => format!("({n})"),
        E::Add(a, b) => format!("({} + {})", emit(a), emit(b)),
        E::Sub(a, b) => format!("({} - {})", emit(a), emit(b)),
        E::Mul(a, b) => format!("({} * {})", emit(a), emit(b)),
        // Guarded division: positive denominator, positive numerator
        // (C89 negative division rounding was implementation-defined, so
        // stick to the well-defined case).
        E::DivSafe(a, b) => format!(
            "((({} & 4095) + 7) / ((({}) & 63) + 3))",
            emit(a),
            emit(b)
        ),
        E::And(a, b) => format!("({} & {})", emit(a), emit(b)),
        E::Xor(a, b) => format!("({} ^ {})", emit(a), emit(b)),
        E::Shl(a, s) => format!("(({} & 65535) << {s})", emit(a)),
        E::Neg(a) => format!("(-{})", emit(a)),
        E::Cmp(a, b) => format!("({} < {})", emit(a), emit(b)),
    }
}

/// One random statement.
#[derive(Debug, Clone)]
enum S {
    Assign(u8, E),
    IfElse(E, u8, E, E),
    Loop(u8, u8, E),
}

fn stmt_strategy() -> impl Strategy<Value = S> {
    prop_oneof![
        (0u8..5, expr_strategy()).prop_map(|(v, e)| S::Assign(v, e)),
        (expr_strategy(), 0u8..5, expr_strategy(), expr_strategy())
            .prop_map(|(c, v, t, f)| S::IfElse(c, v, t, f)),
        (0u8..5, 1u8..6, expr_strategy()).prop_map(|(v, n, e)| S::Loop(v, n, e)),
    ]
}

fn program(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        match s {
            S::Assign(v, e) => {
                body.push_str(&format!("    {} = {};\n", (b'a' + v % 5) as char, emit(e)))
            }
            S::IfElse(c, v, t, f) => body.push_str(&format!(
                "    if ({}) {} = {}; else {} = {};\n",
                emit(c),
                (b'a' + v % 5) as char,
                emit(t),
                (b'a' + v % 5) as char,
                emit(f)
            )),
            S::Loop(v, n, e) => body.push_str(&format!(
                "    for (t = 0; t < {n}; t++) {} = {} + ({}) % 97;\n",
                (b'a' + v % 5) as char,
                (b'a' + v % 5) as char,
                emit(e)
            )),
        }
    }
    format!(
        "int main(void) {{\n    int a; int b; int c; int d; int e; int t;\n    \
         a = 1; b = 2; c = 3; d = 4; e = 5;\n{body}    \
         printf(\"%d %d %d %d %d\\n\", a, b, c, d, e);\n    return 0;\n}}\n"
    )
}

fn run_on(src: &str, arch: Arch, order: Option<ByteOrder>, debug: bool) -> String {
    run_opts(src, arch, CompileOpts { debug, order, ..Default::default() })
}

fn run_opts(src: &str, arch: Arch, opts: CompileOpts) -> String {
    let c = compile("rand.c", src, arch, opts)
    .unwrap_or_else(|e| panic!("{arch}: {e}\n{src}"));
    let mut m = Machine::load(&c.linked.image);
    loop {
        match m.run(20_000_000) {
            RunEvent::Paused { .. } => continue,
            RunEvent::Exited(0) => return m.output,
            other => panic!("{arch}: {other:?}\noutput: {:?}\n{src}", m.output),
        }
    }
}

/// The full differential check for one statement list: identical output
/// on all four targets, debug and release, both MIPS byte orders, and
/// (where it compiles) the naive-operand-order ablation. Shared between
/// the proptest driver and the named regression tests promoted from
/// `differential.proptest-regressions`.
fn check_all_targets_agree(stmts: &[S]) {
    let src = program(stmts);
    let reference = run_on(&src, Arch::Mips, Some(ByteOrder::Big), true);
    for arch in Arch::ALL {
        for debug in [true, false] {
            let out = run_on(&src, arch, None, debug);
            assert_eq!(&out, &reference, "{arch} debug={debug} diverged\n{src}");
        }
    }
    let le = run_on(&src, Arch::Mips, Some(ByteOrder::Little), true);
    assert_eq!(&le, &reference, "little-endian MIPS diverged\n{src}");
    // The naive-operand-order ablation mode must agree too when it
    // can compile the program at all (deep expressions exceed its
    // register capacity by design -- that is what SU ordering buys).
    if let Ok(c) = compile(
        "rand.c",
        &src,
        Arch::Vax,
        CompileOpts { naive_order: true, ..Default::default() },
    ) {
        let mut m = Machine::load(&c.linked.image);
        let naive = loop {
            match m.run(20_000_000) {
                RunEvent::Paused { .. } => continue,
                RunEvent::Exited(0) => break m.output.clone(),
                other => panic!("naive vax: {other:?}\n{src}"),
            }
        };
        assert_eq!(&naive, &reference, "naive ordering diverged\n{src}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    #[test]
    fn all_targets_agree(stmts in prop::collection::vec(stmt_strategy(), 1..8)) {
        check_all_targets_agree(&stmts);
    }
}

/// Promoted regression (shrunk by proptest, kept as a named case so the
/// exact program is pinned even if the strategy or seed file changes):
/// a single-iteration loop folding `a` through nested subtractions with
/// a negative literal — `a = a + (a + (a - (a - (-1)))) % 97`. Stresses
/// temporaries that reuse the destination register across a subtraction
/// chain where the inner `- (-1)` must not collapse to the wrong sign.
#[test]
fn regression_loop_nested_self_subtraction_with_negative_literal() {
    check_all_targets_agree(&[S::Loop(
        0,
        1,
        E::Add(
            Box::new(E::Var(0)),
            Box::new(E::Sub(
                Box::new(E::Var(0)),
                Box::new(E::Sub(Box::new(E::Var(0)), Box::new(E::Lit(-1)))),
            )),
        ),
    )]);
}

/// Promoted regression (shrunk by proptest): a single-iteration loop
/// multiplying `a` by a comparison result masked into it — `a * (a &
/// (a < a))`. The `<` produces a 0/1 flag value; the bug class here is
/// flag materialization feeding an `and`/`mul` chain on targets where
/// comparisons set condition codes rather than registers.
#[test]
fn regression_loop_multiply_by_comparison_mask() {
    check_all_targets_agree(&[S::Loop(
        0,
        1,
        E::Mul(
            Box::new(E::Var(0)),
            Box::new(E::And(
                Box::new(E::Var(0)),
                Box::new(E::Cmp(Box::new(E::Var(0)), Box::new(E::Var(0)))),
            )),
        ),
    )]);
}

/// The Sethi-Ullman ablation mode still produces correct code: both
/// orderings print identical output (evaluation order is unobservable
/// for these side-effect-free expressions).
#[test]
fn naive_ordering_agrees_with_su() {
    let src = program(&[
        S::Assign(0, E::Add(Box::new(E::Var(1)), Box::new(E::Mul(Box::new(E::Var(2)), Box::new(E::Lit(7)))))),
        S::Loop(3, 4, E::Xor(Box::new(E::Var(0)), Box::new(E::Lit(29)))),
    ]);
    for arch in Arch::ALL {
        let su = run_on(&src, arch, None, true);
        let c = compile(
            "rand.c",
            &src,
            arch,
            CompileOpts { naive_order: true, ..Default::default() },
        )
        .unwrap();
        let mut m = Machine::load(&c.linked.image);
        let naive = loop {
            match m.run(20_000_000) {
                RunEvent::Paused { .. } => continue,
                RunEvent::Exited(0) => break m.output.clone(),
                other => panic!("{arch}: {other:?}"),
            }
        };
        assert_eq!(naive, su, "{arch}");
    }
}
