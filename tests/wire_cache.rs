//! The block-granular wire cache, end to end: bulk `FetchBlock` frames
//! must agree byte-for-byte with single fetches, the read-through cache
//! must stay coherent across stores and resumes, a cached breakpoint
//! marathon over a lossy wire must be bit-identical to an uncached one
//! on every architecture and byte order, and the whole point of the
//! exercise — far fewer wire round trips — must actually hold.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{nm, pssym};
use ldb_suite::core::{AbstractMemory, Ldb, StopEvent};
use ldb_suite::machine::{Arch, ByteOrder};
use ldb_suite::nub::{spawn, ClientConfig, FaultConfig, FaultyWire, NubConfig, NubError};
use std::time::Duration;

const FIB: &str = r#"
int a[32];

int fib(int n) {
    int i;
    a[0] = 1;
    a[1] = 1;
    for (i = 2; i <= n; i++)
        a[i] = a[i - 1] + a[i - 2];
    return a[n];
}

int main(void) {
    printf("%d\n", fib(10));
    return 0;
}
"#;

/// Compile `src`, spawn a nub, and attach with the wire cache on or off.
/// Returns the session and the target's context address (a known-mapped
/// d-space landmark to probe around).
fn session(arch: Arch, src: &str, opts: CompileOpts, cache: bool) -> (Ldb, u32) {
    let c = compile("t.c", src, arch, opts).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.set_wire_cache(cache);
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    (ldb, c.linked.context_addr)
}

#[test]
fn fetch_block_matches_per_byte_fetches() {
    for arch in Arch::ALL {
        let (ldb, ctx) = session(arch, FIB, CompileOpts::default(), false);
        let client = ldb.target(0).client.clone();
        let base = ctx & !63;
        let (order, bytes) = client.borrow_mut().fetch_block('d', base, 64).unwrap();
        assert_eq!(bytes.len(), 64, "{arch}");
        for (i, &b) in bytes.iter().enumerate() {
            let one = client.borrow_mut().fetch('d', base + i as u32, 1).unwrap();
            assert_eq!(one, u64::from(b), "{arch}: byte {i}");
        }
        // The order byte is honest: assembling the first word per the
        // advertised order reproduces the nub's own 4-byte fetch.
        let word = client.borrow_mut().fetch('d', base, 4).unwrap();
        let assembled = if order == 1 {
            bytes[..4].iter().fold(0u64, |v, &b| (v << 8) | u64::from(b))
        } else {
            bytes[..4].iter().rev().fold(0u64, |v, &b| (v << 8) | u64::from(b))
        };
        assert_eq!(assembled, word, "{arch}: order byte {order} lies");
        // Malformed block requests are refused, not truncated.
        let e = client.borrow_mut().fetch_block('d', base, 0).unwrap_err();
        assert!(matches!(e, NubError::Nub(3)), "{arch}: {e}");
        let e = client.borrow_mut().fetch_block('d', base, 1 << 20).unwrap_err();
        assert!(matches!(e, NubError::Nub(3)), "{arch}: {e}");
        let e = client.borrow_mut().fetch_block('r', base, 64).unwrap_err();
        assert!(matches!(e, NubError::Nub(2)), "{arch}: {e}");
    }
}

#[test]
fn store_through_cache_invalidates_its_line() {
    let (ldb, ctx) = session(Arch::Mips, FIB, CompileOpts::default(), true);
    let t = ldb.target(0);
    let cache = t.cache.clone().expect("cache on by default");
    // A quiet, mapped corner at the bottom of the stack region, far from
    // both the saved context and the live frames near stack_top.
    let addr = i64::from((ctx + 4096) & !63);
    let _ = cache.fetch('d', addr, 4).unwrap();
    assert!(cache.stats().fills > 0, "fetch did not fill a line");
    cache.store('d', addr, 4, 0xdead_beef).unwrap();
    assert!(cache.stats().invalidated > 0, "store did not invalidate");
    assert_eq!(cache.fetch('d', addr, 4).unwrap(), 0xdead_beef, "stale line survived a store");
    // Write-through: the nub saw the store too.
    let raw = t.client.borrow_mut().fetch('d', addr as u32, 4).unwrap();
    assert_eq!(raw, 0xdead_beef);
}

#[test]
fn resume_invalidates_data_cache() {
    let src = r#"
int i;
int bump(void) { return 0; }
int main(void) {
    for (i = 0; i < 5; i++) bump();
    return 0;
}
"#;
    let (mut ldb, _) = session(Arch::Mips, src, CompileOpts::default(), true);
    ldb.break_at("bump", 0).unwrap();
    for k in 0..3 {
        let ev = ldb.cont().unwrap();
        assert!(matches!(ev, StopEvent::Breakpoint { .. }), "hit {k}: {ev:?}");
        // `i` changes between stops; a stale d-line would repeat 0.
        assert_eq!(ldb.print_var("i").unwrap(), k.to_string(), "hit {k}");
    }
    // Same discipline for single-stepping.
    let before = ldb.print_var("i").unwrap();
    let _ = ldb.step_insn().unwrap();
    let _ = before;
    let cache = ldb.target(0).cache.clone().unwrap();
    assert!(cache.stats().invalidated > 0, "resumes never invalidated the cache");
}

/// The fault-injection marathon program, with a double global so the
/// size-8 (cache-bypass) path is exercised at every stop.
fn marathon_src(start: i64) -> String {
    format!(
        r#"
int history[64];
int steps;
double ratio;

int collatz(int n) {{
    int here;
    here = n;
    history[steps % 64] = here;
    steps++;
    ratio = ratio + 0.5;
    if (n == 1) return 1;
    if (n % 2 == 0) return collatz(n / 2);
    return collatz(3 * n + 1);
}}

int main(void) {{
    int r;
    r = collatz({start});
    printf("%d %d\n", r, steps);
    return 0;
}}
"#
    )
}

fn trajectory(start: i64) -> Vec<i64> {
    let mut v = vec![start];
    while *v.last().unwrap() != 1 {
        let n = *v.last().unwrap();
        v.push(if n % 2 == 0 { n / 2 } else { 3 * n + 1 });
    }
    v
}

fn lossy_client() -> ClientConfig {
    ClientConfig {
        reply_timeout: Duration::from_millis(25),
        retries: 12,
        backoff: Duration::from_millis(1),
        event_poll: Duration::from_millis(5),
        jitter_seed: 0,
    }
}

/// Attach to the marathon program over a deterministically lossy wire,
/// with the block cache on or off.
fn attach_faulty(arch: Arch, opts: CompileOpts, start: i64, spec: &str, cache: bool) -> Ldb {
    let src = marathon_src(start);
    let c = compile("c.c", &src, arch, opts).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let handle = spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let faulty = FaultyWire::wrap(wire, FaultConfig::parse(spec).unwrap());
    let mut ldb = Ldb::new();
    ldb.set_wire_cache(cache);
    ldb.attach_with_config(Box::new(faulty), &loader, Some(handle), lossy_client())
        .unwrap_or_else(|e| panic!("{arch}: attach over faulty wire: {e}"));
    ldb.break_at("collatz", 3).unwrap_or_else(|e| panic!("{arch}: {e}"));
    ldb
}

/// Everything the debugger shows the user at each breakpoint hit, as one
/// comparable transcript: variables (including the size-8 double),
/// backtrace with exact pcs, and every register.
fn transcript(arch: Arch, ldb: &mut Ldb, hits: usize) -> Vec<String> {
    let mut out = Vec::new();
    for k in 0..hits {
        let ev = ldb.cont().unwrap_or_else(|e| panic!("{arch} hit {k}: {e}"));
        assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch} hit {k}: {ev:?}");
        for var in ["n", "here", "steps", "ratio"] {
            out.push(format!("{var}={}", ldb.print_var(var).unwrap()));
        }
        out.push(format!("bt={:?}", ldb.backtrace().0));
        out.push(format!("regs={:?}", ldb.registers().unwrap()));
    }
    out
}

#[test]
fn cached_marathon_is_bit_identical_to_uncached() {
    let start = 7;
    let hits = trajectory(start).len();
    let spec = "seed=7,drop=0.02,corrupt=0.02,dup=0.03";
    // Every architecture at its native byte order, plus MIPS at both
    // orders explicitly, so big-endian line assembly and the big-endian
    // double fixup both get a turn.
    let mut runs: Vec<(Arch, CompileOpts)> =
        Arch::ALL.into_iter().map(|a| (a, CompileOpts::default())).collect();
    for order in [ByteOrder::Big, ByteOrder::Little] {
        runs.push((Arch::Mips, CompileOpts { order: Some(order), ..Default::default() }));
    }
    for (arch, opts) in runs {
        let mut cached = attach_faulty(arch, opts, start, spec, true);
        let mut plain = attach_faulty(arch, opts, start, spec, false);
        let a = transcript(arch, &mut cached, hits);
        let b = transcript(arch, &mut plain, hits);
        assert_eq!(a, b, "{arch}: cache changed what the debugger reports");
        let stats = cached.target(0).cache.as_ref().unwrap().stats();
        assert!(stats.fills > 0, "{arch}: no block frames crossed the faulty wire");
        assert!(stats.hits > 0, "{arch}: cache never hit");
        assert!(plain.target(0).cache.is_none(), "{arch}: --no-wire-cache leaked a cache");
    }
}

/// A 20-frame recursion with enough global state that connecting to the
/// stopped target and inspecting it is dominated by memory traffic.
const DEEP: &str = r#"
int depth;
int trail[32];

int report(void) { return 0; }

int descend(int n) {
    int local;
    local = n;
    trail[depth] = n;
    depth++;
    if (n == 0) return report();
    return descend(n - 1) + 1;
}

int main(void) {
    printf("%d\n", descend(20));
    return 0;
}
"#;

/// The acceptance workload from the issue: connect to a target stopped
/// 20+ frames deep, walk the stack, and inspect it the way a user would
/// at a stop. Returns the wire-transaction count for the whole session.
fn deep_inspection(handle_wire: Box<dyn ldb_suite::nub::Wire>, loader: &str, cache: bool) -> u64 {
    let mut ldb = Ldb::new();
    ldb.set_wire_cache(cache);
    ldb.attach(handle_wire, loader, None).unwrap();
    let (bt, _) = ldb.backtrace();
    assert!(bt.len() >= 20, "cache={cache}: only {} frames", bt.len());
    for _ in 0..2 {
        for j in 0..32 {
            let _ = ldb.eval(&format!("trail[{j}]")).unwrap();
        }
        assert_eq!(ldb.print_var("depth").unwrap(), "21", "cache={cache}");
        ldb.registers().unwrap();
    }
    let n = ldb.target(0).client.borrow().metrics().transactions;
    if cache {
        let stats = ldb.target(0).cache.as_ref().unwrap().stats();
        assert!(stats.hits > stats.misses, "cache={cache}: mostly cold: {stats:?}");
    }
    n
}

#[test]
fn cache_cuts_wire_transactions_five_fold() {
    // Drive the target to the bottom of the recursion with a throwaway
    // session, then "crash" it. The nub preserves the deep stop.
    let c = compile("t.c", DEEP, Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let handle = spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let mut driver = Ldb::new();
    driver.attach(Box::new(handle.connect_channel().unwrap()), &loader, None).unwrap();
    driver.break_at("report", 0).unwrap();
    let ev = driver.cont().unwrap();
    assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{ev:?}");
    drop(driver);

    // Fresh connects to the preserved 22-frame stop, cache on then off:
    // identical sessions, so the transaction counts compare like for like.
    let cached = deep_inspection(Box::new(handle.connect_channel().unwrap()), &loader, true);
    let plain = deep_inspection(Box::new(handle.connect_channel().unwrap()), &loader, false);
    assert!(
        cached * 5 <= plain,
        "cache saves too little: {cached} transactions cached vs {plain} uncached"
    );
}
