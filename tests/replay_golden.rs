//! Deterministic record/replay for the session flight recorder.
//!
//! A recorded session is a command script plus the seeds that make the
//! simulated machine, the compiler, and the wire deterministic. Replay is
//! running the script again: same stops, same prints, same journal. These
//! tests drive a canonical session on every architecture (MIPS in both
//! byte orders) with the recorder in logical-clock mode and check that
//!
//!  1. two runs of the same session produce *byte-identical* transcripts
//!     and *byte-identical* JSONL journals,
//!  2. both match the golden copies recorded under `tests/golden/`
//!     (re-record with `REPLAY_BLESS=1 cargo test --test replay_golden`),
//!  3. the journal agrees with the client's own `WireMetrics` — every
//!     transaction appears as a `send` record, and
//!  4. every journal line round-trips through the strict schema parser.
//!
//! Determinism requires keeping timing-dependent wire traffic out of the
//! session: the client config uses a long reply timeout (no retransmits
//! on an in-process channel) and a long event poll (no keepalive pings).

use std::time::Duration;

use ldb_suite::cc::driver::{compile_many, program_load_plan, CompileOpts};
use ldb_suite::cc::pssym::PsMode;
use ldb_suite::core::{script, Ldb, ModuleTable};
use ldb_suite::machine::{Arch, ByteOrder};
use ldb_suite::nub::{spawn, ClientConfig, NubConfig};
use ldb_suite::trace::{validate, Layer, Trace, TraceConfig};

const LIB_C: &str = r#"
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int lib_calls(void) { return calls; }
"#;

const MAIN_C: &str = r#"
static int calls;
int clamp(int v);
int lib_calls(void);
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 10; i++) {
        calls = calls + 2;
        s += clamp(i * 30);
    }
    printf("%d %d %d\n", s, lib_calls(), calls);
    return 0;
}
"#;

/// The canonical session: plant, run, inspect data and stack, step three
/// ways, and read back the recorder's own self-report. Every command's
/// output lands in the transcript; every command, stop, frame walk, and
/// wire frame lands in the journal.
const SCRIPT: &str = "\
# canonical flight-recorder session
b clamp
c
bt
p v
p calls
e v * 2 + 1
s
n
f 0
regs
fin
c
info wire
info trace
";

/// Architectures under test: all four, MIPS in both byte orders.
const CONFIGS: &[(&str, Arch, Option<ByteOrder>)] = &[
    ("mips-big", Arch::Mips, Some(ByteOrder::Big)),
    ("mips-little", Arch::Mips, Some(ByteOrder::Little)),
    ("sparc", Arch::Sparc, None),
    ("m68k", Arch::M68k, None),
    ("vax", Arch::Vax, None),
];

/// No-surprises wire policy: an in-process channel answers in
/// microseconds, so a long reply timeout means retransmission never
/// fires, and an event poll far above any simulated run time means the
/// keepalive ping fires exactly once per session — at attach, where the
/// nub's initial bare (legacy) announcement forces one poll timeout
/// before the ping upgrades the peer to envelopes. Every later stop
/// arrives in well under the poll, so the journal carries only traffic
/// the session itself caused, every run, on every machine.
fn quiet_client() -> ClientConfig {
    ClientConfig {
        reply_timeout: Duration::from_secs(2),
        retries: 4,
        backoff: Duration::from_millis(1),
        event_poll: Duration::from_millis(300),
        jitter_seed: 0,
    }
}

/// Run the canonical session once; return (transcript, journal).
fn run_session(name: &str, arch: Arch, order: Option<ByteOrder>) -> (String, String) {
    let p = compile_many(
        &[("lib.c", LIB_C), ("main.c", MAIN_C)],
        arch,
        CompileOpts { order, ..Default::default() },
    )
    .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    let (frame_ps, modules) = program_load_plan(&p, PsMode::Deferred);
    let modules: Vec<ModuleTable> =
        modules.into_iter().map(|(name, ps)| ModuleTable { name, ps }).collect();
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();

    // Logical clock (no `t` field): timestamps are the one thing two
    // identical runs cannot reproduce.
    let (trace, journal) = Trace::to_shared_buffer(TraceConfig::default());
    let mut ldb = Ldb::new();
    ldb.set_trace(trace.clone());
    ldb.attach_plan_with_config(Box::new(wire), &frame_ps, &modules, Some(handle), quiet_client())
        .unwrap_or_else(|e| panic!("{name}: attach: {e}"));
    let transcript = script::run_script(&mut ldb, SCRIPT);

    // Journal-vs-metrics cross-check: every wire transaction the client
    // counted must appear in the journal exactly once as a first-attempt
    // send (send + send_err - retx), and retransmit counts must agree.
    let m = ldb.target(0).client.borrow().metrics();
    let sends = trace.kind_count(Layer::Wire, "send");
    let send_errs = trace.kind_count(Layer::Wire, "send_err");
    let retx = trace.kind_count(Layer::Wire, "retx");
    assert_eq!(sends + send_errs - retx, m.transactions, "{name}: journal vs transactions");
    assert_eq!(retx, m.retransmits, "{name}: journal vs retransmits");
    assert!(transcript.contains("(consistent)"), "{name}: info trace reported a mismatch");

    trace.flush();
    (transcript, journal.text())
}

fn golden_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(file)
}

/// Compare `got` against the golden copy, or re-record it under
/// `REPLAY_BLESS=1`.
fn check_golden(name: &str, kind: &str, file: &str, got: &str) {
    let path = golden_path(file);
    if std::env::var_os("REPLAY_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name}: no golden {kind} at {}: {e} (bless with REPLAY_BLESS=1)", path.display()));
    assert_eq!(got, want, "{name}: {kind} diverged from {} (re-record with REPLAY_BLESS=1 if the change is intended)", path.display());
}

#[test]
fn record_replay_is_bit_identical_and_matches_goldens() {
    for &(name, arch, order) in CONFIGS {
        let (transcript1, journal1) = run_session(name, arch, order);
        let (transcript2, journal2) = run_session(name, arch, order);
        assert_eq!(transcript1, transcript2, "{name}: replayed transcript diverged");
        assert_eq!(journal1, journal2, "{name}: replayed journal diverged");

        // Every journal line obeys the versioned schema and no line is
        // empty; sequence numbers are dense from 1.
        for (i, line) in journal1.lines().enumerate() {
            let rec = validate(line).unwrap_or_else(|e| panic!("{name}: journal line {i}: {e}"));
            assert_eq!(rec.seq, i as u64 + 1, "{name}: journal line {i}: seq gap");
            assert!(rec.t_us.is_none(), "{name}: wall-clock timestamp in logical-clock mode");
        }
        // All three layers spoke: the wire moved frames, the sandbox
        // loaded modules, the debugger journaled commands and stops.
        for layer in [Layer::Wire, Layer::Ps, Layer::Dbg] {
            assert!(
                journal1.contains(&format!("\"layer\":\"{}\"", layer.name())),
                "{name}: no {} records in the journal",
                layer.name()
            );
        }

        check_golden(name, "transcript", &format!("replay_{name}.txt"), &transcript1);
        check_golden(name, "journal", &format!("replay_{name}.jsonl"), &journal1);
    }
}
