//! Tests for the paper's Sec. 7.1 future-work features that this
//! reproduction implements: single-step breakpoints (no no-ops needed),
//! the nub's step protocol extension, and the event-driven client
//! interface with conditional breakpoints.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{nm, pssym};
use ldb_suite::core::{Events, Ldb, Outcome, StopEvent};
use ldb_suite::machine::Arch;

const COUNTDOWN: &str = r#"
int total;
int tick(int k) { total = total + k; return total; }
int main(void) {
    int i;
    for (i = 1; i <= 8; i++) tick(i);
    printf("%d\n", total);
    return 0;
}
"#;

fn session(arch: Arch, debug: bool) -> Ldb {
    let c = compile(
        "count.c",
        COUNTDOWN,
        arch,
        CompileOpts { debug, ..Default::default() },
    )
    .unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb
}

#[test]
fn single_step_breakpoints_work_without_noops() {
    // Compile WITHOUT -g no-ops: stopping-point addresses hold real
    // instructions. The paper's interim scheme cannot break here; the
    // single-step scheme can.
    for arch in Arch::ALL {
        let mut ldb = session(arch, false);
        // The nop-based scheme refuses (no no-op at the address).
        let addr = ldb.stop_address("tick", 1).unwrap();
        assert!(ldb.break_at("tick", 1).is_err(), "{arch}: nop scheme must refuse");
        // The single-step scheme plants over the real instruction.
        ldb.break_at_pc(addr).unwrap();
        let mut hits = 0;
        loop {
            match ldb.cont().unwrap() {
                StopEvent::Breakpoint { func, .. } => {
                    assert_eq!(func, "tick", "{arch}");
                    hits += 1;
                }
                StopEvent::Exited(0) => break,
                other => panic!("{arch}: {other:?}"),
            }
        }
        assert_eq!(hits, 8, "{arch}: the breakpoint re-arms after each single-step resume");
        let out = ldb.take_nub_handle(0).unwrap().join.join().unwrap().output;
        assert_eq!(out, "36\n", "{arch}: stepping must not corrupt execution");
    }
}

#[test]
fn step_instruction_by_instruction() {
    let mut ldb = session(Arch::Mips, true);
    ldb.break_at("tick", 0).unwrap();
    ldb.cont().unwrap();
    // Step a handful of instructions; the pc must advance monotonically
    // within tick (no branches at the function head).
    let mut last = 0;
    for _ in 0..4 {
        let ev = ldb.step_insn().unwrap();
        let StopEvent::Stepped { func, addr, .. } = ev else { panic!("{ev:?}") };
        assert_eq!(func, "tick");
        assert!(addr > last, "pc advances: {addr:#x} vs {last:#x}");
        last = addr;
    }
}

#[test]
fn conditional_breakpoints_via_the_event_interface() {
    let ldb = session(Arch::Vax, true);
    let mut events = Events::new(ldb);
    // Hold only when k == 5 (the 5th call).
    events.on_break_when("tick", 1, "k == 5").unwrap();
    let ev = events.run().unwrap();
    assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{ev:?}");
    assert_eq!(events.ldb.print_var("k").unwrap(), "5");
    assert_eq!(events.ldb.print_var("total").unwrap(), "10", "1+2+3+4");
    assert!(events.dispatched >= 5, "resumed through the earlier hits");
    // Resume to completion.
    let addr = events.ldb.target(0).breakpoints.addresses()[0];
    events.ldb.clear_breakpoint(addr).unwrap();
    assert_eq!(events.run().unwrap(), StopEvent::Exited(0));
}

#[test]
fn event_actions_can_mutate_the_target() {
    // A tracing action that also rewrites data mid-run: every call adds
    // 100 to k before the body runs.
    let ldb = session(Arch::M68k, true);
    let mut events = Events::new(ldb);
    events
        .on_break(
            "tick",
            1,
            Box::new(|ldb, _ev| {
                ldb.eval("k = k + 100")?;
                Ok(Outcome::Resume)
            }),
        )
        .unwrap();
    let ev = events.run().unwrap();
    assert_eq!(ev, StopEvent::Exited(0));
    let out = events.ldb.take_nub_handle(0).unwrap().join.join().unwrap().output;
    assert_eq!(out, "836\n", "36 + 8*100");
}

#[test]
fn fault_actions_fire() {
    let src = "int main(void) { int *p; p = 0; return *p; }";
    let c = compile("f.c", src, Arch::Sparc, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, Arch::Sparc, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    let mut events = Events::new(ldb);
    let seen = std::rc::Rc::new(std::cell::Cell::new(false));
    let seen2 = seen.clone();
    events.on_fault(Box::new(move |_ldb, ev| {
        assert!(matches!(ev, StopEvent::Fault { .. }));
        seen2.set(true);
        Ok(Outcome::Hold)
    }));
    let ev = events.run().unwrap();
    assert!(matches!(ev, StopEvent::Fault { .. }), "{ev:?}");
    assert!(seen.get());
}
