//! Debugger-initiated target calls: `Ldb::call_function` builds a call
//! frame by the target's own convention, runs the callee, catches the
//! sentinel return fault, and restores the pre-call context.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{nm, pssym};
use ldb_suite::core::{CallArg, Ldb, StopEvent};
use ldb_suite::machine::Arch;

const SRC: &str = r#"
int counter;
int add(int a, int b) { return a + b; }
int fact(int n) {
    counter++;
    if (n < 2) return 1;
    return n * fact(n - 1);
}
int negate(int v) { return -v; }
int main(void) {
    int x;
    x = add(2, 3);
    printf("%d\n", x);
    return 0;
}
"#;

fn stopped_session(arch: Arch) -> Ldb {
    let c = compile("c.c", SRC, arch, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb.break_at("main", 1).unwrap();
    ldb.cont().unwrap();
    ldb
}

#[test]
fn calls_run_by_each_targets_convention() {
    for arch in Arch::ALL {
        let mut ldb = stopped_session(arch);
        assert_eq!(ldb.call_function("add", &[7, 35]).unwrap(), 42, "{arch}");
        // Recursive callee: the staged frame supports real calls below it.
        assert_eq!(ldb.call_function("fact", &[5]).unwrap(), 120, "{arch}");
        // Negative values round-trip through the return register.
        assert_eq!(ldb.call_function("negate", &[17]).unwrap(), -17, "{arch}");
        assert_eq!(ldb.call_function("negate", &[-9]).unwrap(), 9, "{arch}");
    }
}

#[test]
fn side_effects_persist_but_context_is_restored() {
    for arch in [Arch::Mips, Arch::Vax] {
        let mut ldb = stopped_session(arch);
        let pc_before = ldb.stop_address("main", 1).unwrap();
        assert_eq!(ldb.print_var("counter").unwrap(), "0", "{arch}");
        ldb.call_function("fact", &[4]).unwrap();
        // The call really ran in the target: the global moved.
        assert_eq!(ldb.print_var("counter").unwrap(), "4", "{arch}");
        // But the stopped program is where it was, and resumes cleanly.
        assert_eq!(ldb.print_var("x").unwrap(), "0", "{arch}");
        let (bt, _) = ldb.backtrace();
        assert_eq!(bt[0].1, "main", "{arch}: {bt:?}");
        let _ = pc_before; // the breakpoint report below proves the pc
        match ldb.cont().unwrap() {
            StopEvent::Exited(0) => {}
            other => panic!("{arch}: {other:?}"),
        }
        let out = ldb.take_nub_handle(0).unwrap().join.join().unwrap().output;
        assert_eq!(out, "5\n", "{arch}");
    }
}

#[test]
fn breakpoint_during_call_aborts_and_restores() {
    let mut ldb = stopped_session(Arch::M68k);
    ldb.break_at("fact", 0).unwrap();
    let err = ldb.call_function("fact", &[4]).unwrap_err();
    assert!(err.to_string().contains("interrupted"), "{err}");
    // Context restored: the program still runs to its normal end.
    let addr = ldb
        .target(0)
        .breakpoints
        .addresses()
        .into_iter()
        .find(|_| true)
        .unwrap();
    ldb.clear_breakpoint(addr).unwrap();
    // Clear the remaining breakpoint too, then run out.
    for a in ldb.target(0).breakpoints.addresses() {
        ldb.clear_breakpoint(a).unwrap();
    }
    assert_eq!(ldb.cont().unwrap(), StopEvent::Exited(0));
}

#[test]
fn unknown_function_and_too_many_args_error() {
    let mut ldb = stopped_session(Arch::Mips);
    assert!(ldb.call_function("nosuch", &[]).unwrap_err().to_string().contains("no procedure"));
    // Arity is checked against the symbol table's recorded parameter
    // types before any convention-specific limit applies.
    assert!(ldb
        .call_function("add", &[1, 2, 3, 4, 5])
        .unwrap_err()
        .to_string()
        .contains("takes 2 argument(s), got 5"));
    // The failed attempts left the session usable.
    assert_eq!(ldb.call_function("add", &[20, 22]).unwrap(), 42);
}

#[test]
fn calls_compose_with_the_expression_server() {
    for arch in [Arch::Mips, Arch::M68k] {
        let mut ldb = stopped_session(arch);
        // Calls as subexpressions, nested calls as arguments, and
        // assignment of a call result to a target variable.
        assert_eq!(ldb.eval("fact(3) + 1").unwrap(), "7", "{arch}");
        assert_eq!(ldb.eval("add(fact(3), fact(4)) * 2").unwrap(), "60", "{arch}");
        ldb.eval("counter = negate(fact(3))").unwrap();
        assert_eq!(ldb.print_var("counter").unwrap(), "-6", "{arch}");
        // Non-proc identifiers with parens pass through untouched.
        assert_eq!(ldb.eval("(counter + 6)").unwrap(), "0", "{arch}");
        // Unbalanced call parens error cleanly.
        assert!(ldb.eval("fact(3").is_err(), "{arch}");
    }
}

#[test]
fn float_arguments_and_returns_on_every_convention() {
    let src = r#"
double scale(double x, int k) { return x * k + 0.5; }
int ratio(double a, double b) { return (int)(a / b); }
int main(void) { printf("ok\n"); return 0; }
"#;
    for arch in Arch::ALL {
        let c = compile("f.c", src, arch, CompileOpts::default()).unwrap();
        let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
        let loader = nm::loader_table_for(&c.linked.image, &symtab);
        let mut ldb = Ldb::new();
        ldb.spawn_program(&c.linked.image, &loader).unwrap();
        ldb.break_at("main", 0).unwrap();
        ldb.cont().unwrap();
        // Mixed double/int arguments, double return.
        let r = ldb
            .call_function_typed("scale", &[CallArg::Double(2.5), CallArg::Int(4)])
            .unwrap();
        assert_eq!(r.float, 10.5, "{arch}");
        // Two doubles, int return.
        let r = ldb
            .call_function_typed("ratio", &[CallArg::Double(9.0), CallArg::Double(2.0)])
            .unwrap();
        assert_eq!(r.int, 4, "{arch}");
        // The formatted entry point picks the right register from the
        // symbol table's decl pattern, and expressions accept float
        // literals as call arguments.
        assert_eq!(ldb.eval("scale(1.5, 2)").unwrap(), "3.5", "{arch}");
        assert_eq!(ldb.eval("ratio(scale(2.0, 4), 2.0)").unwrap(), "4", "{arch}");
    }
}

#[test]
fn single_precision_parameters_are_rejected_clearly() {
    let src = r#"
float thin(float x) { return x; }
int main(void) { printf("ok\n"); return 0; }
"#;
    let c = compile("t.c", src, Arch::Mips, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, Arch::Mips, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb.break_at("main", 0).unwrap();
    ldb.cont().unwrap();
    let err = ldb
        .call_function_typed("thin", &[CallArg::Double(1.5)])
        .unwrap_err();
    assert!(err.to_string().contains("float"), "{err}");
}

#[test]
fn call_in_a_breakpoint_condition() {
    let mut ldb = stopped_session(Arch::Vax);
    // A condition that calls into the target: stop when fact(counter)
    // exceeds 1 — counter starts at 0 (fact(0) = 1), and each condition
    // evaluation itself bumps counter via fact's side effect.
    let addr = ldb.break_at("add", 0).unwrap();
    ldb.set_break_condition(addr, Some("negate(0) == 0".into())).unwrap();
    match ldb.cont_watch().unwrap() {
        StopEvent::Breakpoint { func, .. } => assert_eq!(func, "add"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn nested_debugger_calls_from_a_deep_stop() {
    // Stop deep inside recursion, then call: the staged frame must not
    // corrupt the frames below it.
    let mut ldb = stopped_session(Arch::Sparc);
    // From main's stop, call fact(6) = 720 while x is still unassigned.
    assert_eq!(ldb.call_function("fact", &[6]).unwrap(), 720);
    assert_eq!(ldb.print_var("x").unwrap(), "0");
    assert!(matches!(ldb.cont().unwrap(), StopEvent::Exited(0)));
}
