//! Stress: long debugging sessions. At every one of dozens of breakpoint
//! hits, walk the stack, print variables, and evaluate expressions —
//! checking the debugger's view against the program's ground truth each
//! time. Catches state leaks between stops (stale frames, cache
//! corruption, pc bookkeeping) that single-stop tests miss.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{nm, pssym};
use ldb_suite::core::{Ldb, StopEvent};
use ldb_suite::machine::Arch;

const SRC: &str = r#"
int history[64];
int steps;

int collatz(int n) {
    int here;
    here = n;
    history[steps % 64] = here;
    steps++;
    if (n == 1) return 1;
    if (n % 2 == 0) return collatz(n / 2);
    return collatz(3 * n + 1);
}

int main(void) {
    int r;
    r = collatz(27);
    printf("%d %d\n", r, steps);
    return 0;
}
"#;

/// Ground truth: the collatz trajectory from 27.
fn trajectory() -> Vec<i64> {
    let mut v = vec![27i64];
    while *v.last().unwrap() != 1 {
        let n = *v.last().unwrap();
        v.push(if n % 2 == 0 { n / 2 } else { 3 * n + 1 });
    }
    v
}

#[test]
fn breakpoint_marathon_tracks_ground_truth() {
    let truth = trajectory();
    for arch in Arch::ALL {
        let c = compile("c.c", SRC, arch, CompileOpts::default()).unwrap();
        let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
        let loader = nm::loader_table_for(&c.linked.image, &symtab);
        let mut ldb = Ldb::new();
        ldb.spawn_program(&c.linked.image, &loader).unwrap();
        // Stop at `steps++` on every recursive call — 112 hits for n=27.
        ldb.break_at("collatz", 3).unwrap();
        for (k, &expect) in truth.iter().enumerate() {
            let ev = ldb.cont().unwrap();
            assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch} hit {k}: {ev:?}");
            // The parameter and local agree with the trajectory.
            assert_eq!(ldb.print_var("n").unwrap(), expect.to_string(), "{arch} hit {k}");
            assert_eq!(ldb.eval("here").unwrap(), expect.to_string(), "{arch} hit {k}");
            // The global counter counts hits so far.
            assert_eq!(ldb.eval("steps").unwrap(), k.to_string(), "{arch} hit {k}");
            // The stack is k+1 collatz frames deep (capped by the frame
            // walker's 64-frame limit) plus main.
            let (bt, _) = ldb.backtrace();
            let depth = bt.iter().filter(|(_, n, _, _)| n == "collatz").count();
            assert_eq!(depth, (k + 1).min(64), "{arch} hit {k}: depth");
            // Spot-check a parent frame every few hits.
            if k > 0 && k % 7 == 0 {
                ldb.select_frame(1).unwrap();
                assert_eq!(
                    ldb.print_var("here").unwrap(),
                    truth[k - 1].to_string(),
                    "{arch} hit {k}: parent frame"
                );
                ldb.select_frame(0).unwrap();
            }
            // And the history array through the ARRAY printer.
            if k == 10 {
                let h = ldb.print_var("history").unwrap();
                assert!(h.starts_with("{27, 82, 41, 124"), "{arch}: {h}");
            }
        }
        // Let it finish and verify the program's own output.
        let addr = ldb.target(0).breakpoints.addresses()[0];
        ldb.clear_breakpoint(addr).unwrap();
        assert_eq!(ldb.cont().unwrap(), StopEvent::Exited(0), "{arch}");
        let out = ldb.take_nub_handle(0).unwrap().join.join().unwrap().output;
        assert_eq!(out, format!("1 {}\n", truth.len()), "{arch}");
    }
}

#[test]
fn alternating_between_targets_under_load() {
    // Two stopped targets; interleave hundreds of operations between them
    // and make sure neither session's state bleeds into the other.
    let mut ldb = Ldb::new();
    let mut ids = Vec::new();
    for arch in [Arch::Mips, Arch::Vax] {
        let c = compile("c.c", SRC, arch, CompileOpts::default()).unwrap();
        let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
        let loader = nm::loader_table_for(&c.linked.image, &symtab);
        let id = ldb.spawn_program(&c.linked.image, &loader).unwrap();
        ldb.select_target(id).unwrap();
        ldb.break_at("collatz", 3).unwrap();
        // Advance the two targets by different amounts.
        let hits = if arch == Arch::Mips { 5 } else { 9 };
        for _ in 0..hits {
            ldb.cont().unwrap();
        }
        ids.push((id, hits));
    }
    let truth = trajectory();
    for round in 0..50 {
        for &(id, hits) in &ids {
            ldb.select_target(id).unwrap();
            let expect = truth[hits - 1];
            assert_eq!(ldb.print_var("n").unwrap(), expect.to_string(), "round {round}");
            // The breakpoint sits before `steps++`, so after `hits`
            // stops the counter reads hits - 1.
            assert_eq!(
                ldb.eval("steps + 1000").unwrap(),
                (hits - 1 + 1000).to_string(),
                "round {round}"
            );
        }
    }
}
