//! Time travel, proven differentially: at any stop, `reverse-step; step`
//! and `reverse-continue; continue` must reproduce the machine state
//! *bit-identically*. The fingerprint is the nub's pristine snapshot
//! image — every CPU register, the step clock, and every dirty memory
//! page, with planted traps lifted — so byte equality of two images is
//! bit equality of two machines. The invariant is checked on all four
//! architectures (MIPS in both byte orders), at fixed stops and under
//! proptest over checkpoint spacing, step depth, and reverse depth.
//!
//! Rewinding past the oldest reachable checkpoint must be a typed
//! `reverse truncated: …` error, never a panic and never a wrong state.

use std::cell::RefCell;
use std::time::Duration;

use ldb_suite::cc::driver::{compile_many, program_load_plan, CompileOpts, CompiledProgram};
use ldb_suite::cc::pssym::PsMode;
use ldb_suite::core::{Ldb, ModuleTable, StopEvent};
use ldb_suite::machine::{Arch, ByteOrder};
use ldb_suite::nub::{spawn, ClientConfig, NubConfig};
use proptest::prelude::*;

/// A loop of calls with data traffic in both directions: enough control
/// flow that a handful of single-steps from any stop lands somewhere
/// interesting (call, return, branch, store).
const SRC: &str = r#"
char msg[16] = "hi there";
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 10; i++) s += clamp(i * 30);
    printf("%d %d\n", s, calls);
    return 0;
}
"#;

/// Architectures under test: all four, MIPS in both byte orders.
const CONFIGS: &[(&str, Arch, Option<ByteOrder>)] = &[
    ("mips-big", Arch::Mips, Some(ByteOrder::Big)),
    ("mips-little", Arch::Mips, Some(ByteOrder::Little)),
    ("sparc", Arch::Sparc, None),
    ("m68k", Arch::M68k, None),
    ("vax", Arch::Vax, None),
];

fn quiet_client() -> ClientConfig {
    ClientConfig {
        reply_timeout: Duration::from_secs(2),
        retries: 4,
        backoff: Duration::from_millis(1),
        event_poll: Duration::from_millis(300),
        jitter_seed: 0,
    }
}

/// One compile per configuration per thread — the compiler is
/// deterministic, so every session sees the same image. (A process-wide
/// cache would want `Sync`, which the compiler's output types don't
/// promise.)
fn with_program<R>(idx: usize, f: impl FnOnce(&CompiledProgram) -> R) -> R {
    thread_local! {
        static CACHE: RefCell<Vec<Option<CompiledProgram>>> = const { RefCell::new(Vec::new()) };
    }
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if c.len() < CONFIGS.len() {
            c.resize_with(CONFIGS.len(), || None);
        }
        if c[idx].is_none() {
            let (name, arch, order) = CONFIGS[idx];
            c[idx] = Some(
                compile_many(
                    &[("rev.c", SRC)],
                    arch,
                    CompileOpts { order, ..Default::default() },
                )
                .unwrap_or_else(|e| panic!("{name}: compile: {e}")),
            );
        }
        f(c[idx].as_ref().unwrap())
    })
}

/// Attach a fresh session to configuration `idx`.
fn session(idx: usize) -> Ldb {
    with_program(idx, |p| attach(idx, p))
}

fn attach(idx: usize, p: &CompiledProgram) -> Ldb {
    let (frame_ps, modules) = program_load_plan(p, PsMode::Deferred);
    let modules: Vec<ModuleTable> =
        modules.into_iter().map(|(n, ps)| ModuleTable { name: n, ps }).collect();
    let handle = spawn(&p.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let mut ldb = Ldb::new();
    ldb.attach_plan_with_config(Box::new(wire), &frame_ps, &modules, Some(handle), quiet_client())
        .unwrap_or_else(|e| panic!("{}: attach: {e}", CONFIGS[idx].0));
    ldb
}

/// The machine fingerprint at a stop: (step clock, pristine snapshot).
fn state(ldb: &mut Ldb, ctx: &str) -> (u64, Vec<u8>) {
    let steps = ldb.steps_retired().unwrap_or_else(|e| panic!("{ctx}: steps: {e}"));
    let image = ldb.snapshot_bytes().unwrap_or_else(|e| panic!("{ctx}: snapshot: {e}"));
    (steps, image)
}

fn assert_same_state(a: &(u64, Vec<u8>), b: &(u64, Vec<u8>), ctx: &str) {
    assert_eq!(a.0, b.0, "{ctx}: step clocks differ");
    assert_eq!(a.1, b.1, "{ctx}: snapshot images differ ({} vs {} bytes)", a.1.len(), b.1.len());
}

// ---------------------------------------------------------------------
// Fixed differential checks, every architecture.
// ---------------------------------------------------------------------

#[test]
fn reverse_step_then_step_is_identity_on_every_arch() {
    for (idx, &(name, ..)) in CONFIGS.iter().enumerate() {
        let mut ldb = session(idx);
        ldb.break_at("clamp", 0).unwrap();
        ldb.cont().unwrap();
        ldb.checkpoint_now().unwrap_or_else(|e| panic!("{name}: checkpoint: {e}"));
        for k in 0..6 {
            ldb.step_insn().unwrap_or_else(|e| panic!("{name}: step {k}: {e}"));
            let here = state(&mut ldb, name);
            let back =
                ldb.reverse_step_insn().unwrap_or_else(|e| panic!("{name} step {k}: rs: {e}"));
            assert!(
                !matches!(back, StopEvent::Exited(_)),
                "{name}: reverse-step reported an exit: {back:?}"
            );
            let (steps_back, _) = state(&mut ldb, name);
            assert_eq!(steps_back, here.0 - 1, "{name}: reverse-step must retire one step");
            ldb.step_insn().unwrap_or_else(|e| panic!("{name} step {k}: refwd: {e}"));
            let again = state(&mut ldb, name);
            assert_same_state(&here, &again, &format!("{name} after step {k}"));
        }
    }
}

#[test]
fn reverse_continue_then_continue_is_identity_on_every_arch() {
    for (idx, &(name, ..)) in CONFIGS.iter().enumerate() {
        let mut ldb = session(idx);
        ldb.break_at("clamp", 0).unwrap();
        // Checkpoint at every resume so each breakpoint hit is covered.
        ldb.set_checkpoint_every(Some(1_000_000));
        for _hit in 0..3 {
            match ldb.cont().unwrap() {
                StopEvent::Breakpoint { ref func, .. } if func == "clamp" => {}
                other => panic!("{name}: expected clamp hit, got {other:?}"),
            }
        }
        let here = state(&mut ldb, name);
        let back = ldb.reverse_cont().unwrap_or_else(|e| panic!("{name}: rc: {e}"));
        match back {
            StopEvent::Breakpoint { ref func, .. } if func == "clamp" => {}
            other => panic!("{name}: reverse-continue should land on the previous hit, got {other:?}"),
        }
        match ldb.cont().unwrap() {
            StopEvent::Breakpoint { ref func, .. } if func == "clamp" => {}
            other => panic!("{name}: re-continue: {other:?}"),
        }
        let again = state(&mut ldb, name);
        assert_same_state(&here, &again, &format!("{name} reverse-continue round trip"));
    }
}

#[test]
fn reverse_next_lands_on_an_earlier_line_on_every_arch() {
    for (idx, &(name, ..)) in CONFIGS.iter().enumerate() {
        let mut ldb = session(idx);
        ldb.break_at("clamp", 0).unwrap();
        ldb.cont().unwrap();
        ldb.checkpoint_now().unwrap();
        // Two source-level steps forward, one reverse-next: the stop must
        // replay to a strictly earlier step count, and stepping the line
        // again must land back where the second `n` did.
        ldb.step_over().unwrap_or_else(|e| panic!("{name}: n: {e}"));
        ldb.step_over().unwrap_or_else(|e| panic!("{name}: n2: {e}"));
        let here = state(&mut ldb, name);
        ldb.reverse_next().unwrap_or_else(|e| panic!("{name}: rn: {e}"));
        let (steps_back, _) = state(&mut ldb, name);
        assert!(steps_back < here.0, "{name}: reverse-next did not go backward");
        ldb.step_over().unwrap_or_else(|e| panic!("{name}: refwd n: {e}"));
        let again = state(&mut ldb, name);
        assert_same_state(&here, &again, &format!("{name} reverse-next round trip"));
    }
}

// ---------------------------------------------------------------------
// Typed truncation: past the oldest checkpoint is an error, not a panic.
// ---------------------------------------------------------------------

#[test]
fn reverse_without_checkpoints_is_a_typed_error() {
    for (idx, &(name, ..)) in CONFIGS.iter().enumerate() {
        let mut ldb = session(idx);
        ldb.break_at("clamp", 0).unwrap();
        ldb.cont().unwrap();
        let err = ldb.reverse_step_insn().unwrap_err().to_string();
        assert!(err.starts_with("reverse truncated: "), "{name}: untyped error `{err}`");
        // The failed rewind left the session usable.
        assert!(matches!(ldb.step_insn().unwrap(), StopEvent::Stepped { .. }), "{name}");
    }
}

#[test]
fn reverse_past_the_oldest_checkpoint_is_a_typed_error() {
    let mut ldb = session(0);
    ldb.break_at("clamp", 0).unwrap();
    ldb.cont().unwrap();
    ldb.checkpoint_now().unwrap();
    // At the checkpoint itself, one step earlier is out of reach.
    let err = ldb.reverse_step_insn().unwrap_err().to_string();
    assert!(err.starts_with("reverse truncated: "), "untyped error `{err}`");
    assert!(err.contains("oldest checkpoint"), "unexpected reason `{err}`");
}

#[test]
fn breakpoint_churn_invalidates_older_checkpoints() {
    let mut ldb = session(0);
    ldb.break_at("clamp", 0).unwrap();
    ldb.cont().unwrap();
    ldb.checkpoint_now().unwrap();
    ldb.step_insn().unwrap();
    // Changing the plant set changes what the checkpointed interval
    // would replay under: the old checkpoint must be refused, typed.
    let addr = ldb.break_at("main", 0).unwrap();
    let err = ldb.reverse_step_insn().unwrap_err().to_string();
    assert!(err.starts_with("reverse truncated: "), "untyped error `{err}`");
    assert!(err.contains("breakpoints changed"), "unexpected reason `{err}`");
    // A fresh checkpoint under the new plant set restores reverse reach.
    ldb.clear_breakpoint(addr).unwrap();
    ldb.checkpoint_now().unwrap();
    ldb.step_insn().unwrap();
    let here = state(&mut ldb, "churn");
    ldb.reverse_step_insn().unwrap();
    ldb.step_insn().unwrap();
    assert_same_state(&here, &state(&mut ldb, "churn"), "churn round trip");
}

// ---------------------------------------------------------------------
// Property: the identity holds at arbitrary depths and spacings.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// From a breakpoint stop, step `fwd` instructions with checkpoints
    /// every `every` steps, then rewind `back ≤ fwd` single steps and
    /// re-execute forward: the machine must pass through bit-identical
    /// states, and end bit-identical to where it started.
    #[test]
    fn reverse_forward_round_trip(
        idx in 0usize..CONFIGS.len(),
        every in 1u64..9,
        fwd in 1usize..24,
        back in 1usize..6,
    ) {
        let name = CONFIGS[idx].0;
        let mut ldb = session(idx);
        ldb.break_at("clamp", 0).unwrap();
        ldb.set_checkpoint_every(Some(every));
        ldb.cont().unwrap();
        ldb.checkpoint_now().unwrap();
        let mut trail: Vec<(u64, Vec<u8>)> = Vec::new();
        for _ in 0..fwd {
            ldb.step_insn().unwrap();
            trail.push(state(&mut ldb, name));
        }
        let back = back.min(fwd);
        for b in 1..=back {
            let ev = ldb.reverse_step_insn()
                .unwrap_or_else(|e| panic!("{name} fwd={fwd} back={b}: rs: {e}"));
            prop_assert!(!matches!(ev, StopEvent::Exited(_)), "{name}: rs exited");
        }
        for b in (0..back).rev() {
            ldb.step_insn().unwrap();
            let expect = &trail[fwd - 1 - b];
            let got = state(&mut ldb, name);
            prop_assert_eq!(&got.0, &expect.0, "{} step clock diverged", name);
            prop_assert_eq!(&got.1, &expect.1, "{} snapshot diverged", name);
        }
    }

    /// `reverse-continue; continue` from the `hit`-th breakpoint stop is
    /// the identity, for arbitrary checkpoint spacing.
    #[test]
    fn reverse_continue_round_trip(
        idx in 0usize..CONFIGS.len(),
        every in prop_oneof![Just(1u64), Just(7), Just(100), Just(1_000_000)],
        hits in 2usize..6,
    ) {
        let name = CONFIGS[idx].0;
        let mut ldb = session(idx);
        ldb.break_at("clamp", 0).unwrap();
        ldb.set_checkpoint_every(Some(every));
        for _ in 0..hits {
            match ldb.cont().unwrap() {
                StopEvent::Breakpoint { .. } => {}
                other => panic!("{name}: expected a hit, got {other:?}"),
            }
        }
        let here = state(&mut ldb, name);
        ldb.reverse_cont().unwrap_or_else(|e| panic!("{name} hits={hits}: rc: {e}"));
        let (steps_back, _) = state(&mut ldb, name);
        prop_assert!(steps_back < here.0, "{} reverse-continue went nowhere", name);
        match ldb.cont().unwrap() {
            StopEvent::Breakpoint { .. } => {}
            other => panic!("{name}: re-continue: {other:?}"),
        }
        let again = state(&mut ldb, name);
        prop_assert_eq!(&here.0, &again.0, "{} step clock diverged", name);
        prop_assert_eq!(&here.1, &again.1, "{} snapshot diverged", name);
    }

    /// Rewinding deeper than history reaches must end in a typed
    /// truncation — never a panic, never a silently wrong state.
    #[test]
    fn too_deep_reverse_is_typed_not_a_panic(
        idx in 0usize..CONFIGS.len(),
        fwd in 0usize..6,
    ) {
        let name = CONFIGS[idx].0;
        let mut ldb = session(idx);
        ldb.break_at("clamp", 0).unwrap();
        ldb.cont().unwrap();
        ldb.checkpoint_now().unwrap();
        for _ in 0..fwd {
            ldb.step_insn().unwrap();
        }
        // fwd steps of history exist; fwd+1 rewinds must hit the wall.
        let mut truncated = None;
        for _ in 0..=fwd {
            if let Err(e) = ldb.reverse_step_insn() {
                truncated = Some(e.to_string());
                break;
            }
        }
        let reason = truncated.unwrap_or_else(|| {
            ldb.reverse_step_insn().unwrap_err().to_string()
        });
        prop_assert!(
            reason.starts_with("reverse truncated: "),
            "{} untyped truncation `{}`", name, reason
        );
        // And the session still works forward.
        prop_assert!(!matches!(ldb.step_insn().unwrap(), StopEvent::Exited(_)), "{}", name);
    }
}
