//! End-to-end tests of the `ldb` command-line binary: spawn the real
//! executable, feed it command scripts on stdin, and check the session
//! transcript. This covers the CLI layer (parsing, conditions, displays,
//! session state) that the library tests cannot reach.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_ldb(args: &[&str], script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ldb"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ldb");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn write_src(name: &str, body: &str) -> String {
    let dir = std::env::temp_dir().join("ldb-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path.to_str().unwrap().to_string()
}

const FIB: &str = r#"
int a[25];
int fib(void) {
    int i;
    a[0] = 1; a[1] = 1;
    for (i = 2; i < 25; i++)
        a[i] = a[i-1] + a[i-2];
    return a[24];
}
int main(void) {
    printf("%d\n", fib());
    return 0;
}
"#;

#[test]
fn break_print_continue_session() {
    let f = write_src("fib.c", FIB);
    for arch in ["mips", "m68k", "sparc", "vax"] {
        let out = run_ldb(&[&f, "--arch", arch], "b fib 4\nc\np i\ne a[i-1]\nc\nq\n");
        assert!(out.contains("i = 2"), "{arch}:\n{out}");
        assert!(out.contains("(ldb) 1\n"), "{arch}:\n{out}"); // a[1]
    }
}

#[test]
fn conditional_breakpoint_skips_until_true() {
    let f = write_src("fib.c", FIB);
    let out = run_ldb(
        &[&f, "--arch", "mips"],
        "b fib 4 if i == 10\nc\np i\nq\n",
    );
    assert!(out.contains("if i == 10"), "{out}");
    assert!(out.contains("i = 10"), "{out}");
    // Exactly one breakpoint report: the nine false hits were silent.
    assert_eq!(out.matches("breakpoint in fib").count(), 1, "{out}");
}

#[test]
fn empty_condition_plants_nothing() {
    let f = write_src("fib.c", FIB);
    let out = run_ldb(&[&f, "--arch", "mips"], "b fib 4 if
info
q
");
    assert!(out.contains("usage: b <func> [n] if <expr>"), "{out}");
    assert!(!out.contains("breakpoint at 0x"), "{out}");
}

#[test]
fn float_condition_zero_is_false() {
    let src = r#"
double ratio;
int poke(void) { ratio = ratio + 0.5; return 0; }
int main(void) {
    int i;
    for (i = 0; i < 4; i++) poke();
    return 0;
}
"#;
    let f = write_src("fc.c", src);
    // `if ratio` is 0.0 on the first hit, then 0.5, 1.0, 1.5: three stops.
    let out = run_ldb(
        &[&f, "--arch", "vax"],
        "b poke 1 if ratio
c
p ratio
c
c
c
q
",
    );
    assert_eq!(out.matches("breakpoint in poke").count(), 3, "{out}");
    assert!(out.contains("ratio = 0.5"), "{out}");
}

#[test]
fn display_reprints_at_every_stop() {
    let f = write_src("fib.c", FIB);
    let out = run_ldb(
        &[&f, "--arch", "vax"],
        "b fib 4\ndisplay a[i-1]\nc\nc\nc\nq\n",
    );
    // i = 2, 3, 4 at the three stops: a[i-1] = 1, 2, 3.
    assert!(out.contains("0: a[i-1] = 1"), "{out}");
    assert!(out.contains("0: a[i-1] = 2"), "{out}");
    assert!(out.contains("0: a[i-1] = 3"), "{out}");
}

#[test]
fn undisplay_and_info_list_state() {
    let f = write_src("fib.c", FIB);
    let out = run_ldb(
        &[&f, "--arch", "mips"],
        "b fib 0\nc\ndisplay a[0]\ndisplay a[1]\nundisplay 0\ninfo\nq\n",
    );
    assert!(out.contains("display 0: a[1]"), "{out}");
    assert!(!out.contains("a[0]\n(ldb) q"), "{out}");
    let bad = run_ldb(&[&f, "--arch", "mips"], "undisplay 7\nq\n");
    assert!(bad.contains("error: no display 7"), "{bad}");
}

#[test]
fn examine_dumps_memory_with_ascii_column() {
    let src = r#"
char banner[24] = "EXAMINE-ME";
int main(void) { printf("%s\n", banner); return 0; }
"#;
    let f = write_src("ex.c", src);
    // Find banner's address via p, then hex-dump around the data segment.
    let out = run_ldb(&[&f, "--arch", "m68k"], "b main 0\nc\nx 0x1000 256\nq\n");
    // The dump must contain rows with hex and an ASCII gutter, and the
    // string literal is somewhere in the data image.
    assert!(out.contains("0x00001000"), "{out}");
    // The literal lands in the data image (it may straddle a dump row).
    assert!(out.contains("EXAMINE-"), "{out}");
    assert!(out.contains("45 58 41 4d 49 4e 45 2d"), "{out}"); // "EXAMINE-" in hex
}

#[test]
fn watch_session_at_the_cli() {
    let src = r#"
int hits;
int bump(int by) { hits = hits + by; return hits; }
int main(void) {
    int i;
    for (i = 0; i < 3; i++) bump(i + 1);
    printf("%d\n", hits);
    return 0;
}
"#;
    let f = write_src("w.c", src);
    let out = run_ldb(
        &[&f, "--arch", "sparc"],
        "b main 1\nc\nw hits\nc\nc\ndw hits\nc\nq\n",
    );
    assert!(out.contains("watching hits (currently 0)"), "{out}");
    assert!(out.contains("watchpoint: hits changed 0 -> 1"), "{out}");
    assert!(out.contains("watchpoint: hits changed 1 -> 3"), "{out}");
    assert!(out.contains("target exited with status 0"), "{out}");
}

#[test]
fn tcp_flag_debugs_over_a_real_socket() {
    let f = write_src("fib.c", FIB);
    let out = run_ldb(
        &[&f, "--arch", "sparc", "--tcp"],
        "b fib 4 if i == 24\nc\np i\ne a[23] + a[22]\nc\nq\n",
    );
    assert!(out.contains("connected over tcp://127.0.0.1:"), "{out}");
    assert!(out.contains("i = 24"), "{out}");
    assert!(out.contains("75025"), "{out}"); // a[23] + a[22] over the socket
    assert!(out.contains("target exited with status 0"), "{out}");
}

#[test]
fn detach_preserves_state_and_attach_recovers_breakpoints() {
    let f = write_src("fib.c", FIB);
    let out = run_ldb(
        &[&f, "--arch", "mips"],
        "b fib 4 if i == 20
c
p i
detach
attach
info
p i
q
",
    );
    assert!(out.contains("detached; program state preserved"), "{out}");
    assert!(out.contains("reattached; breakpoints recovered"), "{out}");
    // The program is exactly where it was...
    assert_eq!(out.matches("i = 20").count(), 2, "{out}");
    // ...and the plant was recovered from the nub (conditions are
    // debugger-side state and do not survive, per the paper's model).
    let after = out.split("reattached").nth(1).unwrap();
    assert!(after.contains("breakpoint at 0x"), "{out}");
    // Misuse probes.
    let bad = run_ldb(&[&f, "--arch", "mips"], "attach
q
");
    assert!(bad.contains("nothing detached"), "{bad}");
}

#[test]
fn core_dump_and_post_mortem_repair() {
    let src = r#"
int depth;
int *p;
int poke(int n) {
    depth = n;
    if (n == 3) return *p;
    return poke(n + 1);
}
int main(void) {
    printf("starting\n");
    poke(0);
    printf("never\n");
    return 0;
}
"#;
    let f = write_src("crash.c", src);
    let corep = std::env::temp_dir().join("ldb-cli-tests").join("t.core");
    let core = corep.to_str().unwrap();
    // Phase 1: run undebugged; the null deref dumps core.
    let out = run_ldb(&[&f, "--arch", "m68k", "--run", "--core", core], "");
    assert!(out.contains("starting"), "{out}");
    assert!(out.contains("faulted; core dumped"), "{out}");
    // Phase 2: post-mortem — full stack and variables from the file
    // (no --arch: the core fixes it).
    let out = run_ldb(&[&f, "--core", core], "bt
p depth
p n
f 2
p n
q
");
    assert!(out.contains("post-mortem session"), "{out}");
    assert!(out.contains("#4  main"), "{out}");
    assert!(out.contains("depth = 3"), "{out}");
    assert_eq!(out.matches("n = 3").count(), 1, "{out}");
    assert!(out.contains("n = 1"), "{out}");
    // Phase 3: repair the pointer, restart the statement, resume.
    let out = run_ldb(
        &[&f, "--core", core],
        "e p = 0x11008
pc 0x103a
c
q
",
    );
    assert!(out.contains("target exited with status 0"), "{out}");
    // Malformed cores are rejected cleanly.
    let bad = std::env::temp_dir().join("ldb-cli-tests").join("bad.core");
    std::fs::write(&bad, b"garbage").unwrap();
    let out = run_ldb(&[&f, "--core", bad.to_str().unwrap()], "");
    assert!(out.is_empty(), "{out}"); // error goes to stderr
}

#[test]
fn errors_leave_the_session_usable() {
    let f = write_src("fib.c", FIB);
    let out = run_ldb(
        &[&f, "--arch", "mips"],
        "b nosuch\nbl 9999\nba zz\np x\ne 1 +\nf 9\nnonsense\nb fib 4\nc\np i\nq\n",
    );
    // Every probe produced an error line...
    assert!(out.matches("error:").count() >= 6, "{out}");
    // ...and the session still worked afterwards.
    assert!(out.contains("i = 2"), "{out}");
}

#[test]
fn multi_file_session_resolves_across_units() {
    let lib = write_src(
        "lib.c",
        r#"
static int calls;
int clamp(int v, int lo, int hi) {
    calls++;
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
}
"#,
    );
    let main = write_src(
        "mainx.c",
        r#"
int clamp(int v, int lo, int hi);
int total;
int main(void) {
    int i;
    for (i = 0; i < 5; i++)
        total += clamp(i * 10, 5, 25);
    printf("%d\n", total);
    return 0;
}
"#,
    );
    let out = run_ldb(
        &[&lib, &main, "--arch", "mips"],
        "b clamp 1\nc\nbt\np v\nf 1\np i\nq\n",
    );
    assert!(out.contains("v = 0"), "{out}");
    assert!(out.contains("i = 0"), "{out}");
    assert!(out.contains("clamp"), "{out}");
    assert!(out.contains("main"), "{out}");
}

// ---------------------------------------------------------------------------
// Headless batch mode (`--script`): typed process exit codes.
// ---------------------------------------------------------------------------

/// Run `ldb` with a `--script` file and return (stdout, exit code).
fn run_ldb_batch(extra_args: &[&str], script: &str) -> (String, i32) {
    let dir = std::env::temp_dir().join("ldb-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    // Unique per content so parallel tests don't race on one file.
    let path = dir.join(format!("script-{:x}.ldb", {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in script.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ extra_args.len() as u64
    }));
    std::fs::write(&path, script).unwrap();
    let f = write_src("fib.c", FIB);
    let mut args = vec![f.as_str(), "--arch", "mips", "--script", path.to_str().unwrap()];
    args.extend_from_slice(extra_args);
    let out = Command::new(env!("CARGO_BIN_EXE_ldb"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .output()
        .expect("spawn ldb");
    (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.code().unwrap_or(-1))
}

#[test]
fn batch_clean_run_exits_zero_without_banners() {
    let (out, code) = run_ldb_batch(&[], "b fib 4\nc\np i\nc\n");
    assert_eq!(code, 0, "clean batch run must exit 0:\n{out}");
    assert!(out.contains("(ldb) p i\ni = 2"), "{out}");
    // Batch mode prints the transcript and nothing else: no interactive
    // banner, no fault/chaos notices.
    assert!(!out.contains("ldb: "), "banner leaked into batch transcript:\n{out}");
    assert!(out.starts_with("(ldb) "), "transcript must start at the first command:\n{out}");
}

#[test]
fn batch_script_error_exits_three() {
    let (out, code) = run_ldb_batch(&[], "b fib 4\nc\np nosuchvar\nc\n");
    assert_eq!(code, 3, "script-error batch run must exit 3:\n{out}");
    assert!(out.contains("error: "), "{out}");
}

#[test]
fn batch_quarantined_panic_exits_four_and_recovers() {
    let (out, code) = run_ldb_batch(&[], "b fib 4\nc\n__panic batch drill\np i\nc\n");
    assert_eq!(code, 4, "panic-quarantine batch run must exit 4:\n{out}");
    assert!(out.contains("error: command quarantined (internal panic: batch drill)"), "{out}");
    // The command *after* the panic still ran: the loop recovered.
    assert!(out.contains("i = 2"), "post-panic command did not run:\n{out}");
}

#[test]
fn batch_wire_loss_exits_five() {
    let (out, code) =
        run_ldb_batch(&["--fault", "seed=1,disconnect=30"], "b fib 4\nc\nbt\nc\nbt\nc\n");
    assert_eq!(code, 5, "wire-loss batch run must exit 5:\n{out}");
    assert!(out.contains("error: "), "{out}");
}
