//! The daemon's shared compiled-module cache: N tenants attached to the
//! same binary pay exactly one symbol-table bytecode compile, and the
//! shared entries change nothing a tenant can observe. Also the
//! idle-clock regression: `health` must be a read-only probe, so a
//! monitor polling it cannot keep an idle tenant alive forever.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ldb_suite::core::{SessionConfig, SessionRegistry};
use ldb_suite::daemon::{self, Daemon, DaemonConfig};
use ldb_suite::machine::Arch;

fn open(daemon: &Daemon, req: &str) -> String {
    let reply = daemon.handle_line(req);
    reply
        .strip_prefix("ok ")
        .unwrap_or_else(|| panic!("`{req}` failed: {reply}"))
        .to_string()
}

#[test]
fn same_binary_tenants_share_one_compile() {
    const TENANTS: usize = 6;
    let daemon = Daemon::new(DaemonConfig {
        max_sessions: TENANTS + 2,
        watchdog: Some(Duration::from_secs(30)),
        ..Default::default()
    });

    let ids: Vec<String> = (0..TENANTS).map(|_| open(&daemon, "open mips prog=count")).collect();

    // One binary is two cached artifacts (the loader frame and its one
    // module table), compiled exactly once: the first open misses both,
    // every later one hits the shared entries.
    let stats = daemon.module_cache().stats();
    assert_eq!(stats.misses, 2, "same binary must compile once, not per tenant");
    assert_eq!(stats.hits as usize, 2 * (TENANTS - 1));
    assert_eq!(stats.entries, 2);

    // The no-argument `health` verb reports the same counters over the
    // protocol (what the check.sh gate reads).
    let h = open(&daemon, "health");
    assert!(h.contains(&format!("\"sessions\":{TENANTS}")), "{h}");
    assert!(h.contains("\"misses\":2"), "{h}");
    assert!(h.contains(&format!("\"hits\":{}", 2 * (TENANTS - 1))), "{h}");
    assert!(h.contains("\"entries\":2"), "{h}");

    // Shared read-only tables are invisible to tenants: everyone debugs
    // independently and identically.
    let transcripts: Vec<String> = ids
        .iter()
        .map(|id| open(&daemon, &format!("cmd {id} b clamp\\nc\\np calls\\nbt")))
        .collect();
    assert!(transcripts[0].contains("breakpoint in clamp"), "{}", transcripts[0]);
    assert!(transcripts[0].contains("#0 clamp"), "{}", transcripts[0]);
    for t in &transcripts[1..] {
        assert_eq!(t, &transcripts[0], "tenants on one binary must agree byte for byte");
    }

    // A different binary is a different pair of cache entries, not a
    // collision.
    let spin = open(&daemon, "open mips prog=spin");
    let stats = daemon.module_cache().stats();
    assert_eq!(stats.misses, 4);
    assert_eq!(stats.entries, 4);

    let _ = open(&daemon, &format!("close {spin}"));
    assert!(daemon.handle_line("shutdown").starts_with("ok "));
}

/// Polling `health` must not reset the idle clock: open a tenant, poll
/// its health well past the idle threshold, and the reaper must still
/// evict it (before the fix, every poll re-armed `last_used` and
/// `evict_idle` never fired).
#[test]
fn health_polling_does_not_keep_idle_tenants_alive() {
    let registry = Arc::new(SessionRegistry::new(2));
    let id = registry
        .open(
            SessionConfig::default(),
            daemon::session_builder(Arch::Mips, daemon::PROG_COUNT, None, None, 0),
        )
        .unwrap();
    let transcript = registry.run(id, "b clamp\nc").unwrap();
    assert!(transcript.contains("breakpoint in clamp"), "{transcript}");

    // Poll health for well over the idle threshold.
    let max_idle = Duration::from_millis(400);
    let polling_until = Instant::now() + 2 * max_idle;
    while Instant::now() < polling_until {
        let h = registry.health(id).expect("health while idle");
        assert_eq!(h.watchdog_timeouts, 0);
        std::thread::sleep(Duration::from_millis(50));
    }

    // The tenant ran nothing since `run`, so it is idle — however
    // recently its health was read.
    let evicted = registry.evict_idle(max_idle);
    assert_eq!(evicted, vec![id], "health polling kept an idle tenant alive");
    assert_eq!(registry.len(), 0);
}
