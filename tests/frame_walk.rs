//! Defensive stack walking: the guarded walk must terminate with a typed
//! reason on every input — healthy stacks (StackBase), stacks deeper than
//! the hard cap (DepthCap), and deliberately corrupted frame chains
//! (Cycle, BadFrame, WireError) — without panicking or looping.
//!
//! The corruption tests drive a real session: stop at a breakpoint, learn
//! the top frame's vfp from the backtrace, overwrite the saved-fp slot
//! through the wire, step once (which re-walks the stack), and check the
//! transcript carries the exact truncation line.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{nm, pssym};
use ldb_suite::core::{script, Ldb, StopEvent, WalkStop, WALK_DEPTH_CAP};
use ldb_suite::machine::Arch;

const CLAMP_SRC: &str = r#"
static int calls;
static int limit = 100;
int clamp(int v) {
    calls++;
    if (v > limit) return limit;
    return v;
}
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 10; i++) s += clamp(i * 30);
    printf("%d\n", s);
    return 0;
}
"#;

const DEEP_SRC: &str = r#"
int depth(int n) {
    if (n == 0) return 0;
    return 1 + depth(n - 1);
}
int main(void) {
    printf("%d\n", depth(70));
    return 0;
}
"#;

fn session(src: &str, arch: Arch) -> Ldb {
    let c = compile("t.c", src, arch, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb
}

/// A healthy stop walks to the stack base and says so.
#[test]
fn healthy_walk_reaches_stack_base_on_every_arch() {
    for arch in Arch::ALL {
        let mut ldb = session(CLAMP_SRC, arch);
        ldb.break_at("clamp", 0).unwrap();
        let ev = ldb.cont().unwrap();
        assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: {ev:?}");
        let (rows, stop) = ldb.backtrace();
        let names: Vec<&str> = rows.iter().map(|(_, n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["clamp", "main"], "{arch}");
        assert_eq!(stop, WalkStop::StackBase, "{arch}");
        assert_eq!(ldb.health().walks_truncated, 0, "{arch}");
    }
}

/// At the initial pause the pc sits in startup code with no frame
/// metadata: the walk ends cleanly after the single frame it can
/// interpret, rather than chasing a register that is not a frame link.
#[test]
fn pause_frame_without_meta_walks_one_frame_cleanly() {
    for arch in Arch::ALL {
        let ldb = session(CLAMP_SRC, arch);
        let (rows, stop) = ldb.backtrace();
        assert_eq!(rows.len(), 1, "{arch}: {rows:?}");
        assert_eq!(stop, WalkStop::StackBase, "{arch}");
    }
}

/// A stack deeper than the hard cap truncates with DepthCap — the walk
/// must not scale with hostile (or merely enormous) recursion.
#[test]
fn deep_recursion_truncates_at_depth_cap() {
    for arch in Arch::ALL {
        let mut ldb = session(DEEP_SRC, arch);
        // Run to the base case: 71 `depth` activations plus `main`.
        ldb.break_at("depth", 0).unwrap();
        loop {
            let ev = ldb.cont().unwrap();
            assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: {ev:?}");
            if ldb.print_var("n").unwrap() == "0" {
                break;
            }
        }
        let (rows, stop) = ldb.backtrace();
        assert_eq!(rows.len(), WALK_DEPTH_CAP as usize, "{arch}");
        assert_eq!(stop, WalkStop::DepthCap { cap: WALK_DEPTH_CAP }, "{arch}");
        let out = script::run_script(&mut ldb, "bt");
        assert!(
            out.contains(&format!("walk truncated: DepthCap ({WALK_DEPTH_CAP} frames)")),
            "{arch}: {out}"
        );
    }
}

/// Stop in `clamp` and return the top frame's vfp (the fp-linked
/// architectures store the caller chain through it).
fn stop_in_clamp(ldb: &mut Ldb, arch: Arch) -> u32 {
    ldb.break_at("clamp", 0).unwrap();
    let ev = ldb.cont().unwrap();
    assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: {ev:?}");
    let (rows, stop) = ldb.backtrace();
    assert_eq!(stop, WalkStop::StackBase, "{arch}");
    rows[0].3
}

/// Overwrite the word at `addr` in target data memory through the
/// target's own wire (cache write-through included).
fn poke(ldb: &Ldb, addr: u32, value: u32) {
    ldb.target(0).wire.store('d', addr as i64, 4, value as u64).unwrap();
}

/// A saved fp pointing back at an already-visited frame is reported as a
/// cycle, with pinned output. (The fp-linked architectures; the MIPS
/// derives vfps from the procedure table instead, and its corruption
/// paths are exercised by the chaos soak.)
#[test]
fn cyclic_frame_chain_reports_cycle() {
    for arch in [Arch::M68k, Arch::Vax, Arch::Sparc] {
        let mut ldb = session(CLAMP_SRC, arch);
        let fp0 = stop_in_clamp(&mut ldb, arch);
        // Make the saved-fp slot point back at the top frame itself.
        let slot = if arch == Arch::Sparc { fp0.wrapping_sub(4) } else { fp0 };
        poke(&ldb, slot, fp0);
        // Step once: the stop re-walks the (now cyclic) chain.
        ldb.step_insn().unwrap();
        let (rows, stop) = ldb.backtrace();
        assert_eq!(stop, WalkStop::Cycle { vfp: fp0 }, "{arch}: {rows:?}");
        assert!(!rows.is_empty(), "{arch}: the truncated walk still has the top frame");
        let out = script::run_script(&mut ldb, "bt");
        assert!(
            out.contains(&format!("walk truncated: Cycle (vfp {fp0:#x} already visited)")),
            "{arch}: {out}"
        );
        assert!(ldb.health().walks_truncated >= 1, "{arch}");
        assert_eq!(ldb.health().walk_cycles, ldb.health().walks_truncated, "{arch}");
    }
}

/// A misaligned saved fp fails the guard's sanity check with BadFrame.
#[test]
fn misaligned_saved_fp_reports_bad_frame() {
    for arch in [Arch::M68k, Arch::Vax] {
        let mut ldb = session(CLAMP_SRC, arch);
        let fp0 = stop_in_clamp(&mut ldb, arch);
        poke(&ldb, fp0, fp0 + 7); // above the callee (monotonic) but unaligned
        ldb.step_insn().unwrap();
        let (_, stop) = ldb.backtrace();
        match &stop {
            WalkStop::BadFrame { reason } => {
                assert!(reason.contains("misaligned caller vfp"), "{arch}: {reason}")
            }
            other => panic!("{arch}: expected BadFrame, got {other:?}"),
        }
    }
}

/// A saved fp below the callee's frame violates stack-growth monotonicity.
#[test]
fn non_monotonic_chain_reports_bad_frame() {
    for arch in [Arch::M68k, Arch::Vax] {
        let mut ldb = session(CLAMP_SRC, arch);
        let fp0 = stop_in_clamp(&mut ldb, arch);
        poke(&ldb, fp0, fp0 - 64); // aligned, nonzero, but *below* the callee
        ldb.step_insn().unwrap();
        let (_, stop) = ldb.backtrace();
        match &stop {
            WalkStop::BadFrame { reason } => {
                assert!(reason.contains("not monotonic"), "{arch}: {reason}")
            }
            other => panic!("{arch}: expected BadFrame, got {other:?}"),
        }
    }
}

/// A saved fp aimed at unmapped memory passes the cheap checks but the
/// next hop's fetch faults: the walk reports WireError and keeps the
/// frames it recovered.
#[test]
fn unmapped_saved_fp_reports_wire_error() {
    for arch in [Arch::M68k, Arch::Vax] {
        let mut ldb = session(CLAMP_SRC, arch);
        let fp0 = stop_in_clamp(&mut ldb, arch);
        poke(&ldb, fp0, 0x0fff_fff0); // aligned, monotonic, unmapped
        ldb.step_insn().unwrap();
        let (rows, stop) = ldb.backtrace();
        assert!(
            matches!(stop, WalkStop::WireError { .. }),
            "{arch}: expected WireError, got {stop:?}"
        );
        // The top frame (and the fabricated caller) were still recovered.
        assert!(!rows.is_empty(), "{arch}");
        assert_eq!(rows[0].1, "clamp", "{arch}: {rows:?}");
    }
}
