//! Fault injection: the whole debugger stack driven over a wire that
//! drops, corrupts, truncates, duplicates, delays, and severs frames —
//! deterministically, from a seed. The session layer (sequence numbers,
//! checksums, retransmission, at-most-once execution on the nub) must
//! make every fault invisible to the breakpoint marathon, and a severed
//! wire must degrade gracefully: the nub preserves the target, cached
//! queries still answer, and a reconnect over a fresh wire recovers the
//! planted breakpoints and carries on from the exact same stop.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{nm, pssym};
use ldb_suite::core::{Ldb, LdbError, StopEvent};
use ldb_suite::machine::Arch;
use ldb_suite::nub::{spawn, ClientConfig, FaultConfig, FaultStats, FaultyWire, NubConfig};
use ldb_suite::trace::{validate, Layer, Record, Trace, TraceConfig, Value};
use std::time::Duration;

/// The stress-suite collatz marathon, parameterised by starting value so
/// fault runs (which pay per-frame latency and retransmission costs) can
/// use a shorter trajectory than the clean stress test.
fn program(start: i64) -> String {
    format!(
        r#"
int history[64];
int steps;

int collatz(int n) {{
    int here;
    here = n;
    history[steps % 64] = here;
    steps++;
    if (n == 1) return 1;
    if (n % 2 == 0) return collatz(n / 2);
    return collatz(3 * n + 1);
}}

int main(void) {{
    int r;
    r = collatz({start});
    printf("%d %d\n", r, steps);
    return 0;
}}
"#
    )
}

/// Ground truth: the collatz trajectory from `start`.
fn trajectory(start: i64) -> Vec<i64> {
    let mut v = vec![start];
    while *v.last().unwrap() != 1 {
        let n = *v.last().unwrap();
        v.push(if n % 2 == 0 { n / 2 } else { 3 * n + 1 });
    }
    v
}

/// Resilience policy for lossy wires: short attempt timeouts and a deep
/// retry budget, so a dropped frame costs milliseconds instead of the
/// interactive-scale defaults.
fn lossy_client() -> ClientConfig {
    ClientConfig {
        reply_timeout: Duration::from_millis(25),
        retries: 12,
        backoff: Duration::from_millis(1),
        event_poll: Duration::from_millis(5),
        jitter_seed: 0,
    }
}

/// Compile the marathon program for `arch`, spawn a nub, and attach a
/// debugger over a [`FaultyWire`] configured by `spec`, with the
/// breakpoint already planted at the `steps++` line.
fn attach_faulty(arch: Arch, start: i64, spec: &str) -> Ldb {
    let src = program(start);
    let c = compile("c.c", &src, arch, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let handle = spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = handle.connect_channel().unwrap();
    let faulty = FaultyWire::wrap(wire, FaultConfig::parse(spec).unwrap());
    let mut ldb = Ldb::new();
    ldb.attach_with_config(Box::new(faulty), &loader, Some(handle), lossy_client())
        .unwrap_or_else(|e| panic!("{arch}: attach over faulty wire: {e}"));
    ldb.break_at("collatz", 3).unwrap_or_else(|e| panic!("{arch}: {e}"));
    ldb
}

/// After a severed wire: verify degraded-mode behaviour, reattach over a
/// fresh (still lossy) wire from the same nub, and resync the hit count
/// from the program's own `steps` counter. Returns the next hit index.
fn reconnect_and_resync(
    arch: Arch,
    ldb: &mut Ldb,
    truth: &[i64],
    spec: &str,
    cause: &LdbError,
) -> usize {
    if !ldb.target(0).disconnected {
        // The loss surfaced through the expression pipeline (a PostScript
        // error, not a wire error); poke the wire directly so the
        // debugger-side state notices it.
        let _ = ldb.cont();
    }
    assert!(ldb.target(0).disconnected, "{arch}: not flagged disconnected after: {cause}");
    // Degraded mode: the frame and register views from the last stop
    // still answer from cache...
    assert!(!ldb.backtrace().0.is_empty(), "{arch}: cached backtrace while disconnected");
    let regs = ldb.registers().unwrap_or_else(|e| panic!("{arch}: cached registers: {e}"));
    assert!(!regs.is_empty(), "{arch}");
    // ...while mutating operations refuse with a clear diagnosis.
    let err = ldb.break_at("collatz", 3).unwrap_err().to_string();
    assert!(err.contains("disconnected"), "{arch}: {err}");
    // The nub preserved the target: reattach over a fresh wire (also
    // lossy, but without the scheduled severance) and recover.
    let wire = {
        let t = ldb.target(0);
        t.nub.as_ref().expect("nub handle").connect_channel().unwrap()
    };
    let faulty = FaultyWire::wrap(wire, FaultConfig::parse(spec).unwrap());
    let ev = ldb
        .reconnect(0, Box::new(faulty))
        .unwrap_or_else(|e| panic!("{arch}: reconnect: {e}"));
    assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: reconnect stop: {ev:?}");
    // The breakpoint sits before `steps++`, so at any collatz stop the
    // counter equals the number of fully completed hits — use it to
    // resync regardless of whether the failed continue reached the nub.
    let k: usize = ldb.print_var("steps").unwrap().parse().unwrap();
    assert!(k < truth.len(), "{arch}: resynced past the trajectory");
    assert_eq!(ldb.print_var("n").unwrap(), truth[k].to_string(), "{arch}: post-reconnect");
    k + 1
}

/// Drive the breakpoint marathon, checking every stop against the
/// trajectory. With `recon_spec`, a wire failure is treated as the
/// scheduled severance: degrade, reconnect, resync, carry on. Without
/// it, any failure is a real protocol bug. Returns the reconnect count.
fn marathon(
    arch: Arch,
    ldb: &mut Ldb,
    truth: &[i64],
    recon_spec: Option<&str>,
    use_eval: bool,
) -> usize {
    let mut reconnects = 0usize;
    let mut k = 0usize;
    while k < truth.len() {
        let expect = truth[k];
        let r = (|| -> Result<(), LdbError> {
            let ev = ldb.cont()?;
            assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch} hit {k}: {ev:?}");
            assert_eq!(ldb.print_var("n")?, expect.to_string(), "{arch} hit {k}");
            assert_eq!(ldb.print_var("here")?, expect.to_string(), "{arch} hit {k}");
            assert_eq!(ldb.print_var("steps")?, k.to_string(), "{arch} hit {k}");
            let depth = ldb.backtrace().0.iter().filter(|(_, n, _, _)| n == "collatz").count();
            assert_eq!(depth, (k + 1).min(64), "{arch} hit {k}: depth");
            if use_eval && k.is_multiple_of(5) {
                // The expression pipeline (nub fetches through the
                // PostScript interpreter) over the same lossy wire.
                assert_eq!(ldb.eval("steps + 1000")?, (k + 1000).to_string(), "{arch} hit {k}");
            }
            Ok(())
        })();
        match r {
            Ok(()) => k += 1,
            Err(e) => {
                let Some(spec) = recon_spec else {
                    panic!("{arch} hit {k}: wire fault leaked through the session layer: {e}")
                };
                reconnects += 1;
                assert!(reconnects < 8, "{arch}: reconnect storm");
                eprintln!("{arch}: wire lost at hit {k}: {e}");
                k = reconnect_and_resync(arch, ldb, truth, spec, &e);
            }
        }
    }
    reconnects
}

/// Clear the breakpoint, run to exit, and check the program's own output
/// via the joined machine. Under a lossy wire the final exit
/// notification itself can be lost (the nub is gone by the time the
/// client retransmits), so a wire error on the last continue is
/// acceptable — the joined machine is the ground truth either way.
fn finish(arch: Arch, ldb: &mut Ldb, truth: &[i64], lossy: bool) {
    let addr = ldb.target(0).breakpoints.addresses()[0];
    ldb.clear_breakpoint(addr).unwrap_or_else(|e| panic!("{arch}: {e}"));
    match ldb.cont() {
        Ok(StopEvent::Exited(0)) => {}
        Ok(ev) => panic!("{arch}: expected exit, got {ev:?}"),
        Err(e) => assert!(lossy, "{arch}: exit over a clean wire failed: {e}"),
    }
    let out = ldb.take_nub_handle(0).unwrap().join.join().unwrap().output;
    assert_eq!(out, format!("1 {}\n", truth.len()), "{arch}");
}

#[test]
fn latency_only_marathon_is_undisturbed() {
    // Pure delay: no loss, no corruption. Everything behaves exactly as
    // on a perfect wire, just slower.
    let start = 5;
    let truth = trajectory(start);
    for arch in Arch::ALL {
        let mut ldb = attach_faulty(arch, start, "seed=11,delay=1");
        let n = marathon(arch, &mut ldb, &truth, None, true);
        assert_eq!(n, 0, "{arch}");
        finish(arch, &mut ldb, &truth, false);
    }
}

#[test]
fn drop_corrupt_duplicate_marathon_retries_through() {
    // Lossy and corrupting: the retransmission budget and the nub's
    // duplicate suppression must absorb every fault — the marathon sees
    // no errors at all.
    let start = 7;
    let truth = trajectory(start);
    for arch in Arch::ALL {
        let mut ldb =
            attach_faulty(arch, start, "seed=7,drop=0.03,corrupt=0.03,dup=0.05");
        let n = marathon(arch, &mut ldb, &truth, None, true);
        assert_eq!(n, 0, "{arch}");
        finish(arch, &mut ldb, &truth, true);
    }
}

#[test]
fn severed_wire_degrades_and_reconnects() {
    // Lossy wire with a scheduled hard severance mid-marathon. The
    // debugger must flag the target disconnected, keep answering cached
    // queries, refuse mutations with a clear error, and then recover
    // completely over a fresh wire — breakpoints replanted from the
    // nub's plant table, trajectory resynced from target memory.
    let start = 7;
    let truth = trajectory(start);
    let recon = "seed=103,drop=0.01,corrupt=0.01";
    for arch in Arch::ALL {
        let mut ldb =
            attach_faulty(arch, start, "seed=3,drop=0.01,corrupt=0.01,disconnect=350");
        // Populate the register snapshot the degraded mode answers from.
        ldb.registers().unwrap_or_else(|e| panic!("{arch}: {e}"));
        let n = marathon(arch, &mut ldb, &truth, Some(recon), false);
        assert!(n >= 1, "{arch}: severance never fired");
        finish(arch, &mut ldb, &truth, true);
    }
}

/// A named field from a parsed journal record.
fn field_u64(rec: &Record, name: &str) -> Option<u64> {
    rec.fields.iter().find(|(k, _)| k.as_ref() == name).and_then(|(_, v)| match v {
        Value::U64(n) => Some(*n),
        _ => None,
    })
}

fn field_str<'a>(rec: &'a Record, name: &str) -> Option<&'a str> {
    rec.fields.iter().find(|(k, _)| k.as_ref() == name).and_then(|(_, v)| match v {
        Value::Str(s) => Some(s.as_ref()),
        _ => None,
    })
}

#[test]
fn journal_cross_checks_wire_metrics_and_fault_stats() {
    // A lossy marathon with a scheduled severance, recorded by the flight
    // recorder. Afterwards the journal must agree *exactly* with the two
    // independent tallies kept below it: the client's `WireMetrics` and
    // the injector's `FaultStats`. Every transaction is a first-attempt
    // `send` (or `send_err`), every retransmission a `retx`, every
    // injected fault a `fault` record, every byte accounted for.
    let start = 27; // 111-step trajectory: plenty of frames past the severance
    let truth = trajectory(start);
    let arch = Arch::Mips;
    let src = program(start);
    let c = compile("c.c", &src, arch, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let handle = spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });

    let (trace, journal) = Trace::to_shared_buffer(TraceConfig::default());
    let wire = handle.connect_channel().unwrap();
    let spec = "seed=3,drop=0.01,corrupt=0.01,truncate=0.005,dup=0.02,disconnect=350";
    let mut faulty = FaultyWire::wrap(wire, FaultConfig::parse(spec).unwrap());
    faulty.set_trace(trace.clone());
    let mut injectors = vec![faulty.stats_handle()];

    let mut ldb = Ldb::new();
    ldb.set_trace(trace.clone());
    ldb.attach_with_config(Box::new(faulty), &loader, Some(handle), lossy_client()).unwrap();
    ldb.break_at("collatz", 3).unwrap();
    ldb.registers().unwrap(); // register snapshot for the degraded window

    let mut reconnects = 0usize;
    let mut k = 0usize;
    while k < truth.len() {
        let r = (|| -> Result<(), LdbError> {
            let ev = ldb.cont()?;
            assert!(matches!(ev, StopEvent::Breakpoint { .. }), "hit {k}: {ev:?}");
            assert_eq!(ldb.print_var("n")?, truth[k].to_string(), "hit {k}");
            Ok(())
        })();
        match r {
            Ok(()) => k += 1,
            Err(e) => {
                reconnects += 1;
                assert!(reconnects < 8, "reconnect storm: {e}");
                if !ldb.target(0).disconnected {
                    let _ = ldb.cont();
                }
                assert!(ldb.target(0).disconnected, "not disconnected after: {e}");
                let wire = {
                    let t = ldb.target(0);
                    t.nub.as_ref().expect("nub handle").connect_channel().unwrap()
                };
                let mut fresh = FaultyWire::wrap(
                    wire,
                    FaultConfig::parse("seed=103,drop=0.01,corrupt=0.01").unwrap(),
                );
                fresh.set_trace(trace.clone());
                injectors.push(fresh.stats_handle());
                let ev = ldb.reconnect(0, Box::new(fresh)).unwrap();
                assert!(matches!(ev, StopEvent::Breakpoint { .. }), "reconnect stop: {ev:?}");
                k = ldb.print_var("steps").unwrap().parse::<usize>().unwrap() + 1;
            }
        }
    }
    assert!(reconnects >= 1, "the scheduled severance never fired");

    trace.flush();
    let text = journal.text();
    let records: Vec<Record> = text
        .lines()
        .enumerate()
        .map(|(i, l)| validate(l).unwrap_or_else(|e| panic!("journal line {i}: {e}\n  {l}")))
        .collect();

    // Sequence numbers are dense from 1 — nothing lost, nothing reordered.
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.seq, i as u64 + 1, "journal seq gap at line {i}");
    }

    // Journal vs WireMetrics. The client survives reconnects, so its
    // counters span the whole session, exactly like the journal.
    let m = ldb.target(0).client.borrow().metrics();
    let count = |kind: &str| records.iter().filter(|r| r.kind == kind).count() as u64;
    let first_attempt = |kind: &str| {
        records.iter().filter(|r| r.kind == kind && field_u64(r, "attempt") == Some(0)).count()
            as u64
    };
    let len_sum = |kind: &str| {
        records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| field_u64(r, "len").expect("len field"))
            .sum::<u64>()
    };
    assert_eq!(
        first_attempt("send") + first_attempt("send_err"),
        m.transactions,
        "every transaction must journal exactly one first-attempt send"
    );
    assert_eq!(count("retx"), m.retransmits, "journal vs retransmit counter");
    assert!(m.retransmits > 0, "a lossy wire must force retransmissions");
    assert_eq!(len_sum("send"), m.bytes_sent, "journal vs bytes_sent");
    assert_eq!(len_sum("recv"), m.bytes_received, "journal vs bytes_received");

    // Journal vs FaultStats, summed over every injector the session wore.
    let stats: FaultStats = injectors.iter().fold(FaultStats::default(), |mut acc, h| {
        let s = *h.lock().unwrap();
        acc.dropped += s.dropped;
        acc.corrupted += s.corrupted;
        acc.truncated += s.truncated;
        acc.duplicated += s.duplicated;
        if s.disconnected {
            acc.frames += 1; // reuse: count of severed injectors
        }
        acc
    });
    let fault_ops = |op: &str| {
        records.iter().filter(|r| r.kind == "fault" && field_str(r, "op") == Some(op)).count()
            as u64
    };
    assert_eq!(fault_ops("drop"), stats.dropped, "journal vs dropped frames");
    assert_eq!(fault_ops("corrupt"), stats.corrupted, "journal vs corrupted frames");
    assert_eq!(fault_ops("truncate"), stats.truncated, "journal vs truncated frames");
    assert_eq!(fault_ops("dup"), stats.duplicated, "journal vs duplicated frames");
    assert_eq!(fault_ops("disconnect"), stats.frames, "journal vs severances");
    assert!(fault_ops("drop") + fault_ops("corrupt") > 0, "no faults journaled");

    // The recovery story is journaled at both layers: the client's wire
    // reconnect and the debugger's session reconnect, one pair per
    // severance handled.
    let wire_recon =
        records.iter().filter(|r| r.layer == Layer::Wire && r.kind == "reconnect").count();
    let dbg_recon =
        records.iter().filter(|r| r.layer == Layer::Dbg && r.kind == "reconnect").count();
    assert_eq!(wire_recon, reconnects, "wire-layer reconnect records");
    assert_eq!(dbg_recon, reconnects, "debugger-layer reconnect records");

    // Accepted event generations are strictly increasing; duplicates are
    // journaled as rejected, never accepted twice.
    let mut last_gen = 0u64;
    for rec in records.iter().filter(|r| r.kind == "event") {
        let gen = field_u64(rec, "gen").expect("gen field");
        if field_str(rec, "what").is_some() {
            // Accepted: carries the decoded stop/exit description. Gens
            // are non-decreasing (a reconnected client re-accepts the
            // re-announced stop under its unchanged generation), never
            // backwards.
            assert!(gen >= last_gen, "accepted event gen {gen} after {last_gen}");
            last_gen = gen;
        } else {
            assert!(gen <= last_gen, "rejected event gen {gen} beyond {last_gen}");
        }
    }
}

#[test]
fn debugger_crash_reattach_recovers_plants() {
    // Kill the debugger (drop the whole Ldb mid-session), then attach a
    // brand-new one over a fresh wire. The nub preserved the stopped
    // target and its planted breakpoint; the new session recovers the
    // plant, resyncs, and finishes the marathon — no target restart.
    let start = 7;
    let truth = trajectory(start);
    for arch in Arch::ALL {
        let src = program(start);
        let c = compile("c.c", &src, arch, CompileOpts::default()).unwrap();
        let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
        let loader = nm::loader_table_for(&c.linked.image, &symtab);
        let handle = spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });

        // First debugger: plant, advance five hits, then "crash".
        let mut ldb1 = Ldb::new();
        ldb1.attach(Box::new(handle.connect_channel().unwrap()), &loader, None).unwrap();
        let addr = ldb1.break_at("collatz", 3).unwrap();
        for k in 0..5 {
            let ev = ldb1.cont().unwrap();
            assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch} hit {k}: {ev:?}");
        }
        drop(ldb1);

        // Second debugger: fresh session, fresh wire, same nub.
        let mut ldb2 = Ldb::new();
        ldb2.attach(Box::new(handle.connect_channel().unwrap()), &loader, None)
            .unwrap_or_else(|e| panic!("{arch}: reattach: {e}"));
        let t = ldb2.target(0);
        assert!(t.breakpoints.is_planted(addr), "{arch}: plant not recovered");
        assert_eq!(t.breakpoints.addresses(), vec![addr], "{arch}");
        // Still stopped at hit 4, before its `steps++`.
        assert_eq!(ldb2.print_var("steps").unwrap(), "4", "{arch}");
        assert_eq!(ldb2.print_var("n").unwrap(), truth[4].to_string(), "{arch}");
        // The recovered plant keeps firing: finish the marathon.
        for (k, &expect) in truth.iter().enumerate().skip(5) {
            let ev = ldb2.cont().unwrap();
            assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch} hit {k}: {ev:?}");
            assert_eq!(ldb2.print_var("n").unwrap(), expect.to_string(), "{arch} hit {k}");
            assert_eq!(ldb2.print_var("steps").unwrap(), k.to_string(), "{arch} hit {k}");
        }
        ldb2.clear_breakpoint(addr).unwrap();
        assert_eq!(ldb2.cont().unwrap(), StopEvent::Exited(0), "{arch}");
        let out = handle.join.join().unwrap().output;
        assert_eq!(out, format!("1 {}\n", truth.len()), "{arch}");
    }
}
