//! `step_over` ("next"), `finish`, and library-level breakpoint
//! conditions: the stepping commands must honor conditions, skip
//! recursive re-entries by frame identity, and report callee return
//! values.

use ldb_suite::cc::driver::{compile, CompileOpts};
use ldb_suite::cc::{nm, pssym};
use ldb_suite::core::{Ldb, StopEvent};
use ldb_suite::machine::Arch;

const SRC: &str = r#"
int add(int a, int b) { return a + b; }
int down(int n) {
    int local;
    local = n * 100;
    if (n == 0) return 0;
    return down(n - 1) + local;
}
int main(void) { printf("%d\n", down(6)); return 0; }
"#;

fn session(arch: Arch) -> Ldb {
    let c = compile("c.c", SRC, arch, CompileOpts::default()).unwrap();
    let symtab = pssym::emit(&c.unit, &c.funcs, arch, pssym::PsMode::Deferred);
    let loader = nm::loader_table_for(&c.linked.image, &symtab);
    let mut ldb = Ldb::new();
    ldb.spawn_program(&c.linked.image, &loader).unwrap();
    ldb
}

#[test]
fn next_stays_in_the_same_invocation() {
    for arch in Arch::ALL {
        let mut ldb = session(arch);
        let addr = ldb.break_at("down", 2).unwrap();
        ldb.set_break_condition(addr, Some("n == 3".into())).unwrap();
        ldb.cont_watch().unwrap();
        assert_eq!(ldb.print_var("n").unwrap(), "3", "{arch}");
        // next from `local = n * 100` to the if, same frame.
        ldb.step_over().unwrap();
        assert_eq!(ldb.print_var("local").unwrap(), "300", "{arch}");
        assert_eq!(ldb.print_var("n").unwrap(), "3", "{arch}");
        // next over `return down(n-1) + local`: the whole recursive
        // subtree (with the false-conditioned breakpoint inside it) runs,
        // and we surface in the caller (n == 4).
        let ev = ldb.step_over().unwrap();
        assert!(matches!(ev, StopEvent::Breakpoint { .. }), "{arch}: {ev:?}");
        assert_eq!(ldb.print_var("n").unwrap(), "4", "{arch}");
    }
}

#[test]
fn finish_reports_the_return_value() {
    let mut ldb = session(Arch::Vax);
    let addr = ldb.break_at("down", 2).unwrap();
    ldb.set_break_condition(addr, Some("n == 2".into())).unwrap();
    ldb.cont_watch().unwrap();
    // down(2) = down(1) + 200 = 100 + 200 = 300.
    let (_, rv) = ldb.finish().unwrap();
    assert_eq!(rv, Some(300));
    assert_eq!(ldb.print_var("n").unwrap(), "3");
    // Finish again: down(3) = 600.
    let (_, rv) = ldb.finish().unwrap();
    assert_eq!(rv, Some(600));
}

#[test]
fn conditions_apply_on_every_resume_path() {
    let mut ldb = session(Arch::M68k);
    let addr = ldb.break_at("down", 2).unwrap();
    ldb.set_break_condition(addr, Some("n == 1".into())).unwrap();
    // Plain continue: skips n = 6..2 silently.
    ldb.cont_watch().unwrap();
    assert_eq!(ldb.print_var("n").unwrap(), "1");
    // Clearing the condition restores unconditional stops.
    ldb.set_break_condition(addr, None).unwrap();
    ldb.cont_watch().unwrap();
    assert_eq!(ldb.print_var("n").unwrap(), "0");
}

#[test]
fn failed_next_does_not_leak_temporary_plants() {
    let mut ldb = session(Arch::Mips);
    let user = ldb.break_at("down", 2).unwrap();
    // A condition that errors when evaluated (undefined name) on a
    // breakpoint that will be hit inside the stepped-over subtree.
    let bad = ldb.break_at("down", 4).unwrap();
    ldb.set_break_condition(bad, Some("zz > 1".into())).unwrap();
    ldb.cont_watch().unwrap(); // stop at down stop 2 (n == 6)
    // Stepping forward reaches the bad-conditioned breakpoint: the eval
    // error surfaces, and the temp plants must be gone afterwards.
    assert!(ldb.step_over().is_err());
    // Only the two user breakpoints remain planted.
    let mut addrs = ldb.target(0).breakpoints.addresses();
    addrs.sort_unstable();
    let mut want = vec![user, bad];
    want.sort_unstable();
    assert_eq!(addrs, want);
}

#[test]
fn condition_on_unplanted_address_errors() {
    let mut ldb = session(Arch::Mips);
    assert!(ldb.set_break_condition(0x4444, Some("1".into())).is_err());
}

#[test]
fn finish_from_the_outermost_frame_errors() {
    let mut ldb = session(Arch::Sparc);
    ldb.break_at("main", 0).unwrap();
    ldb.cont().unwrap();
    ldb.select_frame(0).unwrap();
    // main's caller is the startup shim, which has no symbols — but it
    // does exist as a frame; go one deeper than the walk provides.
    let frames = ldb.backtrace().0.len();
    ldb.select_frame(frames - 1).unwrap();
    assert!(ldb.finish().is_err());
}

#[test]
fn next_at_the_last_stopping_point_returns_to_the_caller() {
    let mut ldb = session(Arch::Mips);
    let a2 = ldb.break_at("down", 1).unwrap();
    ldb.set_break_condition(a2, Some("n == 0".into())).unwrap();
    ldb.cont_watch().unwrap();
    assert_eq!(ldb.print_var("n").unwrap(), "0");
    // Step until the innermost invocation returns and we surface in
    // n == 1's frame (the exact count depends on the loci after the
    // conditioned stop, so step over until the frame changes).
    for _ in 0..4 {
        ldb.step_over().unwrap();
        if ldb.print_var("n").unwrap() == "1" {
            break;
        }
    }
    assert_eq!(ldb.print_var("n").unwrap(), "1");
}
