//! The concurrent marathon: ≥100 simultaneous `ldbd` sessions — healthy,
//! chaos-corrupted, fault-injected, and deliberately wedged tenants
//! mixed across all four architectures — asserting the daemon's whole
//! robustness contract at once:
//!
//! - zero cross-session interference: every healthy tenant's transcript
//!   is byte-identical to a solo run of the same session;
//! - per-tenant health: the daemon's `health <id>` JSON matches the
//!   `info health --json` the tenant itself reported;
//! - watchdog recovery: wedged tenants (a target that never stops) have
//!   their command cancelled, the kill lands in *their* health counters,
//!   and the session keeps answering;
//! - the hard session cap rejects the 105th open gracefully;
//! - shutdown closes whatever is left.

use std::sync::{Arc, Barrier};

use ldb_suite::core::Ldb;
use ldb_suite::daemon::{self, Daemon, DaemonConfig};
use ldb_suite::machine::Arch;

/// Inspection-heavy script (the chaos-soak workload), ending with the
/// tenant's own machine-readable health report so the test can hold the
/// daemon's `health` reply against it.
const SCRIPT: &str = "\
b clamp
c
bt
p calls
p p
e v * 2 + 1
s
bt
regs
c
info health --json
";

const N_SPIN: usize = 4;
const N_CHAOS: usize = 20;
const N_FAULT: usize = 20;
const N_HEALTHY: usize = 60;
const N_TOTAL: usize = N_SPIN + N_CHAOS + N_FAULT + N_HEALTHY; // 104 ≥ 100

#[derive(Clone, Copy, PartialEq, Debug)]
enum Kind {
    Healthy,
    Chaos,
    Fault,
    Spin,
}

fn plan(i: usize) -> (Kind, Arch) {
    let arch = Arch::ALL[i % Arch::ALL.len()];
    let kind = match i {
        _ if i < N_SPIN => Kind::Spin,
        _ if i < N_SPIN + N_CHAOS => Kind::Chaos,
        _ if i < N_SPIN + N_CHAOS + N_FAULT => Kind::Fault,
        _ => Kind::Healthy,
    };
    (kind, arch)
}

fn open_request(i: usize) -> String {
    let (kind, arch) = plan(i);
    match kind {
        // Wedge tenants: a target that never stops and a tight watchdog.
        Kind::Spin => format!("open {arch} prog=spin watchdog_ms=400"),
        Kind::Chaos => format!("open {arch} chaos=seed={},rate=0.05", i as u64 + 1),
        Kind::Fault => {
            format!("open {arch} fault=seed={},drop=0.03,corrupt=0.01", i as u64 + 1)
        }
        Kind::Healthy => format!("open {arch}"),
    }
}

/// Unwrap an `ok …` protocol reply into its unescaped payload.
fn ok(reply: &str) -> String {
    let payload = reply
        .strip_prefix("ok ")
        .unwrap_or_else(|| panic!("expected ok reply, got `{reply}`"));
    daemon::unescape_line(payload)
}

/// The tenant's own final health report: the last `{…}` transcript line.
fn embedded_health(transcript: &str) -> String {
    transcript
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no health json in transcript:\n{transcript}"))
        .to_string()
}

/// A solo (single-session, single-thread) run of the healthy workload:
/// the interference baseline. Uses the daemon's own session builder, so
/// the construction is identical down to the client config.
fn solo_healthy(arch: Arch) -> String {
    let mut ldb = Ldb::new();
    let build = daemon::session_builder(arch, daemon::PROG_COUNT, None, None, 0);
    build(&mut ldb).unwrap_or_else(|e| panic!("{arch}: solo build: {e}"));
    ldb_suite::core::script::run_script(&mut ldb, SCRIPT)
}

struct TenantReport {
    i: usize,
    transcript: String,
    health_reply: String,
    close_reply: String,
}

#[test]
fn marathon_100_sessions_with_fault_containment() {
    // Interference baselines first (solo by construction).
    let baselines: Vec<(Arch, String)> =
        Arch::ALL.iter().map(|&a| (a, solo_healthy(a))).collect();
    let baseline = |arch: Arch| -> &str {
        baselines.iter().find(|(a, _)| *a == arch).map(|(_, t)| t.as_str()).unwrap()
    };

    let daemon = Arc::new(Daemon::new(DaemonConfig {
        max_sessions: N_TOTAL,
        // Healthy/chaos/fault tenants run un-deadlined (the marathon's
        // point is load, and load makes wall-clock deadlines flaky);
        // the spin tenants opt into a tight watchdog per open.
        watchdog: None,
        ..Default::default()
    }));
    // Everyone opens, then holds until the whole fleet is live, so the
    // cap check and the runs really see N_TOTAL simultaneous sessions.
    let all_open = Arc::new(Barrier::new(N_TOTAL + 1));
    let all_ran = Arc::new(Barrier::new(N_TOTAL + 1));

    let tenants: Vec<std::thread::JoinHandle<TenantReport>> = (0..N_TOTAL)
        .map(|i| {
            let daemon = Arc::clone(&daemon);
            let all_open = Arc::clone(&all_open);
            let all_ran = Arc::clone(&all_ran);
            std::thread::spawn(move || {
                let (kind, _) = plan(i);
                let id = ok(&daemon.handle_line(&open_request(i)));
                all_open.wait();
                let transcript = match kind {
                    Kind::Spin => {
                        // The wedge: `c` on a target that never stops.
                        // The watchdog cancels it; the session must keep
                        // answering afterwards.
                        let cancelled =
                            ok(&daemon.handle_line(&format!("cmd {id} c")));
                        let after = ok(&daemon
                            .handle_line(&format!("cmd {id} info health --json")));
                        cancelled + &after
                    }
                    _ => ok(&daemon.handle_line(&format!(
                        "cmd {id} {}",
                        daemon::escape_line(SCRIPT)
                    ))),
                };
                let health_reply = ok(&daemon.handle_line(&format!("health {id}")));
                all_ran.wait();
                let close_reply = ok(&daemon.handle_line(&format!("close {id}")));
                TenantReport { i, transcript, health_reply, close_reply }
            })
        })
        .collect();

    // The whole fleet is live: the cap must reject the next open, as an
    // error reply, not a crash.
    all_open.wait();
    assert_eq!(daemon.registry().len(), N_TOTAL);
    let over = daemon.handle_line("open mips");
    assert!(
        over.starts_with("err ") && over.contains("session limit reached"),
        "over-cap open got `{over}`"
    );
    all_ran.wait();

    let mut corruptions_total = 0u64;
    for t in tenants {
        let r = t.join().expect("tenant driver panicked");
        let (kind, arch) = plan(r.i);
        // Per-tenant health: the daemon's aggregation endpoint returns
        // exactly what the tenant itself reported last.
        assert_eq!(
            r.health_reply.trim(),
            embedded_health(&r.transcript),
            "tenant {} ({kind:?} {arch}): daemon health diverges from the \
             tenant's own report\n{}",
            r.i,
            r.transcript
        );
        assert_eq!(
            r.close_reply.trim(),
            "closed client-request",
            "tenant {}: {}",
            r.i,
            r.close_reply
        );
        // No tenant ever needed the crash-proof loop: zero quarantines
        // fleet-wide.
        assert!(
            r.health_reply.contains("\"quarantined_commands\":0"),
            "tenant {} ({kind:?} {arch}): a command panicked\n{}",
            r.i,
            r.transcript
        );
        match kind {
            Kind::Healthy => {
                // Zero cross-session interference: byte-identical to the
                // solo run.
                assert_eq!(
                    r.transcript,
                    baseline(arch),
                    "tenant {} ({arch}): healthy transcript diverged from solo run",
                    r.i
                );
            }
            Kind::Spin => {
                assert!(
                    r.transcript.contains("cancelled by session watchdog"),
                    "tenant {}: watchdog never fired\n{}",
                    r.i,
                    r.transcript
                );
                assert!(
                    r.health_reply.contains("\"watchdog_timeouts\":1"),
                    "tenant {}: kill not booked in health: {}",
                    r.i,
                    r.health_reply
                );
            }
            Kind::Chaos => {
                let counters = r.health_reply.clone();
                let corruptions = counters
                    .split("\"chaos_corruptions\":")
                    .nth(1)
                    .and_then(|s| s.split(['}', ',']).next())
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or_else(|| panic!("bad health json: {counters}"));
                corruptions_total += corruptions;
            }
            Kind::Fault => {
                // The lossy wire is survivable: every command terminated
                // (the reply arrived) and none panicked (asserted above).
                assert!(
                    r.transcript.contains("health"),
                    "tenant {}: script never finished\n{}",
                    r.i,
                    r.transcript
                );
            }
        }
    }
    // The chaos fleet actually exercised the defensive layers.
    assert!(corruptions_total > 0, "chaos layer never fired across {N_CHAOS} tenants");

    // Everyone closed themselves; shutdown finds an empty registry.
    assert_eq!(daemon.registry().len(), 0);
    assert_eq!(ok(&daemon.handle_line("shutdown")).trim(), "shutdown 0");
}

/// Watchdog cancellation must not poison the tenant: after the kill the
/// same session still answers queries, and only *its* counters moved.
#[test]
fn wedged_tenant_recovers_and_stays_isolated() {
    let daemon = Arc::new(Daemon::new(DaemonConfig::default()));
    let spin = ok(&daemon.handle_line("open m68k prog=spin watchdog_ms=300"));
    let healthy = ok(&daemon.handle_line("open m68k"));

    let cancelled = ok(&daemon.handle_line(&format!("cmd {spin} c")));
    assert!(cancelled.contains("cancelled by session watchdog"), "{cancelled}");
    // The wedged tenant keeps answering…
    let wire = ok(&daemon.handle_line(&format!("cmd {spin} info wire")));
    assert!(wire.contains("wire: "), "{wire}");
    // …its kill is booked in its own ledger…
    let h = ok(&daemon.handle_line(&format!("health {spin}")));
    assert!(h.contains("\"watchdog_timeouts\":1"), "{h}");
    // …and the neighbor never noticed.
    let h = ok(&daemon.handle_line(&format!("health {healthy}")));
    assert!(h.contains("\"watchdog_timeouts\":0"), "{h}");
    let t = ok(&daemon.handle_line(&format!("cmd {healthy} b clamp\\nc\\np calls")));
    assert!(t.contains("breakpoint in clamp"), "{t}");

    assert_eq!(ok(&daemon.handle_line(&format!("close {spin}"))).trim(), "closed client-request");
    assert_eq!(ok(&daemon.handle_line("shutdown")).trim(), "shutdown 1");
}
