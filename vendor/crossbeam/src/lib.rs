//! Vendored stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the tiny slice of crossbeam it actually uses: MPMC
//! channels with `bounded`/`unbounded` constructors, cloneable senders and
//! receivers, and blocking/non-blocking/timed receives. Semantics match
//! crossbeam's for the operations provided: a send to a channel with no
//! receivers fails, a receive from an empty channel with no senders fails,
//! and bounded sends block while the queue is full.

pub mod channel;
