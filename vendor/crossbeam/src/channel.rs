//! Multi-producer multi-consumer channels over `Mutex` + `Condvar`.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A send failed because every `Receiver` was dropped; returns the value.
pub struct SendError<T>(pub T);

/// A receive failed because the channel is empty and every `Sender` was
/// dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and every sender is gone.
    Disconnected,
}

/// Outcome of a timed receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with nothing queued.
    Timeout,
    /// Empty and every sender is gone.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> Error for SendError<T> {}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl Error for RecvError {}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl Error for TryRecvError {}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl Error for RecvTimeoutError {}

fn pair<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// An unbounded channel: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    pair(None)
}

/// A bounded channel: sends block while `cap` items are queued.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    pair(Some(cap.max(1)))
}

impl<T> Sender<T> {
    /// Block until the value is queued (or every receiver is gone).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.shared.not_full.wait(inner).unwrap();
                }
                _ => {
                    inner.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a value arrives (or every sender is gone).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Pop a queued value without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        match inner.queue.pop_front() {
            Some(v) => {
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Block until a value arrives, the senders disconnect, or `timeout`
    /// elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self.shared.not_empty.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || tx.send(3));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn timed_recv() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
    }
}
