//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! criterion API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple wall-clock timer. It reports a mean time per iteration (and
//! throughput when configured) instead of criterion's full statistics; good
//! enough to compare hot paths run-over-run in this offline environment.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting a group's throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { name, throughput: None, sample_size: 10 }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Report throughput alongside time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        // Warm-up pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        f(&mut b);
        let mean = b.mean();
        let mut line = format!("{}/{}: {}", self.name, id, fmt_duration(mean));
        if let Some(t) = self.throughput {
            let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
            match t {
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  ({:.1} MiB/s)", per_sec(n) / (1 << 20) as f64))
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.0} elem/s)", per_sec(n)))
                }
            }
        }
        println!("{line}");
        self
    }

    /// End the group (report separator only; timing is printed per bench).
    pub fn finish(self) {}
}

/// Hands the closure under measurement to the timer.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, averaging over enough runs to exceed the timer resolution.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            // Batch runs so sub-microsecond bodies still get a stable read.
            let start = Instant::now();
            let mut iters = 0u32;
            loop {
                black_box(f());
                iters += 1;
                if iters >= 16 || start.elapsed() > Duration::from_millis(2) {
                    break;
                }
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
