//! Fixed-size array strategies (`prop::array::uniform16` / `uniform32`).

use crate::strategy::{BoxedStrategy, Strategy};

macro_rules! uniform {
    ($name:ident, $n:literal) => {
        /// An array whose elements are each drawn from `s`.
        pub fn $name<S>(s: S) -> BoxedStrategy<[S::Value; $n]>
        where
            S: Strategy + 'static,
            S::Value: 'static,
        {
            BoxedStrategy::new(move |rng| std::array::from_fn(|_| s.generate(rng)))
        }
    };
}

uniform!(uniform4, 4);
uniform!(uniform8, 8);
uniform!(uniform16, 16);
uniform!(uniform32, 32);
