//! Deterministic pseudo-random source for value generation.
//!
//! Every test derives its seed from the test's module path and name, so runs
//! are reproducible across invocations and machines — there is no
//! wall-clock or OS entropy anywhere in the crate.

/// A splitmix64 generator: tiny, fast, and good enough for fuzzing inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x6a09_e667_f3bc_c909 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift keeps the modulo bias negligible for our spans.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }
}

/// Hash a test name into a stable base seed (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
