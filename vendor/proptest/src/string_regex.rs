//! String generation from a regex-shaped pattern.
//!
//! Supports the subset of regex syntax the workspace's tests use as string
//! strategies: literals, escapes, `.` and `\PC` wildcards, `[...]` classes
//! (ranges, escapes, leading `^` negation over printable ASCII), groups
//! `(?:...)`/`(...)` with `|` alternation, and the quantifiers `{n}`,
//! `{n,m}`, `*`, `+`, `?`. Generated characters for wildcards stay in
//! printable ASCII, which is a valid subset of both `.` and `\P{C}`.

use crate::rng::TestRng;

#[derive(Debug, Clone)]
enum Ast {
    Lit(char),
    /// `.` or `\PC`: any printable character.
    AnyPrintable,
    Class { neg: bool, ranges: Vec<(char, char)> },
    Seq(Vec<Ast>),
    Alt(Vec<Ast>),
    Rep { inner: Box<Ast>, min: u32, max: u32 },
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Ast {
        let mut arms = vec![self.sequence()];
        while self.eat('|') {
            arms.push(self.sequence());
        }
        if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Ast::Alt(arms)
        }
    }

    fn sequence(&mut self) -> Ast {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom();
            items.push(self.quantified(atom));
        }
        if items.len() == 1 {
            items.pop().unwrap()
        } else {
            Ast::Seq(items)
        }
    }

    fn quantified(&mut self, atom: Ast) -> Ast {
        match self.peek() {
            Some('{') => {
                self.bump();
                let min = self.number();
                let max = if self.eat(',') {
                    if self.peek() == Some('}') {
                        min + 8
                    } else {
                        self.number()
                    }
                } else {
                    min
                };
                assert!(self.eat('}'), "unterminated {{n,m}} quantifier");
                Ast::Rep { inner: Box::new(atom), min, max: max.max(min) }
            }
            Some('*') => {
                self.bump();
                Ast::Rep { inner: Box::new(atom), min: 0, max: 8 }
            }
            Some('+') => {
                self.bump();
                Ast::Rep { inner: Box::new(atom), min: 1, max: 8 }
            }
            Some('?') => {
                self.bump();
                Ast::Rep { inner: Box::new(atom), min: 0, max: 1 }
            }
            _ => atom,
        }
    }

    fn number(&mut self) -> u32 {
        let mut n = 0u32;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            n = n * 10 + self.bump().unwrap().to_digit(10).unwrap();
        }
        n
    }

    fn atom(&mut self) -> Ast {
        match self.bump().expect("unexpected end of pattern") {
            '(' => {
                // Swallow group modifiers like `?:` (we capture nothing).
                if self.eat('?') {
                    self.eat(':');
                }
                let inner = self.alternation();
                assert!(self.eat(')'), "unterminated group");
                inner
            }
            '[' => self.class(),
            '.' => Ast::AnyPrintable,
            '\\' => self.escape(),
            c => Ast::Lit(c),
        }
    }

    fn escape(&mut self) -> Ast {
        match self.bump().expect("dangling backslash") {
            'n' => Ast::Lit('\n'),
            't' => Ast::Lit('\t'),
            'r' => Ast::Lit('\r'),
            '0' => Ast::Lit('\0'),
            // `\PC` / `\P{C}`: anything outside Unicode category C
            // (control & friends). We generate from printable ASCII.
            'P' | 'p' => {
                if self.eat('{') {
                    while let Some(c) = self.bump() {
                        if c == '}' {
                            break;
                        }
                    }
                } else {
                    self.bump();
                }
                Ast::AnyPrintable
            }
            'd' => Ast::Class { neg: false, ranges: vec![('0', '9')] },
            'w' => Ast::Class {
                neg: false,
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            },
            's' => Ast::Class { neg: false, ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')] },
            c => Ast::Lit(c),
        }
    }

    fn class(&mut self) -> Ast {
        let neg = self.eat('^');
        let mut ranges = Vec::new();
        loop {
            let c = match self.bump().expect("unterminated character class") {
                ']' => break,
                '\\' => match self.escape() {
                    Ast::Lit(c) => c,
                    Ast::Class { ranges: r, .. } => {
                        ranges.extend(r);
                        continue;
                    }
                    _ => '\u{fffd}',
                },
                c => c,
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = match self.bump().expect("unterminated range") {
                    '\\' => match self.escape() {
                        Ast::Lit(c) => c,
                        _ => c,
                    },
                    h => h,
                };
                ranges.push((c, hi.max(c)));
            } else {
                ranges.push((c, c));
            }
        }
        Ast::Class { neg, ranges }
    }
}

fn parse(pattern: &str) -> Ast {
    let mut p = Parser { chars: pattern.chars().collect(), pos: 0 };
    let ast = p.alternation();
    assert!(p.peek().is_none(), "trailing junk in pattern {pattern:?} at {}", p.pos);
    ast
}

fn pick_printable(rng: &mut TestRng) -> char {
    (rng.range_inclusive(0x20, 0x7e) as u8) as char
}

fn emit(ast: &Ast, rng: &mut TestRng, out: &mut String) {
    match ast {
        Ast::Lit(c) => out.push(*c),
        Ast::AnyPrintable => out.push(pick_printable(rng)),
        Ast::Class { neg, ranges } => {
            if *neg {
                // Rejection-sample printable ASCII outside the ranges.
                for _ in 0..64 {
                    let c = pick_printable(rng);
                    if !ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi) {
                        out.push(c);
                        return;
                    }
                }
                out.push('\u{fffd}');
            } else {
                let total: u64 =
                    ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
                assert!(total > 0, "empty character class");
                let mut idx = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = hi as u64 - lo as u64 + 1;
                    if idx < span {
                        out.push(char::from_u32(lo as u32 + idx as u32).unwrap_or('\u{fffd}'));
                        return;
                    }
                    idx -= span;
                }
            }
        }
        Ast::Seq(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Ast::Alt(arms) => {
            let i = rng.below(arms.len() as u64) as usize;
            emit(&arms[i], rng, out);
        }
        Ast::Rep { inner, min, max } => {
            let n = rng.range_inclusive(*min as u64, *max as u64);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let ast = parse(pattern);
    let mut out = String::new();
    emit(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &str, seed: u64) -> String {
        generate(pattern, &mut TestRng::from_seed(seed))
    }

    #[test]
    fn literal_and_repetition() {
        for s in (0..20).map(|i| sample("ab{2,4}", i)) {
            assert!(s.starts_with('a'));
            assert!((3..=5).contains(&s.len()), "{s:?}");
            assert!(s[1..].chars().all(|c| c == 'b'));
        }
    }

    #[test]
    fn classes_and_ranges() {
        for s in (0..50).map(|i| sample("[a-f0-9]{8}", i)) {
            assert_eq!(s.len(), 8);
            assert!(s.chars().all(|c| c.is_ascii_hexdigit() && !c.is_uppercase()), "{s:?}");
        }
    }

    #[test]
    fn alternation_groups() {
        for s in (0..50).map(|i| sample("(?:add|sub|\\[|\\]){1,3}", i)) {
            assert!(!s.is_empty());
            let mut rest = s.as_str();
            while !rest.is_empty() {
                let ok = ["add", "sub", "[", "]"]
                    .iter()
                    .find(|p| rest.starts_with(**p))
                    .map(|p| p.len());
                let n = ok.unwrap_or_else(|| panic!("bad token in {s:?}"));
                rest = &rest[n..];
            }
        }
    }

    #[test]
    fn wildcards_are_printable() {
        for s in (0..20).map(|i| sample("\\PC{0,40}", i)) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
        for s in (0..20).map(|i| sample(".{0,64}", i)) {
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn class_with_escapes() {
        for s in (0..30).map(|i| sample("[a-z()\\\\ \n\t]{0,40}", i)) {
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase()
                    || "()\\ \n\t".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(sample("[0-9a-f]{16}", 7), sample("[0-9a-f]{16}", 7));
    }
}
