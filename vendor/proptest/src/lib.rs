//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the proptest API subset its tests use: the `proptest!` test macro,
//! `prop_oneof!`, `prop_assert*`, `Strategy` with `prop_map`/`boxed`/
//! `prop_recursive`, `any::<T>()`, integer-range and tuple strategies,
//! `Just`, `prop::collection::vec`, `prop::array::uniform*`,
//! `prop::sample::select`, and regex-shaped string strategies.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports the panic for that generated
//!   input, seeds are derived from the test name so failures reproduce
//!   exactly on re-run;
//! * no persistence — `*.proptest-regressions` files are ignored;
//! * `prop_assert*` panic (like `assert*`) instead of returning `Err`.

pub mod array;
pub mod collection;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod string_regex;

pub use rng::TestRng;
pub use strategy::{any, union, Any, Arbitrary, BoxedStrategy, Just, Strategy};

/// Per-`proptest!` block configuration (only `cases` is meaningful here;
/// struct-update syntax against `default()` works as in real proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// Convenience constructor matching real proptest's API.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a property-test module needs; also exposes the crate itself
/// as `prop` (for `prop::collection::vec` etc.), as real proptest does.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn` runs `cases` times over fresh inputs
/// drawn from its parameter strategies; `name in strategy` and `name: Type`
/// (shorthand for `any::<Type>()`) parameter forms may be mixed freely.
#[macro_export]
macro_rules! proptest {
    // Leading inner attribute selects the config for the whole block.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };

    (@fns ($cfg:expr);) => {};
    (@fns ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __base = $crate::rng::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::rng::TestRng::from_seed(
                    __base ^ (__case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $crate::proptest!(@bind __rng; $($params)*);
                $body
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };

    (@bind $rng:ident;) => {};
    (@bind $rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $var:ident : $ty:ty) => {
        let $var = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    (@bind $rng:ident; $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };

    // No inner attribute: run with the default configuration.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assertion macros: panic like their `std` counterparts (no shrink pass).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]

        #[test]
        fn ranges_stay_in_bounds(a in 0u8..5, b in -10i64..10, c in 1usize..=3) {
            prop_assert!(a < 5);
            prop_assert!((-10..10).contains(&b));
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn mixed_binding_forms(x: u32, v in prop::collection::vec(any::<u8>(), 0..16),
                               pick in prop::sample::select(vec![2u8, 4, 8])) {
            let _ = x;
            prop_assert!(v.len() < 16);
            prop_assert!([2u8, 4, 8].contains(&pick));
        }

        #[test]
        fn oneof_and_recursive(t in prop_oneof![
            any::<u8>().prop_map(Tree::Leaf),
        ].prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn arrays_and_tuples(regs in prop::array::uniform16(any::<u32>()),
                             pair in (any::<bool>(), 0u8..9)) {
            prop_assert_eq!(regs.len(), 16);
            prop_assert!(pair.1 < 9);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::from_seed(42);
        let mut b = crate::TestRng::from_seed(42);
        let s = crate::collection::vec(crate::any::<u64>(), 0..32);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
