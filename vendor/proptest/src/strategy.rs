//! The `Strategy` trait and core combinators.
//!
//! A strategy is just a deterministic value generator over a [`TestRng`];
//! there is no shrinking. `BoxedStrategy` is a cloneable, type-erased
//! strategy — every combinator returns one, which keeps the API surface
//! (`prop_map`, `prop_recursive`, `prop_oneof!`, tuples, ranges) compatible
//! with how the workspace's tests use real proptest.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::rng::TestRng;

/// Generates values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.generate(rng)))
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.generate(rng))
    }

    /// Build a recursive strategy: `self` is the leaf case and `f` wraps an
    /// inner strategy into composite cases. `depth` bounds the nesting; the
    /// `_desired_size`/`_expected_branch` hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let composite = f(cur).boxed();
            let l = leaf.clone();
            // Mix the leaf back in so inner levels bottom out early and the
            // generated sizes vary instead of always hitting max depth.
            cur = BoxedStrategy::new(move |rng| {
                if rng.below(4) == 0 {
                    l.generate(rng)
                } else {
                    composite.generate(rng)
                }
            });
        }
        cur
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wrap a generator closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: self.gen.clone() }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (backs `prop_oneof!`).
pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one alternative");
    BoxedStrategy::new(move |rng| {
        let i = rng.below(arms.len() as u64) as usize;
        arms[i].generate(rng)
    })
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary {
    /// Produce an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally something wider.
        if rng.below(8) == 0 {
            char::from_u32(rng.range_inclusive(0xa1, 0x2fff) as u32).unwrap_or('\u{fffd}')
        } else {
            (rng.range_inclusive(0x20, 0x7e) as u8) as char
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.range_inclusive(0, (hi - lo) as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// String literals act as regex-shaped string strategies (a subset of real
/// proptest's string syntax — see [`crate::string_regex`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string_regex::generate(self, rng)
    }
}
