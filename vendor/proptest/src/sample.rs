//! Sampling strategies (`prop::sample::select`).

use crate::strategy::{BoxedStrategy, Strategy};

/// Uniformly select one of the given values.
pub fn select<T, I>(items: I) -> BoxedStrategy<T>
where
    T: Clone + 'static,
    I: Into<Vec<T>>,
{
    let items: Vec<T> = items.into();
    assert!(!items.is_empty(), "select() over an empty list");
    BoxedStrategy::new(move |rng| items[rng.below(items.len() as u64) as usize].clone())
}

/// A strategy picking an index in `[0, len)`.
pub fn index(len: usize) -> BoxedStrategy<usize> {
    assert!(len > 0, "index() over an empty domain");
    (0..len).boxed()
}
