//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::{BoxedStrategy, Strategy};

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.range_inclusive(self.lo as u64, self.hi as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// A vector of values from `elem`, with a length drawn from `size`.
pub fn vec<S>(elem: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    let size = size.into();
    BoxedStrategy::new(move |rng| {
        let n = size.pick(rng);
        (0..n).map(|_| elem.generate(rng)).collect()
    })
}
