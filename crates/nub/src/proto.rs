//! The nub wire protocol (paper, Sec. 4.2).
//!
//! "The little-endian communication protocol between ldb and the nub has
//! been used on all combinations of host and target byte orders and has
//! been validated." Every frame is `[length: u32 LE][tag: u8][payload]`,
//! with all multi-byte payload fields little-endian *regardless* of host
//! and target byte order. The nub fetches values using the target's byte
//! order and ships them little-endian.
//!
//! The protocol deliberately does not mention breakpoints or
//! single-stepping: breakpoints are implemented entirely in the debugger
//! with fetches and stores. The one extension (from the paper's Sec. 7.1
//! future work) is a special *plant* store that the nub records, so a new
//! debugger can recover the overwritten instructions after a debugger
//! crash.

/// The largest block a [`Request::FetchBlock`] may ask for, in bytes.
/// Keeps a block reply comfortably inside the 1 MiB frame cap even after
/// envelope overhead, and bounds what a corrupted length field can make a
/// decoder allocate.
pub const MAX_BLOCK: u32 = 64 * 1024;

/// Signals the nub reports. Numbers follow UNIX conventions loosely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sig {
    /// Stopped at the startup pause (before `main`).
    Pause,
    /// Breakpoint trap.
    Trap,
    /// Bad memory access.
    Segv,
    /// Arithmetic fault (integer divide by zero).
    Fpe,
    /// Illegal instruction.
    Ill,
    /// Stopped because a debugger attached.
    Attach,
    /// Stopped after a single-stepped instruction (the Sec. 7.1 protocol
    /// extension; ldb works without it but uses it when present).
    Step,
}

impl Sig {
    /// Wire number.
    pub fn number(self) -> u8 {
        match self {
            Sig::Pause => 17,
            Sig::Trap => 5,
            Sig::Segv => 11,
            Sig::Fpe => 8,
            Sig::Ill => 4,
            Sig::Attach => 19,
            Sig::Step => 23,
        }
    }

    /// Inverse of [`Sig::number`].
    pub fn from_number(n: u8) -> Option<Sig> {
        Some(match n {
            17 => Sig::Pause,
            5 => Sig::Trap,
            11 => Sig::Segv,
            8 => Sig::Fpe,
            4 => Sig::Ill,
            19 => Sig::Attach,
            23 => Sig::Step,
            _ => return None,
        })
    }
}

/// Requests the debugger sends to the nub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fetch `size` bytes (1, 2, 4, or 8) at `addr` in space `space`
    /// (`b'c'` or `b'd'`; the nub serves only code and data).
    Fetch {
        /// Space letter.
        space: u8,
        /// Target address.
        addr: u32,
        /// Value width.
        size: u8,
    },
    /// Store a value.
    Store {
        /// Space letter.
        space: u8,
        /// Target address.
        addr: u32,
        /// Value width.
        size: u8,
        /// The value, as a little-endian u64.
        value: u64,
    },
    /// A store used to plant a breakpoint; the nub records the original
    /// bytes so a future debugger can recover them.
    Plant {
        /// Target address.
        addr: u32,
        /// Instruction-unit width.
        size: u8,
        /// New instruction value.
        value: u64,
    },
    /// List recorded plants (address, size, original value).
    QueryPlants,
    /// Resume execution.
    Continue,
    /// Terminate the target.
    Kill,
    /// Break the connection, preserving target state.
    Detach,
    /// Execute exactly one instruction, then stop and notify (optional
    /// protocol extension).
    Step,
    /// Break the connection and let the target run free ("the nub may be
    /// told to continue execution instead", Sec. 4.2).
    DetachRun,
    /// Liveness probe: answered immediately with [`Reply::Running`] while
    /// the target executes, or re-announces the current stop. Lets a
    /// client distinguish a slow target from a dead wire.
    Ping,
    /// Fetch `len` raw bytes starting at `addr` in space `space`, in one
    /// round trip. The bulk-transfer counterpart of [`Request::Fetch`]:
    /// the debugger's cache layer fills whole lines with this instead of
    /// paying one transaction per word. `len` must be in
    /// `1..=`[`MAX_BLOCK`].
    FetchBlock {
        /// Space letter (`b'c'` or `b'd'`).
        space: u8,
        /// Target address of the first byte.
        addr: u32,
        /// Number of bytes to fetch.
        len: u32,
    },
    /// Execute at most `n` instructions, then stop and notify — the
    /// budgeted generalization of [`Request::Step`] that the debugger's
    /// checkpoint and reverse-execution machinery is built on. The target
    /// stops early at a breakpoint trap, fault, or exit; otherwise it
    /// stops with [`Sig::Step`] after exactly `n` retired instructions.
    /// `n == 0` re-announces the current stop (used to refresh state
    /// after a snapshot restore).
    StepN {
        /// Instruction budget.
        n: u64,
    },
    /// Capture the target's complete state (registers + dirty memory
    /// pages + output) into the nub's staging buffer, pristine of any
    /// planted breakpoints. Answered with [`Reply::Fetched`] carrying the
    /// serialized length; the debugger then pages it out with
    /// [`Request::ReadSnapshot`].
    TakeSnapshot,
    /// Read `len` bytes at `off` from the staged snapshot produced by
    /// [`Request::TakeSnapshot`]. `len` must be in `1..=`[`MAX_BLOCK`].
    /// Answered with [`Reply::Block`].
    ReadSnapshot {
        /// Byte offset into the staged snapshot.
        off: u32,
        /// Number of bytes to read.
        len: u32,
    },
    /// Append one chunk of a serialized snapshot to the nub's inbound
    /// staging buffer. `off` must equal the bytes staged so far (chunks
    /// arrive in order; the envelope layer already deduplicates
    /// retransmissions). An `off` of 0 starts a fresh upload.
    LoadSnapshot {
        /// Byte offset this chunk starts at.
        off: u32,
        /// The chunk (at most [`MAX_BLOCK`] bytes).
        bytes: Vec<u8>,
    },
    /// Decode the staged inbound snapshot (`len` bytes must have been
    /// staged) and restore the target to that state, re-planting any
    /// currently recorded breakpoints on top of the pristine image.
    CommitSnapshot {
        /// Expected total length, as a handshake against lost chunks.
        len: u32,
    },
    /// Ask for the target's retired-instruction count — its position on
    /// the deterministic execution timeline. Answered with
    /// [`Reply::Fetched`].
    QuerySteps,
}

/// Replies and notifications the nub sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A stop notification: signal, code, and the address of the context
    /// block holding the registers.
    Signal {
        /// Signal number.
        sig: u8,
        /// Auxiliary code (fault address, breakpoint code...).
        code: u32,
        /// Address of the context in the target's data space.
        context: u32,
    },
    /// Value fetched.
    Fetched {
        /// Value, little-endian.
        value: u64,
    },
    /// Store performed.
    Stored,
    /// Plants recorded: (addr, size, original value) triples.
    Plants(Vec<(u32, u8, u64)>),
    /// The target exited.
    Exited {
        /// Exit status.
        status: i32,
    },
    /// The request failed (bad address, bad space).
    Error {
        /// Error code: 1 = bad address, 2 = bad space, 3 = bad size,
        /// 4 = not stopped.
        code: u8,
    },
    /// The request was received and acted on, with nothing to report yet
    /// (Continue/Step acknowledgement in enveloped sessions, so a client
    /// can tell a lost resume request from a long-running target).
    Ack,
    /// Answer to [`Request::Ping`] while the target is executing.
    Running,
    /// Bytes fetched by [`Request::FetchBlock`]. Unlike [`Reply::Fetched`],
    /// the bytes are *raw target memory*, not a little-endian value; the
    /// `order` byte tells the client how the target assembles multi-byte
    /// values so it can reproduce word fetches bit-for-bit.
    Block {
        /// Target byte order: 0 = little-endian, 1 = big-endian.
        order: u8,
        /// The requested bytes, in target memory order.
        bytes: Vec<u8>,
    },
}

fn put_u32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn get_u32(b: &[u8], i: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(i..i + 4)?.try_into().ok()?))
}

fn get_u64(b: &[u8], i: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(i..i + 8)?.try_into().ok()?))
}

impl Request {
    /// A short stable name for logs and trace journals.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Fetch { .. } => "Fetch",
            Request::Store { .. } => "Store",
            Request::Plant { .. } => "Plant",
            Request::QueryPlants => "QueryPlants",
            Request::Continue => "Continue",
            Request::Kill => "Kill",
            Request::Detach => "Detach",
            Request::Step => "Step",
            Request::DetachRun => "DetachRun",
            Request::Ping => "Ping",
            Request::FetchBlock { .. } => "FetchBlock",
            Request::StepN { .. } => "StepN",
            Request::TakeSnapshot => "TakeSnapshot",
            Request::ReadSnapshot { .. } => "ReadSnapshot",
            Request::LoadSnapshot { .. } => "LoadSnapshot",
            Request::CommitSnapshot { .. } => "CommitSnapshot",
            Request::QuerySteps => "QuerySteps",
        }
    }

    /// Encode as a frame body (tag + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        match self {
            Request::Fetch { space, addr, size } => {
                v.push(1);
                v.push(*space);
                put_u32(&mut v, *addr);
                v.push(*size);
            }
            Request::Store { space, addr, size, value } => {
                v.push(2);
                v.push(*space);
                put_u32(&mut v, *addr);
                v.push(*size);
                put_u64(&mut v, *value);
            }
            Request::Plant { addr, size, value } => {
                v.push(3);
                put_u32(&mut v, *addr);
                v.push(*size);
                put_u64(&mut v, *value);
            }
            Request::QueryPlants => v.push(4),
            Request::Continue => v.push(5),
            Request::Kill => v.push(6),
            Request::Detach => v.push(7),
            Request::Step => v.push(8),
            Request::DetachRun => v.push(9),
            Request::Ping => v.push(10),
            Request::FetchBlock { space, addr, len } => {
                v.push(11);
                v.push(*space);
                put_u32(&mut v, *addr);
                put_u32(&mut v, *len);
            }
            Request::StepN { n } => {
                v.push(12);
                put_u64(&mut v, *n);
            }
            Request::TakeSnapshot => v.push(13),
            Request::ReadSnapshot { off, len } => {
                v.push(14);
                put_u32(&mut v, *off);
                put_u32(&mut v, *len);
            }
            Request::LoadSnapshot { off, bytes } => {
                v.push(15);
                put_u32(&mut v, *off);
                put_u32(&mut v, bytes.len() as u32);
                v.extend_from_slice(bytes);
            }
            // Tags 0x10–0x12 are reserved for envelope framing; the last
            // two bare tags skip over them.
            Request::CommitSnapshot { len } => {
                v.push(19);
                put_u32(&mut v, *len);
            }
            Request::QuerySteps => v.push(20),
        }
        v
    }

    /// Decode a frame body.
    pub fn decode(b: &[u8]) -> Option<Request> {
        match *b.first()? {
            1 => Some(Request::Fetch {
                space: *b.get(1)?,
                addr: get_u32(b, 2)?,
                size: *b.get(6)?,
            }),
            2 => Some(Request::Store {
                space: *b.get(1)?,
                addr: get_u32(b, 2)?,
                size: *b.get(6)?,
                value: get_u64(b, 7)?,
            }),
            3 => Some(Request::Plant {
                addr: get_u32(b, 1)?,
                size: *b.get(5)?,
                value: get_u64(b, 6)?,
            }),
            4 => Some(Request::QueryPlants),
            5 => Some(Request::Continue),
            6 => Some(Request::Kill),
            7 => Some(Request::Detach),
            8 => Some(Request::Step),
            9 => Some(Request::DetachRun),
            10 => Some(Request::Ping),
            11 => Some(Request::FetchBlock {
                space: *b.get(1)?,
                addr: get_u32(b, 2)?,
                len: get_u32(b, 6)?,
            }),
            12 => Some(Request::StepN { n: get_u64(b, 1)? }),
            13 => Some(Request::TakeSnapshot),
            14 => Some(Request::ReadSnapshot { off: get_u32(b, 1)?, len: get_u32(b, 5)? }),
            15 => {
                let off = get_u32(b, 1)?;
                let n = get_u32(b, 5)? as usize;
                // Never trust a length field: cap it and require the body
                // to actually hold n bytes before anything is allocated.
                if n > MAX_BLOCK as usize || b.len() < 9 + n {
                    return None;
                }
                Some(Request::LoadSnapshot { off, bytes: b[9..9 + n].to_vec() })
            }
            19 => Some(Request::CommitSnapshot { len: get_u32(b, 1)? }),
            20 => Some(Request::QuerySteps),
            _ => None,
        }
    }
}

impl Reply {
    /// A short stable name for logs and trace journals.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Reply::Signal { .. } => "Signal",
            Reply::Fetched { .. } => "Fetched",
            Reply::Stored => "Stored",
            Reply::Plants(_) => "Plants",
            Reply::Exited { .. } => "Exited",
            Reply::Error { .. } => "Error",
            Reply::Ack => "Ack",
            Reply::Running => "Running",
            Reply::Block { .. } => "Block",
        }
    }

    /// Encode as a frame body (tag + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        match self {
            Reply::Signal { sig, code, context } => {
                v.push(0x81);
                v.push(*sig);
                put_u32(&mut v, *code);
                put_u32(&mut v, *context);
            }
            Reply::Fetched { value } => {
                v.push(0x82);
                put_u64(&mut v, *value);
            }
            Reply::Stored => v.push(0x83),
            Reply::Plants(list) => {
                v.push(0x84);
                put_u32(&mut v, list.len() as u32);
                for (a, s, val) in list {
                    put_u32(&mut v, *a);
                    v.push(*s);
                    put_u64(&mut v, *val);
                }
            }
            Reply::Exited { status } => {
                v.push(0x85);
                put_u32(&mut v, *status as u32);
            }
            Reply::Error { code } => {
                v.push(0x86);
                v.push(*code);
            }
            Reply::Ack => v.push(0x87),
            Reply::Running => v.push(0x88),
            Reply::Block { order, bytes } => {
                v.push(0x89);
                v.push(*order);
                put_u32(&mut v, bytes.len() as u32);
                v.extend_from_slice(bytes);
            }
        }
        v
    }

    /// Decode a frame body.
    pub fn decode(b: &[u8]) -> Option<Reply> {
        match *b.first()? {
            0x81 => Some(Reply::Signal {
                sig: *b.get(1)?,
                code: get_u32(b, 2)?,
                context: get_u32(b, 6)?,
            }),
            0x82 => Some(Reply::Fetched { value: get_u64(b, 1)? }),
            0x83 => Some(Reply::Stored),
            0x84 => {
                let n = get_u32(b, 1)? as usize;
                // Never trust a length field: the body must actually hold
                // n entries before anything is allocated.
                if b.len() < 5 + n.checked_mul(13)? {
                    return None;
                }
                let mut list = Vec::with_capacity(n);
                let mut i = 5;
                for _ in 0..n {
                    let a = get_u32(b, i)?;
                    let s = *b.get(i + 4)?;
                    let val = get_u64(b, i + 5)?;
                    list.push((a, s, val));
                    i += 13;
                }
                Some(Reply::Plants(list))
            }
            0x85 => Some(Reply::Exited { status: get_u32(b, 1)? as i32 }),
            0x86 => Some(Reply::Error { code: *b.get(1)? }),
            0x87 => Some(Reply::Ack),
            0x88 => Some(Reply::Running),
            0x89 => {
                let order = *b.get(1)?;
                let n = get_u32(b, 2)? as usize;
                // Never trust a length field: cap it and require the body
                // to actually hold n bytes before anything is allocated.
                if n > MAX_BLOCK as usize || b.len() < 6 + n {
                    return None;
                }
                Some(Reply::Block { order, bytes: b[6..6 + n].to_vec() })
            }
            _ => None,
        }
    }
}

/// Frame tag opening an enveloped request.
pub const ENV_REQ: u8 = 0x10;
/// Frame tag opening an enveloped reply.
pub const ENV_REPLY: u8 = 0x11;
/// Frame tag opening an enveloped asynchronous notification.
pub const ENV_EVENT: u8 = 0x12;

/// FNV-1a over a frame, the envelope's integrity check. Not
/// cryptographic — it guards against wire corruption, not an adversary.
fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The resilient session layer over bare protocol bodies.
///
/// A bare frame (`[tag][payload]`, tag 1–10 or 0x81–0x88) is the paper's
/// original protocol and remains valid. An *enveloped* frame wraps a bare
/// body as `[env-tag][n: u32 LE][body][fnv1a: u32 LE]` where `n` is a
/// request sequence number (requests and their replies) or an event
/// generation number (notifications). The envelope is what makes the
/// session safe on a faulty wire:
///
/// * the checksum turns corruption into a detectable decode failure,
/// * the sequence number pairs replies with requests, so duplicates and
///   stale retransmissions are recognized instead of desynchronizing the
///   stream, and
/// * the generation number deduplicates re-sent stop notifications.
///
/// Envelope tags 0x10–0x12 never collide with bare tags, so both framings
/// coexist on one wire and a nub can serve old and new clients alike.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// A sequenced request.
    Req {
        /// Sequence number, increasing per transaction.
        seq: u32,
        /// The request proper.
        req: Request,
    },
    /// The reply to the request with the same `seq`.
    Reply {
        /// Sequence number copied from the request.
        seq: u32,
        /// The reply proper.
        reply: Reply,
    },
    /// An asynchronous notification (stop/exit), deduplicated by
    /// generation.
    Event {
        /// Generation number, increasing per distinct event.
        generation: u32,
        /// The notification payload.
        reply: Reply,
    },
}

fn seal(tag: u8, n: u32, body: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(body.len() + 9);
    v.push(tag);
    put_u32(&mut v, n);
    v.extend_from_slice(body);
    let crc = fnv32(&v);
    put_u32(&mut v, crc);
    v
}

impl Envelope {
    /// Encode as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Envelope::Req { seq, req } => seal(ENV_REQ, *seq, &req.encode()),
            Envelope::Reply { seq, reply } => seal(ENV_REPLY, *seq, &reply.encode()),
            Envelope::Event { generation, reply } => seal(ENV_EVENT, *generation, &reply.encode()),
        }
    }

    /// Decode a frame body. Returns `None` for non-envelope tags, short
    /// frames, checksum mismatches, and undecodable inner bodies — all of
    /// which a resilient peer treats as wire corruption.
    pub fn decode(b: &[u8]) -> Option<Envelope> {
        let tag = *b.first()?;
        if !(ENV_REQ..=ENV_EVENT).contains(&tag) || b.len() < 9 {
            return None;
        }
        let (payload, crc_bytes) = b.split_at(b.len() - 4);
        let crc = u32::from_le_bytes(crc_bytes.try_into().ok()?);
        if fnv32(payload) != crc {
            return None;
        }
        let n = get_u32(payload, 1)?;
        let body = &payload[5..];
        match tag {
            ENV_REQ => Some(Envelope::Req { seq: n, req: Request::decode(body)? }),
            ENV_REPLY => Some(Envelope::Reply { seq: n, reply: Reply::decode(body)? }),
            ENV_EVENT => Some(Envelope::Event { generation: n, reply: Reply::decode(body)? }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_round_trips() {
        let cases = [
            Request::Fetch { space: b'd', addr: 0x1234, size: 4 },
            Request::Store { space: b'c', addr: 0xffff_fff0, size: 8, value: u64::MAX },
            Request::Plant { addr: 0x2000, size: 1, value: 3 },
            Request::QueryPlants,
            Request::Continue,
            Request::Kill,
            Request::Detach,
            Request::Step,
            Request::DetachRun,
        ];
        for r in cases {
            assert_eq!(Request::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn reply_round_trips() {
        let cases = [
            Reply::Signal { sig: 5, code: 0x1010, context: 0x8000 },
            Reply::Fetched { value: 0x0102_0304_0506_0708 },
            Reply::Stored,
            Reply::Plants(vec![(0x1000, 4, 0xd), (0x1010, 1, 0x01)]),
            Reply::Exited { status: -1 },
            Reply::Error { code: 2 },
        ];
        for r in cases {
            assert_eq!(Reply::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn junk_decodes_to_none() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[99]), None);
        assert_eq!(Reply::decode(&[0x82, 1, 2]), None);
    }

    #[test]
    fn block_frames_round_trip() {
        let req = Request::FetchBlock { space: b'd', addr: 0x4000, len: 64 };
        assert_eq!(Request::decode(&req.encode()), Some(req));
        for order in [0u8, 1] {
            let rep = Reply::Block { order, bytes: (0..64u8).collect() };
            assert_eq!(Reply::decode(&rep.encode()), Some(rep.clone()));
            let env = Envelope::Reply { seq: 9, reply: rep };
            assert_eq!(Envelope::decode(&env.encode()), Some(env));
        }
        // Empty blocks survive the codec too; the nub rejects len == 0 at
        // the service layer, not the codec.
        let empty = Reply::Block { order: 0, bytes: vec![] };
        assert_eq!(Reply::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn block_decode_rejects_lying_lengths() {
        // Claims 16 bytes but carries 4: must not decode (and must not
        // allocate for the claimed length first).
        let mut b = vec![0x89, 0, 16, 0, 0, 0];
        b.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(Reply::decode(&b), None);
        // Claims more than MAX_BLOCK: rejected outright even if a
        // malicious frame were long enough.
        let mut huge = vec![0x89, 0];
        huge.extend_from_slice(&(MAX_BLOCK + 1).to_le_bytes());
        assert_eq!(Reply::decode(&huge), None);
        // A full-size block at exactly MAX_BLOCK still fits in a frame.
        let max = Reply::Block { order: 1, bytes: vec![0xab; MAX_BLOCK as usize] };
        let frame = max.encode();
        assert!(frame.len() < 1 << 20);
        assert_eq!(Reply::decode(&frame), Some(max));
    }

    #[test]
    fn snapshot_frames_round_trip() {
        let cases = [
            Request::StepN { n: 0 },
            Request::StepN { n: u64::MAX },
            Request::TakeSnapshot,
            Request::ReadSnapshot { off: 0x1_0000, len: MAX_BLOCK },
            Request::LoadSnapshot { off: 0, bytes: vec![] },
            Request::LoadSnapshot { off: 7, bytes: (0..200u8).collect() },
            Request::CommitSnapshot { len: 0x1234 },
            Request::QuerySteps,
        ];
        for r in cases {
            assert_eq!(Request::decode(&r.encode()), Some(r.clone()));
            let env = Envelope::Req { seq: 42, req: r };
            assert_eq!(Envelope::decode(&env.encode()), Some(env));
        }
    }

    #[test]
    fn load_snapshot_decode_rejects_lying_lengths() {
        // Claims 16 payload bytes but carries 4: must not decode (and
        // must not allocate for the claimed length first).
        let mut b = vec![15, 0, 0, 0, 0, 16, 0, 0, 0];
        b.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(Request::decode(&b), None);
        // Claims more than MAX_BLOCK: rejected outright.
        let mut huge = vec![15, 0, 0, 0, 0];
        huge.extend_from_slice(&(MAX_BLOCK + 1).to_le_bytes());
        assert_eq!(Request::decode(&huge), None);
    }

    #[test]
    fn sig_numbers_round_trip() {
        for s in [Sig::Pause, Sig::Trap, Sig::Segv, Sig::Fpe, Sig::Ill, Sig::Attach, Sig::Step] {
            assert_eq!(Sig::from_number(s.number()), Some(s));
        }
        assert_eq!(Sig::from_number(0), None);
    }

    proptest! {
        /// Protocol validation: arbitrary fetch/store/plant parameters
        /// survive the little-endian codec (the paper validated its
        /// protocol with SPIN [13]; property testing is our analog).
        #[test]
        fn prop_fetch_store_roundtrip(space in prop::sample::select(vec![b'c', b'd']),
                                      addr: u32, size in prop::sample::select(vec![1u8,2,4,8]),
                                      value: u64) {
            let f = Request::Fetch { space, addr, size };
            prop_assert_eq!(Request::decode(&f.encode()), Some(f));
            let s = Request::Store { space, addr, size, value };
            prop_assert_eq!(Request::decode(&s.encode()), Some(s));
        }

        #[test]
        fn prop_signal_roundtrip(sig: u8, code: u32, context: u32) {
            let r = Reply::Signal { sig, code, context };
            prop_assert_eq!(Reply::decode(&r.encode()), Some(r));
        }

        #[test]
        fn prop_plants_roundtrip(list in prop::collection::vec((any::<u32>(), prop::sample::select(vec![1u8,2,4]), any::<u64>()), 0..8)) {
            let r = Reply::Plants(list);
            prop_assert_eq!(Reply::decode(&r.encode()), Some(r.clone()));
        }

        /// Block frames survive the codec for arbitrary contents, bare and
        /// enveloped alike.
        #[test]
        fn prop_block_roundtrip(space in prop::sample::select(vec![b'c', b'd']),
                                addr: u32, len in 1u32..=MAX_BLOCK, seq: u32,
                                order in 0u8..=1,
                                bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let req = Request::FetchBlock { space, addr, len };
            prop_assert_eq!(Request::decode(&req.encode()), Some(req.clone()));
            let env = Envelope::Req { seq, req };
            prop_assert_eq!(Envelope::decode(&env.encode()), Some(env));
            let rep = Reply::Block { order, bytes };
            prop_assert_eq!(Reply::decode(&rep.encode()), Some(rep));
        }

        /// The decoder never panics on arbitrary bytes.
        #[test]
        fn prop_decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
            let _ = Request::decode(&bytes);
            let _ = Reply::decode(&bytes);
            let _ = Envelope::decode(&bytes);
        }

        /// Envelopes survive the codec with their numbering intact.
        #[test]
        fn prop_envelope_roundtrip(seq: u32, addr: u32, value: u64,
                                   size in prop::sample::select(vec![1u8,2,4,8])) {
            let req = Envelope::Req { seq, req: Request::Fetch { space: b'd', addr, size } };
            prop_assert_eq!(Envelope::decode(&req.encode()), Some(req));
            let rep = Envelope::Reply { seq, reply: Reply::Fetched { value } };
            prop_assert_eq!(Envelope::decode(&rep.encode()), Some(rep));
            let ev = Envelope::Event {
                generation: seq,
                reply: Reply::Signal { sig: 5, code: addr, context: addr ^ 0xffff },
            };
            prop_assert_eq!(Envelope::decode(&ev.encode()), Some(ev));
        }

        /// Any single flipped byte in an envelope is caught by the
        /// checksum: the frame decodes to `None`, never to a different
        /// well-formed envelope.
        #[test]
        fn prop_envelope_detects_corruption(seq: u32, value: u64, pos: usize, flip in 1u8..=255) {
            let frame = Envelope::Reply { seq, reply: Reply::Fetched { value } }.encode();
            let mut bad = frame.clone();
            let i = pos % bad.len();
            bad[i] ^= flip;
            prop_assert_eq!(Envelope::decode(&bad), None);
        }
    }

    #[test]
    fn every_request_and_reply_round_trips() {
        let reqs = [
            Request::QueryPlants,
            Request::Continue,
            Request::Kill,
            Request::Detach,
            Request::Step,
            Request::DetachRun,
            Request::Ping,
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()), Some(r));
        }
        for r in [Reply::Ack, Reply::Running] {
            assert_eq!(Reply::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn envelope_tags_never_collide_with_bare_frames() {
        // A bare request/reply body must not parse as an envelope and
        // vice versa, so both framings can share one wire.
        for r in [Request::Fetch { space: b'd', addr: 0x10, size: 4 }, Request::Ping] {
            assert_eq!(Envelope::decode(&r.encode()), None);
        }
        let env = Envelope::Req { seq: 7, req: Request::Continue }.encode();
        assert_eq!(Request::decode(&env), None);
        assert_eq!(Reply::decode(&env), None);
    }
}
