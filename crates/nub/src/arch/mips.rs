//! MIPS nub hooks.
//!
//! The one piece of MIPS dirt is the paper's footnote 3: "On a big-endian
//! MIPS, doubleword floating-point values are stored with the most
//! significant word first, except that when the kernel saves
//! floating-point registers in a struct sigcontext, it stores the least
//! significant word first." Our simulated kernel (the context writer
//! below) reproduces the quirk, and the nub's doubleword fetches and
//! stores of saved floating-point registers swap the words to compensate.

use ldb_machine::{ByteOrder, Machine};

/// The MIPS nub.
pub struct MipsNub;

/// Is `addr` inside the saved floating-point area of the context at `ctx`?
fn in_freg_area(m: &Machine, ctx: u32, addr: u32) -> bool {
    let layout = m.cpu.data().ctx;
    let lo = ctx + layout.freg_offset;
    let hi = lo + layout.nfregs as u32 * 8;
    (lo..hi).contains(&addr)
}

impl super::NubArch for MipsNub {
    fn write_context(&self, m: &mut Machine, ctx: u32) {
        super::generic_write_context(m, ctx);
        if m.cpu.mem.order() == ByteOrder::Big {
            // The kernel quirk: re-store each double with the least
            // significant word first.
            let layout = m.cpu.data().ctx;
            for f in 0..layout.nfregs {
                let a = ctx + layout.freg(f);
                let bits = m.cpu.fregs[f as usize].to_bits();
                let _ = m.cpu.mem.write_u32(a, bits as u32); // LSW first
                let _ = m.cpu.mem.write_u32(a + 4, (bits >> 32) as u32);
            }
        }
    }

    fn restore_context(&self, m: &mut Machine, ctx: u32) {
        super::generic_restore_context(m, ctx);
        if m.cpu.mem.order() == ByteOrder::Big {
            let layout = m.cpu.data().ctx;
            for f in 0..layout.nfregs {
                let a = ctx + layout.freg(f);
                let lsw = m.cpu.mem.read_u32(a).unwrap_or(0) as u64;
                let msw = m.cpu.mem.read_u32(a + 4).unwrap_or(0) as u64;
                m.cpu.fregs[f as usize] = f64::from_bits((msw << 32) | lsw);
            }
        }
    }

    fn fetch_fixup8(&self, m: &Machine, ctx: u32, addr: u32, raw: u64) -> u64 {
        if m.cpu.mem.order() == ByteOrder::Big && in_freg_area(m, ctx, addr) {
            raw.rotate_left(32)
        } else {
            raw
        }
    }

    fn store_fixup8(&self, m: &Machine, ctx: u32, addr: u32, raw: u64) -> u64 {
        if m.cpu.mem.order() == ByteOrder::Big && in_freg_area(m, ctx, addr) {
            raw.rotate_left(32)
        } else {
            raw
        }
    }
}
