//! 68020 nub hooks.
//!
//! "The VAX and 68020 require assembly code to save and restore
//! registers, and the 68020 requires assembly code to fetch and store
//! 80-bit floating-point values" (paper, Sec. 4.3). The analog here is an
//! explicit, unrolled save/restore sequence — the shared loop cannot be
//! used because the 68020's floating registers pass through the 80-bit
//! extended format on their way to memory (and back), exactly the
//! conversion the real nub needed assembly for.

use ldb_machine::{f80, Machine};

/// The 68020 nub.
pub struct M68kNub;

impl super::NubArch for M68kNub {
    fn write_context(&self, m: &mut Machine, ctx: u32) {
        let layout = m.cpu.data().ctx;
        let _ = m.cpu.mem.write_u32(ctx + layout.pc_offset, m.cpu.pc);
        // d0-d7, then a0-a7, explicitly (the movem analog).
        for d in 0..8u8 {
            let v = m.cpu.reg(d);
            let _ = m.cpu.mem.write_u32(ctx + layout.reg(d), v);
        }
        for a in 8..16u8 {
            let v = m.cpu.reg(a);
            let _ = m.cpu.mem.write_u32(ctx + layout.reg(a), v);
        }
        // fp0-fp7: through the 80-bit extended format. The context slot is
        // 8 bytes, so the 10-byte image is narrowed back — the round trip
        // preserves every double exactly.
        for f in 0..8u8 {
            let ext = f80::encode(m.cpu.fregs[f as usize]);
            let narrowed = f80::decode(&ext);
            let _ = m.cpu.mem.write_f64(ctx + layout.freg(f), narrowed);
        }
    }

    fn restore_context(&self, m: &mut Machine, ctx: u32) {
        let layout = m.cpu.data().ctx;
        if let Ok(pc) = m.cpu.mem.read_u32(ctx + layout.pc_offset) {
            m.cpu.pc = pc;
        }
        for d in 0..8u8 {
            if let Ok(v) = m.cpu.mem.read_u32(ctx + layout.reg(d)) {
                m.cpu.set_reg(d, v);
            }
        }
        for a in 8..16u8 {
            if let Ok(v) = m.cpu.mem.read_u32(ctx + layout.reg(a)) {
                m.cpu.set_reg(a, v);
            }
        }
        for f in 0..8u8 {
            if let Ok(v) = m.cpu.mem.read_f64(ctx + layout.freg(f)) {
                let ext = f80::encode(v);
                m.cpu.fregs[f as usize] = f80::decode(&ext);
            }
        }
    }
}
