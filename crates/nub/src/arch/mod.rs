//! Machine-dependent parts of the nub.
//!
//! "Most of the nub is machine-independent, but it has a few machine
//! dependencies" (Sec. 4.3): how a context is saved and restored, and
//! byte-order quirks in fetching saved floating-point registers. Each
//! target's hooks live in its own module; the SPARC needs almost nothing
//! because the shared code covers it — mirroring the paper's table, where
//! the SPARC nub is 5 lines.

pub mod m68k;
pub mod mips;
pub mod sparc;
pub mod vax;

use ldb_machine::{Arch, Machine};

/// The nub's machine-dependent hooks.
pub trait NubArch: Send + Sync {
    /// Save the stopped program's state (pc, integer registers, floating
    /// registers) into the context block at `ctx`.
    fn write_context(&self, m: &mut Machine, ctx: u32) {
        generic_write_context(m, ctx);
    }

    /// Restore the program's state from the context block (so register
    /// stores made by the debugger take effect on continue).
    fn restore_context(&self, m: &mut Machine, ctx: u32) {
        generic_restore_context(m, ctx);
    }

    /// Adjust an 8-byte fetch (see the big-endian MIPS quirk).
    fn fetch_fixup8(&self, _m: &Machine, _ctx: u32, _addr: u32, raw: u64) -> u64 {
        raw
    }

    /// Adjust an 8-byte store, the inverse of [`NubArch::fetch_fixup8`].
    fn store_fixup8(&self, _m: &Machine, _ctx: u32, _addr: u32, raw: u64) -> u64 {
        raw
    }
}

/// Pick the hooks for a target.
pub fn nub_arch(arch: Arch) -> &'static dyn NubArch {
    match arch {
        Arch::Mips => &mips::MipsNub,
        Arch::Sparc => &sparc::SparcNub,
        Arch::M68k => &m68k::M68kNub,
        Arch::Vax => &vax::VaxNub,
    }
}

/// The shared context writer: pc, then integer registers, then doubles,
/// all in the target byte order, laid out per [`ldb_machine::ContextLayout`].
pub fn generic_write_context(m: &mut Machine, ctx: u32) {
    let layout = m.cpu.data().ctx;
    let _ = m.cpu.mem.write_u32(ctx + layout.pc_offset, m.cpu.pc);
    for r in 0..layout.nregs {
        let v = m.cpu.reg(r);
        let _ = m.cpu.mem.write_u32(ctx + layout.reg(r), v);
    }
    for f in 0..layout.nfregs {
        let v = m.cpu.fregs[f as usize];
        let _ = m.cpu.mem.write_f64(ctx + layout.freg(f), v);
    }
}

/// The shared context restorer.
pub fn generic_restore_context(m: &mut Machine, ctx: u32) {
    let layout = m.cpu.data().ctx;
    if let Ok(pc) = m.cpu.mem.read_u32(ctx + layout.pc_offset) {
        m.cpu.pc = pc;
    }
    for r in 0..layout.nregs {
        if let Ok(v) = m.cpu.mem.read_u32(ctx + layout.reg(r)) {
            m.cpu.set_reg(r, v);
        }
    }
    for f in 0..layout.nfregs {
        if let Ok(v) = m.cpu.mem.read_f64(ctx + layout.freg(f)) {
            m.cpu.fregs[f as usize] = v;
        }
    }
}
