//! VAX nub hooks.
//!
//! Like the 68020, the VAX "requires assembly code to save and restore
//! registers" and cannot reuse struct sigcontext as its context (paper,
//! Sec. 4.3): the VAX context keeps the processor status longword (PSL)
//! conceptually adjacent, and r15 is the pc itself, so the save sequence
//! is explicit rather than the shared loop.

use ldb_machine::Machine;

/// The VAX nub.
pub struct VaxNub;

impl super::NubArch for VaxNub {
    fn write_context(&self, m: &mut Machine, ctx: u32) {
        let layout = m.cpu.data().ctx;
        // r15 mirrors the pc on a real VAX; keep the two consistent.
        let _ = m.cpu.mem.write_u32(ctx + layout.pc_offset, m.cpu.pc);
        for r in 0..15u8 {
            let v = m.cpu.reg(r);
            let _ = m.cpu.mem.write_u32(ctx + layout.reg(r), v);
        }
        let _ = m.cpu.mem.write_u32(ctx + layout.reg(15), m.cpu.pc);
        for f in 0..8u8 {
            let v = m.cpu.fregs[f as usize];
            let _ = m.cpu.mem.write_f64(ctx + layout.freg(f), v);
        }
    }

    fn restore_context(&self, m: &mut Machine, ctx: u32) {
        let layout = m.cpu.data().ctx;
        if let Ok(pc) = m.cpu.mem.read_u32(ctx + layout.pc_offset) {
            m.cpu.pc = pc;
        }
        for r in 0..15u8 {
            if let Ok(v) = m.cpu.mem.read_u32(ctx + layout.reg(r)) {
                m.cpu.set_reg(r, v);
            }
        }
        for f in 0..8u8 {
            if let Ok(v) = m.cpu.mem.read_f64(ctx + layout.freg(f)) {
                m.cpu.fregs[f as usize] = v;
            }
        }
    }
}
