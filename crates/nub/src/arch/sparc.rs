//! SPARC nub hooks. "There is very little SPARC-dependent code in the nub
//! because the operating system provides most of the registers and there
//! is no other machine-dependent dirt" (paper, Sec. 4.3). The shared
//! context code covers the SPARC completely.

/// The SPARC nub: entirely default behaviour.
pub struct SparcNub;

impl super::NubArch for SparcNub {}
