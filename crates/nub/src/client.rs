//! The debugger side of the nub protocol: a small typed stub over a
//! [`Wire`]. This is the whole interface the debugger has to a target
//! process — fetch, store, continue, and stop notifications. Keeping the
//! interface this small is what makes the nub easy to reimplement in
//! other environments (paper, Sec. 4.2).

use std::io;

use crate::proto::{Reply, Request, Sig};
use crate::transport::Wire;

/// An event reported by the nub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NubEvent {
    /// The target stopped.
    Stopped {
        /// Why.
        sig: Sig,
        /// Auxiliary code (trap pc, fault address...).
        code: u32,
        /// Address of the context block in the target's data space.
        context: u32,
    },
    /// The target exited.
    Exited(i32),
}

/// Errors from nub operations.
#[derive(Debug)]
pub enum NubError {
    /// The connection failed (the nub may still be alive and will keep the
    /// target's state; reconnect to resume debugging).
    Io(io::Error),
    /// The nub rejected the request.
    Nub(u8),
    /// The protocol got out of sync.
    Protocol(String),
}

impl std::fmt::Display for NubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NubError::Io(e) => write!(f, "nub connection: {e}"),
            NubError::Nub(1) => write!(f, "nub: bad address"),
            NubError::Nub(2) => write!(f, "nub: bad space"),
            NubError::Nub(3) => write!(f, "nub: bad size"),
            NubError::Nub(c) => write!(f, "nub: error {c}"),
            NubError::Protocol(s) => write!(f, "nub protocol: {s}"),
        }
    }
}

impl std::error::Error for NubError {}

impl From<io::Error> for NubError {
    fn from(e: io::Error) -> Self {
        NubError::Io(e)
    }
}

/// The debugger's connection to one nub.
pub struct NubClient {
    wire: Box<dyn Wire>,
}

impl std::fmt::Debug for NubClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NubClient")
    }
}

impl NubClient {
    /// Wrap a connected wire.
    pub fn new(wire: Box<dyn Wire>) -> NubClient {
        NubClient { wire }
    }

    fn recv_reply(&mut self) -> Result<Reply, NubError> {
        let frame = self.wire.recv()?;
        Reply::decode(&frame).ok_or_else(|| NubError::Protocol("undecodable reply".into()))
    }

    fn transact(&mut self, req: &Request) -> Result<Reply, NubError> {
        self.wire.send(&req.encode())?;
        // Skip stray notifications (none expected while stopped, but be
        // liberal).
        self.recv_reply()
    }

    /// Wait for the next stop/exit notification.
    ///
    /// # Errors
    /// Connection loss, protocol corruption.
    pub fn wait_event(&mut self) -> Result<NubEvent, NubError> {
        match self.recv_reply()? {
            Reply::Signal { sig, code, context } => {
                let sig = Sig::from_number(sig)
                    .ok_or_else(|| NubError::Protocol(format!("signal {sig}")))?;
                Ok(NubEvent::Stopped { sig, code, context })
            }
            Reply::Exited { status } => Ok(NubEvent::Exited(status)),
            other => Err(NubError::Protocol(format!("expected a signal, got {other:?}"))),
        }
    }

    /// Fetch a value from the code or data space.
    ///
    /// # Errors
    /// Bad addresses and connection loss.
    pub fn fetch(&mut self, space: char, addr: u32, size: u8) -> Result<u64, NubError> {
        match self.transact(&Request::Fetch { space: space as u8, addr, size })? {
            Reply::Fetched { value } => Ok(value),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Store a value into the code or data space.
    ///
    /// # Errors
    /// Bad addresses and connection loss.
    pub fn store(&mut self, space: char, addr: u32, size: u8, value: u64) -> Result<(), NubError> {
        match self.transact(&Request::Store { space: space as u8, addr, size, value })? {
            Reply::Stored => Ok(()),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Plant a breakpoint store; the nub records the original instruction
    /// so a future debugger can recover it.
    ///
    /// # Errors
    /// Bad addresses and connection loss.
    pub fn plant(&mut self, addr: u32, size: u8, value: u64) -> Result<(), NubError> {
        match self.transact(&Request::Plant { addr, size, value })? {
            Reply::Stored => Ok(()),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// List the nub's recorded plants: (address, size, original value).
    ///
    /// # Errors
    /// Connection loss.
    pub fn query_plants(&mut self) -> Result<Vec<(u32, u8, u64)>, NubError> {
        match self.transact(&Request::QueryPlants)? {
            Reply::Plants(v) => Ok(v),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Resume the target and wait for the next event.
    ///
    /// # Errors
    /// Connection loss.
    pub fn continue_and_wait(&mut self) -> Result<NubEvent, NubError> {
        self.wire.send(&Request::Continue.encode())?;
        self.wait_event()
    }

    /// Execute one instruction and wait for the resulting stop (requires
    /// the nub's single-step extension).
    ///
    /// # Errors
    /// Connection loss.
    pub fn step_and_wait(&mut self) -> Result<NubEvent, NubError> {
        self.wire.send(&Request::Step.encode())?;
        self.wait_event()
    }

    /// Resume the target without waiting.
    ///
    /// # Errors
    /// Connection loss.
    pub fn continue_only(&mut self) -> Result<(), NubError> {
        self.wire.send(&Request::Continue.encode())?;
        Ok(())
    }

    /// Break the connection; the nub preserves the target's state.
    ///
    /// # Errors
    /// Connection loss (which achieves the same thing).
    pub fn detach(mut self) -> Result<(), NubError> {
        self.detach_in_place()
    }

    /// As [`NubClient::detach`], without consuming the client (the
    /// connection is dead afterwards).
    ///
    /// # Errors
    /// Connection loss (which achieves the same thing).
    pub fn detach_in_place(&mut self) -> Result<(), NubError> {
        self.wire.send(&Request::Detach.encode())?;
        Ok(())
    }

    /// Break the connection and let the target continue running free.
    ///
    /// # Errors
    /// Connection loss.
    pub fn detach_and_run(&mut self) -> Result<(), NubError> {
        self.wire.send(&Request::DetachRun.encode())?;
        Ok(())
    }

    /// Terminate the target.
    ///
    /// # Errors
    /// Connection loss.
    pub fn kill(mut self) -> Result<i32, NubError> {
        self.wire.send(&Request::Kill.encode())?;
        match self.wait_event()? {
            NubEvent::Exited(s) => Ok(s),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }
}
