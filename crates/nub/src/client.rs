//! The debugger side of the nub protocol: a small typed stub over a
//! [`Wire`]. This is the whole interface the debugger has to a target
//! process — fetch, store, continue, and stop notifications. Keeping the
//! interface this small is what makes the nub easy to reimplement in
//! other environments (paper, Sec. 4.2).
//!
//! The client speaks the *enveloped* session layer (see
//! [`crate::proto::Envelope`]): every request carries a sequence number
//! and a checksum, replies are matched to their request, and asynchronous
//! stop notifications are deduplicated by generation. On top of that sit
//! the resilience policies: a per-transaction reply timeout, bounded
//! retransmission with exponential backoff (safe for every request — the
//! nub executes each sequence number at most once), and [`Request::Ping`]
//! probing while waiting for events, so a dead wire is distinguished from
//! a target that is simply still running. [`NubClient::reconnect`] swaps
//! the transport under a live client without losing any debugger-side
//! state, which is what lets a session survive a severed connection.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ldb_trace::{Layer, Severity, Trace};

use crate::proto::{Envelope, Reply, Request, Sig};
use crate::transport::Wire;

/// An event reported by the nub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NubEvent {
    /// The target stopped.
    Stopped {
        /// Why.
        sig: Sig,
        /// Auxiliary code (trap pc, fault address...).
        code: u32,
        /// Address of the context block in the target's data space.
        context: u32,
    },
    /// The target exited.
    Exited(i32),
}

/// Errors from nub operations.
#[derive(Debug)]
pub enum NubError {
    /// The connection failed (the nub may still be alive and will keep the
    /// target's state; reconnect to resume debugging).
    Io(io::Error),
    /// The nub rejected the request.
    Nub(u8),
    /// The protocol got out of sync.
    Protocol(String),
    /// The nub stopped answering within the retry budget; the wire may be
    /// dead or the peer wedged. Reconnect (or retry) to find out.
    Timeout(String),
    /// The operation was aborted by the session's cancellation token
    /// (see [`NubClient::set_cancel`]). The wire is fine — a watchdog
    /// cut the command short, nothing more.
    Cancelled,
}

impl std::fmt::Display for NubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NubError::Io(e) => write!(f, "nub connection: {e}"),
            NubError::Nub(1) => write!(f, "nub: bad address"),
            NubError::Nub(2) => write!(f, "nub: bad space"),
            NubError::Nub(3) => write!(f, "nub: bad size"),
            NubError::Nub(4) => write!(f, "nub: target is not stopped"),
            NubError::Nub(c) => write!(f, "nub: error {c}"),
            NubError::Protocol(s) => write!(f, "nub protocol: {s}"),
            NubError::Timeout(s) => write!(f, "nub timeout: {s}"),
            NubError::Cancelled => f.write_str("cancelled by session watchdog"),
        }
    }
}

impl std::error::Error for NubError {}

impl From<io::Error> for NubError {
    fn from(e: io::Error) -> Self {
        NubError::Io(e)
    }
}

/// Resilience policy knobs for a [`NubClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How long one transaction attempt waits for its reply before
    /// retransmitting.
    pub reply_timeout: Duration,
    /// Retransmissions allowed per transaction (on top of the first
    /// attempt). Safe for every request: the nub deduplicates by
    /// sequence number, so a retransmission is never executed twice.
    pub retries: u32,
    /// Backoff before the first retransmission; doubles per attempt.
    pub backoff: Duration,
    /// How often to probe with [`Request::Ping`] while waiting for a
    /// stop notification.
    pub event_poll: Duration,
    /// Seed for deterministic retransmission jitter. `0` (the default)
    /// keeps the exact exponential schedule; any other value spreads each
    /// backoff sleep over `[backoff/2, backoff]` with a per-client
    /// xorshift sequence, so N clients sharing a lossy link do not
    /// retransmit in lockstep. Jitter only ever *shortens* a sleep, so a
    /// transaction always stays within the configured retry budget.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            reply_timeout: Duration::from_millis(150),
            retries: 10,
            backoff: Duration::from_millis(1),
            event_poll: Duration::from_millis(10),
            jitter_seed: 0,
        }
    }
}

/// One step of the xorshift64* sequence the jittered backoff draws from.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// The sleep before a retransmission: exactly `base` without jitter
/// (`rng == None`), otherwise a deterministic draw from
/// `[base/2, base]` — never longer than `base`, so the total retry
/// budget is an upper bound in both modes.
fn jittered_backoff(base: Duration, rng: Option<&mut u64>) -> Duration {
    match rng {
        None => base,
        Some(state) => {
            let half = base / 2;
            let span = base.saturating_sub(half);
            let span_us = span.as_micros() as u64;
            if span_us == 0 {
                return base;
            }
            half + Duration::from_micros(xorshift64(state) % (span_us + 1))
        }
    }
}

/// Running traffic counters for one client, kept since connect (or the
/// last [`NubClient::reset_metrics`]). Frame byte counts are wire-level:
/// envelope overhead included, transport length prefix excluded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Transactions started (one per request, however many attempts).
    pub transactions: u64,
    /// Extra attempts beyond the first send of a transaction.
    pub retransmits: u64,
    /// Bytes put on the wire (every attempt counts).
    pub bytes_sent: u64,
    /// Bytes received off the wire (replies, events, noise alike).
    pub bytes_received: u64,
}

/// The debugger's connection to one nub.
pub struct NubClient {
    wire: Box<dyn Wire>,
    cfg: ClientConfig,
    /// Last sequence number used; each transaction takes the next one.
    seq: u32,
    /// Generation of the newest accepted event (duplicate suppression).
    last_event_gen: Option<u32>,
    /// Events noticed while a transaction was in flight.
    pending_events: VecDeque<NubEvent>,
    /// Traffic counters, surfaced by `info wire`.
    metrics: WireMetrics,
    /// Flight-recorder handle; [`Trace::off`] (the default) costs one
    /// branch per frame. Every record it emits is [`Layer::Wire`].
    trace: Trace,
    /// Jitter RNG state (`None` when [`ClientConfig::jitter_seed`] is 0).
    jitter: Option<u64>,
    /// Cross-thread cancellation token: a session watchdog sets it to
    /// abort a wedged transaction or event wait from outside the owning
    /// thread (polled once per attempt and once per poll interval).
    cancel: Option<Arc<AtomicBool>>,
}

impl std::fmt::Debug for NubClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NubClient(seq {})", self.seq)
    }
}

impl NubClient {
    /// Wrap a connected wire with default resilience policy.
    pub fn new(wire: Box<dyn Wire>) -> NubClient {
        NubClient::with_config(wire, ClientConfig::default())
    }

    /// Wrap a connected wire with an explicit policy (tests shrink the
    /// timeouts; lossy links may want a larger retry budget).
    pub fn with_config(wire: Box<dyn Wire>, cfg: ClientConfig) -> NubClient {
        let jitter = (cfg.jitter_seed != 0).then_some(cfg.jitter_seed);
        NubClient {
            wire,
            cfg,
            seq: 0,
            last_event_gen: None,
            pending_events: VecDeque::new(),
            metrics: WireMetrics::default(),
            trace: Trace::off(),
            jitter,
            cancel: None,
        }
    }

    /// Install (or remove, with `None`) a cross-thread cancellation
    /// token. A set token makes the next transaction attempt or event
    /// poll return [`NubError::Cancelled`] — how a session watchdog
    /// unblocks a command wedged waiting on a target that never stops.
    pub fn set_cancel(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.cancel = cancel;
    }

    /// Whether the installed cancellation token has been set.
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// The typed cancellation error: distinct from [`NubError::Timeout`]
    /// because the wire is still good — callers must not treat a
    /// watchdog kill as a lost connection.
    fn cancel_error(&self) -> NubError {
        NubError::Cancelled
    }

    /// Attach (or detach, with [`Trace::off`]) the flight recorder. The
    /// journal invariants the schema tests rely on: one `send` record per
    /// frame put on the wire, one `recv` per frame taken off it, `retx`
    /// exactly where [`WireMetrics::retransmits`] increments, so the
    /// journal and the metrics always agree.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The active policy.
    pub fn config(&self) -> &ClientConfig {
        &self.cfg
    }

    /// Traffic counters since connect or the last reset.
    pub fn metrics(&self) -> WireMetrics {
        self.metrics
    }

    /// Zero the traffic counters (e.g. to meter one command).
    pub fn reset_metrics(&mut self) {
        self.metrics = WireMetrics::default();
    }

    /// Swap the transport under the client, e.g. after the old wire died.
    ///
    /// Debugger-side state survives; session-side state resets: event
    /// deduplication forgets the old connection (the nub re-announces the
    /// current stop on a fresh wire, and that announcement must be
    /// delivered, not deduplicated) and buffered events from the dead
    /// wire are discarded. Sequence numbers keep counting — the nub's
    /// duplicate suppression is per-connection.
    pub fn reconnect(&mut self, wire: Box<dyn Wire>) {
        self.wire = wire;
        self.last_event_gen = None;
        self.pending_events.clear();
        self.trace.emit(
            Layer::Wire,
            Severity::Info,
            "reconnect",
            &[("next_seq", (self.seq.wrapping_add(1)).into())],
        );
    }

    /// Record an event frame, deduplicating by generation.
    fn note_event(&mut self, generation: u32, reply: Reply) {
        // Decode first: an envelope whose reply isn't event-shaped is
        // silently ignored whatever its generation, so it must not be
        // journaled as a rejected event either.
        let event = match reply {
            Reply::Signal { sig, code, context } => match Sig::from_number(sig) {
                Some(sig) => NubEvent::Stopped { sig, code, context },
                None => return, // unknown signal in a checksummed frame: drop
            },
            Reply::Exited { status } => NubEvent::Exited(status),
            _ => return,
        };
        if self.last_event_gen.is_some_and(|g| generation <= g) {
            if self.trace.is_on() {
                self.trace.emit(
                    Layer::Wire,
                    Severity::Debug,
                    "event",
                    &[("gen", generation.into()), ("accepted", false.into())],
                );
            }
            return; // duplicated or stale notification
        }
        if self.trace.is_on() {
            let what = match event {
                NubEvent::Stopped { sig, .. } => format!("stop:{sig:?}"),
                NubEvent::Exited(s) => format!("exit:{s}"),
            };
            self.trace.emit(
                Layer::Wire,
                Severity::Info,
                "event",
                &[
                    ("gen", generation.into()),
                    ("accepted", true.into()),
                    ("what", what.into()),
                ],
            );
        }
        self.last_event_gen = Some(generation);
        self.pending_events.push_back(event);
    }

    /// One at-most-once transaction: send the sequenced request, collect
    /// its reply, retransmitting within the configured budget. Corrupted,
    /// stale, and duplicated inbound frames are discarded; events that
    /// arrive meanwhile are queued for [`NubClient::wait_event`].
    fn transact(&mut self, req: &Request) -> Result<Reply, NubError> {
        self.seq = self.seq.wrapping_add(1);
        let seq = self.seq;
        let frame = Envelope::Req { seq, req: req.clone() }.encode();
        let mut backoff = self.cfg.backoff;
        let mut corrupt_seen = false;
        self.metrics.transactions += 1;
        for attempt in 0..=self.cfg.retries {
            if self.cancelled() {
                return Err(self.cancel_error());
            }
            if attempt > 0 {
                self.metrics.retransmits += 1;
                self.trace.emit(
                    Layer::Wire,
                    Severity::Warn,
                    "retx",
                    &[("seq", seq.into()), ("attempt", attempt.into())],
                );
                std::thread::sleep(jittered_backoff(backoff, self.jitter.as_mut()));
                backoff = (backoff * 2).min(Duration::from_millis(80));
            }
            if let Err(e) = self.wire.send(&frame) {
                self.trace.emit(
                    Layer::Wire,
                    Severity::Warn,
                    "send_err",
                    &[
                        ("seq", seq.into()),
                        ("attempt", attempt.into()),
                        ("err", e.to_string().into()),
                    ],
                );
                return Err(e.into());
            }
            self.metrics.bytes_sent += frame.len() as u64;
            if self.trace.is_on() {
                self.trace.emit(
                    Layer::Wire,
                    Severity::Debug,
                    "send",
                    &[
                        ("seq", seq.into()),
                        ("req", req.kind_name().into()),
                        ("attempt", attempt.into()),
                        ("len", frame.len().into()),
                    ],
                );
            }
            let deadline = Instant::now() + self.cfg.reply_timeout;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break; // this attempt's budget is spent: retransmit
                }
                let Some(raw) = self.wire.recv_timeout(left)? else { break };
                self.metrics.bytes_received += raw.len() as u64;
                match Envelope::decode(&raw) {
                    Some(Envelope::Reply { seq: s, reply }) if s == seq => {
                        if self.trace.is_on() {
                            self.trace.emit(
                                Layer::Wire,
                                Severity::Debug,
                                "recv",
                                &[
                                    ("disp", "reply".into()),
                                    ("seq", s.into()),
                                    ("reply", reply.kind_name().into()),
                                    ("len", raw.len().into()),
                                ],
                            );
                        }
                        return Ok(reply);
                    }
                    Some(Envelope::Reply { seq: s, .. }) => {
                        // A stale reply to an earlier retransmission of a
                        // finished transaction; the sequence check drops it.
                        if self.trace.is_on() {
                            self.trace.emit(
                                Layer::Wire,
                                Severity::Debug,
                                "recv",
                                &[
                                    ("disp", "stale".into()),
                                    ("seq", s.into()),
                                    ("len", raw.len().into()),
                                ],
                            );
                        }
                    }
                    Some(Envelope::Event { generation, reply }) => {
                        if self.trace.is_on() {
                            self.trace.emit(
                                Layer::Wire,
                                Severity::Debug,
                                "recv",
                                &[
                                    ("disp", "event".into()),
                                    ("gen", generation.into()),
                                    ("len", raw.len().into()),
                                ],
                            );
                        }
                        self.note_event(generation, reply);
                    }
                    Some(Envelope::Req { .. }) | None => {
                        // Corruption (or a legacy bare frame, which an
                        // enveloped session does not trust).
                        corrupt_seen = true;
                        if self.trace.is_on() {
                            self.trace.emit(
                                Layer::Wire,
                                Severity::Warn,
                                "recv",
                                &[("disp", "junk".into()), ("len", raw.len().into())],
                            );
                        }
                    }
                }
            }
        }
        if self.trace.is_on() {
            self.trace.emit(
                Layer::Wire,
                Severity::Warn,
                "timeout",
                &[
                    ("seq", seq.into()),
                    ("req", req.kind_name().into()),
                    ("attempts", (self.cfg.retries + 1).into()),
                    ("corrupt", corrupt_seen.into()),
                ],
            );
        }
        let what = format!(
            "no reply to {req:?} after {} attempts of {:?}",
            self.cfg.retries + 1,
            self.cfg.reply_timeout
        );
        if corrupt_seen {
            Err(NubError::Protocol(format!("{what} (corrupted frames seen)")))
        } else {
            Err(NubError::Timeout(what))
        }
    }

    /// Wait for the next stop/exit notification.
    ///
    /// While the target runs, the client probes the nub with pings at the
    /// configured poll interval; `Running` answers keep the wait alive
    /// indefinitely (a busy target is not an error), while a dead wire
    /// surfaces as [`NubError::Io`]/[`NubError::Timeout`] from the probe.
    ///
    /// # Errors
    /// Connection loss, protocol corruption past the retry budget.
    pub fn wait_event(&mut self) -> Result<NubEvent, NubError> {
        loop {
            if let Some(e) = self.pending_events.pop_front() {
                return Ok(e);
            }
            if self.cancelled() {
                return Err(self.cancel_error());
            }
            match self.wire.recv_timeout(self.cfg.event_poll)? {
                Some(raw) => {
                    self.metrics.bytes_received += raw.len() as u64;
                    match Envelope::decode(&raw) {
                        Some(Envelope::Event { generation, reply }) => {
                            if self.trace.is_on() {
                                self.trace.emit(
                                    Layer::Wire,
                                    Severity::Debug,
                                    "recv",
                                    &[
                                        ("disp", "event".into()),
                                        ("gen", generation.into()),
                                        ("len", raw.len().into()),
                                    ],
                                );
                            }
                            self.note_event(generation, reply);
                        }
                        // Anything else here is a stale reply, corruption,
                        // or an untrusted bare frame: drop it and keep
                        // waiting.
                        Some(Envelope::Reply { seq, .. }) => {
                            if self.trace.is_on() {
                                self.trace.emit(
                                    Layer::Wire,
                                    Severity::Debug,
                                    "recv",
                                    &[
                                        ("disp", "stale".into()),
                                        ("seq", seq.into()),
                                        ("len", raw.len().into()),
                                    ],
                                );
                            }
                        }
                        Some(Envelope::Req { .. }) | None => {
                            if self.trace.is_on() {
                                self.trace.emit(
                                    Layer::Wire,
                                    Severity::Warn,
                                    "recv",
                                    &[("disp", "junk".into()), ("len", raw.len().into())],
                                );
                            }
                        }
                    }
                }
                None => {
                    // Quiet wire: probe. A stopped nub answers by
                    // re-sending the stop notification as an event (picked
                    // up by the next loop turn); a running target answers
                    // `Running`; a dead wire errors out of the probe.
                    match self.transact(&Request::Ping)? {
                        Reply::Running | Reply::Ack => {}
                        Reply::Error { code } => return Err(NubError::Nub(code)),
                        other => {
                            return Err(NubError::Protocol(format!(
                                "ping answered with {other:?}"
                            )))
                        }
                    }
                }
            }
        }
    }

    /// Fetch a value from the code or data space.
    ///
    /// # Errors
    /// Bad addresses and connection loss.
    pub fn fetch(&mut self, space: char, addr: u32, size: u8) -> Result<u64, NubError> {
        match self.transact(&Request::Fetch { space: space as u8, addr, size })? {
            Reply::Fetched { value } => Ok(value),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Store a value into the code or data space.
    ///
    /// # Errors
    /// Bad addresses and connection loss.
    pub fn store(&mut self, space: char, addr: u32, size: u8, value: u64) -> Result<(), NubError> {
        match self.transact(&Request::Store { space: space as u8, addr, size, value })? {
            Reply::Stored => Ok(()),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Fetch `len` raw bytes from the code or data space in one round
    /// trip (the cache layer's line fill). Returns the target's byte
    /// order (0 = little, 1 = big) alongside the bytes, so callers can
    /// assemble multi-byte values exactly as [`NubClient::fetch`] would.
    ///
    /// # Errors
    /// Bad addresses (the fetch is all-or-nothing), bad lengths
    /// (`0` or above [`crate::proto::MAX_BLOCK`]), connection loss.
    pub fn fetch_block(
        &mut self,
        space: char,
        addr: u32,
        len: u32,
    ) -> Result<(u8, Vec<u8>), NubError> {
        match self.transact(&Request::FetchBlock { space: space as u8, addr, len })? {
            Reply::Block { order, bytes } => {
                if bytes.len() != len as usize {
                    return Err(NubError::Protocol(format!(
                        "block reply carries {} bytes, requested {len}",
                        bytes.len()
                    )));
                }
                Ok((order, bytes))
            }
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Plant a breakpoint store; the nub records the original instruction
    /// so a future debugger can recover it.
    ///
    /// # Errors
    /// Bad addresses and connection loss.
    pub fn plant(&mut self, addr: u32, size: u8, value: u64) -> Result<(), NubError> {
        match self.transact(&Request::Plant { addr, size, value })? {
            Reply::Stored => Ok(()),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// List the nub's recorded plants: (address, size, original value).
    ///
    /// # Errors
    /// Connection loss.
    pub fn query_plants(&mut self) -> Result<Vec<(u32, u8, u64)>, NubError> {
        match self.transact(&Request::QueryPlants)? {
            Reply::Plants(v) => Ok(v),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Probe the nub. Returns true if the target is currently executing,
    /// false if it is stopped (in which case the stop notification is
    /// also on its way to [`NubClient::wait_event`]).
    ///
    /// # Errors
    /// Connection loss.
    pub fn ping(&mut self) -> Result<bool, NubError> {
        match self.transact(&Request::Ping)? {
            Reply::Running => Ok(true),
            Reply::Ack => Ok(false),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Send a resume-class request and collect its acknowledgement.
    fn resume(&mut self, req: Request) -> Result<(), NubError> {
        match self.transact(&req)? {
            Reply::Ack => Ok(()),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Resume the target and wait for the next event.
    ///
    /// # Errors
    /// Connection loss.
    pub fn continue_and_wait(&mut self) -> Result<NubEvent, NubError> {
        self.resume(Request::Continue)?;
        self.wait_event()
    }

    /// Execute one instruction and wait for the resulting stop (requires
    /// the nub's single-step extension).
    ///
    /// # Errors
    /// Connection loss.
    pub fn step_and_wait(&mut self) -> Result<NubEvent, NubError> {
        self.resume(Request::Step)?;
        self.wait_event()
    }

    /// Execute up to `n` instructions and wait for the resulting stop: a
    /// breakpoint/fault if one hits first, otherwise a budget-exhaustion
    /// pause announced with the `Step` signal. `StepN { n: 0 }` re-announces
    /// the current state without executing (used after a snapshot restore).
    ///
    /// # Errors
    /// Connection loss.
    pub fn step_n_and_wait(&mut self, n: u64) -> Result<NubEvent, NubError> {
        self.resume(Request::StepN { n })?;
        self.wait_event()
    }

    /// Ask the nub how many instructions the target has retired.
    ///
    /// # Errors
    /// Connection loss.
    pub fn query_steps(&mut self) -> Result<u64, NubError> {
        match self.transact(&Request::QuerySteps)? {
            Reply::Fetched { value } => Ok(value),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Capture the stopped target's full state (registers plus dirty memory
    /// pages, with planted traps lifted) and stream the serialized image
    /// back in [`MAX_BLOCK`]-sized chunks.
    ///
    /// [`MAX_BLOCK`]: crate::proto::MAX_BLOCK
    ///
    /// # Errors
    /// Connection loss, or a nub that reports a short or oversized image.
    pub fn take_snapshot(&mut self) -> Result<Vec<u8>, NubError> {
        let total = match self.transact(&Request::TakeSnapshot)? {
            Reply::Fetched { value } => value,
            Reply::Error { code } => return Err(NubError::Nub(code)),
            other => return Err(NubError::Protocol(format!("{other:?}"))),
        };
        let total = usize::try_from(total)
            .map_err(|_| NubError::Protocol(format!("snapshot length {total} overflows")))?;
        let mut image = Vec::with_capacity(total);
        while image.len() < total {
            let off = image.len() as u32;
            let len = (total - image.len()).min(crate::proto::MAX_BLOCK as usize) as u32;
            match self.transact(&Request::ReadSnapshot { off, len })? {
                Reply::Block { bytes, .. } => {
                    if bytes.len() != len as usize {
                        return Err(NubError::Protocol(format!(
                            "snapshot chunk carries {} bytes, requested {len}",
                            bytes.len()
                        )));
                    }
                    image.extend_from_slice(&bytes);
                }
                Reply::Error { code } => return Err(NubError::Nub(code)),
                other => return Err(NubError::Protocol(format!("{other:?}"))),
            }
        }
        Ok(image)
    }

    /// Stream a serialized snapshot to the nub and atomically restore the
    /// target to it. The nub re-arms its live plants afterwards, so replay
    /// from the restored state takes the same traps the original run took.
    ///
    /// Note this resets the target's retired-step counter to the snapshot's;
    /// callers tracking progress should [`NubClient::query_steps`] after.
    ///
    /// # Errors
    /// Connection loss, or a nub that rejects the image as corrupt
    /// (`NubError::Nub(5)`).
    pub fn load_snapshot(&mut self, image: &[u8]) -> Result<(), NubError> {
        let mut off = 0usize;
        // An empty image still needs one LoadSnapshot to reset the staging
        // buffer before the commit length check.
        loop {
            let len = (image.len() - off).min(crate::proto::MAX_BLOCK as usize);
            let chunk = Request::LoadSnapshot {
                off: off as u32,
                bytes: image[off..off + len].to_vec(),
            };
            match self.transact(&chunk)? {
                Reply::Stored => {}
                Reply::Error { code } => return Err(NubError::Nub(code)),
                other => return Err(NubError::Protocol(format!("{other:?}"))),
            }
            off += len;
            if off >= image.len() {
                break;
            }
        }
        match self.transact(&Request::CommitSnapshot { len: image.len() as u32 })? {
            Reply::Stored => Ok(()),
            Reply::Error { code } => Err(NubError::Nub(code)),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }

    /// Resume the target without waiting.
    ///
    /// # Errors
    /// Connection loss.
    pub fn continue_only(&mut self) -> Result<(), NubError> {
        self.resume(Request::Continue)
    }

    /// Break the connection; the nub preserves the target's state.
    ///
    /// # Errors
    /// Currently infallible: a dead wire achieves the same thing.
    pub fn detach(mut self) -> Result<(), NubError> {
        self.detach_in_place()
    }

    /// As [`NubClient::detach`], without consuming the client (the
    /// connection is dead afterwards).
    ///
    /// # Errors
    /// Currently infallible: a dead wire achieves the same thing.
    pub fn detach_in_place(&mut self) -> Result<(), NubError> {
        // Best effort: if the acknowledgement is lost because the nub
        // already dropped the connection, the detach still happened.
        let _ = self.transact(&Request::Detach);
        Ok(())
    }

    /// Break the connection and let the target continue running free.
    ///
    /// # Errors
    /// Currently infallible: a dead wire achieves the same thing.
    pub fn detach_and_run(&mut self) -> Result<(), NubError> {
        let _ = self.transact(&Request::DetachRun);
        Ok(())
    }

    /// Best-effort [`Request::Detach`] bounded by `deadline`: one attempt,
    /// no retransmissions, and any installed cancellation token is
    /// ignored for its duration. Teardown paths (session watchdog kill,
    /// idle eviction, daemon shutdown) use this so an abandoned session
    /// never leaves the target running with breakpoints planted — and
    /// never wedges the teardown on a dead wire either.
    pub fn detach_with_deadline(&mut self, deadline: Duration) {
        let saved_cfg = self.cfg.clone();
        let saved_cancel = self.cancel.take();
        self.cfg.reply_timeout = deadline;
        self.cfg.retries = 0;
        let _ = self.transact(&Request::Detach);
        self.cfg = saved_cfg;
        self.cancel = saved_cancel;
    }

    /// Terminate the target.
    ///
    /// # Errors
    /// Connection loss.
    pub fn kill(mut self) -> Result<i32, NubError> {
        match self.transact(&Request::Kill)? {
            Reply::Ack => {}
            Reply::Exited { status } => return Ok(status),
            Reply::Error { code } => return Err(NubError::Nub(code)),
            other => return Err(NubError::Protocol(format!("{other:?}"))),
        }
        match self.wait_event()? {
            NubEvent::Exited(s) => Ok(s),
            other => Err(NubError::Protocol(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The backoff schedule a client with `seed` would sleep through for
    /// `attempts` retransmissions, mirroring the doubling in `transact`.
    fn schedule(seed: u64, attempts: u32) -> Vec<Duration> {
        let cfg = ClientConfig { backoff: Duration::from_millis(8), jitter_seed: seed, ..ClientConfig::default() };
        let mut rng = (cfg.jitter_seed != 0).then_some(cfg.jitter_seed);
        let mut backoff = cfg.backoff;
        let mut out = Vec::new();
        for _ in 0..attempts {
            out.push(jittered_backoff(backoff, rng.as_mut()));
            backoff = (backoff * 2).min(Duration::from_millis(80));
        }
        out
    }

    #[test]
    fn zero_seed_keeps_exact_exponential_backoff() {
        let s = schedule(0, 4);
        assert_eq!(
            s,
            vec![
                Duration::from_millis(8),
                Duration::from_millis(16),
                Duration::from_millis(32),
                Duration::from_millis(64)
            ]
        );
    }

    #[test]
    fn different_seeds_desynchronize() {
        let a = schedule(1, 6);
        let b = schedule(2, 6);
        assert_ne!(a, b, "two seeds produced the same retransmission schedule");
        // Not a single retransmission instant coincides once jitter is on
        // (the point of the exercise: no lockstep on a shared link).
        let coincide = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(coincide <= 1, "schedules still mostly in lockstep: {a:?} vs {b:?}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        assert_eq!(schedule(7, 8), schedule(7, 8), "same seed must replay the same schedule");
    }

    #[test]
    fn jitter_never_exceeds_the_retry_budget() {
        // Every jittered sleep stays within [base/2, base], so the total
        // is bounded by the unjittered schedule — the retry budget a
        // caller planned for without jitter still holds.
        for seed in 1..64u64 {
            let jittered = schedule(seed, 8);
            let exact = schedule(0, 8);
            for (j, e) in jittered.iter().zip(&exact) {
                assert!(*j <= *e, "seed {seed}: jittered sleep {j:?} over base {e:?}");
                assert!(*j >= *e / 2, "seed {seed}: jittered sleep {j:?} under half of {e:?}");
            }
        }
    }
}
