//! Deterministic fault injection for nub wires.
//!
//! [`FaultyWire`] wraps any [`Wire`] and injects the failures a remote
//! debugging session actually meets: dropped frames, flipped bytes,
//! truncation, duplicated frames, artificial latency, and a hard
//! disconnect after a set number of frames. Every decision comes from a
//! small seeded PRNG — the same seed always yields the same fault
//! schedule, so a stress run that fails once fails the same way forever.
//! There is no wall-clock or OS entropy anywhere in the schedule.
//!
//! The wrapper lives on the debugger's side of the connection. A hard
//! disconnect *drops the inner wire*, which the nub's end observes as a
//! vanished peer — exactly what a debugger crash looks like from the
//! target, so the nub's state-preservation path (Sec. 4.2: "If the
//! debugger crashes, the nub preserves the target's state and waits for a
//! new connection") is exercised for real.

use std::io;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ldb_trace::{Layer, Severity, Trace};

use crate::transport::Wire;

/// splitmix64: small, seedable, and plenty random for fault schedules.
#[derive(Debug, Clone)]
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True with probability `p`.
    fn hit(&mut self, p: f64) -> bool {
        p > 0.0 && ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// What to inject, and how often. All probabilities are per frame, in
/// `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// PRNG seed; the whole fault schedule is a pure function of it.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability one byte of a frame is flipped.
    pub corrupt: f64,
    /// Probability a frame loses its tail.
    pub truncate: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Maximum artificial latency per frame, in milliseconds (actual
    /// delay is drawn uniformly from `0..=delay_ms`).
    pub delay_ms: u64,
    /// Hard-disconnect after this many frames have crossed the wire.
    pub disconnect_after: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
            duplicate: 0.0,
            delay_ms: 0,
            disconnect_after: None,
        }
    }
}

impl FaultConfig {
    /// Parse a `key=value,…` spec, e.g.
    /// `seed=42,drop=0.1,corrupt=0.05,dup=0.02,truncate=0.01,delay=2,disconnect=400`.
    ///
    /// # Errors
    /// Unknown keys, malformed numbers, or probabilities outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{part}` is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 =
                    v.parse().map_err(|_| format!("bad number `{v}` for fault `{key}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability `{key}={v}` outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    cfg.seed =
                        value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "drop" => cfg.drop = prob(value)?,
                "corrupt" => cfg.corrupt = prob(value)?,
                "truncate" => cfg.truncate = prob(value)?,
                "dup" | "duplicate" => cfg.duplicate = prob(value)?,
                "delay" | "delay_ms" => {
                    cfg.delay_ms =
                        value.parse().map_err(|_| format!("bad delay `{value}`"))?;
                }
                "disconnect" | "disconnect_after" => {
                    cfg.disconnect_after = Some(
                        value.parse().map_err(|_| format!("bad disconnect `{value}`"))?,
                    );
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// True if this config can never perturb a frame.
    pub fn is_benign(&self) -> bool {
        self.drop == 0.0
            && self.corrupt == 0.0
            && self.truncate == 0.0
            && self.duplicate == 0.0
            && self.delay_ms == 0
            && self.disconnect_after.is_none()
    }
}

/// Running tally of injected faults (useful for logs and assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames that crossed the wire (both directions), pre-fault.
    pub frames: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames with a flipped byte.
    pub corrupted: u64,
    /// Frames truncated.
    pub truncated: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Whether the hard disconnect has fired.
    pub disconnected: bool,
}

/// A [`Wire`] that injects deterministic faults around an inner wire.
pub struct FaultyWire {
    inner: Option<Box<dyn Wire>>,
    cfg: FaultConfig,
    rng: FaultRng,
    /// Shared so callers can keep reading the tally after the wire is
    /// boxed into a client (see [`FaultyWire::stats_handle`]).
    stats: Arc<Mutex<FaultStats>>,
    /// A duplicated inbound frame waiting to be delivered again.
    pending_dup: Option<Vec<u8>>,
    /// Flight-recorder handle; every injected fault becomes a
    /// [`Layer::Wire`] `fault` record.
    trace: Trace,
}

impl FaultyWire {
    /// Wrap `inner` with the fault schedule seeded by `cfg`.
    pub fn new(inner: Box<dyn Wire>, cfg: FaultConfig) -> FaultyWire {
        FaultyWire {
            inner: Some(inner),
            rng: FaultRng::new(cfg.seed),
            cfg,
            stats: Arc::new(Mutex::new(FaultStats::default())),
            pending_dup: None,
            trace: Trace::off(),
        }
    }

    /// Convenience wrapper for a concrete wire.
    pub fn wrap<W: Wire + 'static>(inner: W, cfg: FaultConfig) -> FaultyWire {
        FaultyWire::new(Box::new(inner), cfg)
    }

    /// Attach (or detach, with [`Trace::off`]) the flight recorder.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Fault counters so far.
    ///
    /// # Panics
    /// If a previous holder of the stats lock panicked.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock().unwrap()
    }

    /// A handle onto the live fault counters, usable after the wire has
    /// been boxed into a [`crate::NubClient`] (the trace-vs-ground-truth
    /// cross-checks in the fault-injection tests read it).
    pub fn stats_handle(&self) -> Arc<Mutex<FaultStats>> {
        Arc::clone(&self.stats)
    }

    fn severed() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "fault injection: hard disconnect")
    }

    /// Record one injected fault in the journal.
    fn emit_fault(&self, op: &'static str, dir: &'static str) {
        if self.trace.is_on() {
            let frame = self.stats.lock().unwrap().frames;
            self.trace.emit(
                Layer::Wire,
                Severity::Warn,
                "fault",
                &[("op", op.into()), ("dir", dir.into()), ("frame", frame.into())],
            );
        }
    }

    /// Count a frame; sever the wire if the disconnect budget is spent.
    fn tick(&mut self) -> io::Result<&mut Box<dyn Wire>> {
        let mut stats = self.stats.lock().unwrap();
        if let Some(limit) = self.cfg.disconnect_after {
            if stats.frames >= limit && self.inner.is_some() {
                // Dropping the inner wire is the crash: the peer's next
                // operation sees a vanished endpoint.
                self.inner = None;
                stats.disconnected = true;
                let frame = stats.frames;
                self.trace.emit(
                    Layer::Wire,
                    Severity::Warn,
                    "fault",
                    &[("op", "disconnect".into()), ("frame", frame.into())],
                );
            }
        }
        stats.frames += 1;
        drop(stats);
        self.inner.as_mut().ok_or_else(Self::severed)
    }

    fn delay(&mut self) {
        if self.cfg.delay_ms > 0 {
            let ms = self.rng.below(self.cfg.delay_ms + 1);
            if ms > 0 {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
    }

    /// Apply payload faults; `None` means the frame was dropped.
    fn mangle(&mut self, frame: &[u8], dir: &'static str) -> Option<Vec<u8>> {
        if self.rng.hit(self.cfg.drop) {
            self.stats.lock().unwrap().dropped += 1;
            self.emit_fault("drop", dir);
            return None;
        }
        let mut out = frame.to_vec();
        if self.rng.hit(self.cfg.corrupt) && !out.is_empty() {
            let i = self.rng.below(out.len() as u64) as usize;
            let flip = (self.rng.below(255) + 1) as u8;
            out[i] ^= flip;
            self.stats.lock().unwrap().corrupted += 1;
            self.emit_fault("corrupt", dir);
        }
        if self.rng.hit(self.cfg.truncate) && !out.is_empty() {
            let keep = self.rng.below(out.len() as u64) as usize;
            out.truncate(keep);
            self.stats.lock().unwrap().truncated += 1;
            self.emit_fault("truncate", dir);
        }
        Some(out)
    }
}

impl Wire for FaultyWire {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.delay();
        let dup = self.rng.hit(self.cfg.duplicate);
        let mangled = self.mangle(frame, "tx");
        let wire = self.tick()?;
        match mangled {
            None => Ok(()), // dropped: swallowed without a trace
            Some(out) => {
                wire.send(&out)?;
                if dup {
                    self.stats.lock().unwrap().duplicated += 1;
                    self.emit_fault("dup", "tx");
                    let wire = self.inner.as_mut().ok_or_else(Self::severed)?;
                    wire.send(&out)?;
                }
                Ok(())
            }
        }
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        loop {
            if let Some(f) = self.pending_dup.take() {
                return Ok(f);
            }
            self.delay();
            let frame = {
                let wire = self.tick()?;
                wire.recv()?
            };
            if self.rng.hit(self.cfg.duplicate) {
                self.stats.lock().unwrap().duplicated += 1;
                self.emit_fault("dup", "rx");
                self.pending_dup = Some(frame.clone());
            }
            match self.mangle(&frame, "rx") {
                Some(out) => return Ok(out),
                None => continue, // dropped: keep waiting, as a real loss would look
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(f) = self.pending_dup.take() {
                return Ok(Some(f));
            }
            self.delay();
            let left = deadline.saturating_duration_since(Instant::now());
            let frame = {
                let wire = self.tick()?;
                match wire.recv_timeout(left)? {
                    Some(f) => f,
                    None => return Ok(None),
                }
            };
            if self.rng.hit(self.cfg.duplicate) {
                self.stats.lock().unwrap().duplicated += 1;
                self.emit_fault("dup", "rx");
                self.pending_dup = Some(frame.clone());
            }
            match self.mangle(&frame, "rx") {
                Some(out) => return Ok(Some(out)),
                None => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel_pair;

    fn lossy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop: 0.3,
            corrupt: 0.2,
            truncate: 0.1,
            duplicate: 0.2,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn parse_full_spec() {
        let cfg = FaultConfig::parse(
            "seed=42, drop=0.1, corrupt=0.05, truncate=0.01, dup=0.02, delay=3, disconnect=400",
        )
        .unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.drop, 0.1);
        assert_eq!(cfg.corrupt, 0.05);
        assert_eq!(cfg.truncate, 0.01);
        assert_eq!(cfg.duplicate, 0.02);
        assert_eq!(cfg.delay_ms, 3);
        assert_eq!(cfg.disconnect_after, Some(400));
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(FaultConfig::parse("drop").is_err());
        assert!(FaultConfig::parse("drop=2.0").is_err());
        assert!(FaultConfig::parse("bogus=1").is_err());
        assert!(FaultConfig::parse("seed=abc").is_err());
        assert!(FaultConfig::parse("").unwrap().is_benign());
    }

    #[test]
    fn benign_config_is_transparent() {
        let (a, mut b) = channel_pair();
        let mut f = FaultyWire::wrap(a, FaultConfig::default());
        for i in 0..50u8 {
            f.send(&[i; 8]).unwrap();
            assert_eq!(b.recv().unwrap(), [i; 8]);
        }
        assert_eq!(f.stats().dropped + f.stats().corrupted, 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        // Two runs with one seed inject identical faults; a different
        // seed gives a different schedule.
        let run = |seed| {
            let (a, mut b) = channel_pair();
            let mut f = FaultyWire::wrap(a, lossy(seed));
            let mut delivered = Vec::new();
            for i in 0..100u8 {
                f.send(&[i, i, i]).unwrap();
                while let Ok(Some(frame)) =
                    b.recv_timeout(Duration::from_millis(1))
                {
                    delivered.push(frame);
                }
            }
            (delivered, f.stats())
        };
        let (d1, s1) = run(7);
        let (d2, s2) = run(7);
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
        assert!(s1.dropped > 0 && s1.corrupted > 0, "{s1:?}");
        let (d3, _) = run(8);
        assert_ne!(d1, d3);
    }

    #[test]
    fn disconnect_after_severs_both_ends() {
        let (a, mut b) = channel_pair();
        let cfg = FaultConfig { disconnect_after: Some(3), ..FaultConfig::default() };
        let mut f = FaultyWire::wrap(a, cfg);
        f.send(b"1").unwrap();
        f.send(b"2").unwrap();
        f.send(b"3").unwrap();
        assert_eq!(f.send(b"4").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert!(f.stats().disconnected);
        // The peer drains what was sent, then sees the dead wire.
        assert_eq!(b.recv().unwrap(), b"1");
        assert_eq!(b.recv().unwrap(), b"2");
        assert_eq!(b.recv().unwrap(), b"3");
        assert!(b.recv().is_err());
    }

    #[test]
    fn recv_applies_inbound_faults() {
        let (a, mut b) = channel_pair();
        let cfg = FaultConfig { seed: 3, duplicate: 1.0, ..FaultConfig::default() };
        let mut f = FaultyWire::wrap(a, cfg);
        b.send(b"once").unwrap();
        assert_eq!(f.recv().unwrap(), b"once");
        assert_eq!(f.recv().unwrap(), b"once", "duplicate delivered on next recv");
    }
}
