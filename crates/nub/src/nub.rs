//! The debug nub proper (paper, Sec. 4.2).
//!
//! The nub executes "in user space" of the target: here, on the thread
//! that owns the target [`Machine`]. At startup the program's modified
//! startup code executes the pause call; when the target faults or hits a
//! breakpoint trap, the nub gets control, saves a *context*, notifies the
//! debugger over its wire, and services fetch and store requests until
//! told to continue, terminate, or break the connection.
//!
//! "Normally, when a connection is broken, even by a debugger crash, the
//! nub preserves the state of the target program and waits for a new
//! connection from another instance of ldb." The target need not be a
//! child of the debugger: connections arrive over a channel that anyone
//! can hand a [`Wire`] to (the network case), and a faulting program with
//! no debugger simply waits for one.
//!
//! Two request framings are served on the same wire. Legacy peers send
//! bare [`Request`] frames and get bare replies, exactly as before. Peers
//! that send [`Envelope`] frames (checksummed, sequence-numbered) switch
//! the session to enveloped mode: each sequence number is executed at
//! most once — a retransmitted request gets the cached reply frame, not a
//! second execution — resume-class requests are acknowledged with
//! [`Reply::Ack`], stop notifications go out as generation-numbered
//! events, and while the target is running the nub polls its wire each
//! slice so a [`Request::Ping`] is answered with [`Reply::Running`]
//! instead of silence. That at-most-once discipline is what makes blind
//! retransmission over a lossy wire safe.

use std::io;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use crate::arch::{nub_arch, NubArch};
use crate::proto::{Envelope, Reply, Request, Sig};
use crate::transport::Wire;
use ldb_machine::{ByteOrder, Fault, Image, Machine, RunEvent, Snapshot};

/// How long the run loop listens on the wire between slices of an
/// open-ended run. The wait is the responsiveness contract: a client can
/// always raise a busy target within half a millisecond.
const RUN_POLL: Duration = Duration::from_micros(500);

/// The wire wait between slices of a *budgeted* run (`StepN`). A budgeted
/// leg stops and services the wire within the budget anyway, so the run
/// loop only drains frames already queued instead of lingering — this is
/// what keeps periodic checkpointing off the target's critical path.
const BUDGET_POLL: Duration = Duration::from_micros(1);

/// Upper bound on a staged snapshot upload: far above any real machine
/// image, small enough that a hostile client cannot balloon the nub.
const MAX_SNAPSHOT: usize = 32 << 20;

/// Nub configuration.
#[derive(Debug, Clone)]
pub struct NubConfig {
    /// Block at the startup pause until a debugger connects (set when the
    /// program is started *by* a debugger); otherwise the pause is a
    /// no-op when nobody is attached.
    pub wait_at_pause: bool,
    /// Instructions per run slice (between connection polls).
    pub slice: u64,
    /// Where to write a core file when the target faults with no
    /// debugger attached (UNIX `core` semantics). `None` keeps the
    /// default behavior: preserve state in the stopped nub and wait.
    pub core_path: Option<std::path::PathBuf>,
}

impl Default for NubConfig {
    fn default() -> Self {
        NubConfig { wait_at_pause: false, slice: 50_000, core_path: None }
    }
}

/// A handle to a spawned nub thread.
pub struct NubHandle {
    /// Hand a wire here to connect a debugger (the "network" listener).
    pub connect: Sender<Box<dyn Wire>>,
    /// Joins to the final machine state (for inspecting program output).
    pub join: JoinHandle<Machine>,
}

impl NubHandle {
    /// Connect a debugger end, returning the debugger's wire.
    ///
    /// # Errors
    /// The nub thread has already exited (the target finished or was
    /// killed), so nobody will ever service the connection.
    pub fn connect_channel(&self) -> io::Result<crate::transport::ChannelWire> {
        let (dbg, nub) = crate::transport::channel_pair();
        self.connect
            .send(Box::new(nub))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "nub thread exited"))?;
        Ok(dbg)
    }
}

/// Load `image` and run it under a nub on a new thread.
pub fn spawn(image: &Image, cfg: NubConfig) -> NubHandle {
    let machine = Machine::load(image);
    let context = image.symbol("__nub_context").unwrap_or_else(|| {
        // Images without a reserved area get a context at the stack base.
        image.stack_top - image.arch.data().ctx.size - 64
    });
    spawn_machine(machine, context, cfg)
}

/// Run an existing machine under a nub.
pub fn spawn_machine(machine: Machine, context: u32, cfg: NubConfig) -> NubHandle {
    let (tx, rx) = unbounded();
    let arch = machine.arch();
    let nub = Nub {
        machine,
        context,
        hooks: nub_arch(arch),
        wire: None,
        connect_rx: rx,
        plants: Vec::new(),
        plant_values: Vec::new(),
        cfg,
        last_signal: None,
        reached_pause: false,
        enveloped: false,
        last_seq: None,
        reply_cache: None,
        event_gen: 0,
        run_budget: None,
        snap_out: Vec::new(),
        snap_in: Vec::new(),
    };
    let join = std::thread::spawn(move || nub.serve());
    NubHandle { connect: tx, join }
}

struct Nub {
    machine: Machine,
    context: u32,
    hooks: &'static dyn NubArch,
    wire: Option<Box<dyn Wire>>,
    connect_rx: Receiver<Box<dyn Wire>>,
    plants: Vec<(u32, u8, u64)>,
    /// Parallel to `plants`: the trap value that was planted, so a
    /// snapshot restore can re-plant on top of the pristine image.
    plant_values: Vec<u64>,
    cfg: NubConfig,
    last_signal: Option<(u8, u32)>,
    /// Set once the startup pause has been reached (before that, a
    /// debugger-spawned target holds incoming connections for the pause
    /// handshake instead of announcing an attach).
    reached_pause: bool,
    /// The connected peer has sent at least one [`Envelope`] frame; reply
    /// and notify in envelopes from then on. Reset per connection.
    enveloped: bool,
    /// Sequence number of the last executed enveloped request, with its
    /// encoded reply frame: a retransmission of `last_seq` resends the
    /// cached frame instead of executing twice. Reset per connection.
    last_seq: Option<u32>,
    reply_cache: Option<Vec<u8>>,
    /// Generation number of the newest stop/exit notification; clients
    /// deduplicate re-sent notifications by it. Monotonic for the nub's
    /// whole lifetime.
    event_gen: u32,
    /// Remaining instruction budget of an in-flight [`Request::StepN`]:
    /// the run loop stops with [`Sig::Step`] when it reaches zero.
    /// `None` is an unbudgeted [`Request::Continue`].
    run_budget: Option<u64>,
    /// Staged serialized snapshot, paged out via [`Request::ReadSnapshot`].
    snap_out: Vec<u8>,
    /// Inbound snapshot chunks, assembled by [`Request::LoadSnapshot`].
    snap_in: Vec<u8>,
}

enum State {
    Run,
    Stopped,
}

impl Nub {
    fn serve(mut self) -> Machine {
        let mut state = State::Run;
        loop {
            match state {
                State::Run => {
                    // Accept a (new) debugger mid-run: stop and announce —
                    // unless we were started *by* a debugger and have not
                    // reached the startup pause yet, in which case the
                    // connection waits for the pause handshake.
                    let hold_for_pause = self.cfg.wait_at_pause && !self.reached_pause;
                    if !hold_for_pause {
                        match self.connect_rx.try_recv() {
                            Ok(w) => {
                                self.accept(w);
                                self.stop_with(Sig::Attach.number(), 0);
                                state = State::Stopped;
                                continue;
                            }
                            // No debugger attached and every connect
                            // handle is gone: nobody can ever reach this
                            // target again, so a non-terminating program
                            // would pin this thread forever. The host
                            // reclaims the machine instead (a daemon
                            // tearing down a detached-but-running tenant
                            // relies on this).
                            Err(TryRecvError::Disconnected) if self.wire.is_none() => {
                                return self.machine;
                            }
                            Err(_) => {}
                        }
                    }
                    // Service the wire between slices so a client can tell
                    // a busy target from a dead connection. Budgeted legs
                    // stop on their own in at most one slice, so they skip
                    // the lingering wait.
                    let poll = match self.run_budget {
                        Some(_) => BUDGET_POLL,
                        None => RUN_POLL,
                    };
                    if let Some(status) = self.poll_running(poll) {
                        self.announce_exit(status);
                        return self.machine;
                    }
                    // A StepN budget bounds the slice; unbudgeted runs use
                    // the configured slice unchanged.
                    let slice = match self.run_budget {
                        Some(b) => b.min(self.cfg.slice),
                        None => self.cfg.slice,
                    };
                    let before = self.machine.cpu.steps;
                    let ev = self.machine.run(slice);
                    if let Some(b) = self.run_budget.as_mut() {
                        *b = b.saturating_sub(self.machine.cpu.steps - before);
                    }
                    match ev {
                        RunEvent::StepLimit => {
                            if self.run_budget == Some(0) {
                                // The StepN budget is spent: stop exactly
                                // here, like the single-step extension.
                                self.stop_with(Sig::Step.number(), 0);
                                state = State::Stopped;
                            }
                        }
                        RunEvent::Breakpoint { pc, .. } => {
                            self.stop_with(Sig::Trap.number(), pc);
                            state = State::Stopped;
                        }
                        RunEvent::Fault(f) => {
                            let (sig, code) = classify_fault(f);
                            // An undebugged fault with a core path
                            // configured dies dumping core, like a UNIX
                            // process without a debugger.
                            if self.wire.is_none() {
                                if let Some(path) = &self.cfg.core_path {
                                    let img = ldb_machine::core::write_core(
                                        &self.machine,
                                        sig.number(),
                                        code,
                                        self.context,
                                    );
                                    let _ = std::fs::write(path, img);
                                    return self.machine;
                                }
                            }
                            self.stop_with(sig.number(), code);
                            state = State::Stopped;
                        }
                        RunEvent::Paused { .. } => {
                            self.reached_pause = true;
                            if let Ok(w) = self.connect_rx.try_recv() {
                                self.accept(w);
                            }
                            if self.wire.is_some() {
                                self.stop_with(Sig::Pause.number(), 0);
                                state = State::Stopped;
                            } else if self.cfg.wait_at_pause {
                                match self.connect_rx.recv() {
                                    Ok(w) => {
                                        self.accept(w);
                                        self.stop_with(Sig::Pause.number(), 0);
                                        state = State::Stopped;
                                    }
                                    Err(_) => return self.machine, // nobody will ever connect
                                }
                            }
                            // Otherwise: an undebugged run; keep going.
                        }
                        RunEvent::Exited(status) => {
                            self.announce_exit(status);
                            return self.machine;
                        }
                    }
                }
                State::Stopped => {
                    let Some(w) = self.wire.as_mut() else {
                        // Preserve state and wait for a new debugger
                        // (survives debugger crashes).
                        match self.connect_rx.recv() {
                            Ok(w) => {
                                self.accept(w);
                                if let Some((sig, code)) = self.last_signal {
                                    // Re-announce the current stop to the
                                    // fresh peer (bare: its dialect is
                                    // unknown until it sends something).
                                    self.emit_event(&Reply::Signal {
                                        sig,
                                        code,
                                        context: self.context,
                                    });
                                }
                            }
                            Err(_) => return self.machine,
                        }
                        continue;
                    };
                    let frame = match w.recv() {
                        Ok(f) => f,
                        Err(_) => {
                            // The debugger crashed: drop the wire, keep
                            // the target's state.
                            self.wire = None;
                            continue;
                        }
                    };
                    if let Some(env) = Envelope::decode(&frame) {
                        let Envelope::Req { seq, req } = env else { continue };
                        self.enveloped = true;
                        if self.last_seq == Some(seq) {
                            // A retransmission: the reply was lost, not
                            // the request. Resend, never re-execute.
                            if let Some(cached) = self.reply_cache.clone() {
                                self.send_frame(&cached);
                            }
                            continue;
                        }
                        match req {
                            Request::Ping => {
                                self.reply(seq, &Reply::Ack);
                                // The probe usually means the client lost
                                // our stop notification: re-send it (same
                                // generation, so a client that did get it
                                // drops the duplicate).
                                if let Some((sig, code)) = self.last_signal {
                                    self.emit_event(&Reply::Signal {
                                        sig,
                                        code,
                                        context: self.context,
                                    });
                                }
                            }
                            Request::Continue => {
                                self.reply(seq, &Reply::Ack);
                                self.hooks.restore_context(&mut self.machine, self.context);
                                self.run_budget = None;
                                state = State::Run;
                            }
                            Request::StepN { n } => {
                                // The budgeted resume: run at most n
                                // instructions through the sliced run loop
                                // (so pings are still answered), stopping
                                // early at traps/faults like Continue.
                                self.reply(seq, &Reply::Ack);
                                self.hooks.restore_context(&mut self.machine, self.context);
                                self.run_budget = Some(n);
                                state = State::Run;
                            }
                            Request::Step => {
                                self.reply(seq, &Reply::Ack);
                                self.hooks.restore_context(&mut self.machine, self.context);
                                match self.machine.run(1) {
                                    RunEvent::StepLimit | RunEvent::Paused { .. } => {
                                        self.stop_with(Sig::Step.number(), 0);
                                    }
                                    RunEvent::Breakpoint { pc, .. } => {
                                        self.stop_with(Sig::Trap.number(), pc);
                                    }
                                    RunEvent::Fault(f) => {
                                        let (sig, code) = classify_fault(f);
                                        self.stop_with(sig.number(), code);
                                    }
                                    RunEvent::Exited(status) => {
                                        self.announce_exit(status);
                                        return self.machine;
                                    }
                                }
                            }
                            Request::Kill => {
                                self.reply(seq, &Reply::Ack);
                                self.announce_exit(-9);
                                return self.machine;
                            }
                            Request::Detach => {
                                self.reply(seq, &Reply::Ack);
                                self.wire = None;
                                // Stay stopped, preserving state.
                            }
                            Request::DetachRun => {
                                self.reply(seq, &Reply::Ack);
                                self.wire = None;
                                self.last_signal = None;
                                self.hooks.restore_context(&mut self.machine, self.context);
                                self.run_budget = None;
                                state = State::Run;
                            }
                            req => {
                                let r = self.service(&req);
                                self.reply(seq, &r);
                            }
                        }
                        continue;
                    }
                    if self.enveloped {
                        // A corrupted envelope can pass for a well-formed
                        // bare request — never honour bare frames once the
                        // peer speaks envelopes, or line noise could
                        // execute as a detach, kill, or store. Drop it;
                        // the client retransmits.
                        continue;
                    }
                    match Request::decode(&frame) {
                        None => {
                            // Undecodable: a legacy peer deserves the
                            // legacy error.
                            self.send(&Reply::Error { code: 5 });
                        }
                        Some(Request::Continue) => {
                            self.hooks.restore_context(&mut self.machine, self.context);
                            self.run_budget = None;
                            state = State::Run;
                        }
                        Some(Request::StepN { n }) => {
                            self.hooks.restore_context(&mut self.machine, self.context);
                            self.run_budget = Some(n);
                            state = State::Run;
                        }
                        Some(Request::Step) => {
                            // The optional single-step extension: run one
                            // instruction and stop again.
                            self.hooks.restore_context(&mut self.machine, self.context);
                            match self.machine.run(1) {
                                RunEvent::StepLimit | RunEvent::Paused { .. } => {
                                    self.stop_with(Sig::Step.number(), 0);
                                }
                                RunEvent::Breakpoint { pc, .. } => {
                                    self.stop_with(Sig::Trap.number(), pc);
                                }
                                RunEvent::Fault(f) => {
                                    let (sig, code) = classify_fault(f);
                                    self.stop_with(sig.number(), code);
                                }
                                RunEvent::Exited(status) => {
                                    self.send(&Reply::Exited { status });
                                    return self.machine;
                                }
                            }
                        }
                        Some(Request::Kill) => {
                            self.send(&Reply::Exited { status: -9 });
                            return self.machine;
                        }
                        Some(Request::Detach) => {
                            self.wire = None;
                            // Stay stopped, preserving state.
                        }
                        Some(Request::DetachRun) => {
                            self.wire = None;
                            self.last_signal = None;
                            self.hooks.restore_context(&mut self.machine, self.context);
                            self.run_budget = None;
                            state = State::Run;
                        }
                        Some(req) => {
                            let reply = self.service(&req);
                            self.send(&reply);
                        }
                    }
                }
            }
        }
    }

    /// Adopt a fresh connection, resetting per-connection session state.
    fn accept(&mut self, w: Box<dyn Wire>) {
        self.wire = Some(w);
        self.enveloped = false;
        self.last_seq = None;
        self.reply_cache = None;
    }

    /// Service the wire while the target runs. Returns `Some(status)` when
    /// a kill arrived and the nub should exit with that status.
    fn poll_running(&mut self, timeout: Duration) -> Option<i32> {
        loop {
            let w = self.wire.as_mut()?;
            let frame = match w.recv_timeout(timeout) {
                Ok(Some(f)) => f,
                Ok(None) => return None,
                Err(_) => {
                    self.wire = None;
                    return None;
                }
            };
            if let Some(env) = Envelope::decode(&frame) {
                let Envelope::Req { seq, req } = env else { continue };
                self.enveloped = true;
                if self.last_seq == Some(seq) {
                    if let Some(cached) = self.reply_cache.clone() {
                        self.send_frame(&cached);
                    }
                    continue;
                }
                match req {
                    Request::Ping => self.reply(seq, &Reply::Running),
                    Request::Kill => {
                        self.reply(seq, &Reply::Ack);
                        return Some(-9);
                    }
                    Request::Detach => {
                        self.reply(seq, &Reply::Ack);
                        self.wire = None;
                    }
                    Request::DetachRun => {
                        self.reply(seq, &Reply::Ack);
                        self.last_signal = None;
                        self.wire = None;
                    }
                    // Everything else needs a stopped target.
                    _ => self.reply(seq, &Reply::Error { code: 4 }),
                }
            } else if self.enveloped {
                // A corrupted frame on an enveloped session can look like
                // a well-formed bare request — never honour it, or line
                // noise could detach or kill the target. Drop it; the
                // client retransmits.
            } else if let Some(req) = Request::decode(&frame) {
                match req {
                    Request::Kill => return Some(-9),
                    Request::Detach => self.wire = None,
                    Request::DetachRun => {
                        self.last_signal = None;
                        self.wire = None;
                    }
                    _ => self.send(&Reply::Error { code: 4 }),
                }
            }
            // Undecodable frames mid-run are dropped: enveloped clients
            // retransmit, legacy clients never send mid-run.
        }
    }

    fn stop_with(&mut self, sig: u8, code: u32) {
        self.run_budget = None;
        self.hooks.write_context(&mut self.machine, self.context);
        self.last_signal = Some((sig, code));
        self.announce(&Reply::Signal { sig, code, context: self.context });
    }

    fn announce_exit(&mut self, status: i32) {
        self.announce(&Reply::Exited { status });
    }

    /// Send a *new* stop/exit notification (advances the generation).
    fn announce(&mut self, reply: &Reply) {
        self.event_gen += 1;
        self.emit_event(reply);
    }

    /// (Re-)send a notification under the current generation, enveloped
    /// if the peer speaks envelopes, bare otherwise.
    fn emit_event(&mut self, reply: &Reply) {
        let frame = if self.enveloped {
            Envelope::Event { generation: self.event_gen, reply: reply.clone() }.encode()
        } else {
            reply.encode()
        };
        self.send_frame(&frame);
    }

    /// Send a sequenced reply and cache it for duplicate suppression.
    fn reply(&mut self, seq: u32, reply: &Reply) {
        let frame = Envelope::Reply { seq, reply: reply.clone() }.encode();
        self.last_seq = Some(seq);
        self.reply_cache = Some(frame.clone());
        self.send_frame(&frame);
    }

    /// Send a bare (legacy) reply.
    fn send(&mut self, reply: &Reply) {
        let frame = reply.encode();
        self.send_frame(&frame);
    }

    fn send_frame(&mut self, frame: &[u8]) {
        if let Some(w) = self.wire.as_mut() {
            if w.send(frame).is_err() {
                self.wire = None;
            }
        }
    }

    fn service(&mut self, req: &Request) -> Reply {
        match *req {
            Request::Fetch { space, addr, size } => {
                if space != b'c' && space != b'd' {
                    return Reply::Error { code: 2 };
                }
                let m = &self.machine;
                let v = match size {
                    1 => m.cpu.mem.read_u8(addr).map(|v| v as u64),
                    2 => m.cpu.mem.read_u16(addr).map(|v| v as u64),
                    4 => m.cpu.mem.read_u32(addr).map(|v| v as u64),
                    8 => m.cpu.mem.read_f64(addr).map(|v| {
                        self.hooks.fetch_fixup8(m, self.context, addr, v.to_bits())
                    }),
                    _ => return Reply::Error { code: 3 },
                };
                match v {
                    Ok(value) => Reply::Fetched { value },
                    Err(_) => Reply::Error { code: 1 },
                }
            }
            Request::Store { space, addr, size, value } => {
                if space != b'c' && space != b'd' {
                    return Reply::Error { code: 2 };
                }
                // A store that undoes a recorded plant removes the record.
                if let Some(i) = self
                    .plants
                    .iter()
                    .position(|&(a, s, orig)| a == addr && s == size && orig == value)
                {
                    self.plants.remove(i);
                    self.plant_values.remove(i);
                }
                let fixed = if size == 8 {
                    self.hooks.store_fixup8(&self.machine, self.context, addr, value)
                } else {
                    value
                };
                let m = &mut self.machine;
                let r = match size {
                    1 => m.cpu.mem.write_u8(addr, fixed as u8),
                    2 => m.cpu.mem.write_u16(addr, fixed as u16),
                    4 => m.cpu.mem.write_u32(addr, fixed as u32),
                    8 => m.cpu.mem.write_f64(addr, f64::from_bits(fixed)),
                    _ => return Reply::Error { code: 3 },
                };
                match r {
                    Ok(()) => Reply::Stored,
                    Err(_) => Reply::Error { code: 1 },
                }
            }
            Request::Plant { addr, size, value } => {
                let m = &mut self.machine;
                let orig = match size {
                    1 => m.cpu.mem.read_u8(addr).map(|v| v as u64),
                    2 => m.cpu.mem.read_u16(addr).map(|v| v as u64),
                    4 => m.cpu.mem.read_u32(addr).map(|v| v as u64),
                    _ => return Reply::Error { code: 3 },
                };
                let Ok(orig) = orig else { return Reply::Error { code: 1 } };
                let r = match size {
                    1 => m.cpu.mem.write_u8(addr, value as u8),
                    2 => m.cpu.mem.write_u16(addr, value as u16),
                    _ => m.cpu.mem.write_u32(addr, value as u32),
                };
                if r.is_err() {
                    return Reply::Error { code: 1 };
                }
                if !self.plants.iter().any(|&(a, _, _)| a == addr) {
                    self.plants.push((addr, size, orig));
                    self.plant_values.push(value);
                }
                Reply::Stored
            }
            Request::FetchBlock { space, addr, len } => {
                if space != b'c' && space != b'd' {
                    return Reply::Error { code: 2 };
                }
                if len == 0 || len > crate::proto::MAX_BLOCK {
                    return Reply::Error { code: 3 };
                }
                let m = &self.machine;
                let mut bytes = Vec::with_capacity(len as usize);
                for i in 0..len {
                    let Some(a) = addr.checked_add(i) else {
                        return Reply::Error { code: 1 };
                    };
                    match m.cpu.mem.read_u8(a) {
                        Ok(b) => bytes.push(b),
                        // All-or-nothing: a block fetch never returns a
                        // short read, so a client can cache the whole line
                        // or fall back to word fetches at the edge.
                        Err(_) => return Reply::Error { code: 1 },
                    }
                }
                let order = match m.cpu.mem.order() {
                    ByteOrder::Little => 0,
                    ByteOrder::Big => 1,
                };
                Reply::Block { order, bytes }
            }
            Request::QueryPlants => Reply::Plants(self.plants.clone()),
            Request::TakeSnapshot => {
                // Sync the CPU from the context block so register stores the
                // debugger made while stopped are part of the image.
                self.hooks.restore_context(&mut self.machine, self.context);
                // Capture a *pristine* image: lift every planted trap, so a
                // restored snapshot carries original text and the client can
                // re-plant (or not) without byte-diff noise at plant sites.
                let plants = self.plants.clone();
                let mut traps = Vec::with_capacity(plants.len());
                for &(addr, size, orig) in &plants {
                    let m = &mut self.machine;
                    let cur = match size {
                        1 => m.cpu.mem.read_u8(addr).map(|v| v as u64),
                        2 => m.cpu.mem.read_u16(addr).map(|v| v as u64),
                        _ => m.cpu.mem.read_u32(addr).map(|v| v as u64),
                    };
                    let Ok(cur) = cur else { return Reply::Error { code: 1 } };
                    let r = match size {
                        1 => m.cpu.mem.write_u8(addr, orig as u8),
                        2 => m.cpu.mem.write_u16(addr, orig as u16),
                        _ => m.cpu.mem.write_u32(addr, orig as u32),
                    };
                    if r.is_err() {
                        return Reply::Error { code: 1 };
                    }
                    traps.push(cur);
                }
                let snap = Snapshot::capture(&self.machine);
                // Re-arm the traps we lifted.
                for (&(addr, size, _), &trap) in plants.iter().zip(&traps) {
                    let m = &mut self.machine;
                    let _ = match size {
                        1 => m.cpu.mem.write_u8(addr, trap as u8),
                        2 => m.cpu.mem.write_u16(addr, trap as u16),
                        _ => m.cpu.mem.write_u32(addr, trap as u32),
                    };
                }
                self.plant_values = traps;
                self.snap_out = snap.to_bytes();
                Reply::Fetched { value: self.snap_out.len() as u64 }
            }
            Request::ReadSnapshot { off, len } => {
                if len == 0 || len > crate::proto::MAX_BLOCK {
                    return Reply::Error { code: 3 };
                }
                let (off, len) = (off as usize, len as usize);
                let Some(end) = off.checked_add(len) else {
                    return Reply::Error { code: 1 };
                };
                if end > self.snap_out.len() {
                    return Reply::Error { code: 1 };
                }
                let order = match self.machine.cpu.mem.order() {
                    ByteOrder::Little => 0,
                    ByteOrder::Big => 1,
                };
                Reply::Block { order, bytes: self.snap_out[off..end].to_vec() }
            }
            Request::LoadSnapshot { off, ref bytes } => {
                // Chunks arrive strictly in order; off 0 starts a fresh image.
                if off == 0 {
                    self.snap_in.clear();
                }
                if off as usize != self.snap_in.len() {
                    return Reply::Error { code: 3 };
                }
                if self.snap_in.len() + bytes.len() > MAX_SNAPSHOT {
                    self.snap_in.clear();
                    return Reply::Error { code: 3 };
                }
                self.snap_in.extend_from_slice(bytes);
                Reply::Stored
            }
            Request::CommitSnapshot { len } => {
                if len as usize != self.snap_in.len() {
                    self.snap_in.clear();
                    return Reply::Error { code: 3 };
                }
                let snap = match Snapshot::from_bytes(&self.snap_in) {
                    Ok(s) => s,
                    Err(_) => {
                        self.snap_in.clear();
                        return Reply::Error { code: 5 };
                    }
                };
                self.snap_in.clear();
                if snap.restore(&mut self.machine).is_err() {
                    return Reply::Error { code: 5 };
                }
                // The image is pristine; re-arm every live plant so forward
                // replay takes exactly the traps the original run took.
                let plants = self.plants.clone();
                for (&(addr, size, _), &trap) in plants.iter().zip(&self.plant_values) {
                    let m = &mut self.machine;
                    let r = match size {
                        1 => m.cpu.mem.write_u8(addr, trap as u8),
                        2 => m.cpu.mem.write_u16(addr, trap as u16),
                        _ => m.cpu.mem.write_u32(addr, trap as u32),
                    };
                    if r.is_err() {
                        return Reply::Error { code: 1 };
                    }
                }
                self.hooks.write_context(&mut self.machine, self.context);
                Reply::Stored
            }
            Request::QuerySteps => Reply::Fetched { value: self.machine.cpu.steps },
            // State-machine requests reaching here means the peer sent
            // them at the wrong time; say "not stopped" rather than panic.
            Request::Ping
            | Request::Continue
            | Request::Kill
            | Request::Detach
            | Request::Step
            | Request::StepN { .. }
            | Request::DetachRun => Reply::Error { code: 4 },
        }
    }
}

fn classify_fault(f: Fault) -> (Sig, u32) {
    match f {
        Fault::BadAddress { addr, .. } => (Sig::Segv, addr),
        Fault::DivideByZero => (Sig::Fpe, 0),
        Fault::IllegalInstruction { pc } => (Sig::Ill, pc),
        Fault::LoadDelayHazard { pc, .. } => (Sig::Ill, pc),
    }
}
