//! The debug nub proper (paper, Sec. 4.2).
//!
//! The nub executes "in user space" of the target: here, on the thread
//! that owns the target [`Machine`]. At startup the program's modified
//! startup code executes the pause call; when the target faults or hits a
//! breakpoint trap, the nub gets control, saves a *context*, notifies the
//! debugger over its wire, and services fetch and store requests until
//! told to continue, terminate, or break the connection.
//!
//! "Normally, when a connection is broken, even by a debugger crash, the
//! nub preserves the state of the target program and waits for a new
//! connection from another instance of ldb." The target need not be a
//! child of the debugger: connections arrive over a channel that anyone
//! can hand a [`Wire`] to (the network case), and a faulting program with
//! no debugger simply waits for one.

use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::arch::{nub_arch, NubArch};
use crate::proto::{Reply, Request, Sig};
use crate::transport::Wire;
use ldb_machine::{Fault, Image, Machine, RunEvent};

/// Nub configuration.
#[derive(Debug, Clone)]
pub struct NubConfig {
    /// Block at the startup pause until a debugger connects (set when the
    /// program is started *by* a debugger); otherwise the pause is a
    /// no-op when nobody is attached.
    pub wait_at_pause: bool,
    /// Instructions per run slice (between connection polls).
    pub slice: u64,
    /// Where to write a core file when the target faults with no
    /// debugger attached (UNIX `core` semantics). `None` keeps the
    /// default behavior: preserve state in the stopped nub and wait.
    pub core_path: Option<std::path::PathBuf>,
}

impl Default for NubConfig {
    fn default() -> Self {
        NubConfig { wait_at_pause: false, slice: 50_000, core_path: None }
    }
}

/// A handle to a spawned nub thread.
pub struct NubHandle {
    /// Hand a wire here to connect a debugger (the "network" listener).
    pub connect: Sender<Box<dyn Wire>>,
    /// Joins to the final machine state (for inspecting program output).
    pub join: JoinHandle<Machine>,
}

impl NubHandle {
    /// Connect a debugger end, returning the debugger's wire.
    pub fn connect_channel(&self) -> crate::transport::ChannelWire {
        let (dbg, nub) = crate::transport::channel_pair();
        self.connect.send(Box::new(nub)).expect("nub alive");
        dbg
    }
}

/// Load `image` and run it under a nub on a new thread.
pub fn spawn(image: &Image, cfg: NubConfig) -> NubHandle {
    let machine = Machine::load(image);
    let context = image.symbol("__nub_context").unwrap_or_else(|| {
        // Images without a reserved area get a context at the stack base.
        image.stack_top - image.arch.data().ctx.size - 64
    });
    spawn_machine(machine, context, cfg)
}

/// Run an existing machine under a nub.
pub fn spawn_machine(machine: Machine, context: u32, cfg: NubConfig) -> NubHandle {
    let (tx, rx) = unbounded();
    let arch = machine.arch();
    let nub = Nub {
        machine,
        context,
        hooks: nub_arch(arch),
        wire: None,
        connect_rx: rx,
        plants: Vec::new(),
        cfg,
        last_signal: None,
        reached_pause: false,
    };
    let join = std::thread::spawn(move || nub.serve());
    NubHandle { connect: tx, join }
}

struct Nub {
    machine: Machine,
    context: u32,
    hooks: &'static dyn NubArch,
    wire: Option<Box<dyn Wire>>,
    connect_rx: Receiver<Box<dyn Wire>>,
    plants: Vec<(u32, u8, u64)>,
    cfg: NubConfig,
    last_signal: Option<(u8, u32)>,
    /// Set once the startup pause has been reached (before that, a
    /// debugger-spawned target holds incoming connections for the pause
    /// handshake instead of announcing an attach).
    reached_pause: bool,
}

enum State {
    Run,
    Stopped,
}

impl Nub {
    fn serve(mut self) -> Machine {
        let mut state = State::Run;
        loop {
            match state {
                State::Run => {
                    // Accept a (new) debugger mid-run: stop and announce —
                    // unless we were started *by* a debugger and have not
                    // reached the startup pause yet, in which case the
                    // connection waits for the pause handshake.
                    let hold_for_pause = self.cfg.wait_at_pause && !self.reached_pause;
                    if !hold_for_pause {
                        if let Ok(w) = self.connect_rx.try_recv() {
                            self.wire = Some(w);
                            self.stop_with(Sig::Attach.number(), 0);
                            state = State::Stopped;
                            continue;
                        }
                    }
                    match self.machine.run(self.cfg.slice) {
                        RunEvent::StepLimit => {}
                        RunEvent::Breakpoint { pc, .. } => {
                            self.stop_with(Sig::Trap.number(), pc);
                            state = State::Stopped;
                        }
                        RunEvent::Fault(f) => {
                            let (sig, code) = classify_fault(f);
                            // An undebugged fault with a core path
                            // configured dies dumping core, like a UNIX
                            // process without a debugger.
                            if self.wire.is_none() {
                                if let Some(path) = &self.cfg.core_path {
                                    let img = ldb_machine::core::write_core(
                                        &self.machine,
                                        sig.number(),
                                        code,
                                        self.context,
                                    );
                                    let _ = std::fs::write(path, img);
                                    return self.machine;
                                }
                            }
                            self.stop_with(sig.number(), code);
                            state = State::Stopped;
                        }
                        RunEvent::Paused { .. } => {
                            self.reached_pause = true;
                            if let Ok(w) = self.connect_rx.try_recv() {
                                self.wire = Some(w);
                            }
                            if self.wire.is_some() {
                                self.stop_with(Sig::Pause.number(), 0);
                                state = State::Stopped;
                            } else if self.cfg.wait_at_pause {
                                match self.connect_rx.recv() {
                                    Ok(w) => {
                                        self.wire = Some(w);
                                        self.stop_with(Sig::Pause.number(), 0);
                                        state = State::Stopped;
                                    }
                                    Err(_) => return self.machine, // nobody will ever connect
                                }
                            }
                            // Otherwise: an undebugged run; keep going.
                        }
                        RunEvent::Exited(status) => {
                            self.send(&Reply::Exited { status });
                            return self.machine;
                        }
                    }
                }
                State::Stopped => {
                    if self.wire.is_none() {
                        // Preserve state and wait for a new debugger
                        // (survives debugger crashes).
                        match self.connect_rx.recv() {
                            Ok(w) => {
                                self.wire = Some(w);
                                if let Some((sig, code)) = self.last_signal {
                                    self.send(&Reply::Signal {
                                        sig,
                                        code,
                                        context: self.context,
                                    });
                                }
                            }
                            Err(_) => return self.machine,
                        }
                        continue;
                    }
                    let frame = match self.wire.as_mut().expect("checked").recv() {
                        Ok(f) => f,
                        Err(_) => {
                            // The debugger crashed: drop the wire, keep
                            // the target's state.
                            self.wire = None;
                            continue;
                        }
                    };
                    match Request::decode(&frame) {
                        None => self.send(&Reply::Error { code: 5 }),
                        Some(Request::Continue) => {
                            self.hooks.restore_context(&mut self.machine, self.context);
                            state = State::Run;
                        }
                        Some(Request::Step) => {
                            // The optional single-step extension: run one
                            // instruction and stop again.
                            self.hooks.restore_context(&mut self.machine, self.context);
                            match self.machine.run(1) {
                                RunEvent::StepLimit | RunEvent::Paused { .. } => {
                                    self.stop_with(Sig::Step.number(), 0);
                                }
                                RunEvent::Breakpoint { pc, .. } => {
                                    self.stop_with(Sig::Trap.number(), pc);
                                }
                                RunEvent::Fault(f) => {
                                    let (sig, code) = classify_fault(f);
                                    self.stop_with(sig.number(), code);
                                }
                                RunEvent::Exited(status) => {
                                    self.send(&Reply::Exited { status });
                                    return self.machine;
                                }
                            }
                        }
                        Some(Request::Kill) => {
                            self.send(&Reply::Exited { status: -9 });
                            return self.machine;
                        }
                        Some(Request::Detach) => {
                            self.wire = None;
                            // Stay stopped, preserving state.
                        }
                        Some(Request::DetachRun) => {
                            self.wire = None;
                            self.last_signal = None;
                            self.hooks.restore_context(&mut self.machine, self.context);
                            state = State::Run;
                        }
                        Some(req) => {
                            let reply = self.service(&req);
                            self.send(&reply);
                        }
                    }
                }
            }
        }
    }

    fn stop_with(&mut self, sig: u8, code: u32) {
        self.hooks.write_context(&mut self.machine, self.context);
        self.last_signal = Some((sig, code));
        self.send(&Reply::Signal { sig, code, context: self.context });
    }

    fn send(&mut self, reply: &Reply) {
        if let Some(w) = self.wire.as_mut() {
            if w.send(&reply.encode()).is_err() {
                self.wire = None;
            }
        }
    }

    fn service(&mut self, req: &Request) -> Reply {
        match *req {
            Request::Fetch { space, addr, size } => {
                if space != b'c' && space != b'd' {
                    return Reply::Error { code: 2 };
                }
                let m = &self.machine;
                let v = match size {
                    1 => m.cpu.mem.read_u8(addr).map(|v| v as u64),
                    2 => m.cpu.mem.read_u16(addr).map(|v| v as u64),
                    4 => m.cpu.mem.read_u32(addr).map(|v| v as u64),
                    8 => m.cpu.mem.read_f64(addr).map(|v| {
                        self.hooks.fetch_fixup8(m, self.context, addr, v.to_bits())
                    }),
                    _ => return Reply::Error { code: 3 },
                };
                match v {
                    Ok(value) => Reply::Fetched { value },
                    Err(_) => Reply::Error { code: 1 },
                }
            }
            Request::Store { space, addr, size, value } => {
                if space != b'c' && space != b'd' {
                    return Reply::Error { code: 2 };
                }
                // A store that undoes a recorded plant removes the record.
                if let Some(i) = self
                    .plants
                    .iter()
                    .position(|&(a, s, orig)| a == addr && s == size && orig == value)
                {
                    self.plants.remove(i);
                }
                let fixed = if size == 8 {
                    self.hooks.store_fixup8(&self.machine, self.context, addr, value)
                } else {
                    value
                };
                let m = &mut self.machine;
                let r = match size {
                    1 => m.cpu.mem.write_u8(addr, fixed as u8),
                    2 => m.cpu.mem.write_u16(addr, fixed as u16),
                    4 => m.cpu.mem.write_u32(addr, fixed as u32),
                    8 => m.cpu.mem.write_f64(addr, f64::from_bits(fixed)),
                    _ => return Reply::Error { code: 3 },
                };
                match r {
                    Ok(()) => Reply::Stored,
                    Err(_) => Reply::Error { code: 1 },
                }
            }
            Request::Plant { addr, size, value } => {
                let m = &mut self.machine;
                let orig = match size {
                    1 => m.cpu.mem.read_u8(addr).map(|v| v as u64),
                    2 => m.cpu.mem.read_u16(addr).map(|v| v as u64),
                    4 => m.cpu.mem.read_u32(addr).map(|v| v as u64),
                    _ => return Reply::Error { code: 3 },
                };
                let Ok(orig) = orig else { return Reply::Error { code: 1 } };
                let r = match size {
                    1 => m.cpu.mem.write_u8(addr, value as u8),
                    2 => m.cpu.mem.write_u16(addr, value as u16),
                    _ => m.cpu.mem.write_u32(addr, value as u32),
                };
                if r.is_err() {
                    return Reply::Error { code: 1 };
                }
                if !self.plants.iter().any(|&(a, _, _)| a == addr) {
                    self.plants.push((addr, size, orig));
                }
                Reply::Stored
            }
            Request::QueryPlants => Reply::Plants(self.plants.clone()),
            Request::Continue
            | Request::Kill
            | Request::Detach
            | Request::Step
            | Request::DetachRun => {
                unreachable!("handled by the state machine")
            }
        }
    }
}

fn classify_fault(f: Fault) -> (Sig, u32) {
    match f {
        Fault::BadAddress { addr, .. } => (Sig::Segv, addr),
        Fault::DivideByZero => (Sig::Fpe, 0),
        Fault::IllegalInstruction { pc } => (Sig::Ill, pc),
        Fault::LoadDelayHazard { pc, .. } => (Sig::Ill, pc),
    }
}
