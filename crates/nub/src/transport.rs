//! Transports: framed byte pipes between debugger and nub.
//!
//! "Using sockets and signal handlers makes it easier to retarget the
//! nub" (Sec. 4.2). Two transports are provided: an in-process channel
//! pair, and real TCP sockets for debugging over the network. Both carry
//! the same little-endian frames, so the choice is invisible to the
//! protocol layer.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crossbeam::channel::{bounded, Receiver, Sender};

/// A bidirectional framed connection.
pub trait Wire: Send {
    /// Send one frame.
    ///
    /// # Errors
    /// Connection loss.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;
    /// Receive one frame, blocking.
    ///
    /// # Errors
    /// Connection loss or end of stream.
    fn recv(&mut self) -> io::Result<Vec<u8>>;
}

/// In-process channel transport.
pub struct ChannelWire {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Create a connected pair of channel wires.
pub fn channel_pair() -> (ChannelWire, ChannelWire) {
    let (atx, arx) = bounded(256);
    let (btx, brx) = bounded(256);
    (ChannelWire { tx: atx, rx: brx }, ChannelWire { tx: btx, rx: arx })
}

impl Wire for ChannelWire {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer gone"))
    }
}

/// TCP transport: `[len: u32 LE][body]` frames over a socket.
pub struct TcpWire {
    stream: TcpStream,
}

impl TcpWire {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> TcpWire {
        let _ = stream.set_nodelay(true);
        TcpWire { stream }
    }
}

impl Wire for TcpWire {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let len = (frame.len() as u32).to_le_bytes();
        self.stream.write_all(&len)?;
        self.stream.write_all(frame)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        let n = u32::from_le_bytes(len) as usize;
        if n > 1 << 20 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
        }
        let mut body = vec![0u8; n];
        self.stream.read_exact(&mut body)?;
        Ok(body)
    }
}

/// A wire that fails immediately (used to simulate a crashed debugger).
pub struct DeadWire;

impl Wire for DeadWire {
    fn send(&mut self, _frame: &[u8]) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::BrokenPipe, "dead"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        Err(io::Error::new(io::ErrorKind::UnexpectedEof, "dead"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_duplex() {
        let (mut a, mut b) = channel_pair();
        a.send(b"hello").unwrap();
        b.send(b"world").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(a.recv().unwrap(), b"world");
    }

    #[test]
    fn channel_detects_dropped_peer() {
        let (mut a, b) = channel_pair();
        drop(b);
        assert!(a.send(b"x").is_err());
        assert!(a.recv().is_err());
    }

    #[test]
    fn tcp_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut w = TcpWire::new(s);
            let f = w.recv().unwrap();
            w.send(&f).unwrap(); // echo
        });
        let mut c = TcpWire::new(TcpStream::connect(addr).unwrap());
        c.send(b"over the network").unwrap();
        assert_eq!(c.recv().unwrap(), b"over the network");
        t.join().unwrap();
    }

    #[test]
    fn dead_wire_errors() {
        let mut d = DeadWire;
        assert!(d.send(b"x").is_err());
        assert!(d.recv().is_err());
    }
}
