//! Transports: framed byte pipes between debugger and nub.
//!
//! "Using sockets and signal handlers makes it easier to retarget the
//! nub" (Sec. 4.2). Two transports are provided: an in-process channel
//! pair, and real TCP sockets for debugging over the network. Both carry
//! the same little-endian frames, so the choice is invisible to the
//! protocol layer.
//!
//! Frames are capped at [`MAX_FRAME`] bytes in both directions on every
//! transport: an oversized send is refused locally, and an oversized
//! length prefix from the peer is treated as protocol corruption, not a
//! reason to allocate.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

/// Largest frame any transport will send or accept (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

fn too_large(n: usize) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("frame too large: {n} bytes"))
}

/// A bidirectional framed connection.
pub trait Wire: Send {
    /// Send one frame.
    ///
    /// # Errors
    /// Connection loss, or a frame over [`MAX_FRAME`].
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Receive one frame, blocking.
    ///
    /// # Errors
    /// Connection loss or end of stream.
    fn recv(&mut self) -> io::Result<Vec<u8>>;

    /// Receive one frame, waiting at most `timeout`. Returns `Ok(None)` on
    /// timeout; partial progress on a frame is preserved for the next call.
    ///
    /// # Errors
    /// Connection loss or end of stream.
    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        // Default for transports without a native timed wait: block.
        let _ = timeout;
        self.recv().map(Some)
    }
}

/// In-process channel transport.
pub struct ChannelWire {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Create a connected pair of channel wires.
pub fn channel_pair() -> (ChannelWire, ChannelWire) {
    let (atx, arx) = bounded(256);
    let (btx, brx) = bounded(256);
    (ChannelWire { tx: atx, rx: brx }, ChannelWire { tx: btx, rx: arx })
}

impl Wire for ChannelWire {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        if frame.len() > MAX_FRAME {
            return Err(too_large(frame.len()));
        }
        self.tx
            .send(frame.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let frame = self
            .rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer gone"))?;
        if frame.len() > MAX_FRAME {
            return Err(too_large(frame.len()));
        }
        Ok(frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) if frame.len() > MAX_FRAME => Err(too_large(frame.len())),
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer gone"))
            }
        }
    }
}

/// TCP transport: `[len: u32 LE][body]` frames over a socket.
///
/// Timed receives buffer partial frames internally, so a timeout in the
/// middle of a frame never loses stream synchronization.
pub struct TcpWire {
    stream: TcpStream,
    /// Bytes of the in-flight frame received so far (length prefix first).
    pending: Vec<u8>,
}

impl TcpWire {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> TcpWire {
        let _ = stream.set_nodelay(true);
        TcpWire { stream, pending: Vec::new() }
    }

    /// Grow `pending` to `want` bytes. Returns false if the deadline passed
    /// first (progress is kept in `pending`).
    fn fill(&mut self, want: usize, deadline: Option<Instant>) -> io::Result<bool> {
        let mut chunk = [0u8; 4096];
        while self.pending.len() < want {
            if let Some(d) = deadline {
                let left = d.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Ok(false);
                }
                self.stream.set_read_timeout(Some(left))?;
            } else {
                self.stream.set_read_timeout(None)?;
            }
            let cap = chunk.len().min(want - self.pending.len());
            match self.stream.read(&mut chunk[..cap]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"))
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    fn try_recv_deadline(&mut self, deadline: Option<Instant>) -> io::Result<Option<Vec<u8>>> {
        if !self.fill(4, deadline)? {
            return Ok(None);
        }
        let n = u32::from_le_bytes([
            self.pending[0],
            self.pending[1],
            self.pending[2],
            self.pending[3],
        ]) as usize;
        if n > MAX_FRAME {
            return Err(too_large(n));
        }
        if !self.fill(4 + n, deadline)? {
            return Ok(None);
        }
        let body = self.pending[4..4 + n].to_vec();
        self.pending.clear();
        Ok(Some(body))
    }
}

impl Wire for TcpWire {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        if frame.len() > MAX_FRAME {
            return Err(too_large(frame.len()));
        }
        let len = (frame.len() as u32).to_le_bytes();
        self.stream.write_all(&len)?;
        self.stream.write_all(frame)
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        match self.try_recv_deadline(None)? {
            Some(frame) => Ok(frame),
            None => unreachable!("blocking receive cannot time out"),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        self.try_recv_deadline(Some(Instant::now() + timeout))
    }
}

/// A wire that fails immediately (used to simulate a crashed debugger).
pub struct DeadWire;

impl Wire for DeadWire {
    fn send(&mut self, _frame: &[u8]) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::BrokenPipe, "dead"))
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        Err(io::Error::new(io::ErrorKind::UnexpectedEof, "dead"))
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        Err(io::Error::new(io::ErrorKind::UnexpectedEof, "dead"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_duplex() {
        let (mut a, mut b) = channel_pair();
        a.send(b"hello").unwrap();
        b.send(b"world").unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert_eq!(a.recv().unwrap(), b"world");
    }

    #[test]
    fn channel_detects_dropped_peer() {
        let (mut a, b) = channel_pair();
        drop(b);
        assert!(a.send(b"x").is_err());
        assert!(a.recv().is_err());
    }

    #[test]
    fn channel_recv_timeout() {
        let (mut a, mut b) = channel_pair();
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
        b.send(b"late").unwrap();
        assert_eq!(a.recv_timeout(Duration::from_millis(5)).unwrap().unwrap(), b"late");
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let (mut a, mut b) = channel_pair();
        let big = vec![0u8; MAX_FRAME + 1];
        assert_eq!(a.send(&big).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // Smuggle one past the send check to prove recv still guards.
        a.send(&vec![1u8; MAX_FRAME]).unwrap();
        assert_eq!(b.recv().unwrap().len(), MAX_FRAME);
    }

    #[test]
    fn tcp_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut w = TcpWire::new(s);
            let f = w.recv().unwrap();
            w.send(&f).unwrap(); // echo
        });
        let mut c = TcpWire::new(TcpStream::connect(addr).unwrap());
        c.send(b"over the network").unwrap();
        assert_eq!(c.recv().unwrap(), b"over the network");
        t.join().unwrap();
    }

    #[test]
    fn tcp_timeout_keeps_frame_sync() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Dribble one frame: length prefix, a pause the client will
            // time out across, then the body.
            s.write_all(&(5u32.to_le_bytes())).unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(40));
            s.write_all(b"after").unwrap();
        });
        let mut c = TcpWire::new(TcpStream::connect(addr).unwrap());
        // First timed read sees only the prefix and must report a timeout…
        assert!(c.recv_timeout(Duration::from_millis(10)).unwrap().is_none());
        // …then the frame arrives intact, not desynchronized.
        assert_eq!(c.recv().unwrap(), b"after");
        t.join().unwrap();
    }

    #[test]
    fn tcp_rejects_oversized_length_prefix() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(&((MAX_FRAME as u32 + 1).to_le_bytes())).unwrap();
        });
        let mut c = TcpWire::new(TcpStream::connect(addr).unwrap());
        assert_eq!(c.recv().unwrap_err().kind(), io::ErrorKind::InvalidData);
        t.join().unwrap();
    }

    #[test]
    fn dead_wire_errors() {
        let mut d = DeadWire;
        assert!(d.send(b"x").is_err());
        assert!(d.recv().is_err());
        assert!(d.recv_timeout(Duration::from_millis(1)).is_err());
    }
}
