//! The debug nub and its wire protocol (paper, Sec. 4.2).
//!
//! A small stub loaded with every target program. It catches breakpoint
//! traps and faults, saves a *context* in target memory, and services
//! little-endian fetch/store requests from the debugger over a [`Wire`]
//! (in-process channels or TCP). The protocol never mentions breakpoints
//! or single-stepping: the debugger implements breakpoints entirely with
//! fetches and stores. If the debugger crashes, the nub preserves the
//! target's state and waits for a new connection.
//!
//! On top of the bare request/reply frames sits an optional *session
//! layer* ([`proto::Envelope`]): checksummed, sequence-numbered frames
//! with at-most-once execution on the nub and bounded retransmission in
//! the client, so the protocol survives lossy or corrupting transports.
//! [`fault::FaultyWire`] injects exactly those faults, deterministically,
//! for testing.

pub mod arch;
pub mod client;
pub mod fault;
pub mod nub;
pub mod proto;
pub mod transport;

pub use client::{ClientConfig, NubClient, NubError, NubEvent, WireMetrics};
pub use fault::{FaultConfig, FaultStats, FaultyWire};
pub use nub::{spawn, spawn_machine, NubConfig, NubHandle};
pub use proto::{Envelope, Reply, Request, Sig, MAX_BLOCK};
pub use transport::{channel_pair, ChannelWire, DeadWire, TcpWire, Wire, MAX_FRAME};
