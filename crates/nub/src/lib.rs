//! The debug nub and its wire protocol (paper, Sec. 4.2).
//!
//! A small stub loaded with every target program. It catches breakpoint
//! traps and faults, saves a *context* in target memory, and services
//! little-endian fetch/store requests from the debugger over a [`Wire`]
//! (in-process channels or TCP). The protocol never mentions breakpoints
//! or single-stepping: the debugger implements breakpoints entirely with
//! fetches and stores. If the debugger crashes, the nub preserves the
//! target's state and waits for a new connection.

pub mod arch;
pub mod client;
pub mod nub;
pub mod proto;
pub mod transport;

pub use client::{NubClient, NubError, NubEvent};
pub use nub::{spawn, spawn_machine, NubConfig, NubHandle};
pub use proto::{Reply, Request, Sig};
pub use transport::{channel_pair, ChannelWire, TcpWire, Wire};
