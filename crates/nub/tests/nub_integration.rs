//! End-to-end nub tests: real compiled programs under a nub, driven
//! through the wire protocol exactly as the debugger drives them.

use ldb_cc::driver::{compile, CompileOpts};
use ldb_machine::{Arch, ByteOrder};
use ldb_nub::{spawn, NubClient, NubConfig, NubEvent, Sig, TcpWire};

const FIB: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
int main(void) { fib(10); return 0; }
"#;

fn compiled(arch: Arch) -> ldb_cc::driver::Compiled {
    compile("fib.c", FIB, arch, CompileOpts::default()).unwrap()
}

fn attach(c: &ldb_cc::driver::Compiled) -> (ldb_nub::NubHandle, NubClient) {
    let h = spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let wire = h.connect_channel().unwrap();
    let client = NubClient::new(Box::new(wire));
    (h, client)
}

#[test]
fn pause_breakpoint_continue_exit_on_all_targets() {
    for arch in Arch::ALL {
        let c = compiled(arch);
        let d = arch.data();
        let (h, mut client) = attach(&c);

        // 1. The startup pause.
        let ev = client.wait_event().unwrap();
        let NubEvent::Stopped { sig: Sig::Pause, context, .. } = ev else {
            panic!("{arch}: {ev:?}");
        };
        assert_eq!(context, c.linked.context_addr, "{arch}");

        // 2. Plant a breakpoint at fib's stopping point 3 (a[0]=a[1]=1)
        //    by overwriting its no-op with the break pattern.
        let stop3 = c.linked.stop_addrs[0][3];
        let orig = client.fetch('c', stop3, d.insn_unit).unwrap();
        assert_eq!(orig as u32, d.nop_pattern, "{arch}: stop holds a no-op");
        client.plant(stop3, d.insn_unit, d.break_pattern as u64).unwrap();

        // 3. Continue; we must stop at the trap with pc = stop3.
        let ev = client.continue_and_wait().unwrap();
        let NubEvent::Stopped { sig: Sig::Trap, context, .. } = ev else {
            panic!("{arch}: {ev:?}");
        };
        let pc = client.fetch('d', context + d.ctx.pc_offset, 4).unwrap() as u32;
        assert_eq!(pc, stop3, "{arch}: stopped at the planted no-op");

        // 4. Resume: restore the no-op, bump the saved pc past it (the
        //    "interpret the no-op out of line" resume), re-plant.
        client.store('c', stop3, d.insn_unit, d.nop_pattern as u64).unwrap();
        client
            .store('d', context + d.ctx.pc_offset, 4, (stop3 + d.pc_advance as u32) as u64)
            .unwrap();
        let ev = client.continue_and_wait().unwrap();
        assert_eq!(ev, NubEvent::Exited(0), "{arch}");

        let m = h.join.join().unwrap();
        assert_eq!(m.output, "1 1 2 3 5 8 13 21 34 55 \n", "{arch}");
    }
}

#[test]
fn fetch_and_store_data_with_correct_byte_order() {
    for order in [ByteOrder::Big, ByteOrder::Little] {
        let c = compile(
            "fib.c",
            FIB,
            Arch::Mips,
            CompileOpts { order: Some(order), ..Default::default() },
        )
        .unwrap();
        let (h, mut client) = attach(&c);
        client.wait_event().unwrap();

        // The static array `a` lives at a known data address.
        let a_addr = *c
            .linked
            .data_addrs
            .iter()
            .find(|(k, _)| k.contains(".a."))
            .unwrap()
            .1;
        // Regardless of target byte order, values travel little-endian:
        // store 0x11223344 and read it back.
        client.store('d', a_addr, 4, 0x11223344).unwrap();
        assert_eq!(client.fetch('d', a_addr, 4).unwrap(), 0x11223344);
        // Sub-word fetches honour the target's byte order in memory.
        let b0 = client.fetch('d', a_addr, 1).unwrap() as u8;
        match order {
            ByteOrder::Big => assert_eq!(b0, 0x11),
            ByteOrder::Little => assert_eq!(b0, 0x44),
        }
        client.kill().unwrap();
        h.join.join().unwrap();
    }
}

#[test]
fn faulting_program_waits_for_a_debugger() {
    // A program that dereferences null: the nub catches the fault and
    // waits for a connection — the target was never a child of the
    // debugger.
    let src = "int main(void) { int *p; p = 0; return *p; }";
    let c = compile("crash.c", src, Arch::Sparc, CompileOpts::default()).unwrap();
    let h = spawn(&c.linked.image, NubConfig { wait_at_pause: false, ..Default::default() });
    // Give it time to fault with nobody attached.
    std::thread::sleep(std::time::Duration::from_millis(30));
    // Now a debugger connects — and learns about the segfault.
    let wire = h.connect_channel().unwrap();
    let mut client = NubClient::new(Box::new(wire));
    let ev = client.wait_event().unwrap();
    let NubEvent::Stopped { sig: Sig::Segv, code, .. } = ev else { panic!("{ev:?}") };
    assert_eq!(code, 0, "faulting address was null");
    client.kill().unwrap();
    h.join.join().unwrap();
}

#[test]
fn nub_survives_debugger_crash_and_reports_plants() {
    let c = compiled(Arch::Vax);
    let d = Arch::Vax.data();
    let h = spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });

    // First debugger: attach, plant a breakpoint, then "crash" (drop).
    let stop5 = c.linked.stop_addrs[0][5];
    {
        let wire = h.connect_channel().unwrap();
        let mut client = NubClient::new(Box::new(wire));
        client.wait_event().unwrap();
        client.plant(stop5, d.insn_unit, d.break_pattern as u64).unwrap();
        // Drop without detach: the debugger crashed.
    }
    std::thread::sleep(std::time::Duration::from_millis(20));

    // Second debugger: reconnect. The nub re-announces the stop and can
    // report the planted instruction so we can recover it.
    let wire = h.connect_channel().unwrap();
    let mut client = NubClient::new(Box::new(wire));
    let ev = client.wait_event().unwrap();
    assert!(matches!(ev, NubEvent::Stopped { sig: Sig::Pause, .. }), "{ev:?}");
    let plants = client.query_plants().unwrap();
    assert_eq!(plants.len(), 1);
    let (addr, size, orig) = plants[0];
    assert_eq!(addr, stop5);
    assert_eq!(orig as u32, d.nop_pattern);
    // Recover: restore the original instruction and run to completion.
    client.store('c', addr, size, orig).unwrap();
    assert_eq!(client.query_plants().unwrap().len(), 0, "restore clears the record");
    let ev = client.continue_and_wait().unwrap();
    assert_eq!(ev, NubEvent::Exited(0));
    let m = h.join.join().unwrap();
    assert!(m.output.starts_with("1 1 2 3 5"));
}

#[test]
fn detach_preserves_state_for_reattach() {
    let c = compiled(Arch::M68k);
    let (h, mut client) = attach(&c);
    client.wait_event().unwrap();
    // Write a sentinel into the nub state area, detach, reattach, read it.
    let state_addr = c.linked.image.symbol("__nub_state").unwrap();
    client.store('d', state_addr, 4, 0xCAFE).unwrap();
    NubClient::detach(client).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    let wire = h.connect_channel().unwrap();
    let mut client = NubClient::new(Box::new(wire));
    let ev = client.wait_event().unwrap();
    assert!(matches!(ev, NubEvent::Stopped { .. }), "{ev:?}");
    assert_eq!(client.fetch('d', state_addr, 4).unwrap(), 0xCAFE);
    client.kill().unwrap();
    h.join.join().unwrap();
}

#[test]
fn debugging_over_tcp() {
    // The same protocol over a real socket: debugging over the network.
    let c = compiled(Arch::Mips);
    let h = spawn(&c.linked.image, NubConfig { wait_at_pause: true, ..Default::default() });
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // The "inetd" glue: accept a connection and hand it to the nub.
    let connect = h.connect.clone();
    let acceptor = std::thread::spawn(move || {
        let (s, _) = listener.accept().unwrap();
        connect.send(Box::new(TcpWire::new(s))).unwrap();
    });
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut client = NubClient::new(Box::new(TcpWire::new(stream)));
    acceptor.join().unwrap();
    let ev = client.wait_event().unwrap();
    assert!(matches!(ev, NubEvent::Stopped { sig: Sig::Pause, .. }));
    // Read the first word of fib's code over the network.
    let (_, fib_addr, _) = c.linked.func_addrs[0].clone();
    let _ = fib_addr;
    let ev = client.continue_and_wait().unwrap();
    assert_eq!(ev, NubEvent::Exited(0));
    let m = h.join.join().unwrap();
    assert_eq!(m.output, "1 1 2 3 5 8 13 21 34 55 \n");
}

#[test]
fn error_replies_for_bad_requests() {
    let c = compiled(Arch::Sparc);
    let (h, mut client) = attach(&c);
    client.wait_event().unwrap();
    // Bad space.
    assert!(client.fetch('r', 0x1000, 4).is_err());
    // Bad address.
    assert!(client.fetch('d', 0, 4).is_err());
    // Bad size.
    assert!(client.fetch('d', 0x1000, 3).is_err());
    // The connection is still healthy afterwards.
    assert!(client.fetch('c', 0x1000, 4).is_ok());
    client.kill().unwrap();
    h.join.join().unwrap();
}

#[test]
fn mips_bigendian_fp_context_quirk() {
    // The kernel stores saved FP registers word-swapped on the big-endian
    // MIPS; the nub's doubleword fetch must compensate, so the debugger
    // sees the true value.
    let src = r#"
        double g;
        int main(void) { g = 2.5; return 0; }
    "#;
    let c = compile("f.c", src, Arch::Mips, CompileOpts::default()).unwrap();
    let (h, mut client) = attach(&c);
    let NubEvent::Stopped { context, .. } = client.wait_event().unwrap() else { panic!() };
    let layout = Arch::Mips.data().ctx;
    // Saved f0 via the nub's 8-byte fetch: must decode as a sane double
    // (0.0 at startup).
    let raw = client.fetch('d', context + layout.freg(0), 8).unwrap();
    assert_eq!(f64::from_bits(raw), 0.0);
    // The words *in memory* are swapped relative to a normal double store:
    // write 2.5 through the nub (which swaps), then check raw words.
    client.store('d', context + layout.freg(0), 8, 2.5f64.to_bits()).unwrap();
    let msw_in_mem = client.fetch('d', context + layout.freg(0), 4).unwrap() as u32;
    // LSW first in memory: the first word is the low half of the double.
    assert_eq!(msw_in_mem, 2.5f64.to_bits() as u32);
    // And fetching it back through the 8-byte path round-trips.
    let back = client.fetch('d', context + layout.freg(0), 8).unwrap();
    assert_eq!(f64::from_bits(back), 2.5);
    client.kill().unwrap();
    h.join.join().unwrap();
}
