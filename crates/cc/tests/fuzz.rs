//! Robustness: the C front end returns errors, never panics, on arbitrary
//! input; and every accepted program makes it through code generation and
//! linking on all four targets.

use ldb_cc::driver::{compile, CompileOpts};
use ldb_machine::Arch;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256 })]

    #[test]
    fn frontend_is_total(src in "\\PC{0,200}") {
        let _ = ldb_cc::parse::parse("fuzz.c", &src);
    }

    #[test]
    fn c_shaped_soup_is_total(
        src in "(?:int|void|char|double|if|else|while|for|return|\\{|\\}|\\(|\\)|;|,|=|\\+|-|\\*|/|x|y|f|g|0|1|42|\"s\"|'c'|&|\\[|\\]){1,80}"
    ) {
        if let Ok(ast) = ldb_cc::parse::parse("soup.c", &src) {
            if let Ok(_unit) = ldb_cc::sema::analyze(&ast) {
                // Accepted programs must compile and link everywhere.
                for arch in Arch::ALL {
                    let _ = compile("soup.c", &src, arch, CompileOpts::default());
                }
            }
        }
    }
}
