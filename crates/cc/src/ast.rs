//! Abstract syntax for the C subset.

use crate::lex::Pos;
use crate::types::Type;

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source position.
    pub pos: Pos,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// Character literal.
    CharLit(u8),
    /// String literal.
    StrLit(String),
    /// Identifier reference.
    Ident(String),
    /// Prefix unary: `-`, `!`, `~`, `*` (deref), `&` (address-of),
    /// `++` / `--` (pre-increment forms are `"++"` / `"--"`).
    Unary(&'static str, Box<Expr>),
    /// Postfix `++` / `--`.
    Postfix(&'static str, Box<Expr>),
    /// Binary arithmetic/relational/logical operator.
    Binary(&'static str, Box<Expr>, Box<Expr>),
    /// Assignment: `=`, `+=`, `-=`, `*=`, `/=`, `%=`, `&=`, `|=`, `^=`,
    /// `<<=`, `>>=`.
    Assign(&'static str, Box<Expr>, Box<Expr>),
    /// Direct call of a named function.
    Call(String, Vec<Expr>),
    /// Array indexing.
    Index(Box<Expr>, Box<Expr>),
    /// Member access; the bool is true for `->`.
    Member(Box<Expr>, String, bool),
    /// `sizeof(type)` or `sizeof expr` (resolved to a type at parse time
    /// when possible, else semantically).
    SizeofExpr(Box<Expr>),
    /// `sizeof(type-name)`.
    SizeofType(Type),
    /// A cast `(type) expr`.
    Cast(Type, Box<Expr>),
}

/// A local variable declaration within a block.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional scalar initializer.
    pub init: Option<Expr>,
    /// Declared `static` (per-function static storage).
    pub is_static: bool,
    /// Position of the name.
    pub pos: Pos,
}

/// A statement with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Source position (start of the statement).
    pub pos: Pos,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement.
    Expr(Expr),
    /// Local declarations.
    Decl(Vec<LocalDecl>),
    /// `if` with optional `else`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while`.
    While(Expr, Box<Stmt>),
    /// `do ... while`.
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body` — all three headers optional.
    For(Option<Expr>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// A braced block (opens a scope).
    Block(Vec<Stmt>),
    /// `;`.
    Empty,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (arrays decay at semantic analysis).
    pub ty: Type,
    /// Position of the name.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// The body block.
    pub body: Stmt,
    /// Declared `static`.
    pub is_static: bool,
    /// Position of the name.
    pub pos: Pos,
    /// Position of the closing brace (the function-exit stopping point).
    pub end_pos: Pos,
}

/// A global (file-scope) variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer: scalar constant or brace list.
    pub init: Option<Init>,
    /// Declared `static`.
    pub is_static: bool,
    /// Declared `extern` (no storage here).
    pub is_extern: bool,
    /// Position of the name.
    pub pos: Pos,
}

/// A static initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// A single constant expression.
    Scalar(Expr),
    /// `{ e, e, ... }` for arrays.
    List(Vec<Expr>),
    /// A string literal initializing a char array.
    Str(String),
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum TopDecl {
    /// A function definition.
    Func(FuncDecl),
    /// A global variable.
    Var(GlobalDecl),
    /// A struct definition (registered in the type environment).
    Struct(std::rc::Rc<crate::types::StructDef>),
}

/// A parsed compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// Source file name (for `/sourcefile` entries).
    pub file: String,
    /// Declarations in order.
    pub decls: Vec<TopDecl>,
}
