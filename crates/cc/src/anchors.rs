//! The anchor-symbol technique (paper, Sec. 2).
//!
//! The locations of private symbols and of stopping points are not known
//! until link time, and ldb must not depend on the linker recording private
//! symbols. Instead the compiler plans an *anchor table*: a block of words
//! in the data segment, labeled by a single generated anchor symbol per
//! compilation unit. Word *k* of the table holds the final address of the
//! *k*-th planned item. Symbol tables then locate things with
//! `(_stanchor_...) k LazyData`, and the loader table only needs the
//! anchor symbol's address (which `nm` reports, because the anchor is
//! extern).
//!
//! The enumeration below is shared between the PostScript emitter (which
//! needs indices at compile time) and the linker (which fills in the
//! addresses): both must walk the unit identically.

use crate::ir::UnitIr;

/// One planned anchor-table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorEntry {
    /// The address of stopping point `stop` of function `func`
    /// (indices into [`UnitIr::funcs`] and its `stops`).
    Stop {
        /// Function index.
        func: usize,
        /// Stopping-point index within the function.
        stop: usize,
    },
    /// The address of data item `data` (index into [`UnitIr::data`]).
    Data {
        /// Data index.
        data: usize,
    },
}

/// Enumerate the unit's anchor table. Order: every stopping point of every
/// function, then every datum that corresponds to a source-level variable.
pub fn anchor_entries(unit: &UnitIr) -> Vec<AnchorEntry> {
    let mut v = Vec::new();
    for (fi, f) in unit.funcs.iter().enumerate() {
        for si in 0..f.stops.len() {
            v.push(AnchorEntry::Stop { func: fi, stop: si });
        }
    }
    for (di, d) in unit.data.iter().enumerate() {
        if d.sym.is_some() {
            v.push(AnchorEntry::Data { data: di });
        }
    }
    v
}

/// The anchor index of a stopping point.
pub fn stop_anchor_index(unit: &UnitIr, func: usize, stop: usize) -> u32 {
    let mut idx = 0u32;
    for (fi, f) in unit.funcs.iter().enumerate() {
        if fi == func {
            return idx + stop as u32;
        }
        idx += f.stops.len() as u32;
    }
    unreachable!("function index out of range")
}

/// The anchor index of a data item (must have a symbol).
pub fn data_anchor_index(unit: &UnitIr, data: usize) -> u32 {
    let mut idx: u32 = unit.funcs.iter().map(|f| f.stops.len() as u32).sum();
    for (di, d) in unit.data.iter().enumerate() {
        if di == data {
            return idx;
        }
        if d.sym.is_some() {
            idx += 1;
        }
    }
    unreachable!("data index out of range")
}

/// The generated anchor-symbol name for a unit (the paper's
/// `_stanchor__V2935334b_e288a` style).
pub fn anchor_symbol(unit: &UnitIr) -> String {
    // A stable hash of the file name stands in for lcc's version hash.
    let mut h: u32 = 2166136261;
    for b in unit.file.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    format!("_stanchor__V{h:08x}_{}", unit.unit_name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::sema::analyze;

    #[test]
    fn indices_match_enumeration() {
        let unit = analyze(
            &parse(
                "t.c",
                "static int g = 1; int f(int x) { return x + g; } int main(void) { return f(2); }",
            )
            .unwrap(),
        )
        .unwrap();
        let entries = anchor_entries(&unit);
        for (k, e) in entries.iter().enumerate() {
            match *e {
                AnchorEntry::Stop { func, stop } => {
                    assert_eq!(stop_anchor_index(&unit, func, stop), k as u32);
                }
                AnchorEntry::Data { data } => {
                    assert_eq!(data_anchor_index(&unit, data), k as u32);
                }
            }
        }
        // g is a datum with a symbol, so it has an anchor slot.
        assert!(entries
            .iter()
            .any(|e| matches!(e, AnchorEntry::Data { data } if unit.data[*data].link_name.contains('g'))));
    }

    #[test]
    fn anchor_symbol_is_stable_and_unit_specific() {
        let u1 = analyze(&parse("fib.c", "int x;").unwrap()).unwrap();
        let u2 = analyze(&parse("fib.c", "int y;").unwrap()).unwrap();
        let u3 = analyze(&parse("main.c", "int x;").unwrap()).unwrap();
        assert_eq!(anchor_symbol(&u1), anchor_symbol(&u2));
        assert_ne!(anchor_symbol(&u1), anchor_symbol(&u3));
        assert!(anchor_symbol(&u1).starts_with("_stanchor__V"));
    }
}
