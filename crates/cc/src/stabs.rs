//! A binary "stabs" symbol-table format — the baseline the paper compares
//! PostScript symbol tables against ("PostScript symbol-table information
//! is about 9 times larger than dbx stabs for the same program", Sec. 7).
//!
//! The format follows a.out stabs: a table of 12-byte entries
//! (`n_strx, n_type, n_other, n_desc, n_value`) plus a string table of
//! `name:type-descriptor` strings. The production versions of lcc emit
//! stabs from the same internal interface used by the PostScript emitter;
//! so does this module.

use std::collections::HashMap;

use crate::driver::Compiled;
use crate::ir::{SymKindIr, WhereIr};
use crate::types::Type;

/// Stab type codes (a.out conventions).
#[allow(missing_docs)]
pub mod n_type {
    pub const N_GSYM: u8 = 0x20; // global variable
    pub const N_FUN: u8 = 0x24; // function
    pub const N_STSYM: u8 = 0x26; // static data
    pub const N_RSYM: u8 = 0x40; // register variable
    pub const N_SLINE: u8 = 0x44; // source line / stopping point
    pub const N_SO: u8 = 0x64; // source file
    pub const N_LSYM: u8 = 0x80; // stack local
    pub const N_PSYM: u8 = 0xa0; // parameter
}

/// One decoded stab entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stab {
    /// The `name:descriptor` string.
    pub string: String,
    /// Entry type (see [`n_type`]).
    pub typ: u8,
    /// Auxiliary byte (unused).
    pub other: u8,
    /// Line number (or similar).
    pub desc: u16,
    /// Address, register number, or frame offset.
    pub value: u32,
}

/// Compact stabs type descriptors (dbx-style small codes).
fn type_code(ty: &Type, structs: &mut HashMap<String, u16>) -> String {
    match ty {
        Type::Void => "0".into(),
        Type::Int => "1".into(),
        Type::Char => "2".into(),
        Type::Short => "3".into(),
        Type::UInt => "4".into(),
        Type::UChar => "5".into(),
        Type::UShort => "6".into(),
        Type::Float => "12".into(),
        Type::Double => "13".into(),
        Type::Ptr(p) => format!("*{}", type_code(p, structs)),
        Type::Array(el, n) => format!("a{};{}", n, type_code(el, structs)),
        Type::Struct(sd) => {
            let next = structs.len() as u16 + 16;
            let id = *structs.entry(sd.name.clone()).or_insert(next);
            format!("s{id}")
        }
        Type::Func(f) => format!("f{}", type_code(&f.ret, structs)),
    }
}

/// Emit binary stabs for a compiled program.
pub fn emit(c: &Compiled) -> Vec<u8> {
    let mut stabs: Vec<Stab> = Vec::new();
    let mut structs = HashMap::new();
    let unit = &c.unit;
    stabs.push(Stab { string: unit.file.clone(), typ: n_type::N_SO, other: 0, desc: 0, value: 0 });
    // File-scope data symbols.
    for d in &unit.data {
        let Some(si) = d.sym else { continue };
        let s = &unit.syms[si];
        let tc = type_code(&s.ty, &mut structs);
        let typ = if d.is_private { n_type::N_STSYM } else { n_type::N_GSYM };
        let addr = c.linked.data_addrs.get(&d.link_name).copied().unwrap_or(0);
        stabs.push(Stab {
            string: format!("{}:{}", s.name, tc),
            typ,
            other: 0,
            desc: s.pos.line as u16,
            value: addr,
        });
    }
    // Functions, their params/locals, and line stabs.
    for (fi, f) in unit.funcs.iter().enumerate() {
        let s = &unit.syms[f.sym];
        let (_, start, _) = c.linked.func_addrs[fi];
        let tc = type_code(&f.ret, &mut structs);
        stabs.push(Stab {
            string: format!("{}:F{}", s.name, tc),
            typ: n_type::N_FUN,
            other: 0,
            desc: s.pos.line as u16,
            value: start,
        });
        for v in f.params.iter().chain(f.locals.iter()) {
            if v.name.starts_with("$t") {
                continue;
            }
            let tc = type_code(&v.ty, &mut structs);
            let (typ, value) = match &unit.syms[v.sym].where_ {
                WhereIr::Reg(r) => (n_type::N_RSYM, *r as u32),
                WhereIr::Frame(off) => {
                    let t = if f.params.iter().any(|p| p.sym == v.sym) {
                        n_type::N_PSYM
                    } else {
                        n_type::N_LSYM
                    };
                    (t, *off as u32)
                }
                WhereIr::Anchor(_) => {
                    let addr = unit
                        .data
                        .iter()
                        .find(|d| d.sym == Some(v.sym))
                        .and_then(|d| c.linked.data_addrs.get(&d.link_name))
                        .copied()
                        .unwrap_or(0);
                    (n_type::N_STSYM, addr)
                }
                WhereIr::None => continue,
            };
            stabs.push(Stab {
                string: format!("{}:{}", v.name, tc),
                typ,
                other: 0,
                desc: v.pos.line as u16,
                value,
            });
        }
        for (si, stop) in f.stops.iter().enumerate() {
            stabs.push(Stab {
                string: String::new(),
                typ: n_type::N_SLINE,
                other: 0,
                desc: stop.line as u16,
                value: c.linked.stop_addrs[fi][si],
            });
        }
    }
    // Statics that never went through `data` (none today), skipped.
    let _ = SymKindIr::Variable;
    encode(&stabs)
}

/// Serialize entries: `count:u32`, entries, string table.
pub fn encode(stabs: &[Stab]) -> Vec<u8> {
    let mut strtab: Vec<u8> = vec![0]; // offset 0 = empty string
    let mut offsets = Vec::with_capacity(stabs.len());
    for s in stabs {
        if s.string.is_empty() {
            offsets.push(0u32);
        } else {
            offsets.push(strtab.len() as u32);
            strtab.extend_from_slice(s.string.as_bytes());
            strtab.push(0);
        }
    }
    let mut out = Vec::with_capacity(8 + stabs.len() * 12 + strtab.len());
    out.extend_from_slice(&(stabs.len() as u32).to_le_bytes());
    out.extend_from_slice(&(strtab.len() as u32).to_le_bytes());
    for (s, off) in stabs.iter().zip(&offsets) {
        out.extend_from_slice(&off.to_le_bytes());
        out.push(s.typ);
        out.push(s.other);
        out.extend_from_slice(&s.desc.to_le_bytes());
        out.extend_from_slice(&s.value.to_le_bytes());
    }
    out.extend_from_slice(&strtab);
    out
}

/// Parse a stabs blob back into entries (the baseline debugger's reader).
///
/// # Errors
/// Returns `None` on truncation or malformed string offsets.
pub fn decode(bytes: &[u8]) -> Option<Vec<Stab>> {
    if bytes.len() < 8 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let strlen = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
    let table_end = 8 + count * 12;
    if bytes.len() < table_end + strlen {
        return None;
    }
    let strtab = &bytes[table_end..table_end + strlen];
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let e = &bytes[8 + i * 12..8 + i * 12 + 12];
        let strx = u32::from_le_bytes(e[0..4].try_into().ok()?) as usize;
        let string = if strx == 0 {
            String::new()
        } else {
            let end = strtab[strx..].iter().position(|&b| b == 0)? + strx;
            String::from_utf8_lossy(&strtab[strx..end]).into_owned()
        };
        out.push(Stab {
            string,
            typ: e[4],
            other: e[5],
            desc: u16::from_le_bytes(e[6..8].try_into().ok()?),
            value: u32::from_le_bytes(e[8..12].try_into().ok()?),
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile, CompileOpts};
    use ldb_machine::Arch;

    const SRC: &str = r#"
        static int tbl[4] = {1,2,3,4};
        double g;
        int add(int a, int b) { int s; s = a + b; return s; }
        int main(void) { return add(2, 3); }
    "#;

    #[test]
    fn round_trips() {
        let c = compile("t.c", SRC, Arch::Mips, CompileOpts::default()).unwrap();
        let bytes = emit(&c);
        let stabs = decode(&bytes).unwrap();
        assert!(stabs.iter().any(|s| s.typ == n_type::N_SO && s.string == "t.c"));
        assert!(stabs.iter().any(|s| s.typ == n_type::N_FUN && s.string.starts_with("add:F1")));
        assert!(stabs.iter().any(|s| s.typ == n_type::N_STSYM && s.string.starts_with("tbl:a4;1")));
        assert!(stabs.iter().any(|s| s.typ == n_type::N_GSYM && s.string.starts_with("g:13")));
        assert!(stabs.iter().filter(|s| s.typ == n_type::N_SLINE).count() >= 6);
        // Register variable s on the MIPS.
        assert!(stabs.iter().any(|s| s.typ == n_type::N_RSYM && s.string.starts_with("s:1")));
    }

    #[test]
    fn stabs_much_smaller_than_postscript() {
        let c = compile("t.c", SRC, Arch::Mips, CompileOpts::default()).unwrap();
        let stabs = emit(&c);
        let ps = crate::pssym::emit(&c.unit, &c.funcs, Arch::Mips, crate::pssym::PsMode::Deferred);
        let ratio = ps.len() as f64 / stabs.len() as f64;
        assert!(ratio > 2.0, "ps {} vs stabs {} (ratio {ratio:.1})", ps.len(), stabs.len());
    }

    #[test]
    fn decode_rejects_truncation() {
        let c = compile("t.c", SRC, Arch::Vax, CompileOpts::default()).unwrap();
        let bytes = emit(&c);
        assert!(decode(&bytes[..bytes.len() - 10]).is_none());
        assert!(decode(&[1, 2, 3]).is_none());
    }
}
