//! A mini-C compiler in the architecture of lcc, built for the ldb
//! reproduction: a machine-independent front end and typed-tree IR, four
//! small back ends (MIPS, 68020, SPARC, VAX), a MIPS delay-slot scheduler
//! whose restriction under `-g` the paper measures, stopping-point no-ops,
//! anchor symbols, and symbol-table emitters in both the paper's
//! PostScript format and a binary "stabs" baseline format.
pub mod anchors;
pub mod asm;
pub mod ast;
pub mod driver;
pub mod gen;
pub mod ir;
pub mod lex;
pub mod link;
pub mod nm;
pub mod parse;
pub mod pssym;
pub mod sched;
pub mod stabs;
pub mod sema;
pub mod types;
