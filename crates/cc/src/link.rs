//! The linker: lays out code and data, resolves labels and symbols, fills
//! the anchor table, serializes the MIPS runtime procedure table, and
//! reserves the nub's in-target area (context block and state words) —
//! the nub is "loaded with every program" (paper, Sec. 4.2).

use std::collections::HashMap;

use crate::anchors::{anchor_entries, anchor_symbol, AnchorEntry};
use crate::asm::{AsmFn, AsmIns};
use crate::ir::{Const, UnitIr};
use crate::lex::{CcError, CcResult, Pos};
use crate::types::Sfx;
use ldb_machine::{
    encode, Arch, ByteOrder, Image, Memory, Op, Rpt, RptEntry, SymKind, Symbol, CODE_BASE,
    STACK_SIZE,
};

/// Extra words of nub state reserved next to the context.
pub const NUB_STATE_WORDS: u32 = 16;

/// Counting statistics from linking (feeds experiments E1/E2).
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Total encoded instructions.
    pub insn_count: u32,
    /// No-op instructions among them.
    pub nop_count: u32,
    /// Code bytes.
    pub code_bytes: u32,
    /// Data bytes.
    pub data_bytes: u32,
}

/// The output of linking: an executable image plus the side tables the
/// debugger tooling needs.
#[derive(Debug, Clone)]
pub struct Linked {
    /// The loadable program.
    pub image: Image,
    /// Stopping-point addresses, per function.
    pub stop_addrs: Vec<Vec<u32>>,
    /// (link name, entry address, end address) per function.
    pub func_addrs: Vec<(String, u32, u32)>,
    /// Address of each data item by link name.
    pub data_addrs: HashMap<String, u32>,
    /// Address of the anchor table.
    pub anchor_addr: u32,
    /// The anchor symbol name.
    pub anchor_sym: String,
    /// Address of the runtime procedure table (MIPS only).
    pub rpt_addr: Option<u32>,
    /// Address of the nub's context block.
    pub context_addr: u32,
    /// Counting statistics.
    pub stats: LinkStats,
}

fn lerr<T>(msg: impl Into<String>) -> CcResult<T> {
    Err(CcError { pos: Pos::default(), msg: msg.into() })
}

fn item_len(arch: Arch, item: &AsmIns) -> u8 {
    match item {
        AsmIns::Label(_) | AsmIns::StopPoint(_) => 0,
        AsmIns::Op(op) => encode::length(arch, op),
        AsmIns::Br { .. } => encode::length(
            arch,
            &Op::Branch { cond: ldb_machine::Cond::Eq, rs: 0, rt: 0, target: 0 },
        ),
        AsmIns::Bcc { .. } => {
            encode::length(arch, &Op::BranchCC { cond: ldb_machine::Cond::Eq, target: 0 })
        }
        AsmIns::Jmp { .. } => encode::length(arch, &Op::Jump { target: 0 }),
        AsmIns::CallSym(_) => match arch {
            Arch::Mips | Arch::Sparc => 4,
            Arch::M68k => 6,
            Arch::Vax => 5,
        },
        AsmIns::LoadAddr { .. } => match arch {
            // Always the two-instruction lui/ori form so sizes are stable.
            Arch::Mips | Arch::Sparc => 8,
            Arch::M68k => 6,
            Arch::Vax => 6,
        },
    }
}

/// Link one compiled unit into an executable image.
///
/// # Errors
/// Undefined symbols and encoding overflows.
pub fn link(
    arch: Arch,
    order: ByteOrder,
    unit: &UnitIr,
    funcs: &[AsmFn],
) -> CcResult<Linked> {
    link_units(arch, order, &[(unit, funcs)])
}

/// Link any number of compiled units into one executable image — "a
/// single compilation unit or any combination of compilation units, up to
/// an entire program" (paper, Sec. 2).
///
/// The entry point is a startup stub that executes the nub's pause call,
/// calls `_main`, and exits with its return value — the "system-dependent
/// startup code modified to call the nub" of Sec. 4.3. Functions are laid
/// out unit by unit; each unit gets its own anchor table.
///
/// # Errors
/// Undefined symbols (including across units) and encoding overflows.
pub fn link_units(
    arch: Arch,
    order: ByteOrder,
    parts: &[(&UnitIr, &[AsmFn])],
) -> CcResult<Linked> {
    let d = arch.data();
    // ---- startup stub ----
    let rv = d.rv;
    let sysarg = d.syscall_arg_reg;
    let stub: Vec<AsmIns> = vec![
        AsmIns::Op(Op::Syscall(ldb_machine::Service::Pause.number())),
        AsmIns::CallSym("_main".to_string()),
        AsmIns::Op(Op::Mov { rd: sysarg, rs: rv }),
        AsmIns::Op(Op::Syscall(ldb_machine::Service::Exit.number())),
    ];

    // ---- sizing pass over code ----
    let mut pc = CODE_BASE;
    let mut stub_addr = Vec::new();
    for it in &stub {
        stub_addr.push(pc);
        pc += item_len(arch, it) as u32;
    }
    let mut func_addrs = Vec::new();
    let mut labels: Vec<HashMap<u32, u32>> = Vec::new();
    let mut stop_addrs: Vec<Vec<u32>> = Vec::new();
    let all_funcs: Vec<&AsmFn> = parts.iter().flat_map(|(_, fs)| fs.iter()).collect();
    for f in &all_funcs {
        // Align function starts to the instruction unit.
        pc = pc.next_multiple_of(d.insn_unit.max(2) as u32);
        let start = pc;
        let mut lmap = HashMap::new();
        let mut stops = vec![0u32; 0];
        for it in &f.items {
            match it {
                AsmIns::Label(l) => {
                    lmap.insert(*l, pc);
                }
                AsmIns::StopPoint(s) => {
                    debug_assert_eq!(*s as usize, stops.len());
                    stops.push(pc);
                }
                _ => pc += item_len(arch, it) as u32,
            }
        }
        func_addrs.push((f.link_name.clone(), start, pc));
        labels.push(lmap);
        stop_addrs.push(stops);
    }
    let code_end = pc;

    // ---- data layout ----
    let mut daddr = code_end.div_ceil(8) * 8;
    let data_base = daddr;
    let mut data_addrs = HashMap::new();
    for (unit, _) in parts {
        for dd in &unit.data {
            daddr = daddr.next_multiple_of(dd.align.max(1));
            data_addrs.insert(dd.link_name.clone(), daddr);
            daddr += dd.size;
        }
    }
    // Per-function floating literal pools.
    for f in &all_funcs {
        for (label, _) in &f.float_consts {
            daddr = daddr.next_multiple_of(8);
            data_addrs.insert(label.clone(), daddr);
            daddr += 8;
        }
    }
    // One anchor table per unit.
    let mut unit_anchor_info = Vec::new();
    for (unit, _) in parts {
        let entries = anchor_entries(unit);
        daddr = daddr.next_multiple_of(4);
        let sym = anchor_symbol(unit);
        data_addrs.insert(sym.clone(), daddr);
        unit_anchor_info.push((sym, daddr, entries));
        daddr += 4 * unit_anchor_info.last().map(|(_, _, e)| e.len() as u32).unwrap_or(0);
    }
    let anchor_addr = unit_anchor_info.first().map(|(_, a, _)| *a).unwrap_or(0);
    let anchor_sym = unit_anchor_info
        .first()
        .map(|(s, _, _)| s.clone())
        .unwrap_or_default();
    // MIPS runtime procedure table (all units).
    let mut rpt_addr = None;
    let rpt = if arch == Arch::Mips {
        let mut entries = Vec::new();
        for (f, (_, start, _)) in all_funcs.iter().zip(&func_addrs) {
            entries.push(RptEntry {
                proc_addr: *start,
                frame_size: f.frame.size,
                ra_save_offset: f.frame.ra_offset.unwrap_or(u32::MAX),
                save_mask: f.frame.save_mask,
                save_offset: f.frame.save_offset,
            });
        }
        entries.sort_by_key(|e| e.proc_addr);
        let rpt = Rpt { entries };
        daddr = daddr.next_multiple_of(4);
        rpt_addr = Some(daddr);
        daddr += rpt.byte_size();
        Some(rpt)
    } else {
        None
    };
    // Nub area: context block + state words.
    daddr = daddr.next_multiple_of(8);
    let context_addr = daddr;
    daddr += d.ctx.size;
    let nub_state_addr = daddr;
    daddr += NUB_STATE_WORDS * 4;
    let data_end = daddr;
    let stack_top = data_end.div_ceil(64) * 64 + STACK_SIZE;

    // ---- symbol resolution helper ----
    let resolve = |sym: &str| -> CcResult<u32> {
        if let Some((_, start, _)) = func_addrs.iter().find(|(n, _, _)| n == sym) {
            return Ok(*start);
        }
        if let Some(a) = data_addrs.get(sym) {
            return Ok(*a);
        }
        match sym {
            "__rpt" => rpt_addr.ok_or(()).or_else(|_| lerr("no runtime procedure table")),
            "__nub_context" => Ok(context_addr),
            "__nub_state" => Ok(nub_state_addr),
            _ => lerr(format!("undefined symbol `{sym}`")),
        }
    };

    // ---- emission ----
    let mut stats = LinkStats::default();
    let mut code = Vec::with_capacity((code_end - CODE_BASE) as usize);
    let mut pc = CODE_BASE;
    // Startup stub.
    for it in &stub {
        emit_single(arch, order, &mut code, &mut pc, it, None, &resolve, &mut stats)?;
    }
    // Functions.
    for (fi, f) in all_funcs.iter().enumerate() {
        let target_start = func_addrs[fi].1;
        while pc < target_start {
            // Alignment padding between functions.
            code.push(0);
            pc += 1;
        }
        for it in &f.items {
            emit_single(arch, order, &mut code, &mut pc, it, Some(&labels[fi]), &resolve, &mut stats)?;
        }
    }
    debug_assert_eq!(pc, code_end);
    stats.code_bytes = code.len() as u32;

    // ---- data emission ----
    let mut dmem = Memory::new(data_base, data_end - data_base, order);
    for dd in parts.iter().flat_map(|(u, _)| u.data.iter()) {
        let base = data_addrs[&dd.link_name];
        if let Some(s) = &dd.str_init {
            let mut bytes = s.as_bytes().to_vec();
            bytes.push(0);
            dmem.write_bytes(base, &bytes).map_err(|e| CcError {
                pos: Pos::default(),
                msg: e.to_string(),
            })?;
        }
        for item in &dd.init {
            let a = base + item.offset;
            let r = match (item.sfx, item.value) {
                (Sfx::F, Const::F(v)) => dmem.write_f32(a, v as f32),
                (Sfx::D, Const::F(v)) => dmem.write_f64(a, v),
                (Sfx::F, Const::I(v)) => dmem.write_f32(a, v as f32),
                (Sfx::D, Const::I(v)) => dmem.write_f64(a, v as f64),
                (s, Const::I(v)) => match s.size() {
                    1 => dmem.write_u8(a, v as u8),
                    2 => dmem.write_u16(a, v as u16),
                    _ => dmem.write_u32(a, v as u32),
                },
                (s, Const::F(v)) => {
                    let v = v as i64;
                    match s.size() {
                        1 => dmem.write_u8(a, v as u8),
                        2 => dmem.write_u16(a, v as u16),
                        _ => dmem.write_u32(a, v as u32),
                    }
                }
            };
            r.map_err(|e| CcError { pos: Pos::default(), msg: e.to_string() })?;
        }
    }
    for f in &all_funcs {
        for (label, v) in &f.float_consts {
            let a = data_addrs[label];
            dmem.write_f64(a, *v)
                .map_err(|e| CcError { pos: Pos::default(), msg: e.to_string() })?;
        }
    }
    // Anchor table contents; each unit's Stop indices are relative to the
    // unit, while stop_addrs is flat across units.
    let mut func_base = 0usize;
    for ((unit, funcs), (_, addr, entries)) in parts.iter().zip(&unit_anchor_info) {
        for (k, e) in entries.iter().enumerate() {
            let v = match *e {
                AnchorEntry::Stop { func, stop } => stop_addrs[func_base + func][stop],
                AnchorEntry::Data { data } => data_addrs[&unit.data[data].link_name],
            };
            dmem.write_u32(addr + 4 * k as u32, v)
                .map_err(|e| CcError { pos: Pos::default(), msg: e.to_string() })?;
        }
        func_base += funcs.len();
    }
    // Runtime procedure table.
    if let (Some(rpt), Some(addr)) = (&rpt, rpt_addr) {
        rpt.write_to(&mut dmem, addr)
            .map_err(|e| CcError { pos: Pos::default(), msg: e.to_string() })?;
    }
    let data = dmem
        .read_bytes(data_base, data_end - data_base)
        .expect("own range")
        .to_vec();
    stats.data_bytes = data.len() as u32;

    // ---- symbols (what nm will list) ----
    let mut symbols = Vec::new();
    symbols.push(Symbol { name: "__start".into(), addr: CODE_BASE, kind: SymKind::Text });
    let unit_funcs: Vec<&crate::ir::FuncIr> =
        parts.iter().flat_map(|(u, _)| u.funcs.iter()).collect();
    for (fi, (name, start, _)) in func_addrs.iter().enumerate() {
        let kind =
            if unit_funcs[fi].is_static { SymKind::Private } else { SymKind::Text };
        symbols.push(Symbol { name: name.clone(), addr: *start, kind });
    }
    for dd in parts.iter().flat_map(|(u, _)| u.data.iter()) {
        let kind = if dd.is_private { SymKind::Private } else { SymKind::Data };
        symbols.push(Symbol { name: dd.link_name.clone(), addr: data_addrs[&dd.link_name], kind });
    }
    for (sym, addr, _) in &unit_anchor_info {
        symbols.push(Symbol { name: sym.clone(), addr: *addr, kind: SymKind::Data });
    }
    if let Some(a) = rpt_addr {
        symbols.push(Symbol { name: "__rpt".into(), addr: a, kind: SymKind::Data });
    }
    symbols.push(Symbol { name: "__nub_context".into(), addr: context_addr, kind: SymKind::Data });
    symbols.push(Symbol { name: "__nub_state".into(), addr: nub_state_addr, kind: SymKind::Data });

    let image = Image {
        arch,
        order,
        code,
        code_base: CODE_BASE,
        data,
        data_base,
        bss_size: 0,
        entry: CODE_BASE,
        stack_top,
        symbols,
    };
    Ok(Linked {
        image,
        stop_addrs,
        func_addrs,
        data_addrs,
        anchor_addr,
        anchor_sym,
        rpt_addr,
        context_addr,
        stats,
    })
}

#[allow(clippy::too_many_arguments)]
fn emit_single(
    arch: Arch,
    order: ByteOrder,
    code: &mut Vec<u8>,
    pc: &mut u32,
    it: &AsmIns,
    lmap: Option<&HashMap<u32, u32>>,
    resolve: &dyn Fn(&str) -> CcResult<u32>,
    stats: &mut LinkStats,
) -> CcResult<()> {
    let mut emit_op = |code: &mut Vec<u8>, pc: &mut u32, op: &Op| -> CcResult<()> {
        let bytes = encode::encode(arch, op, *pc, order)
            .map_err(|e| CcError { pos: Pos::default(), msg: e.to_string() })?;
        stats.insn_count += 1;
        if matches!(op, Op::Nop) {
            stats.nop_count += 1;
        }
        *pc += bytes.len() as u32;
        code.extend(bytes);
        Ok(())
    };
    let label_of = |l: u32| -> CcResult<u32> {
        lmap.and_then(|m| m.get(&l).copied())
            .ok_or(())
            .or_else(|_| lerr(format!("undefined label {l}")))
    };
    match it {
        AsmIns::Label(_) | AsmIns::StopPoint(_) => Ok(()),
        AsmIns::Op(op) => emit_op(code, pc, op),
        AsmIns::Br { cond, rs, rt, label } => {
            let target = label_of(*label)?;
            emit_op(code, pc, &Op::Branch { cond: *cond, rs: *rs, rt: *rt, target })
        }
        AsmIns::Bcc { cond, label } => {
            let target = label_of(*label)?;
            emit_op(code, pc, &Op::BranchCC { cond: *cond, target })
        }
        AsmIns::Jmp { label } => {
            let target = label_of(*label)?;
            emit_op(code, pc, &Op::Jump { target })
        }
        AsmIns::CallSym(sym) => {
            let target = resolve(sym)?;
            match arch {
                Arch::Mips => emit_op(code, pc, &Op::JumpAndLink { target, link: 31 }),
                Arch::Sparc => emit_op(code, pc, &Op::JumpAndLink { target, link: 15 }),
                Arch::M68k | Arch::Vax => emit_op(code, pc, &Op::Call { target }),
            }
        }
        AsmIns::LoadAddr { rd, sym, off } => {
            let addr = resolve(sym)?.wrapping_add(*off as u32);
            match arch {
                Arch::Mips | Arch::Sparc => {
                    emit_op(code, pc, &Op::LoadUpper { rd: *rd, imm: (addr >> 16) as u16 })?;
                    emit_op(
                        code,
                        pc,
                        &Op::AluI {
                            op: ldb_machine::AluOp::Or,
                            rd: *rd,
                            rs: *rd,
                            imm: (addr & 0xffff) as u16 as i16,
                        },
                    )
                }
                Arch::M68k | Arch::Vax => {
                    emit_op(code, pc, &Op::LoadImm { rd: *rd, imm: addr as i32 })
                }
            }
        }
    }
}
