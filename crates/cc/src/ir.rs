//! The intermediate representation: typed operator trees in the style of
//! lcc's code-generation interface (Fraser & Hanson, "A code generation
//! interface for ANSI C"). Operators carry lcc-style type suffixes
//! (`ASGNI`, `INDIRC`, `CNSTF`, ...); the expression server's rewriter
//! turns these trees into PostScript, so the operator inventory here is the
//! analog of the "112 operators" the paper's rewriter handles.

use crate::lex::Pos;
use crate::types::{Sfx, Type};

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    /// Integer (covers all integer suffixes and pointers).
    I(i64),
    /// Floating.
    F(f64),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinIr {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Band,
    Bor,
    Bxor,
    Lsh,
    Rsh,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinIr {
    /// The lcc operator name stem.
    pub fn name(self) -> &'static str {
        match self {
            BinIr::Add => "ADD",
            BinIr::Sub => "SUB",
            BinIr::Mul => "MUL",
            BinIr::Div => "DIV",
            BinIr::Mod => "MOD",
            BinIr::Band => "BAND",
            BinIr::Bor => "BOR",
            BinIr::Bxor => "BXOR",
            BinIr::Lsh => "LSH",
            BinIr::Rsh => "RSH",
            BinIr::Eq => "EQ",
            BinIr::Ne => "NE",
            BinIr::Lt => "LT",
            BinIr::Le => "LE",
            BinIr::Gt => "GT",
            BinIr::Ge => "GE",
        }
    }

    /// Is this a comparison?
    pub fn is_cmp(self) -> bool {
        matches!(self, BinIr::Eq | BinIr::Ne | BinIr::Lt | BinIr::Le | BinIr::Gt | BinIr::Ge)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnIr {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Bcom,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Tree {
    /// `CNSTx`: a constant of the given suffix.
    Cnst(Sfx, Const),
    /// `ADDRGP`: the address of a global (by linker symbol name).
    Global(String),
    /// `ADDRLP`: the address of local variable `id` in the current frame.
    Local(u32),
    /// `ADDRFP`: the address of parameter `id`'s home slot.
    Param(u32),
    /// `INDIRx`: fetch through an address.
    Indir(Sfx, Box<Tree>),
    /// `ASGNx addr value`: store; yields the stored value.
    Asgn(Sfx, Box<Tree>, Box<Tree>),
    /// Binary operator.
    Bin(BinIr, Sfx, Box<Tree>, Box<Tree>),
    /// Unary operator.
    Un(UnIr, Sfx, Box<Tree>),
    /// `CVxy`: convert from the first suffix to the second.
    Cvt(Sfx, Sfx, Box<Tree>),
    /// `CALLx`: call a named function.
    Call(Sfx, String, Vec<Tree>),
}

impl Tree {
    /// The suffix of the value this tree produces.
    pub fn suffix(&self) -> Sfx {
        match self {
            Tree::Cnst(s, _)
            | Tree::Indir(s, _)
            | Tree::Asgn(s, _, _)
            | Tree::Un(_, s, _)
            | Tree::Call(s, _, _) => *s,
            Tree::Bin(op, s, _, _) => {
                if op.is_cmp() {
                    Sfx::I
                } else {
                    *s
                }
            }
            Tree::Cvt(_, to, _) => *to,
            Tree::Global(_) | Tree::Local(_) | Tree::Param(_) => Sfx::P,
        }
    }

    /// Count tree nodes (used by tests and diagnostics).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Tree::Indir(_, t) | Tree::Un(_, _, t) | Tree::Cvt(_, _, t) => t.node_count(),
            Tree::Asgn(_, a, b) | Tree::Bin(_, _, a, b) => a.node_count() + b.node_count(),
            Tree::Call(_, _, args) => args.iter().map(Tree::node_count).sum(),
            _ => 0,
        }
    }
}

/// A stopping point: where the debugger may plant a breakpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct StopIr {
    /// Index within the function (element of the `/loci` array).
    pub index: u32,
    /// Source line.
    pub line: u32,
    /// Source column.
    pub col: u32,
    /// The innermost visible symbol at this point (index into the unit's
    /// symbol arena), or `None` when only globals are visible.
    pub sym: Option<usize>,
}

/// A lowered statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtIr {
    /// A stopping point (emits a label, and a no-op under `-g`).
    Stop(u32),
    /// Evaluate for side effects.
    Expr(Tree),
    /// Branch to `label` when the tree's truth value equals `when`.
    CJump(Tree, bool, u32),
    /// Unconditional branch.
    Jump(u32),
    /// Branch target.
    Label(u32),
    /// Return, optionally with a value.
    Ret(Option<Tree>),
}

/// Where a variable lives, decided by the back end.
#[derive(Debug, Clone, PartialEq)]
pub enum Storage {
    /// Not yet assigned (pre-codegen).
    Unassigned,
    /// In an integer register (register-resident scalar).
    Reg(u8),
    /// At a frame offset (relative to the frame pointer on CISC/SPARC, to
    /// the *virtual* frame pointer on MIPS).
    Frame(i32),
    /// A function-scoped static, stored in the data segment under a
    /// mangled linker name.
    Static(String),
}

/// A variable in a function (parameter or local).
#[derive(Debug, Clone, PartialEq)]
pub struct VarIr {
    /// Source name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Was its address taken (disqualifies register residence)?
    pub addr_taken: bool,
    /// Where it lives (filled by the back end).
    pub storage: Storage,
    /// Declaration position.
    pub pos: Pos,
    /// Index of this variable's symbol-table node.
    pub sym: usize,
}

/// A function in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncIr {
    /// Function name (source-level; linker name gets an underscore).
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters, in order.
    pub params: Vec<VarIr>,
    /// All locals (block scopes flattened; names may repeat).
    pub locals: Vec<VarIr>,
    /// Stopping points, in emission order.
    pub stops: Vec<StopIr>,
    /// The body.
    pub body: Vec<StmtIr>,
    /// `static` linkage?
    pub is_static: bool,
    /// Position of the name.
    pub pos: Pos,
    /// Position of the closing brace.
    pub end_pos: Pos,
    /// Index of this function's symbol-table node.
    pub sym: usize,
}

/// One element of a static initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct InitItem {
    /// Byte offset within the object.
    pub offset: u32,
    /// Width/kind of the slot.
    pub sfx: Sfx,
    /// The constant.
    pub value: Const,
}

/// A datum in the data segment: a global, a function-scoped static, or a
/// string literal.
#[derive(Debug, Clone, PartialEq)]
pub struct DataIr {
    /// Linker name (mangled for privates).
    pub link_name: String,
    /// Size in bytes.
    pub size: u32,
    /// Alignment.
    pub align: u32,
    /// Non-zero initial contents.
    pub init: Vec<InitItem>,
    /// Raw string contents (for string literals; stored NUL-terminated).
    pub str_init: Option<String>,
    /// Private to the compilation unit (static linkage)?
    pub is_private: bool,
    /// Symbol-table node, if this is a source-level variable.
    pub sym: Option<usize>,
}

/// What a symbol-table node describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymKindIr {
    /// A variable.
    Variable,
    /// A procedure.
    Procedure,
}

/// Where the debugger will find a variable: drives the `/where` entry.
#[derive(Debug, Clone, PartialEq)]
pub enum WhereIr {
    /// Not a data symbol (procedures).
    None,
    /// In a register (register set 0 = integer registers).
    Reg(u8),
    /// At a frame offset.
    Frame(i32),
    /// Lazily, via the anchor table: `(anchor) k LazyData`.
    Anchor(u32),
}

/// A node of the symbol table under construction: one per source symbol,
/// linked by `uplink` into the scope tree of the paper's Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SymNode {
    /// Source name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// Variable or procedure.
    pub kind: SymKindIr,
    /// Declaration position.
    pub pos: Pos,
    /// The preceding symbol in this or an enclosing scope.
    pub uplink: Option<usize>,
    /// Location information (filled by the back end / linker).
    pub where_: WhereIr,
    /// Is this a file-scope static (lives in the unit's `statics` dict)?
    pub is_static_scope: bool,
    /// Is this a global (extern) symbol?
    pub is_extern_scope: bool,
}

/// A compiled unit in IR form.
#[derive(Debug, Clone, Default)]
pub struct UnitIr {
    /// Source file name.
    pub file: String,
    /// Functions in order.
    pub funcs: Vec<FuncIr>,
    /// Data items (globals, statics, strings).
    pub data: Vec<DataIr>,
    /// The symbol arena; `uplink`s index into it.
    pub syms: Vec<SymNode>,
}

impl UnitIr {
    /// Allocate a label id unique within a function lowering.
    pub fn unit_name(&self) -> String {
        self.file.replace(['.', '/', '-'], "_")
    }
}

/// Enumerate the legal (operator, suffix) combinations — the analog of
/// lcc's operator inventory ("the intermediate representation has 112
/// operators", paper Sec. 5). The expression server's rewriter must handle
/// every one of these.
pub fn operator_inventory() -> Vec<String> {
    use Sfx::*;
    let arith = [C, Uc, S, Us, I, U, P, F, D];
    let intish = [C, Uc, S, Us, I, U];
    let mut v = Vec::new();
    // CNST: all value suffixes.
    for s in arith {
        v.push(format!("CNST{}", s.letter()));
    }
    // ADDRG/ADDRL/ADDRF produce pointers.
    v.push("ADDRGP".into());
    v.push("ADDRLP".into());
    v.push("ADDRFP".into());
    // INDIR/ASGN over all memory suffixes (incl. B for struct copies the
    // subset diagnoses but the inventory names).
    for s in [C, Uc, S, Us, I, U, P, F, D, B] {
        v.push(format!("INDIR{}", s.letter()));
        v.push(format!("ASGN{}", s.letter()));
    }
    // Arithmetic over int/uint/float/double/pointer as applicable.
    for op in ["ADD", "SUB", "MUL", "DIV"] {
        for s in [I, U, F, D, P] {
            if s == P && (op == "MUL" || op == "DIV") {
                continue;
            }
            v.push(format!("{op}{}", s.letter()));
        }
    }
    for op in ["MOD", "BAND", "BOR", "BXOR", "LSH", "RSH"] {
        for s in [I, U] {
            v.push(format!("{op}{}", s.letter()));
        }
    }
    // Comparisons.
    for op in ["EQ", "NE", "LT", "LE", "GT", "GE"] {
        for s in [I, U, F, D, P] {
            if s == P && !(op == "EQ" || op == "NE") {
                continue;
            }
            v.push(format!("{op}{}", s.letter()));
        }
    }
    // NEG / BCOM.
    for s in [I, F, D] {
        v.push(format!("NEG{}", s.letter()));
    }
    for s in [I, U] {
        v.push(format!("BCOM{}", s.letter()));
    }
    // Conversions between the widened types.
    for (f, t) in [
        (I, F),
        (I, D),
        (F, I),
        (D, I),
        (F, D),
        (D, F),
        (I, U),
        (U, I),
        (U, D),
    ] {
        v.push(format!("CV{}{}", f.letter(), t.letter()));
    }
    // Narrowing/widening to sub-word integers (I<->U already listed).
    for s in intish {
        if s != I && s != U {
            v.push(format!("CV{}I", s.letter()));
            v.push(format!("CVI{}", s.letter()));
        }
    }
    // Calls and returns.
    for s in [I, U, P, F, D, V] {
        v.push(format!("CALL{}", s.letter()));
        v.push(format!("RET{}", s.letter()));
    }
    // Control.
    v.push("JUMPV".into());
    v.push("LABELV".into());
    v.push("ARGx".into());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_inventory_is_lcc_sized() {
        let inv = operator_inventory();
        // lcc has 112; our inventory must be in the same league.
        assert!(inv.len() >= 100, "only {} operators", inv.len());
        assert!(inv.len() <= 160, "{} operators", inv.len());
        assert!(inv.contains(&"ASGNI".to_string()));
        assert!(inv.contains(&"INDIRUC".to_string()));
        assert!(inv.contains(&"CVID".to_string()));
        // No duplicates.
        let mut sorted = inv.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), inv.len());
    }

    #[test]
    fn tree_suffix_and_count() {
        let t = Tree::Bin(
            BinIr::Add,
            Sfx::I,
            Box::new(Tree::Cnst(Sfx::I, Const::I(1))),
            Box::new(Tree::Indir(Sfx::I, Box::new(Tree::Local(0)))),
        );
        assert_eq!(t.suffix(), Sfx::I);
        assert_eq!(t.node_count(), 4);
        let cmp = Tree::Bin(
            BinIr::Lt,
            Sfx::D,
            Box::new(Tree::Cnst(Sfx::D, Const::F(1.0))),
            Box::new(Tree::Cnst(Sfx::D, Const::F(2.0))),
        );
        assert_eq!(cmp.suffix(), Sfx::I, "comparisons yield int");
    }
}
