//! Lexer for the C subset.
//!
//! Every token carries its source position; the debugger's symbol tables
//! record positions (`/sourcey`, `/sourcex`) for every symbol and stopping
//! point, so the front end must keep them.

use std::fmt;

/// A source position: 1-based line, 1-based column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compilation diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct CcError {
    /// Where.
    pub pos: Pos,
    /// What.
    pub msg: String,
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for CcError {}

/// Result type for the compiler.
pub type CcResult<T> = Result<T, CcError>;

pub(crate) fn err<T>(pos: Pos, msg: impl Into<String>) -> CcResult<T> {
    Err(CcError { pos, msg: msg.into() })
}

/// Keywords of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Void,
    Char,
    Short,
    Int,
    Long,
    Unsigned,
    Signed,
    Float,
    Double,
    Struct,
    If,
    Else,
    While,
    For,
    Do,
    Return,
    Break,
    Continue,
    Static,
    Extern,
    Sizeof,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "void" => Kw::Void,
        "char" => Kw::Char,
        "short" => Kw::Short,
        "int" => Kw::Int,
        "long" => Kw::Long,
        "unsigned" => Kw::Unsigned,
        "signed" => Kw::Signed,
        "float" => Kw::Float,
        "double" => Kw::Double,
        "struct" => Kw::Struct,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "for" => Kw::For,
        "do" => Kw::Do,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "static" => Kw::Static,
        "extern" => Kw::Extern,
        "sizeof" => Kw::Sizeof,
        _ => return None,
    })
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier.
    Ident(String),
    /// A keyword.
    Keyword(Kw),
    /// An integer literal.
    IntLit(i64),
    /// A floating literal.
    FloatLit(f64),
    /// A character literal (its value).
    CharLit(u8),
    /// A string literal (unescaped contents).
    StrLit(String),
    /// Punctuation or an operator, e.g. `"+="`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl Tok {
    /// Is this the given punctuation?
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(q) if *q == p)
    }

    /// Is this the given keyword?
    pub fn is_kw(&self, k: Kw) -> bool {
        matches!(self, Tok::Keyword(q) if *q == k)
    }
}

/// A token with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Source position of the first character.
    pub pos: Pos,
}

const PUNCTS: &[&str] = &[
    // Longest first so maximal munch works.
    "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "[", "]", "{", "}", ";", ",", ".", "+", "-",
    "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?", ":",
];

/// Tokenize a whole compilation unit.
///
/// # Errors
/// Malformed literals and stray characters.
pub fn lex(src: &str) -> CcResult<Vec<Token>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    'outer: while i < b.len() {
        let c = b[i];
        let pos = Pos { line, col };
        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            bump!();
            bump!();
            while i + 1 < b.len() {
                if b[i] == b'*' && b[i + 1] == b'/' {
                    bump!();
                    bump!();
                    continue 'outer;
                }
                bump!();
            }
            return err(pos, "unterminated comment");
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                bump!();
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                bump!();
            }
            let s = &src[start..i];
            let tok = match keyword(s) {
                Some(k) => Tok::Keyword(k),
                None => Tok::Ident(s.to_string()),
            };
            toks.push(Token { tok, pos });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()) {
            let start = i;
            let mut is_float = false;
            if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                bump!();
                bump!();
                while i < b.len() && b[i].is_ascii_hexdigit() {
                    bump!();
                }
                let v = i64::from_str_radix(&src[start + 2..i], 16)
                    .map_err(|e| CcError { pos, msg: format!("bad hex literal: {e}") })?;
                toks.push(Token { tok: Tok::IntLit(v), pos });
                continue;
            }
            while i < b.len() && b[i].is_ascii_digit() {
                bump!();
            }
            if i < b.len() && b[i] == b'.' {
                is_float = true;
                bump!();
                while i < b.len() && b[i].is_ascii_digit() {
                    bump!();
                }
            }
            if i < b.len() && (b[i] | 32) == b'e' {
                is_float = true;
                bump!();
                if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                    bump!();
                }
                while i < b.len() && b[i].is_ascii_digit() {
                    bump!();
                }
            }
            let text = &src[start..i];
            // Suffixes f/F/l/L/u/U are accepted and ignored.
            let mut floated = is_float;
            while i < b.len() && matches!(b[i] | 32, b'f' | b'l' | b'u') {
                if (b[i] | 32) == b'f' {
                    floated = true;
                }
                bump!();
            }
            let tok = if floated {
                Tok::FloatLit(
                    text.parse::<f64>()
                        .map_err(|e| CcError { pos, msg: format!("bad float literal: {e}") })?,
                )
            } else {
                Tok::IntLit(
                    text.parse::<i64>()
                        .map_err(|e| CcError { pos, msg: format!("bad int literal: {e}") })?,
                )
            };
            toks.push(Token { tok, pos });
            continue;
        }
        // Character literals.
        if c == b'\'' {
            bump!();
            if i >= b.len() {
                return err(pos, "unterminated char literal");
            }
            let v = if b[i] == b'\\' {
                bump!();
                if i >= b.len() {
                    return err(pos, "unterminated escape");
                }
                let e = escape(b[i]);
                bump!();
                e
            } else {
                let v = b[i];
                bump!();
                v
            };
            if i >= b.len() || b[i] != b'\'' {
                return err(pos, "unterminated char literal");
            }
            bump!();
            toks.push(Token { tok: Tok::CharLit(v), pos });
            continue;
        }
        // String literals.
        if c == b'"' {
            bump!();
            let mut s = String::new();
            loop {
                if i >= b.len() {
                    return err(pos, "unterminated string literal");
                }
                match b[i] {
                    b'"' => {
                        bump!();
                        break;
                    }
                    b'\\' => {
                        bump!();
                        if i >= b.len() {
                            return err(pos, "unterminated escape");
                        }
                        s.push(escape(b[i]) as char);
                        bump!();
                    }
                    other => {
                        s.push(other as char);
                        bump!();
                    }
                }
            }
            toks.push(Token { tok: Tok::StrLit(s), pos });
            continue;
        }
        // Punctuation (maximal munch).
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                for _ in 0..p.len() {
                    bump!();
                }
                toks.push(Token { tok: Tok::Punct(p), pos });
                continue 'outer;
            }
        }
        return err(pos, format!("stray character {:?}", c as char));
    }
    toks.push(Token { tok: Tok::Eof, pos: Pos { line, col } });
    Ok(toks)
}

fn escape(c: u8) -> u8 {
    match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'b' => 8,
        b'f' => 12,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_keywords_numbers() {
        let ts = kinds("int x1 = 42; double d = 2.5e1;");
        assert!(ts[0].is_kw(Kw::Int));
        assert_eq!(ts[1], Tok::Ident("x1".into()));
        assert!(ts[2].is_punct("="));
        assert_eq!(ts[3], Tok::IntLit(42));
        assert_eq!(ts[8], Tok::FloatLit(25.0));
    }

    #[test]
    fn hex_char_string() {
        let ts = kinds(r#"0x1F 'a' '\n' "hi\tthere""#);
        assert_eq!(ts[0], Tok::IntLit(31));
        assert_eq!(ts[1], Tok::CharLit(b'a'));
        assert_eq!(ts[2], Tok::CharLit(b'\n'));
        assert_eq!(ts[3], Tok::StrLit("hi\tthere".into()));
    }

    #[test]
    fn float_suffix() {
        let ts = kinds("1f 2.0f 3u");
        assert_eq!(ts[0], Tok::FloatLit(1.0));
        assert_eq!(ts[1], Tok::FloatLit(2.0));
        assert_eq!(ts[2], Tok::IntLit(3));
    }

    #[test]
    fn maximal_munch() {
        let ts = kinds("a->b a<<=2 a<=b a<b x++ +");
        let ps: Vec<&str> = ts
            .iter()
            .filter_map(|t| if let Tok::Punct(p) = t { Some(*p) } else { None })
            .collect();
        assert_eq!(ps, vec!["->", "<<=", "<=", "<", "++", "+"]);
    }

    #[test]
    fn comments_and_positions() {
        let toks = lex("int /* c1 */ x;\n// c2\ny;").unwrap();
        assert_eq!(toks[1].pos, Pos { line: 1, col: 14 });
        assert_eq!(toks[3].pos, Pos { line: 3, col: 1 });
    }

    #[test]
    fn position_tracking_matches_fig1() {
        // "static int a[20];" on line 2, a in column 13 (1-based), like the
        // paper's /sourcey 2 /sourcex 13 for a.
        let src = "void fib(int n)\n{ static int a[20];";
        let toks = lex(src).unwrap();
        let a = toks.iter().find(|t| t.tok == Tok::Ident("a".into())).unwrap();
        assert_eq!(a.pos.line, 2);
        assert_eq!(a.pos.col, 14);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'a").is_err());
        assert!(lex("/* no end").is_err());
        assert!(lex("int @ x;").is_err());
    }
}
