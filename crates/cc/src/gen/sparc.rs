//! SPARC back end: a frame-pointer RISC with condition-code branches.
//!
//! The frame discipline is like the MIPS one, but a real frame pointer
//! (`%fp` = the caller's sp) is maintained, so the debugger can walk the
//! stack without a runtime procedure table — which is why the VAX, SPARC,
//! and 68020 share one machine-independent linker interface in the paper
//! while the MIPS needs its own.

use crate::asm::{AsmFn, AsmIns, FrameInfo};
use crate::ir::{FuncIr, Storage};
use crate::lex::{CcError, CcResult, Pos};
use crate::types::{Sfx, Type};
use ldb_machine::{arch, AluOp, Cond, FltSize, MachineData, MemSize, Op};

use super::mips::{reg_eligible, uses_regvar};
use super::{align_to, TargetGen, Val};

/// The SPARC code generator.
pub struct SparcGen;

const SP: u8 = 14;
const FP: u8 = 30;
const RA: u8 = 15; // %o7
const REGVARS: [u8; 8] = [16, 17, 18, 19, 20, 21, 22, 23]; // %l0-%l7
const ISCRATCH: [u8; 9] = [1, 2, 3, 4, 5, 24, 25, 26, 27];
const FSCRATCH: [u8; 7] = [1, 2, 3, 4, 5, 6, 7];
const ARG_REGS: [u8; 6] = [8, 9, 10, 11, 12, 13]; // %o0-%o5

impl TargetGen for SparcGen {
    fn data(&self) -> &'static MachineData {
        &arch::SPARC
    }

    fn iscratch(&self) -> &'static [u8] {
        &ISCRATCH
    }

    fn fscratch(&self) -> &'static [u8] {
        &FSCRATCH
    }

    fn regvar_regs(&self) -> &'static [u8] {
        &REGVARS
    }

    fn layout(&self, f: &mut FuncIr, outgoing: u32, spill_bytes: u32) -> FrameInfo {
        let mut slot = 0u32;
        for p in &mut f.params {
            let sz = if p.ty == Type::Double { 8 } else { 4 };
            slot = align_to(slot, sz);
            p.storage = Storage::Frame(slot as i32);
            slot += sz;
        }
        let mut next_rv = 0usize;
        let mut save_mask = 0u32;
        let mut acc = align_to(outgoing.max(16), 4);
        let spill_sp = acc;
        acc += spill_bytes;
        let mut local_sp: Vec<(usize, u32)> = Vec::new();
        for (idx, l) in f.locals.iter_mut().enumerate() {
            if l.storage == Storage::Unassigned {
                if reg_eligible(&l.ty, l.addr_taken) && next_rv < REGVARS.len() {
                    let r = REGVARS[next_rv];
                    next_rv += 1;
                    save_mask |= 1 << r;
                    l.storage = Storage::Reg(r);
                    continue;
                }
                let a = l.ty.align().max(4);
                acc = align_to(acc, a);
                local_sp.push((idx, acc));
                acc += l.ty.size().max(4);
            }
        }
        let save_sp = align_to(acc, 4);
        acc = save_sp + 4 * next_rv as u32;
        // ra at size-8, old fp at size-4.
        let ra_sp = align_to(acc, 4);
        let size = align_to(ra_sp + 8, 8);
        for (idx, sp_off) in local_sp {
            f.locals[idx].storage = Storage::Frame(sp_off as i32 - size as i32);
        }
        FrameInfo {
            size,
            save_mask,
            save_offset: size - save_sp,
            ra_offset: Some(8), // fp - 8
            spill_base: spill_sp as i32 - size as i32,
        }
    }

    fn prologue(&self, a: &mut AsmFn, f: &FuncIr) {
        let size = a.frame.size;
        a.op(Op::AluI { op: AluOp::Add, rd: SP, rs: SP, imm: -(size as i32) as i16 });
        a.op(Op::Store { size: MemSize::B4, rs: FP, base: SP, off: (size - 4) as i16 });
        a.op(Op::AluI { op: AluOp::Add, rd: FP, rs: SP, imm: size as i16 });
        a.op(Op::Store { size: MemSize::B4, rs: RA, base: FP, off: -8 });
        let save_sp = size - a.frame.save_offset;
        let mut k = 0u32;
        for &r in &REGVARS {
            if uses_regvar(f, r) {
                a.op(Op::Store {
                    size: MemSize::B4,
                    rs: r,
                    base: SP,
                    off: (save_sp + 4 * k) as i16,
                });
                k += 1;
            }
        }
        let mut int_args = 0usize;
        for p in &f.params {
            let Storage::Frame(off) = p.storage else { continue };
            if p.ty == Type::Double || p.ty == Type::Float {
                continue;
            }
            if int_args < ARG_REGS.len() {
                a.op(Op::Store {
                    size: MemSize::B4,
                    rs: ARG_REGS[int_args],
                    base: FP,
                    off: off as i16,
                });
                int_args += 1;
            }
        }
    }

    fn epilogue(&self, a: &mut AsmFn, f: &FuncIr) {
        let size = a.frame.size;
        let save_sp = size - a.frame.save_offset;
        let mut k = 0u32;
        for &r in &REGVARS {
            if uses_regvar(f, r) {
                a.op(Op::Load {
                    size: MemSize::B4,
                    signed: true,
                    rd: r,
                    base: SP,
                    off: (save_sp + 4 * k) as i16,
                });
                k += 1;
            }
        }
        a.op(Op::Load { size: MemSize::B4, signed: true, rd: RA, base: FP, off: -8 });
        // Restore sp/fp through a scratch so ordering is safe.
        let tmp = ISCRATCH[0];
        a.op(Op::Load { size: MemSize::B4, signed: true, rd: tmp, base: FP, off: -4 });
        a.op(Op::Mov { rd: SP, rs: FP });
        a.op(Op::Mov { rd: FP, rs: tmp });
        a.op(Op::JumpReg { rs: RA });
    }

    fn slot(&self, _frame: &FrameInfo, off: i32) -> (u8, i32) {
        (FP, off)
    }

    fn branch(&self, a: &mut AsmFn, cond: Cond, rs: u8, rt: u8, label: u32) {
        a.op(Op::Cmp { rs, rt });
        a.push(AsmIns::Bcc { cond, label });
    }

    fn branch_zero(&self, a: &mut AsmFn, rs: u8, if_zero: bool, label: u32) {
        a.op(Op::Cmp { rs, rt: 0 }); // %g0
        let cond = if if_zero { Cond::Eq } else { Cond::Ne };
        a.push(AsmIns::Bcc { cond, label });
    }

    fn emit_call(
        &self,
        a: &mut AsmFn,
        name: &str,
        args: &[(Val, Sfx)],
        _frame: &FrameInfo,
    ) -> CcResult<()> {
        let mut slot = 0u32;
        let mut int_args = 0usize;
        for (v, sfx) in args {
            let sz = if *sfx == Sfx::D { 8u32 } else { 4 };
            slot = align_to(slot, sz);
            match v {
                Val::F(fr) => {
                    let size = if *sfx == Sfx::F { FltSize::F4 } else { FltSize::F8 };
                    a.op(Op::FStore { size, fs: *fr, base: SP, off: slot as i16 });
                }
                Val::I(r) => {
                    if int_args >= ARG_REGS.len() {
                        return Err(CcError {
                            pos: Pos::default(),
                            msg: "too many integer arguments for the SPARC convention".into(),
                        });
                    }
                    a.op(Op::Mov { rd: ARG_REGS[int_args], rs: *r });
                    int_args += 1;
                }
            }
            slot += sz;
        }
        a.push(AsmIns::CallSym(name.to_string()));
        Ok(())
    }

    fn load_const(&self, a: &mut AsmFn, rd: u8, v: i64) {
        let v = v as i32;
        if i16::try_from(v).is_ok() {
            a.op(Op::LoadImm { rd, imm: v });
        } else {
            a.op(Op::LoadUpper { rd, imm: (v as u32 >> 16) as u16 });
            let lo = (v as u32 & 0xffff) as i16;
            if lo != 0 {
                a.op(Op::AluI { op: AluOp::Or, rd, rs: rd, imm: lo });
            }
        }
    }
}
