//! Code generation: a machine-independent tree evaluator parameterized by
//! a small per-target trait, in the spirit of lcc's code-generation
//! interface. The per-target modules supply conventions (frames, calls,
//! branches); everything else is shared.

pub mod m68k;
pub mod mips;
pub mod sparc;
pub mod vax;

use crate::asm::{AsmFn, AsmIns, FrameInfo};
use crate::ir::*;
use crate::lex::{CcError, CcResult, Pos};
use crate::types::Sfx;
use ldb_machine::{AluOp, Arch, Cond, FltSize, MachineData, MemSize, Op, Service};

/// Compilation options that affect code generation.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenOpts {
    /// Compile for debugging: plant a no-op at every stopping point.
    pub debug: bool,
    /// Disable the MIPS delay-slot filler entirely (for ablation).
    pub no_schedule: bool,
    /// Evaluate operands naively left-to-right instead of in
    /// Sethi-Ullman order (for ablation).
    pub naive_order: bool,
}

/// The per-target conventions.
pub trait TargetGen {
    /// Machine description.
    fn data(&self) -> &'static MachineData;
    /// Caller-saved integer scratch registers.
    fn iscratch(&self) -> &'static [u8];
    /// Caller-saved floating scratch registers.
    fn fscratch(&self) -> &'static [u8];
    /// Callee-saved registers available for register variables.
    fn regvar_regs(&self) -> &'static [u8];
    /// Integer return-value register.
    fn rv(&self) -> u8 {
        self.data().rv
    }
    /// Floating return-value register.
    fn frv(&self) -> u8 {
        0
    }
    /// Assign storage to params/locals and compute the frame layout.
    /// `outgoing` is the number of bytes of stack arguments any call in the
    /// body needs; `spill_bytes` is the scratch spill area size.
    fn layout(&self, f: &mut FuncIr, outgoing: u32, spill_bytes: u32) -> FrameInfo;
    /// Emit the prologue (after the function label).
    fn prologue(&self, a: &mut AsmFn, f: &FuncIr);
    /// Emit the epilogue (after the epilogue label).
    fn epilogue(&self, a: &mut AsmFn, f: &FuncIr);
    /// Translate a frame-base-relative offset to (base register,
    /// displacement) for load/store addressing.
    fn slot(&self, frame: &FrameInfo, off: i32) -> (u8, i32);
    /// Conditional branch on two registers (signed comparison).
    fn branch(&self, a: &mut AsmFn, cond: Cond, rs: u8, rt: u8, label: u32);
    /// Branch when `rs` is (non)zero.
    fn branch_zero(&self, a: &mut AsmFn, rs: u8, if_zero: bool, label: u32);
    /// Emit a call with the argument values already in scratch registers.
    /// Responsible for marshaling (arg registers / pushes), the call, and
    /// stack cleanup.
    fn emit_call(
        &self,
        a: &mut AsmFn,
        name: &str,
        args: &[(Val, Sfx)],
        frame: &FrameInfo,
    ) -> CcResult<()>;
    /// Load a 32-bit constant.
    fn load_const(&self, a: &mut AsmFn, rd: u8, v: i64);
}

/// A value in a scratch register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    /// Integer scratch register.
    I(u8),
    /// Floating scratch register.
    F(u8),
}

/// Pick the target generator for an architecture.
pub fn target_gen(arch: Arch) -> &'static dyn TargetGen {
    match arch {
        Arch::Mips => &mips::MipsGen,
        Arch::Sparc => &sparc::SparcGen,
        Arch::M68k => &m68k::M68kGen,
        Arch::Vax => &vax::VaxGen,
    }
}

/// Generate assembler form for one function.
///
/// # Errors
/// Expressions too complex for the scratch set, too many register
/// arguments, and other per-target limits.
pub fn gen_function(
    arch: Arch,
    f: &mut FuncIr,
    opts: GenOpts,
) -> CcResult<AsmFn> {
    let link_name = format!("_{}", f.name);
    gen_function_named(arch, f, opts, &link_name)
}

/// As [`gen_function`] with an explicit linker name (static functions get
/// unit-qualified names so multi-unit programs link).
pub fn gen_function_named(
    arch: Arch,
    f: &mut FuncIr,
    opts: GenOpts,
    link_name: &str,
) -> CcResult<AsmFn> {
    let tg = target_gen(arch);
    // Compute the outgoing-argument area from the calls in the body.
    let outgoing = max_outgoing(tg, &f.body);
    let spill_bytes = tg.iscratch().len() as u32 * 4 + tg.fscratch().len() as u32 * 8;
    let frame = tg.layout(f, outgoing, spill_bytes);
    let mut a = AsmFn {
        name: f.name.clone(),
        link_name: link_name.to_string(),
        items: Vec::new(),
        frame,
        float_consts: Vec::new(),
        stop_count: f.stops.len() as u32,
    };
    tg.prologue(&mut a, f);
    let mut g = Gen {
        tg,
        f,
        ifree: tg.iscratch().to_vec(),
        ffree: tg.fscratch().to_vec(),
        labels: 0x4000_0000,
        debug: opts.debug,
        naive_order: opts.naive_order,
        fconsts: 0,
    };
    let body = f.body.clone();
    for s in &body {
        g.stmt(&mut a, s)?;
    }
    a.push(AsmIns::Label(EPILOGUE));
    tg.epilogue(&mut a, f);
    Ok(a)
}

/// The label id reserved for the epilogue.
pub const EPILOGUE: u32 = 0;

fn max_outgoing(_tg: &dyn TargetGen, body: &[StmtIr]) -> u32 {
    fn tree_out(t: &Tree, max: &mut u32) {
        match t {
            Tree::Call(_, _, args) => {
                let mut bytes = 0u32;
                for a in args {
                    bytes = align_to(bytes, if a.suffix() == Sfx::D { 8 } else { 4 });
                    bytes += if a.suffix() == Sfx::D { 8 } else { 4 };
                    tree_out(a, max);
                }
                // RISC targets reserve at least four words.
                *max = (*max).max(bytes.max(16));
            }
            Tree::Indir(_, t) | Tree::Un(_, _, t) | Tree::Cvt(_, _, t) => tree_out(t, max),
            Tree::Asgn(_, a, b) | Tree::Bin(_, _, a, b) => {
                tree_out(a, max);
                tree_out(b, max);
            }
            _ => {}
        }
    }
    let mut max = 0;
    for s in body {
        match s {
            StmtIr::Expr(t) | StmtIr::CJump(t, _, _) | StmtIr::Ret(Some(t)) => {
                tree_out(t, &mut max)
            }
            _ => {}
        }
    }
    max
}

/// Sethi-Ullman register-need estimate for an expression tree: how many
/// scratch registers its evaluation holds at peak, assuming optimal
/// operand ordering. Calls are pessimized so they evaluate first (they
/// clobber scratches, forcing spills of anything held across them).
fn reg_need(t: &Tree) -> u32 {
    match t {
        Tree::Cnst(..) | Tree::Global(_) | Tree::Local(_) | Tree::Param(_) => 1,
        Tree::Indir(_, inner) | Tree::Un(_, _, inner) | Tree::Cvt(_, _, inner) => {
            reg_need(inner).max(1)
        }
        Tree::Bin(_, _, l, r) | Tree::Asgn(_, l, r) => {
            let (nl, nr) = (reg_need(l), reg_need(r));
            if nl == nr {
                nl + 1
            } else {
                nl.max(nr)
            }
        }
        Tree::Call(..) => 16,
    }
}

/// Round `v` up to a multiple of `a`.
pub fn align_to(v: u32, a: u32) -> u32 {
    v.div_ceil(a) * a
}

struct Gen<'a> {
    tg: &'a dyn TargetGen,
    f: &'a FuncIr,
    ifree: Vec<u8>,
    ffree: Vec<u8>,
    labels: u32,
    debug: bool,
    naive_order: bool,
    fconsts: u32,
}

/// An addressing mode for a memory operand.
enum Place {
    /// base register + displacement; `owned` marks a scratch to free.
    Mem { base: u8, disp: i32, owned: bool },
    /// A register-resident variable.
    RegVar(u8),
}

fn gerr<T>(msg: impl Into<String>) -> CcResult<T> {
    Err(CcError { pos: Pos::default(), msg: msg.into() })
}

impl<'a> Gen<'a> {
    fn fresh_label(&mut self) -> u32 {
        self.labels += 1;
        self.labels
    }

    fn alloc_i(&mut self) -> CcResult<u8> {
        // Round-robin (allocate at the front, free to the back): adjacent
        // expressions use distinct scratch registers, which keeps false
        // dependences from blocking the MIPS delay-slot scheduler.
        if self.ifree.is_empty() {
            return gerr("expression too complex (out of integer scratch registers)");
        }
        Ok(self.ifree.remove(0))
    }

    fn alloc_f(&mut self) -> CcResult<u8> {
        match self.ffree.pop() {
            Some(r) => Ok(r),
            None => gerr("expression too complex (out of float scratch registers)"),
        }
    }

    fn free(&mut self, v: Val) {
        match v {
            Val::I(r) => self.ifree.push(r),
            Val::F(r) => self.ffree.push(r),
        }
    }

    fn busy_i(&self) -> Vec<u8> {
        self.tg.iscratch().iter().copied().filter(|r| !self.ifree.contains(r)).collect()
    }

    fn busy_f(&self) -> Vec<u8> {
        self.tg.fscratch().iter().copied().filter(|r| !self.ffree.contains(r)).collect()
    }

    // ----- statements -----

    fn stmt(&mut self, a: &mut AsmFn, s: &StmtIr) -> CcResult<()> {
        match s {
            StmtIr::Stop(idx) => {
                a.push(AsmIns::StopPoint(*idx));
                if self.debug {
                    a.op(Op::Nop);
                }
                Ok(())
            }
            StmtIr::Label(l) => {
                a.push(AsmIns::Label(*l));
                Ok(())
            }
            StmtIr::Jump(l) => {
                a.push(AsmIns::Jmp { label: *l });
                Ok(())
            }
            StmtIr::Expr(t) => {
                let v = self.eval(a, t)?;
                if let Some(v) = v {
                    self.free(v);
                }
                Ok(())
            }
            StmtIr::CJump(t, when, l) => self.cjump(a, t, *when, *l),
            StmtIr::Ret(None) => {
                a.push(AsmIns::Jmp { label: EPILOGUE });
                Ok(())
            }
            StmtIr::Ret(Some(t)) => {
                let v = self.eval_value(a, t)?;
                match v {
                    Val::I(r) => {
                        let rv = self.tg.rv();
                        if r != rv {
                            a.op(Op::Mov { rd: rv, rs: r });
                        }
                    }
                    Val::F(r) => {
                        let frv = self.tg.frv();
                        if r != frv {
                            a.op(Op::FMov { fd: frv, fs: r });
                        }
                    }
                }
                self.free(v);
                a.push(AsmIns::Jmp { label: EPILOGUE });
                Ok(())
            }
        }
    }

    // ----- condition lowering -----

    fn cjump(&mut self, a: &mut AsmFn, t: &Tree, when: bool, label: u32) -> CcResult<()> {
        if let Tree::Bin(op, sfx, lhs, rhs) = t {
            if op.is_cmp() {
                let cond = cond_of(*op);
                let cond = if when { cond } else { cond.negate() };
                if sfx.is_float() {
                    let (l, r) = self.eval_pair(a, lhs, rhs)?;
                    let (Val::F(fl), Val::F(fr)) = (l, r) else {
                        return gerr("float compare of non-float values");
                    };
                    let rd = self.alloc_i()?;
                    // Keep `when` inside the FCmp; branch on nonzero.
                    a.op(Op::FCmp { cond, rd, fs: fl, ft: fr });
                    self.tg.branch_zero(a, rd, false, label);
                    self.ifree.push(rd);
                    self.free(l);
                    self.free(r);
                    return Ok(());
                }
                let (l, r) = self.eval_pair(a, lhs, rhs)?;
                let (Val::I(rl), Val::I(rr)) = (l, r) else {
                    return gerr("integer compare of non-integer values");
                };
                if sfx.is_unsigned() && !matches!(cond, Cond::Eq | Cond::Ne) {
                    let rd = self.alloc_i()?;
                    self.set_unsigned_cmp(a, cond, rd, rl, rr);
                    self.tg.branch_zero(a, rd, false, label);
                    self.ifree.push(rd);
                } else {
                    self.tg.branch(a, cond, rl, rr, label);
                }
                self.free(l);
                self.free(r);
                return Ok(());
            }
        }
        // Plain value: branch on (non)zero.
        let v = self.eval_value(a, t)?;
        match v {
            Val::I(r) => self.tg.branch_zero(a, r, !when, label),
            Val::F(_) => {
                // Compare against 0.0.
                let zf = self.alloc_f()?;
                let zi = self.alloc_i()?;
                self.tg.load_const(a, zi, 0);
                a.op(Op::CvtIF { fd: zf, rs: zi });
                let rd = self.alloc_i()?;
                a.op(Op::FCmp { cond: Cond::Ne, rd, fs: freg(v), ft: zf });
                self.tg.branch_zero(a, rd, !when, label);
                self.ifree.push(rd);
                self.ifree.push(zi);
                self.ffree.push(zf);
            }
        }
        self.free(v);
        Ok(())
    }

    /// rd = (rs cond rt) for unsigned orderings, via Sltu.
    fn set_unsigned_cmp(&mut self, a: &mut AsmFn, cond: Cond, rd: u8, rs: u8, rt: u8) {
        match cond {
            Cond::Lt => a.op(Op::Alu { op: AluOp::Sltu, rd, rs, rt }),
            Cond::Gt => a.op(Op::Alu { op: AluOp::Sltu, rd, rs: rt, rt: rs }),
            Cond::Ge => {
                a.op(Op::Alu { op: AluOp::Sltu, rd, rs, rt });
                a.op(Op::AluI { op: AluOp::Xor, rd, rs: rd, imm: 1 });
            }
            Cond::Le => {
                a.op(Op::Alu { op: AluOp::Sltu, rd, rs: rt, rt: rs });
                a.op(Op::AluI { op: AluOp::Xor, rd, rs: rd, imm: 1 });
            }
            Cond::Eq | Cond::Ne => unreachable!("handled as signed"),
        }
    }

    /// rd = (rs cond rt), signed, via branches (works on every target).
    fn set_cmp(&mut self, a: &mut AsmFn, cond: Cond, rd: u8, rs: u8, rt: u8) {
        let ltrue = self.fresh_label();
        let lend = self.fresh_label();
        self.tg.branch(a, cond, rs, rt, ltrue);
        self.tg.load_const(a, rd, 0);
        a.push(AsmIns::Jmp { label: lend });
        a.push(AsmIns::Label(ltrue));
        self.tg.load_const(a, rd, 1);
        a.push(AsmIns::Label(lend));
    }

    // ----- expression evaluation -----

    /// Evaluate for value; void trees are an error here.
    fn eval_value(&mut self, a: &mut AsmFn, t: &Tree) -> CcResult<Val> {
        match self.eval(a, t)? {
            Some(v) => Ok(v),
            None => gerr("void value used"),
        }
    }

    /// Evaluate a tree; `None` for void calls.
    fn eval(&mut self, a: &mut AsmFn, t: &Tree) -> CcResult<Option<Val>> {
        match t {
            Tree::Cnst(sfx, c) => match (sfx.is_float(), c) {
                (true, Const::F(v)) => {
                    let fd = self.alloc_f()?;
                    self.float_const(a, fd, *v)?;
                    Ok(Some(Val::F(fd)))
                }
                (true, Const::I(v)) => {
                    let fd = self.alloc_f()?;
                    self.float_const(a, fd, *v as f64)?;
                    Ok(Some(Val::F(fd)))
                }
                (false, Const::I(v)) => {
                    let rd = self.alloc_i()?;
                    self.tg.load_const(a, rd, *v);
                    Ok(Some(Val::I(rd)))
                }
                (false, Const::F(v)) => {
                    let rd = self.alloc_i()?;
                    self.tg.load_const(a, rd, *v as i64);
                    Ok(Some(Val::I(rd)))
                }
            },
            Tree::Global(name) => {
                let rd = self.alloc_i()?;
                a.push(AsmIns::LoadAddr { rd, sym: name.clone(), off: 0 });
                Ok(Some(Val::I(rd)))
            }
            Tree::Local(_) | Tree::Param(_) => {
                let place = self.place_of(a, t)?;
                match place {
                    Place::Mem { base, disp, owned } => {
                        let rd = if owned { base } else { self.alloc_i()? };
                        if disp != 0 || !owned {
                            let imm = i16::try_from(disp)
                                .map_err(|_| CcError {
                                    pos: Pos::default(),
                                    msg: format!("frame offset {disp} too large"),
                                })?;
                            a.op(Op::AluI { op: AluOp::Add, rd, rs: base, imm });
                        }
                        Ok(Some(Val::I(rd)))
                    }
                    Place::RegVar(_) => gerr("address of a register variable"),
                }
            }
            Tree::Indir(sfx, addr) => {
                let place = self.place_of(a, addr)?;
                match place {
                    Place::RegVar(r) => {
                        let rd = self.alloc_i()?;
                        a.op(Op::Mov { rd, rs: r });
                        Ok(Some(Val::I(rd)))
                    }
                    Place::Mem { base, disp, owned } => {
                        let disp16 = i16::try_from(disp).map_err(|_| CcError {
                            pos: Pos::default(),
                            msg: "displacement too large".into(),
                        })?;
                        let v = if sfx.is_float() {
                            let fd = self.alloc_f()?;
                            let size =
                                if *sfx == Sfx::F { FltSize::F4 } else { FltSize::F8 };
                            a.op(Op::FLoad { size, fd, base, off: disp16 });
                            Val::F(fd)
                        } else {
                            let rd = if owned { base } else { self.alloc_i()? };
                            let (size, signed) = mem_kind(*sfx);
                            a.op(Op::Load { size, signed, rd, base, off: disp16 });
                            if owned {
                                return Ok(Some(Val::I(rd)));
                            }
                            Val::I(rd)
                        };
                        if owned {
                            self.ifree.push(base);
                        }
                        Ok(Some(v))
                    }
                }
            }
            Tree::Asgn(sfx, addr, val) => {
                let v = self.eval_value(a, val)?;
                let place = self.place_of(a, addr)?;
                match place {
                    Place::RegVar(r) => {
                        let Val::I(rs) = v else { return gerr("float into register variable") };
                        a.op(Op::Mov { rd: r, rs });
                    }
                    Place::Mem { base, disp, owned } => {
                        let disp16 = i16::try_from(disp).map_err(|_| CcError {
                            pos: Pos::default(),
                            msg: "displacement too large".into(),
                        })?;
                        match v {
                            Val::F(fs) => {
                                let size =
                                    if *sfx == Sfx::F { FltSize::F4 } else { FltSize::F8 };
                                a.op(Op::FStore { size, fs, base, off: disp16 });
                            }
                            Val::I(rs) => {
                                let (size, _) = mem_kind(*sfx);
                                a.op(Op::Store { size, rs, base, off: disp16 });
                            }
                        }
                        if owned {
                            self.ifree.push(base);
                        }
                    }
                }
                Ok(Some(v))
            }
            Tree::Bin(op, sfx, lhs, rhs) => self.bin(a, *op, *sfx, lhs, rhs).map(Some),
            Tree::Un(op, sfx, inner) => {
                let v = self.eval_value(a, inner)?;
                match (op, v) {
                    (UnIr::Neg, Val::F(fs)) => {
                        a.op(Op::FNeg { fd: fs, fs });
                        Ok(Some(v))
                    }
                    (UnIr::Neg, Val::I(rs)) => {
                        let _ = sfx;
                        if let Some(z) = self.tg.data().zero_reg {
                            a.op(Op::Alu { op: AluOp::Sub, rd: rs, rs: z, rt: rs });
                        } else {
                            // No zero register: multiply by -1 (one
                            // instruction, no scratch pressure).
                            a.op(Op::AluI { op: AluOp::Mul, rd: rs, rs, imm: -1 });
                        }
                        Ok(Some(v))
                    }
                    (UnIr::Bcom, Val::I(rs)) => {
                        // Logical immediates zero-extend, so synthesize
                        // ~x as -x - 1 (no scratch pressure).
                        if let Some(z) = self.tg.data().zero_reg {
                            a.op(Op::Alu { op: AluOp::Sub, rd: rs, rs: z, rt: rs });
                        } else {
                            a.op(Op::AluI { op: AluOp::Mul, rd: rs, rs, imm: -1 });
                        }
                        a.op(Op::AluI { op: AluOp::Add, rd: rs, rs, imm: -1 });
                        Ok(Some(v))
                    }
                    (UnIr::Bcom, Val::F(_)) => gerr("~ on a float"),
                }
            }
            Tree::Cvt(from, to, inner) => {
                let v = self.eval_value(a, inner)?;
                self.convert(a, v, *from, *to).map(Some)
            }
            Tree::Call(sfx, name, args) => self.call(a, *sfx, name, args),
        }
    }

    fn float_const(&mut self, a: &mut AsmFn, fd: u8, v: f64) -> CcResult<()> {
        // Small integral values convert from an immediate; others come from
        // the literal pool.
        if v == v.trunc() && (-32768.0..32768.0).contains(&v) {
            let ri = self.alloc_i()?;
            self.tg.load_const(a, ri, v as i64);
            a.op(Op::CvtIF { fd, rs: ri });
            self.ifree.push(ri);
            return Ok(());
        }
        self.fconsts += 1;
        let label = format!("Lf.{}.{}", a.link_name, self.fconsts);
        a.float_consts.push((label.clone(), v));
        let ra = self.alloc_i()?;
        a.push(AsmIns::LoadAddr { rd: ra, sym: label, off: 0 });
        a.op(Op::FLoad { size: FltSize::F8, fd, base: ra, off: 0 });
        self.ifree.push(ra);
        Ok(())
    }

    /// Resolve an address tree to an addressing mode.
    fn place_of(&mut self, a: &mut AsmFn, addr: &Tree) -> CcResult<Place> {
        match addr {
            Tree::Local(id) => {
                let var = &self.f.locals[*id as usize];
                self.place_of_storage(a, &var.storage)
            }
            Tree::Param(id) => {
                let var = &self.f.params[*id as usize];
                self.place_of_storage(a, &var.storage)
            }
            Tree::Global(name) => {
                let rd = self.alloc_i()?;
                a.push(AsmIns::LoadAddr { rd, sym: name.clone(), off: 0 });
                Ok(Place::Mem { base: rd, disp: 0, owned: true })
            }
            // base + constant folds into the displacement.
            Tree::Bin(BinIr::Add, Sfx::P, base, rhs) => {
                if let Tree::Cnst(_, Const::I(k)) = rhs.as_ref() {
                    if let Ok(k32) = i32::try_from(*k) {
                        let inner = self.place_of(a, base)?;
                        if let Place::Mem { base, disp, owned } = inner {
                            if let Some(d2) = disp.checked_add(k32) {
                                if i16::try_from(d2).is_ok() {
                                    return Ok(Place::Mem { base, disp: d2, owned });
                                }
                            }
                            // Displacement too large: compute explicitly.
                            let rd = if owned { base } else { self.alloc_i()? };
                            let rk = self.alloc_i()?;
                            self.tg.load_const(a, rk, i64::from(disp) + *k);
                            a.op(Op::Alu { op: AluOp::Add, rd, rs: base, rt: rk });
                            self.ifree.push(rk);
                            return Ok(Place::Mem { base: rd, disp: 0, owned: true });
                        }
                        unreachable!("place_of returned RegVar for a P-add base");
                    }
                }
                let v = self.eval_value(a, addr)?;
                let Val::I(r) = v else { return gerr("float used as address") };
                Ok(Place::Mem { base: r, disp: 0, owned: true })
            }
            _ => {
                let v = self.eval_value(a, addr)?;
                let Val::I(r) = v else { return gerr("float used as address") };
                Ok(Place::Mem { base: r, disp: 0, owned: true })
            }
        }
    }

    fn place_of_storage(&mut self, a: &mut AsmFn, st: &Storage) -> CcResult<Place> {
        match st {
            Storage::Reg(r) => Ok(Place::RegVar(*r)),
            Storage::Frame(off) => {
                let (base, disp) = self.tg.slot(&a.frame, *off);
                Ok(Place::Mem { base, disp, owned: false })
            }
            Storage::Static(name) => {
                let rd = self.alloc_i()?;
                a.push(AsmIns::LoadAddr { rd, sym: name.clone(), off: 0 });
                Ok(Place::Mem { base: rd, disp: 0, owned: true })
            }
            Storage::Unassigned => gerr("storage was never assigned"),
        }
    }

    /// Evaluate two operands in Sethi-Ullman order: the side that needs
    /// more scratch registers first, so the other side's single live
    /// value does not sit across the expensive computation. Returns the
    /// values in (lhs, rhs) roles regardless of evaluation order.
    fn eval_pair(&mut self, a: &mut AsmFn, lhs: &Tree, rhs: &Tree) -> CcResult<(Val, Val)> {
        if !self.naive_order && reg_need(rhs) > reg_need(lhs) {
            let r = self.eval_value(a, rhs)?;
            let l = self.eval_value(a, lhs)?;
            Ok((l, r))
        } else {
            let l = self.eval_value(a, lhs)?;
            let r = self.eval_value(a, rhs)?;
            Ok((l, r))
        }
    }

    fn bin(
        &mut self,
        a: &mut AsmFn,
        op: BinIr,
        sfx: Sfx,
        lhs: &Tree,
        rhs: &Tree,
    ) -> CcResult<Val> {
        // Comparisons materialize 0/1.
        if op.is_cmp() {
            let cond = cond_of(op);
            if sfx.is_float() {
                let (l, r) = self.eval_pair(a, lhs, rhs)?;
                let rd = self.alloc_i()?;
                a.op(Op::FCmp { cond, rd, fs: freg(l), ft: freg(r) });
                self.free(l);
                self.free(r);
                return Ok(Val::I(rd));
            }
            let (l, r) = self.eval_pair(a, lhs, rhs)?;
            let (Val::I(rl), Val::I(rr)) = (l, r) else {
                return gerr("integer compare of floats");
            };
            let rd = self.alloc_i()?;
            if sfx.is_unsigned() && !matches!(cond, Cond::Eq | Cond::Ne) {
                self.set_unsigned_cmp(a, cond, rd, rl, rr);
            } else {
                self.set_cmp(a, cond, rd, rl, rr);
            }
            self.free(l);
            self.free(r);
            return Ok(Val::I(rd));
        }
        if sfx.is_float() {
            let (l, r) = self.eval_pair(a, lhs, rhs)?;
            let fop = match op {
                BinIr::Add => ldb_machine::FaluOp::Add,
                BinIr::Sub => ldb_machine::FaluOp::Sub,
                BinIr::Mul => ldb_machine::FaluOp::Mul,
                BinIr::Div => ldb_machine::FaluOp::Div,
                other => return gerr(format!("float {other:?}")),
            };
            a.op(Op::FAlu { op: fop, fd: freg(l), fs: freg(l), ft: freg(r) });
            self.free(r);
            return Ok(l);
        }
        let aop = match op {
            BinIr::Add => AluOp::Add,
            BinIr::Sub => AluOp::Sub,
            BinIr::Mul => AluOp::Mul,
            BinIr::Div => AluOp::Div,
            BinIr::Mod => AluOp::Rem,
            BinIr::Band => AluOp::And,
            BinIr::Bor => AluOp::Or,
            BinIr::Bxor => AluOp::Xor,
            BinIr::Lsh => AluOp::Sll,
            BinIr::Rsh => {
                if sfx.is_unsigned() {
                    AluOp::Srl
                } else {
                    AluOp::Sra
                }
            }
            _ => unreachable!("comparisons handled above"),
        };
        // Constant right operand folds into an immediate form.
        if let Tree::Cnst(_, Const::I(k)) = rhs {
            let fits = i16::try_from(*k).is_ok();
            let imm_ok = matches!(
                aop,
                AluOp::Add | AluOp::Mul | AluOp::Sll | AluOp::Srl | AluOp::Sra
            ) || (matches!(aop, AluOp::And | AluOp::Or | AluOp::Xor) && *k >= 0);
            if fits && imm_ok {
                let l = self.eval_value(a, lhs)?;
                let Val::I(rl) = l else { return gerr("int op on float") };
                a.op(Op::AluI { op: aop, rd: rl, rs: rl, imm: *k as i16 });
                return Ok(l);
            }
            if aop == AluOp::Sub && i16::try_from(-*k).is_ok() {
                let l = self.eval_value(a, lhs)?;
                let Val::I(rl) = l else { return gerr("int op on float") };
                a.op(Op::AluI { op: AluOp::Add, rd: rl, rs: rl, imm: (-*k) as i16 });
                return Ok(l);
            }
        }
        let (l, r) = self.eval_pair(a, lhs, rhs)?;
        let (Val::I(rl), Val::I(rr)) = (l, r) else { return gerr("int op on float") };
        a.op(Op::Alu { op: aop, rd: rl, rs: rl, rt: rr });
        self.free(r);
        Ok(l)
    }

    fn convert(&mut self, a: &mut AsmFn, v: Val, from: Sfx, to: Sfx) -> CcResult<Val> {
        match (from.is_float(), to.is_float()) {
            (true, true) => Ok(v), // F<->D: registers hold doubles
            (false, false) => {
                let Val::I(r) = v else { return gerr("conversion mismatch") };
                match to {
                    Sfx::C => {
                        a.op(Op::AluI { op: AluOp::Sll, rd: r, rs: r, imm: 24 });
                        a.op(Op::AluI { op: AluOp::Sra, rd: r, rs: r, imm: 24 });
                    }
                    Sfx::S => {
                        a.op(Op::AluI { op: AluOp::Sll, rd: r, rs: r, imm: 16 });
                        a.op(Op::AluI { op: AluOp::Sra, rd: r, rs: r, imm: 16 });
                    }
                    Sfx::Uc => a.op(Op::AluI { op: AluOp::And, rd: r, rs: r, imm: 0xff }),
                    Sfx::Us => {
                        // -1i16 zero-extends to 0xffff in logical
                        // immediates.
                        a.op(Op::AluI { op: AluOp::And, rd: r, rs: r, imm: -1 });
                    }
                    _ => {} // widening / same width: the register form is canonical
                }
                Ok(v)
            }
            (false, true) => {
                let Val::I(rs) = v else { return gerr("conversion mismatch") };
                let fd = self.alloc_f()?;
                a.op(Op::CvtIF { fd, rs });
                self.ifree.push(rs);
                Ok(Val::F(fd))
            }
            (true, false) => {
                let Val::F(fs) = v else { return gerr("conversion mismatch") };
                let rd = self.alloc_i()?;
                a.op(Op::CvtFI { rd, fs });
                self.ffree.push(fs);
                let v = Val::I(rd);
                // Narrow if the destination is sub-word.
                if matches!(to, Sfx::C | Sfx::Uc | Sfx::S | Sfx::Us) {
                    return self.convert(a, v, Sfx::I, to);
                }
                Ok(v)
            }
        }
    }

    fn call(
        &mut self,
        a: &mut AsmFn,
        sfx: Sfx,
        name: &str,
        args: &[Tree],
    ) -> CcResult<Option<Val>> {
        // Built-in host services expand inline.
        if let Some(service) = builtin_service(name) {
            let arg = args.first();
            let v = match arg {
                Some(t) => Some(self.eval_value(a, t)?),
                None => None,
            };
            match v {
                Some(Val::I(r)) => {
                    let sr = self.tg.data().syscall_arg_reg;
                    if r != sr {
                        a.op(Op::Mov { rd: sr, rs: r });
                    }
                }
                Some(Val::F(f)) if f != 0 => {
                    a.op(Op::FMov { fd: 0, fs: f });
                }
                Some(Val::F(_)) => {}
                None => {}
            }
            a.op(Op::Syscall(service.number()));
            if let Some(v) = v {
                self.free(v);
            }
            return Ok(None);
        }
        // Spill every busy scratch: the callee may clobber them.
        let busy_i = self.busy_i();
        let busy_f = self.busy_f();
        let spill = a.frame.spill_base;
        let mut saved = Vec::new();
        for (k, &r) in busy_i.iter().enumerate() {
            let off = spill + 4 * k as i32;
            let (base, disp) = self.tg.slot(&a.frame, off);
            a.op(Op::Store { size: MemSize::B4, rs: r, base, off: disp as i16 });
            saved.push((Val::I(r), off));
        }
        let ni = busy_i.len();
        for (k, &r) in busy_f.iter().enumerate() {
            let off = spill + 4 * ni as i32 + 8 * k as i32;
            let (base, disp) = self.tg.slot(&a.frame, off);
            a.op(Op::FStore { size: FltSize::F8, fs: r, base, off: disp as i16 });
            saved.push((Val::F(r), off));
        }
        // Evaluate the arguments (into scratches; the target moves them).
        let mut vals = Vec::with_capacity(args.len());
        for t in args {
            let v = self.eval_value(a, t)?;
            vals.push((v, t.suffix()));
        }
        let frame = a.frame.clone();
        self.tg.emit_call(a, name, &vals, &frame)?;
        for (v, _) in &vals {
            self.free(*v);
        }
        // Move the result out of the return register before restoring.
        let result = match sfx {
            Sfx::V => None,
            s if s.is_float() => {
                let fd = self.alloc_f()?;
                a.op(Op::FMov { fd, fs: self.tg.frv() });
                Some(Val::F(fd))
            }
            _ => {
                let rd = self.alloc_i()?;
                a.op(Op::Mov { rd, rs: self.tg.rv() });
                Some(Val::I(rd))
            }
        };
        // Restore the spilled scratches.
        for (v, off) in &saved {
            let (base, disp) = self.tg.slot(&a.frame, *off);
            match v {
                Val::I(r) => {
                    a.op(Op::Load {
                        size: MemSize::B4,
                        signed: true,
                        rd: *r,
                        base,
                        off: disp as i16,
                    });
                }
                Val::F(r) => {
                    a.op(Op::FLoad { size: FltSize::F8, fd: *r, base, off: disp as i16 });
                }
            }
        }
        Ok(result)
    }
}

/// Map a comparison operator to a branch condition.
pub fn cond_of(op: BinIr) -> Cond {
    match op {
        BinIr::Eq => Cond::Eq,
        BinIr::Ne => Cond::Ne,
        BinIr::Lt => Cond::Lt,
        BinIr::Le => Cond::Le,
        BinIr::Gt => Cond::Gt,
        BinIr::Ge => Cond::Ge,
        _ => unreachable!("not a comparison"),
    }
}

/// Memory access kind for an integer suffix.
pub fn mem_kind(sfx: Sfx) -> (MemSize, bool) {
    match sfx {
        Sfx::C => (MemSize::B1, true),
        Sfx::Uc => (MemSize::B1, false),
        Sfx::S => (MemSize::B2, true),
        Sfx::Us => (MemSize::B2, false),
        _ => (MemSize::B4, true),
    }
}

fn freg(v: Val) -> u8 {
    match v {
        Val::F(r) => r,
        Val::I(r) => r,
    }
}

/// The host service behind a builtin call name, if any.
pub fn builtin_service(name: &str) -> Option<Service> {
    Some(match name {
        "$putint" => Service::PutInt,
        "$putstr" => Service::PutStr,
        "$putchar" => Service::PutChar,
        "$putflt" => Service::PutFlt,
        "$exit" => Service::Exit,
        "$pause" => Service::Pause,
        _ => return None,
    })
}
