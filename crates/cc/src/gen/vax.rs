//! VAX back end: stack arguments, frame pointer, and an entry save mask —
//! the CISC conventions again, with the VAX's little-endian byte order and
//! byte-granular instructions downstream in the encoder.

use crate::asm::{AsmFn, AsmIns, FrameInfo};
use crate::ir::{FuncIr, Storage};
use crate::lex::CcResult;
use crate::types::{Sfx, Type};
use ldb_machine::{arch, AluOp, Cond, FltSize, MachineData, Op};

use super::mips::reg_eligible;
use super::{align_to, TargetGen, Val};

/// The VAX code generator.
pub struct VaxGen;

const SP: u8 = 14;
const FP: u8 = 13;
const REGVARS: [u8; 6] = [6, 7, 8, 9, 10, 11];
const ISCRATCH: [u8; 5] = [1, 2, 3, 4, 5];
const FSCRATCH: [u8; 7] = [1, 2, 3, 4, 5, 6, 7];

impl TargetGen for VaxGen {
    fn data(&self) -> &'static MachineData {
        &arch::VAX
    }

    fn iscratch(&self) -> &'static [u8] {
        &ISCRATCH
    }

    fn fscratch(&self) -> &'static [u8] {
        &FSCRATCH
    }

    fn regvar_regs(&self) -> &'static [u8] {
        &REGVARS
    }

    fn layout(&self, f: &mut FuncIr, _outgoing: u32, spill_bytes: u32) -> FrameInfo {
        let mut off = 8i32;
        for p in &mut f.params {
            let sz = if p.ty == Type::Double { 8 } else { 4 };
            p.storage = Storage::Frame(off);
            off += sz;
        }
        let mut next_rv = 0usize;
        let mut save_mask = 0u32;
        let mut acc = 0u32;
        for l in &mut f.locals {
            if l.storage == Storage::Unassigned {
                if reg_eligible(&l.ty, l.addr_taken) && next_rv < REGVARS.len() {
                    let r = REGVARS[next_rv];
                    next_rv += 1;
                    save_mask |= 1 << r;
                    l.storage = Storage::Reg(r);
                    continue;
                }
                let al = l.ty.align().max(4);
                acc = align_to(acc + l.ty.size().max(4), al);
                l.storage = Storage::Frame(-(acc as i32));
            }
        }
        let spill_base = -(acc as i32) - spill_bytes as i32;
        let size = align_to(acc + spill_bytes, 4);
        FrameInfo { size, save_mask, save_offset: size + 4, ra_offset: None, spill_base }
    }

    fn prologue(&self, a: &mut AsmFn, _f: &FuncIr) {
        a.op(Op::Link { fp: FP, size: a.frame.size as u16 });
        if a.frame.save_mask != 0 {
            a.op(Op::SaveRegs { mask: a.frame.save_mask as u16 });
        }
    }

    fn epilogue(&self, a: &mut AsmFn, _f: &FuncIr) {
        if a.frame.save_mask != 0 {
            a.op(Op::RestoreRegs { mask: a.frame.save_mask as u16 });
        }
        a.op(Op::Unlink { fp: FP });
        a.op(Op::Ret);
    }

    fn slot(&self, _frame: &FrameInfo, off: i32) -> (u8, i32) {
        (FP, off)
    }

    fn branch(&self, a: &mut AsmFn, cond: Cond, rs: u8, rt: u8, label: u32) {
        a.op(Op::Cmp { rs, rt });
        a.push(AsmIns::Bcc { cond, label });
    }

    fn branch_zero(&self, a: &mut AsmFn, rs: u8, if_zero: bool, label: u32) {
        a.op(Op::Tst { rs });
        let cond = if if_zero { Cond::Eq } else { Cond::Ne };
        a.push(AsmIns::Bcc { cond, label });
    }

    fn emit_call(
        &self,
        a: &mut AsmFn,
        name: &str,
        args: &[(Val, Sfx)],
        _frame: &FrameInfo,
    ) -> CcResult<()> {
        let mut bytes = 0i32;
        for (v, sfx) in args.iter().rev() {
            match v {
                Val::I(r) => {
                    a.op(Op::Push { rs: *r });
                    bytes += 4;
                }
                Val::F(fr) => {
                    let (size, sz) =
                        if *sfx == Sfx::F { (FltSize::F4, 4) } else { (FltSize::F8, 8) };
                    a.op(Op::AluI { op: AluOp::Add, rd: SP, rs: SP, imm: -sz });
                    a.op(Op::FStore { size, fs: *fr, base: SP, off: 0 });
                    bytes += sz as i32;
                }
            }
        }
        a.push(AsmIns::CallSym(name.to_string()));
        if bytes != 0 {
            a.op(Op::AluI { op: AluOp::Add, rd: SP, rs: SP, imm: bytes as i16 });
        }
        Ok(())
    }

    fn load_const(&self, a: &mut AsmFn, rd: u8, v: i64) {
        a.op(Op::LoadImm { rd, imm: v as i32 });
    }
}
