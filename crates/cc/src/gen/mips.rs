//! MIPS back end: the target with no frame pointer.
//!
//! The frame layout is o32-flavored: the outgoing-argument area sits at the
//! bottom of the frame, locals and saved registers above it, and the return
//! address at the top. The debugger's *virtual frame pointer* is
//! `sp + frame_size` — the caller's sp — and all `Storage::Frame` offsets
//! are relative to it (parameter homes at non-negative offsets, locals
//! negative). Because there is no frame pointer, the frame size must reach
//! the debugger through the runtime procedure table, which is why the MIPS
//! needs the most machine-dependent code (paper, Sec. 4.3).

use crate::asm::{AsmFn, AsmIns, FrameInfo};
use crate::ir::{FuncIr, Storage};
use crate::lex::{CcError, CcResult, Pos};
use crate::types::{Sfx, Type};
use ldb_machine::{arch, AluOp, Cond, FltSize, MachineData, MemSize, Op};

use super::{align_to, TargetGen, Val};

/// The MIPS code generator.
pub struct MipsGen;

const SP: u8 = 29;
const RA: u8 = 31;
/// s8 (r30) leads the register-variable list: the paper's `i` lives in
/// register 30.
const REGVARS: [u8; 8] = [30, 16, 17, 18, 19, 20, 21, 22];
const ISCRATCH: [u8; 10] = [8, 9, 10, 11, 12, 13, 14, 15, 24, 25];
const FSCRATCH: [u8; 7] = [1, 2, 3, 4, 5, 6, 7];
const ARG_REGS: [u8; 4] = [4, 5, 6, 7];

/// Is this variable eligible to live in a register?
pub(crate) fn reg_eligible(ty: &Type, addr_taken: bool) -> bool {
    !addr_taken
        && matches!(
            ty,
            Type::Int | Type::UInt | Type::Char | Type::UChar | Type::Short | Type::UShort | Type::Ptr(_)
        )
}

impl TargetGen for MipsGen {
    fn data(&self) -> &'static MachineData {
        &arch::MIPS
    }

    fn iscratch(&self) -> &'static [u8] {
        &ISCRATCH
    }

    fn fscratch(&self) -> &'static [u8] {
        &FSCRATCH
    }

    fn regvar_regs(&self) -> &'static [u8] {
        &REGVARS
    }

    fn layout(&self, f: &mut FuncIr, outgoing: u32, spill_bytes: u32) -> FrameInfo {
        // Parameter homes: non-negative vfp offsets (the caller's outgoing
        // area), shared slot walk with emit_call.
        let mut slot = 0u32;
        for p in &mut f.params {
            let sz = if p.ty == Type::Double { 8 } else { 4 };
            slot = align_to(slot, sz);
            p.storage = Storage::Frame(slot as i32);
            slot += sz;
        }
        // Register variables, then frame locals (sp-relative for now).
        let mut next_rv = 0usize;
        let mut save_mask = 0u32;
        let mut acc = align_to(outgoing.max(16), 4);
        let spill_sp = acc;
        acc += spill_bytes;
        let mut local_sp: Vec<(usize, u32)> = Vec::new();
        for (idx, l) in f.locals.iter_mut().enumerate() {
            if l.storage == Storage::Unassigned {
                if reg_eligible(&l.ty, l.addr_taken) && next_rv < REGVARS.len() {
                    let r = REGVARS[next_rv];
                    next_rv += 1;
                    save_mask |= 1 << r;
                    l.storage = Storage::Reg(r);
                    continue;
                }
                let a = l.ty.align().max(4);
                acc = align_to(acc, a);
                local_sp.push((idx, acc));
                acc += l.ty.size().max(4);
            }
        }
        // Regvar save area.
        let save_sp = align_to(acc, 4);
        acc = save_sp + 4 * next_rv as u32;
        // Return address at the top.
        let ra_sp = align_to(acc, 4);
        acc = ra_sp + 4;
        let size = align_to(acc, 8);
        // Convert local offsets to vfp-relative (negative).
        for (idx, sp_off) in local_sp {
            f.locals[idx].storage = Storage::Frame(sp_off as i32 - size as i32);
        }
        FrameInfo {
            size,
            save_mask,
            save_offset: size - save_sp,
            ra_offset: Some(size - ra_sp),
            spill_base: spill_sp as i32 - size as i32,
        }
    }

    fn prologue(&self, a: &mut AsmFn, f: &FuncIr) {
        let size = a.frame.size;
        a.op(Op::AluI { op: AluOp::Add, rd: SP, rs: SP, imm: -(size as i32) as i16 });
        let ra_sp = size - a.frame.ra_offset.expect("mips saves ra");
        a.op(Op::Store { size: MemSize::B4, rs: RA, base: SP, off: ra_sp as i16 });
        // Save the register variables we will use.
        let save_sp = size - a.frame.save_offset;
        let mut k = 0u32;
        for &r in &REGVARS {
            if uses_regvar(f, r) {
                a.op(Op::Store {
                    size: MemSize::B4,
                    rs: r,
                    base: SP,
                    off: (save_sp + 4 * k) as i16,
                });
                k += 1;
            }
        }
        // Home the incoming register arguments.
        let mut int_args = 0usize;
        for p in &f.params {
            let Storage::Frame(off) = p.storage else { continue };
            if p.ty == Type::Double || p.ty == Type::Float {
                continue; // already on the stack, written by the caller
            }
            if int_args < ARG_REGS.len() {
                a.op(Op::Store {
                    size: MemSize::B4,
                    rs: ARG_REGS[int_args],
                    base: SP,
                    off: (off + size as i32) as i16,
                });
                int_args += 1;
            }
        }
    }

    fn epilogue(&self, a: &mut AsmFn, f: &FuncIr) {
        let size = a.frame.size;
        let save_sp = size - a.frame.save_offset;
        let mut k = 0u32;
        for &r in &REGVARS {
            if uses_regvar(f, r) {
                a.op(Op::Load {
                    size: MemSize::B4,
                    signed: true,
                    rd: r,
                    base: SP,
                    off: (save_sp + 4 * k) as i16,
                });
                k += 1;
            }
        }
        let ra_sp = size - a.frame.ra_offset.expect("mips saves ra");
        a.op(Op::Load { size: MemSize::B4, signed: true, rd: RA, base: SP, off: ra_sp as i16 });
        // The sp adjustment fills ra's load delay slot.
        a.op(Op::AluI { op: AluOp::Add, rd: SP, rs: SP, imm: size as i16 });
        a.op(Op::JumpReg { rs: RA });
    }

    fn slot(&self, frame: &FrameInfo, off: i32) -> (u8, i32) {
        (SP, off + frame.size as i32)
    }

    fn branch(&self, a: &mut AsmFn, cond: Cond, rs: u8, rt: u8, label: u32) {
        a.push(AsmIns::Br { cond, rs, rt, label });
    }

    fn branch_zero(&self, a: &mut AsmFn, rs: u8, if_zero: bool, label: u32) {
        let cond = if if_zero { Cond::Eq } else { Cond::Ne };
        a.push(AsmIns::Br { cond, rs, rt: 0, label });
    }

    fn emit_call(
        &self,
        a: &mut AsmFn,
        name: &str,
        args: &[(Val, Sfx)],
        _frame: &FrameInfo,
    ) -> CcResult<()> {
        let mut slot = 0u32;
        let mut int_args = 0usize;
        for (v, sfx) in args {
            let sz = if *sfx == Sfx::D { 8u32 } else { 4 };
            slot = align_to(slot, sz);
            match v {
                Val::F(fr) => {
                    let size = if *sfx == Sfx::F { FltSize::F4 } else { FltSize::F8 };
                    a.op(Op::FStore { size, fs: *fr, base: SP, off: slot as i16 });
                }
                Val::I(r) => {
                    if int_args >= ARG_REGS.len() {
                        return Err(CcError {
                            pos: Pos::default(),
                            msg: "too many integer arguments for the MIPS convention".into(),
                        });
                    }
                    a.op(Op::Mov { rd: ARG_REGS[int_args], rs: *r });
                    int_args += 1;
                }
            }
            slot += sz;
        }
        a.push(AsmIns::CallSym(name.to_string()));
        Ok(())
    }

    fn load_const(&self, a: &mut AsmFn, rd: u8, v: i64) {
        let v = v as i32;
        if i16::try_from(v).is_ok() {
            a.op(Op::LoadImm { rd, imm: v });
        } else {
            a.op(Op::LoadUpper { rd, imm: (v as u32 >> 16) as u16 });
            let lo = (v as u32 & 0xffff) as i16;
            if lo != 0 {
                a.op(Op::AluI { op: AluOp::Or, rd, rs: rd, imm: lo });
            }
        }
    }
}

/// Does `f` keep any variable in register `r`?
pub(crate) fn uses_regvar(f: &FuncIr, r: u8) -> bool {
    f.locals.iter().any(|l| l.storage == Storage::Reg(r))
        || f.params.iter().any(|p| p.storage == Storage::Reg(r))
}
