//! The compiler driver: source → AST → IR → per-target assembler →
//! scheduled code → linked image. Also fills in the `where` information
//! the symbol-table emitters need.

use crate::asm::AsmFn;
use crate::gen::GenOpts;
use crate::ir::{Storage, UnitIr, WhereIr};
use crate::lex::CcResult;
use crate::link::{link, Linked};
use crate::sched::{fill_delay_slots_mode, SchedStats};
use ldb_machine::{Arch, ByteOrder};

/// Compilation options.
#[derive(Debug, Clone, Copy)]
pub struct CompileOpts {
    /// Compile for debugging (`-g`): stopping-point no-ops, restricted
    /// scheduling, symbol tables.
    pub debug: bool,
    /// Byte order; `None` uses the architecture's default.
    pub order: Option<ByteOrder>,
    /// Disable delay-slot filling entirely (ablation).
    pub no_fill: bool,
    /// Allow full (unrestricted) scheduling even under `-g` — the
    /// hypothetical the paper's 13% MIPS figure is measured against.
    pub force_full_sched: bool,
    /// Keep every local in memory (no register variables) — 1992-style
    /// code with many more loads, used by the scheduling experiments.
    pub no_regvars: bool,
    /// Evaluate operands left-to-right instead of Sethi-Ullman order
    /// (ablation: measures what the ordering buys).
    pub naive_order: bool,
}

impl Default for CompileOpts {
    fn default() -> Self {
        CompileOpts {
            debug: true,
            order: None,
            no_fill: false,
            force_full_sched: false,
            no_regvars: false,
            naive_order: false,
        }
    }
}

/// A fully compiled and linked program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Target architecture.
    pub arch: Arch,
    /// Byte order of the image.
    pub order: ByteOrder,
    /// Were we compiled with `-g`?
    pub debug: bool,
    /// The unit IR, with storage and `where` info filled in.
    pub unit: UnitIr,
    /// Assembler form of every function.
    pub funcs: Vec<AsmFn>,
    /// The linked image and side tables.
    pub linked: Linked,
    /// MIPS scheduling statistics (zero on other targets).
    pub sched: SchedStats,
}

/// Compile one unit (front end through code generation).
///
/// # Errors
/// Lexical, syntax, type, and code-generation errors.
pub fn compile_unit(
    file: &str,
    src: &str,
    arch: Arch,
    opts: CompileOpts,
) -> CcResult<(UnitIr, Vec<AsmFn>, SchedStats)> {
    let ast = crate::parse::parse(file, src)?;
    let mut unit = crate::sema::analyze(&ast)?;
    let mut funcs = Vec::with_capacity(unit.funcs.len());
    let mut sched = SchedStats::default();
    let gen_opts = GenOpts {
        debug: opts.debug,
        no_schedule: opts.no_fill,
        naive_order: opts.naive_order,
    };
    let mut ir_funcs = std::mem::take(&mut unit.funcs);
    for f in &mut ir_funcs {
        if opts.no_regvars {
            for v in &mut f.locals {
                v.addr_taken = true; // disqualifies register residence
            }
        }
        let link_name = if f.is_static {
            format!("{}.{}", unit.unit_name(), f.name)
        } else {
            format!("_{}", f.name)
        };
        let mut a = crate::gen::gen_function_named(arch, f, gen_opts, &link_name)?;
        if arch == Arch::Mips {
            let restricted = opts.debug && !opts.force_full_sched;
            let s = fill_delay_slots_mode(&mut a, restricted, !opts.no_fill);
            sched.slots += s.slots;
            sched.already_safe += s.already_safe;
            sched.filled += s.filled;
            sched.padded += s.padded;
        }
        funcs.push(a);
    }
    unit.funcs = ir_funcs;
    fill_where(&mut unit);
    Ok((unit, funcs, sched))
}

/// Compile a C source file for `arch`.
///
/// # Errors
/// Lexical, syntax, type, code-generation, and link errors.
pub fn compile(file: &str, src: &str, arch: Arch, opts: CompileOpts) -> CcResult<Compiled> {
    let order = opts.order.unwrap_or(arch.data().default_order);
    let (unit, funcs, sched) = compile_unit(file, src, arch, opts)?;
    let linked = link(arch, order, &unit, &funcs)?;
    Ok(Compiled { arch, order, debug: opts.debug, unit, funcs, linked, sched })
}

/// A multi-unit program: separately compiled units linked into one image
/// ("up to an entire program", paper Sec. 2).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Target architecture.
    pub arch: Arch,
    /// Byte order.
    pub order: ByteOrder,
    /// Compiled with `-g`?
    pub debug: bool,
    /// The units, in link order.
    pub units: Vec<(UnitIr, Vec<AsmFn>)>,
    /// The linked image and side tables.
    pub linked: crate::link::Linked,
}

/// Compile and link several C files into one program.
///
/// # Errors
/// Per-unit compilation errors and cross-unit link errors.
pub fn compile_many(
    files: &[(&str, &str)],
    arch: Arch,
    opts: CompileOpts,
) -> CcResult<CompiledProgram> {
    let order = opts.order.unwrap_or(arch.data().default_order);
    let mut units = Vec::with_capacity(files.len());
    for (file, src) in files {
        let (unit, funcs, _) = compile_unit(file, src, arch, opts)?;
        units.push((unit, funcs));
    }
    let parts: Vec<(&UnitIr, &[AsmFn])> =
        units.iter().map(|(u, f)| (u, f.as_slice())).collect();
    let linked = crate::link::link_units(arch, order, &parts)?;
    Ok(CompiledProgram { arch, order, debug: opts.debug, units, linked })
}

/// The combined loader-table PostScript for a multi-unit program: each
/// unit's symbol table loads with a unique prefix, and PostScript code
/// merges the per-unit top-level dictionaries into one.
pub fn program_loader_ps(p: &CompiledProgram, mode: crate::pssym::PsMode) -> String {
    let unit_ps: Vec<String> = p
        .units
        .iter()
        .enumerate()
        .map(|(i, (u, f))| crate::pssym::emit_prefixed(u, f, p.arch, mode, &format!("U{i}_")))
        .collect();
    crate::nm::loader_table_for_units(&p.linked.image, &unit_ps)
}

/// The loader table split for sandboxed loading: the trusted frame from
/// the linker (anchor map and proctable, with a `null` symbol-table slot)
/// plus each unit's symbol-table PostScript, named by source file. The
/// debugger runs each module under its own resource budget and
/// quarantines the ones that fault, instead of letting one corrupt table
/// poison the whole load (ldb-core's `Loader::load_plan`).
pub fn program_load_plan(
    p: &CompiledProgram,
    mode: crate::pssym::PsMode,
) -> (String, Vec<(String, String)>) {
    let frame = crate::nm::loader_table_for(&p.linked.image, "null");
    let modules = p
        .units
        .iter()
        .enumerate()
        .map(|(i, (u, f))| {
            (u.file.clone(), crate::pssym::emit_prefixed(u, f, p.arch, mode, &format!("U{i}_")))
        })
        .collect();
    (frame, modules)
}

/// Fill each symbol's `where_` from the storage codegen assigned and from
/// the anchor plan.
fn fill_where(unit: &mut UnitIr) {
    let mut updates: Vec<(usize, WhereIr)> = Vec::new();
    for f in &unit.funcs {
        for v in f.params.iter().chain(f.locals.iter()) {
            let w = match &v.storage {
                Storage::Reg(r) => WhereIr::Reg(*r),
                Storage::Frame(off) => WhereIr::Frame(*off),
                Storage::Static(_) | Storage::Unassigned => continue,
            };
            updates.push((v.sym, w));
        }
    }
    for (di, d) in unit.data.iter().enumerate() {
        if let Some(sym) = d.sym {
            let idx = crate::anchors::data_anchor_index(unit, di);
            updates.push((sym, WhereIr::Anchor(idx)));
        }
    }
    for (sym, w) in updates {
        unit.syms[sym].where_ = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldb_machine::{Machine, RunEvent};

    pub(crate) const FIB_MAIN: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
int main(void)
{
    fib(10);
    return 0;
}
"#;

    /// Run a compiled image to completion, resuming through the nub pause.
    pub(crate) fn run_to_exit(c: &Compiled) -> (String, i32) {
        let mut m = Machine::load(&c.linked.image);
        loop {
            match m.run(10_000_000) {
                RunEvent::Paused { .. } => continue,
                RunEvent::Exited(code) => return (m.output.clone(), code),
                other => panic!("{:?} (output so far: {:?})", other, m.output),
            }
        }
    }

    #[test]
    fn fib_runs_on_all_four_targets_debug_and_release() {
        for arch in Arch::ALL {
            for debug in [true, false] {
                let c = compile(
                    "fib.c",
                    FIB_MAIN,
                    arch,
                    CompileOpts { debug, ..Default::default() },
                )
                .unwrap_or_else(|e| panic!("{arch} debug={debug}: {e}"));
                let (out, code) = run_to_exit(&c);
                assert_eq!(out, "1 1 2 3 5 8 13 21 34 55 \n", "{arch} debug={debug}");
                assert_eq!(code, 0, "{arch}");
            }
        }
    }

    #[test]
    fn little_endian_mips_works_too() {
        let c = compile(
            "fib.c",
            FIB_MAIN,
            Arch::Mips,
            CompileOpts { order: Some(ByteOrder::Little), ..Default::default() },
        )
        .unwrap();
        let (out, _) = run_to_exit(&c);
        assert_eq!(out, "1 1 2 3 5 8 13 21 34 55 \n");
    }

    #[test]
    fn debug_adds_noops() {
        for arch in Arch::ALL {
            let dbg =
                compile("fib.c", FIB_MAIN, arch, CompileOpts::default()).unwrap();
            let rel = compile(
                "fib.c",
                FIB_MAIN,
                arch,
                CompileOpts { debug: false, ..Default::default() },
            )
            .unwrap();
            assert!(
                dbg.linked.stats.nop_count > rel.linked.stats.nop_count,
                "{arch}: {:?} vs {:?}",
                dbg.linked.stats,
                rel.linked.stats
            );
            let growth = dbg.linked.stats.insn_count as f64
                / rel.linked.stats.insn_count as f64;
            assert!(
                growth > 1.05 && growth < 1.6,
                "{arch}: instruction growth {growth:.3}"
            );
        }
    }

    #[test]
    fn mips_restricted_scheduling_pads_more() {
        let dbg = compile("fib.c", FIB_MAIN, Arch::Mips, CompileOpts::default()).unwrap();
        let rel = compile(
            "fib.c",
            FIB_MAIN,
            Arch::Mips,
            CompileOpts { debug: false, ..Default::default() },
        )
        .unwrap();
        assert!(
            dbg.sched.padded >= rel.sched.padded,
            "debug {:?} vs release {:?}",
            dbg.sched,
            rel.sched
        );
    }

    #[test]
    fn stopping_points_land_on_noops() {
        // Under -g, every stopping point address must hold the no-op
        // pattern — that is where ldb plants breakpoints.
        for arch in Arch::ALL {
            let c = compile("fib.c", FIB_MAIN, arch, CompileOpts::default()).unwrap();
            let d = arch.data();
            let nop = d.nop_bytes(c.order);
            let mem = c.linked.image.build_memory();
            for stops in &c.linked.stop_addrs {
                for &addr in stops {
                    let bytes = mem.read_bytes(addr, nop.len() as u32).unwrap();
                    assert_eq!(bytes, &nop[..], "{arch} stop at {addr:#x}");
                }
            }
        }
    }

    #[test]
    fn fib_stop_count_matches_figure1() {
        let c = compile("fib.c", FIB_MAIN, Arch::Mips, CompileOpts::default()).unwrap();
        assert_eq!(c.linked.stop_addrs[0].len(), 14); // fib: points 0..13
    }

    #[test]
    fn register_variable_for_i_on_the_mips() {
        // The paper's symbol table places i in register 30.
        let c = compile("fib.c", FIB_MAIN, Arch::Mips, CompileOpts::default()).unwrap();
        let i_sym = c.unit.syms.iter().find(|s| s.name == "i").unwrap();
        assert_eq!(i_sym.where_, WhereIr::Reg(30), "{:?}", i_sym);
    }

    #[test]
    fn doubles_and_calls_work_everywhere() {
        let src = r#"
            double square(double x) { return x * x; }
            int main(void) {
                double d;
                d = square(1.5) + 0.75;
                printf("%g\n", d);
                return 0;
            }
        "#;
        for arch in Arch::ALL {
            let c = compile("sq.c", src, arch, CompileOpts::default())
                .unwrap_or_else(|e| panic!("{arch}: {e}"));
            let (out, _) = run_to_exit(&c);
            assert_eq!(out, "3\n", "{arch}");
        }
    }

    #[test]
    fn recursion_and_strings() {
        let src = r#"
            int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
            int main(void) {
                printf("fact(%d) = %d%c", 6, fact(6), '\n');
                return fact(0);
            }
        "#;
        for arch in Arch::ALL {
            let c = compile("fact.c", src, arch, CompileOpts::default())
                .unwrap_or_else(|e| panic!("{arch}: {e}"));
            let (out, code) = run_to_exit(&c);
            assert_eq!(out, "fact(6) = 720\n", "{arch}");
            assert_eq!(code, 1, "{arch}");
        }
    }

    #[test]
    fn structs_and_pointers() {
        let src = r#"
            struct point { int x; int y; };
            struct point origin;
            int get(struct point *p) { return p->x + p->y; }
            int main(void) {
                origin.x = 3;
                origin.y = 4;
                printf("%d\n", get(&origin));
                return 0;
            }
        "#;
        for arch in Arch::ALL {
            let c = compile("pt.c", src, arch, CompileOpts::default())
                .unwrap_or_else(|e| panic!("{arch}: {e}"));
            let (out, _) = run_to_exit(&c);
            assert_eq!(out, "7\n", "{arch}");
        }
    }

    #[test]
    fn division_by_zero_faults_at_runtime() {
        let src = "int main(void) { int z; z = 0; return 7 / z; }";
        let c = compile("dz.c", src, Arch::Vax, CompileOpts::default()).unwrap();
        let mut m = Machine::load(&c.linked.image);
        loop {
            match m.run(100_000) {
                RunEvent::Paused { .. } => continue,
                RunEvent::Fault(f) => {
                    assert_eq!(f, ldb_machine::Fault::DivideByZero);
                    break;
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn globals_arrays_unsigned_chars() {
        let src = r#"
            int tbl[4] = {10, 20, 30, 40};
            char msg[6] = "hi%yo";
            unsigned int u;
            int main(void) {
                int s; int k;
                s = 0;
                for (k = 0; k < 4; k++) s += tbl[k];
                u = 70002;
                s += u % 7;
                printf("%d %c%c\n", s, msg[0], msg[1]);
                return 0;
            }
        "#;
        for arch in Arch::ALL {
            let c = compile("g.c", src, arch, CompileOpts::default())
                .unwrap_or_else(|e| panic!("{arch}: {e}"));
            let (out, _) = run_to_exit(&c);
            assert_eq!(out, "102 hi\n", "{arch}");
        }
    }

    #[test]
    fn while_do_break_continue_logic() {
        let src = r#"
            int main(void) {
                int n; int s;
                n = 0; s = 0;
                while (1) {
                    n++;
                    if (n > 10) break;
                    if (n % 2 == 0) continue;
                    s += n;
                }
                do { s++; } while (s < 0);
                if (s == 26 && !(s != 26)) printf("ok %d\n", s);
                return 0;
            }
        "#;
        for arch in Arch::ALL {
            let c = compile("w.c", src, arch, CompileOpts::default())
                .unwrap_or_else(|e| panic!("{arch}: {e}"));
            let (out, _) = run_to_exit(&c);
            assert_eq!(out, "ok 26\n", "{arch}");
        }
    }
}
