//! The type system of the C subset, and the lcc-style type suffixes.

use std::fmt;
use std::rc::Rc;

/// A struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset within the struct.
    pub offset: u32,
}

/// A struct definition, laid out at declaration time.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Tag name.
    pub name: String,
    /// Fields in declaration order, with offsets assigned.
    pub fields: Vec<Field>,
    /// Total size (padded to alignment).
    pub size: u32,
    /// Alignment.
    pub align: u32,
}

impl StructDef {
    /// Lay out fields with natural alignment.
    pub fn layout(name: String, raw: Vec<(String, Type)>) -> StructDef {
        let mut fields = Vec::with_capacity(raw.len());
        let mut offset = 0u32;
        let mut align = 1u32;
        for (fname, ty) in raw {
            let a = ty.align();
            align = align.max(a);
            offset = offset.div_ceil(a) * a;
            fields.push(Field { name: fname, ty: ty.clone(), offset });
            offset += ty.size();
        }
        let size = offset.max(1).div_ceil(align) * align;
        StructDef { name, fields, size, align }
    }

    /// Find a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A function signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncType {
    /// Return type.
    pub ret: Type,
    /// Parameter names and types.
    pub params: Vec<(String, Type)>,
}

/// Types of the subset. `long` is 32 bits, identical to `int`.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// `void`.
    Void,
    /// `char` (signed, 8 bits).
    Char,
    /// `unsigned char`.
    UChar,
    /// `short` (16 bits).
    Short,
    /// `unsigned short`.
    UShort,
    /// `int` / `long` (32 bits).
    Int,
    /// `unsigned int` / `unsigned long`.
    UInt,
    /// `float` (IEEE single).
    Float,
    /// `double` (IEEE double).
    Double,
    /// A pointer.
    Ptr(Rc<Type>),
    /// An array with a known element count.
    Array(Rc<Type>, u32),
    /// A struct.
    Struct(Rc<StructDef>),
    /// A function (only as the type of a declared function).
    Func(Rc<FuncType>),
}

impl Type {
    /// Size in bytes.
    pub fn size(&self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Char | Type::UChar => 1,
            Type::Short | Type::UShort => 2,
            Type::Int | Type::UInt | Type::Float | Type::Ptr(_) => 4,
            Type::Double => 8,
            Type::Array(el, n) => el.size() * n,
            Type::Struct(s) => s.size,
            Type::Func(_) => 4,
        }
    }

    /// Alignment in bytes.
    pub fn align(&self) -> u32 {
        match self {
            Type::Void => 1,
            Type::Char | Type::UChar => 1,
            Type::Short | Type::UShort => 2,
            Type::Int | Type::UInt | Type::Float | Type::Ptr(_) | Type::Func(_) => 4,
            Type::Double => 8,
            Type::Array(el, _) => el.align(),
            Type::Struct(s) => s.align,
        }
    }

    /// Is this an integer type?
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Type::Char | Type::UChar | Type::Short | Type::UShort | Type::Int | Type::UInt
        )
    }

    /// Is this a floating type?
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// Is this arithmetic (integer or floating)?
    pub fn is_arith(&self) -> bool {
        self.is_integer() || self.is_float()
    }

    /// Is this unsigned?
    pub fn is_unsigned(&self) -> bool {
        matches!(self, Type::UChar | Type::UShort | Type::UInt)
    }

    /// Is this a pointer (after array decay)?
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(..))
    }

    /// The pointee (for pointers and arrays).
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Array-to-pointer decay.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(el, _) => Type::Ptr(Rc::clone(el)),
            other => other.clone(),
        }
    }

    /// The lcc-style type suffix used in the IR.
    pub fn suffix(&self) -> Sfx {
        match self {
            Type::Void => Sfx::V,
            Type::Char => Sfx::C,
            Type::UChar => Sfx::Uc,
            Type::Short => Sfx::S,
            Type::UShort => Sfx::Us,
            Type::Int => Sfx::I,
            Type::UInt => Sfx::U,
            Type::Float => Sfx::F,
            Type::Double => Sfx::D,
            Type::Ptr(_) | Type::Array(..) | Type::Func(_) => Sfx::P,
            Type::Struct(_) => Sfx::B,
        }
    }

    /// Render as a C declaration of `name` (the `%s` form used in type
    /// dictionaries' `/decl` entries uses `decl_pattern` instead).
    pub fn display_name(&self) -> String {
        self.decl_pattern().replace("%s", "").trim().to_string()
    }

    /// The declaration pattern with `%s` where the declared name goes,
    /// exactly the `/decl (int %s[20])` strings the paper's symbol tables
    /// carry.
    pub fn decl_pattern(&self) -> String {
        match self {
            Type::Void => "void %s".into(),
            Type::Char => "char %s".into(),
            Type::UChar => "unsigned char %s".into(),
            Type::Short => "short %s".into(),
            Type::UShort => "unsigned short %s".into(),
            Type::Int => "int %s".into(),
            Type::UInt => "unsigned int %s".into(),
            Type::Float => "float %s".into(),
            Type::Double => "double %s".into(),
            Type::Ptr(t) => t.decl_pattern().replace("%s", "*%s"),
            Type::Array(t, n) => t.decl_pattern().replace("%s", &format!("%s[{n}]")),
            Type::Struct(s) => format!("struct {} %s", s.name),
            Type::Func(f) => f.ret.decl_pattern().replace("%s", "%s()"),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_name())
    }
}

/// lcc-style type suffixes: the per-type variants of each IR operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Sfx {
    C,
    Uc,
    S,
    Us,
    I,
    U,
    P,
    F,
    D,
    B,
    V,
}

impl Sfx {
    /// One-letter (or two for the unsigned sub-word types) suffix text, as
    /// in lcc operator names like `ASGNI` or `INDIRC`.
    pub fn letter(self) -> &'static str {
        match self {
            Sfx::C => "C",
            Sfx::Uc => "UC",
            Sfx::S => "S",
            Sfx::Us => "US",
            Sfx::I => "I",
            Sfx::U => "U",
            Sfx::P => "P",
            Sfx::F => "F",
            Sfx::D => "D",
            Sfx::B => "B",
            Sfx::V => "V",
        }
    }

    /// Memory width of a value of this suffix.
    pub fn size(self) -> u32 {
        match self {
            Sfx::C | Sfx::Uc => 1,
            Sfx::S | Sfx::Us => 2,
            Sfx::I | Sfx::U | Sfx::P | Sfx::F => 4,
            Sfx::D => 8,
            Sfx::B | Sfx::V => 0,
        }
    }

    /// Is this a floating suffix?
    pub fn is_float(self) -> bool {
        matches!(self, Sfx::F | Sfx::D)
    }

    /// Is this an unsigned integer suffix?
    pub fn is_unsigned(self) -> bool {
        matches!(self, Sfx::Uc | Sfx::Us | Sfx::U)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_alignment() {
        assert_eq!(Type::Char.size(), 1);
        assert_eq!(Type::Double.align(), 8);
        let arr = Type::Array(Rc::new(Type::Int), 20);
        assert_eq!(arr.size(), 80);
        assert_eq!(arr.align(), 4);
    }

    #[test]
    fn struct_layout_pads() {
        let s = StructDef::layout(
            "pt".into(),
            vec![
                ("c".into(), Type::Char),
                ("d".into(), Type::Double),
                ("i".into(), Type::Int),
            ],
        );
        assert_eq!(s.field("c").unwrap().offset, 0);
        assert_eq!(s.field("d").unwrap().offset, 8);
        assert_eq!(s.field("i").unwrap().offset, 16);
        assert_eq!(s.size, 24);
        assert_eq!(s.align, 8);
    }

    #[test]
    fn decl_patterns_match_paper() {
        assert_eq!(Type::Int.decl_pattern(), "int %s");
        let arr = Type::Array(Rc::new(Type::Int), 20);
        assert_eq!(arr.decl_pattern(), "int %s[20]");
        let pp = Type::Ptr(Rc::new(Type::Ptr(Rc::new(Type::Char))));
        assert_eq!(pp.decl_pattern(), "char **%s");
        let pa = Type::Array(Rc::new(Type::Ptr(Rc::new(Type::Int))), 4);
        assert_eq!(pa.decl_pattern(), "int *%s[4]");
    }

    #[test]
    fn decay() {
        let arr = Type::Array(Rc::new(Type::Int), 20);
        assert_eq!(arr.decay(), Type::Ptr(Rc::new(Type::Int)));
        assert!(arr.is_pointer());
        assert_eq!(arr.pointee(), Some(&Type::Int));
    }

    #[test]
    fn suffixes() {
        assert_eq!(Type::Int.suffix(), Sfx::I);
        assert_eq!(Type::UChar.suffix().letter(), "UC");
        assert_eq!(Sfx::D.size(), 8);
        assert!(Sfx::U.is_unsigned());
        assert!(Sfx::F.is_float());
    }
}
