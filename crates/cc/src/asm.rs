//! Assembler-level representation: semantic operations plus symbolic
//! labels, symbol references, and stopping-point markers. The linker
//! resolves these to the target's byte encodings.

use ldb_machine::{Cond, Op};

/// One assembler item.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmIns {
    /// A fully resolved operation (no control-flow target).
    Op(Op),
    /// Register-comparing conditional branch (MIPS style).
    Br {
        /// Condition.
        cond: Cond,
        /// Left register.
        rs: u8,
        /// Right register.
        rt: u8,
        /// Target label.
        label: u32,
    },
    /// Condition-code branch (SPARC/68020/VAX style).
    Bcc {
        /// Condition.
        cond: Cond,
        /// Target label.
        label: u32,
    },
    /// Unconditional jump to a label.
    Jmp {
        /// Target label.
        label: u32,
    },
    /// Call a function by linker symbol name.
    CallSym(String),
    /// Load the address of `sym` + `off` into `rd`.
    LoadAddr {
        /// Destination register.
        rd: u8,
        /// Linker symbol.
        sym: String,
        /// Constant offset.
        off: i32,
    },
    /// A branch target (zero bytes).
    Label(u32),
    /// A stopping point: the address of the *next* instruction is stopping
    /// point `index` of this function (zero bytes; under `-g` the code
    /// generator follows it with a no-op).
    StopPoint(u32),
}

/// Frame bookkeeping produced by the target's layout pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameInfo {
    /// Total frame size in bytes (what the prologue subtracts from sp).
    pub size: u32,
    /// Callee-saved registers this function saves (bit i = register i).
    pub save_mask: u32,
    /// Offset from the frame *top* of the first saved register.
    pub save_offset: u32,
    /// Offset from the frame top where the return address is saved
    /// (`None` for targets that push it / leaf functions).
    pub ra_offset: Option<u32>,
    /// Offset (frame-base-relative) of the first scratch spill slot.
    pub spill_base: i32,
}

/// A function in assembler form.
#[derive(Debug, Clone)]
pub struct AsmFn {
    /// Source-level name.
    pub name: String,
    /// Linker name (`_name`).
    pub link_name: String,
    /// The items.
    pub items: Vec<AsmIns>,
    /// Frame info.
    pub frame: FrameInfo,
    /// Floating-point literal pool entries this function needs:
    /// (label, value).
    pub float_consts: Vec<(String, f64)>,
    /// Number of stopping points.
    pub stop_count: u32,
}

impl AsmFn {
    /// Append an item.
    pub fn push(&mut self, i: AsmIns) {
        self.items.push(i);
    }

    /// Append a resolved operation.
    pub fn op(&mut self, o: Op) {
        self.items.push(AsmIns::Op(o));
    }

    /// Count of instruction items (excludes labels and stop markers).
    pub fn insn_count(&self) -> usize {
        self.items
            .iter()
            .filter(|i| !matches!(i, AsmIns::Label(_) | AsmIns::StopPoint(_)))
            .count()
    }

    /// Count of no-op instructions (the `-g` stopping-point padding).
    pub fn nop_count(&self) -> usize {
        self.items.iter().filter(|i| matches!(i, AsmIns::Op(Op::Nop))).count()
    }
}
