//! Semantic analysis and lowering to IR.
//!
//! One pass over the AST typechecks, builds the symbol-table arena (the
//! uplink tree of the paper's Figure 2), places stopping points exactly
//! where the paper's Figure 1 shows them, and lowers statements and
//! expressions to [`crate::ir`] trees.
//!
//! The front end supports an [`ExternalResolver`]: when an identifier is
//! not in scope, the resolver gets a chance to supply it. The expression
//! server is exactly this front end with a resolver that asks the debugger
//! (`/a ExpressionServer.lookup`) — the reuse the paper's Sec. 3 is built
//! on.

use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::*;
use crate::ir::*;
use crate::lex::{err, CcResult, Pos};
use crate::types::{FuncType, Sfx, Type};

/// An externally supplied symbol (from the debugger, via the expression
/// server's lookup protocol).
#[derive(Debug, Clone)]
pub enum ExternalSym {
    /// A variable whose address the rewriter will obtain from the symbol
    /// table entry named by `handle` (e.g. `S10`).
    Var {
        /// The variable's type.
        ty: Type,
        /// The debugger-side symbol-entry handle.
        handle: String,
    },
    /// A function.
    Func {
        /// Return type.
        ret: Type,
        /// The debugger-side handle.
        handle: String,
    },
}

/// Resolves identifiers the compilation unit does not define.
pub trait ExternalResolver {
    /// Look up `name`; `None` makes the reference an error.
    fn lookup(&mut self, name: &str) -> Option<ExternalSym>;
}

/// The prefix marking pseudo-globals that stand for debugger symbol
/// handles in expression-server trees.
pub const SYM_HANDLE_PREFIX: &str = "@sym:";

#[derive(Debug, Clone)]
enum Binding {
    Local(u32),
    Param(u32),
    Global { link_name: String, ty: Type },
    StaticVar { link_name: String, ty: Type },
    Func { link_name: String, ty: Rc<FuncType> },
    External(ExternalSym),
}

struct FuncCtx {
    params: Vec<VarIr>,
    locals: Vec<VarIr>,
    stops: Vec<StopIr>,
    body: Vec<StmtIr>,
    sym_chain: Option<usize>,
    break_labels: Vec<u32>,
    continue_labels: Vec<u32>,
    func_name: String,
    ret: Type,
}

/// The analyzer.
pub struct Sema<'r> {
    unit: UnitIr,
    scopes: Vec<HashMap<String, Binding>>,
    f: Option<FuncCtx>,
    labels: u32,
    strings: u32,
    statics: u32,
    resolver: Option<&'r mut dyn ExternalResolver>,
}

/// Analyze a parsed unit, producing IR.
///
/// # Errors
/// Type errors, undefined identifiers, unsupported constructs.
pub fn analyze(ast: &Unit) -> CcResult<UnitIr> {
    Sema::new(None).run(ast)
}

/// Analyze with an external resolver (the expression-server entry point).
///
/// # Errors
/// As [`analyze`]; unresolved identifiers remain errors when the resolver
/// declines them.
pub fn analyze_with_resolver(
    ast: &Unit,
    resolver: &mut dyn ExternalResolver,
) -> CcResult<UnitIr> {
    Sema::new(Some(resolver)).run(ast)
}

/// Typecheck and lower a single expression in the context of `resolver`
/// (every identifier is external). Returns the tree and its type. This is
/// the expression-server path.
///
/// # Errors
/// Parse and type errors.
pub fn analyze_expression(
    src: &str,
    resolver: &mut dyn ExternalResolver,
) -> CcResult<(Tree, Type)> {
    // Wrap the expression in a function so the parser can see it, then
    // lower just that expression.
    let wrapped = format!("int __expr(void) {{ __e({src}); }}");
    let ast = crate::parse::parse("<expr>", &wrapped)?;
    let mut sema = Sema::new(Some(resolver));
    sema.scopes.push(HashMap::new());
    let TopDecl::Func(f) = &ast.decls[0] else { unreachable!() };
    let StmtKind::Block(stmts) = &f.body.kind else { unreachable!() };
    let StmtKind::Expr(call) = &stmts[0].kind else {
        return err(f.pos, "expected an expression");
    };
    let ExprKind::Call(_, args) = &call.kind else { unreachable!() };
    sema.f = Some(FuncCtx {
        params: Vec::new(),
        locals: Vec::new(),
        stops: Vec::new(),
        body: Vec::new(),
        sym_chain: None,
        break_labels: Vec::new(),
        continue_labels: Vec::new(),
        func_name: "__expr".into(),
        ret: Type::Int,
    });
    let (tree, ty) = sema.expr(&args[0])?;
    Ok((tree, ty))
}

impl<'r> Sema<'r> {
    fn new(resolver: Option<&'r mut dyn ExternalResolver>) -> Self {
        Sema {
            unit: UnitIr::default(),
            scopes: Vec::new(),
            f: None,
            labels: 0,
            strings: 0,
            statics: 0,
            resolver,
        }
    }

    fn run(mut self, ast: &Unit) -> CcResult<UnitIr> {
        self.unit.file = ast.file.clone();
        self.scopes.push(HashMap::new()); // file scope
        for decl in &ast.decls {
            match decl {
                TopDecl::Struct(_) => {} // already folded into types
                TopDecl::Var(g) => self.global(g)?,
                TopDecl::Func(f) => self.function(f)?,
            }
        }
        Ok(self.unit)
    }

    // ----- helpers -----

    fn fresh_label(&mut self) -> u32 {
        self.labels += 1;
        self.labels
    }

    fn fctx(&mut self) -> &mut FuncCtx {
        self.f.as_mut().expect("inside a function")
    }

    fn emit(&mut self, s: StmtIr) {
        self.fctx().body.push(s);
    }

    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes.last_mut().expect("scope").insert(name.to_string(), b);
    }

    fn find(&self, name: &str) -> Option<Binding> {
        for s in self.scopes.iter().rev() {
            if let Some(b) = s.get(name) {
                return Some(b.clone());
            }
        }
        None
    }

    /// Place a stopping point here; records the current visible symbol.
    fn stop(&mut self, pos: Pos) {
        let sym = self.fctx().sym_chain;
        let index = self.fctx().stops.len() as u32;
        self.fctx().stops.push(StopIr { index, line: pos.line, col: pos.col, sym });
        self.emit(StmtIr::Stop(index));
    }

    fn add_sym(&mut self, name: &str, ty: &Type, kind: SymKindIr, pos: Pos) -> usize {
        let uplink = self.f.as_ref().and_then(|f| f.sym_chain);
        self.unit.syms.push(SymNode {
            name: name.to_string(),
            ty: ty.clone(),
            kind,
            pos,
            uplink,
            where_: WhereIr::None,
            is_static_scope: false,
            is_extern_scope: false,
        });
        self.unit.syms.len() - 1
    }

    fn string_label(&mut self, s: &str) -> String {
        // Reuse identical literals.
        for d in &self.unit.data {
            if d.str_init.as_deref() == Some(s) {
                return d.link_name.clone();
            }
        }
        self.strings += 1;
        let name = format!("{}.L.str.{}", self.unit.unit_name(), self.strings);
        self.unit.data.push(DataIr {
            link_name: name.clone(),
            size: s.len() as u32 + 1,
            align: 1,
            init: Vec::new(),
            str_init: Some(s.to_string()),
            is_private: true,
            sym: None,
        });
        name
    }

    // ----- globals -----

    fn global(&mut self, g: &GlobalDecl) -> CcResult<()> {
        if let Type::Func(ft) = &g.ty {
            // A prototype.
            self.bind(
                &g.name,
                Binding::Func { link_name: format!("_{}", g.name), ty: Rc::clone(ft) },
            );
            return Ok(());
        }
        let link_name =
            if g.is_static { format!("{}.{}", self.unit.unit_name(), g.name) } else { format!("_{}", g.name) };
        let sym = self.add_sym(&g.name, &g.ty, SymKindIr::Variable, g.pos);
        self.unit.syms[sym].is_static_scope = g.is_static;
        self.unit.syms[sym].is_extern_scope = !g.is_static;
        let b = if g.is_static {
            Binding::StaticVar { link_name: link_name.clone(), ty: g.ty.clone() }
        } else {
            Binding::Global { link_name: link_name.clone(), ty: g.ty.clone() }
        };
        self.bind(&g.name, b);
        if g.is_extern {
            return Ok(()); // storage defined elsewhere
        }
        let init = match &g.init {
            None => Vec::new(),
            Some(init) => self.const_init(&g.ty, init, g.pos)?,
        };
        let str_init = match &g.init {
            Some(Init::Str(s)) => Some(s.clone()),
            _ => None,
        };
        self.unit.data.push(DataIr {
            link_name,
            size: g.ty.size().max(1),
            align: g.ty.align(),
            init: if str_init.is_some() { Vec::new() } else { init },
            str_init,
            is_private: g.is_static,
            sym: Some(sym),
        });
        Ok(())
    }

    fn const_init(&mut self, ty: &Type, init: &Init, pos: Pos) -> CcResult<Vec<InitItem>> {
        match init {
            Init::Scalar(e) => {
                let c = self.const_expr(e)?;
                Ok(vec![InitItem { offset: 0, sfx: ty.suffix(), value: c }])
            }
            Init::List(es) => {
                let Type::Array(el, n) = ty else {
                    return err(pos, "brace initializer requires an array");
                };
                if es.len() as u32 > *n {
                    return err(pos, "too many initializers");
                }
                let mut items = Vec::new();
                for (i, e) in es.iter().enumerate() {
                    let c = self.const_expr(e)?;
                    items.push(InitItem {
                        offset: i as u32 * el.size(),
                        sfx: el.suffix(),
                        value: c,
                    });
                }
                Ok(items)
            }
            Init::Str(_) => Ok(Vec::new()),
        }
    }

    fn const_expr(&mut self, e: &Expr) -> CcResult<Const> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Const::I(*v)),
            ExprKind::CharLit(c) => Ok(Const::I(*c as i64)),
            ExprKind::FloatLit(v) => Ok(Const::F(*v)),
            ExprKind::SizeofType(t) => Ok(Const::I(t.size() as i64)),
            ExprKind::Unary("-", inner) => match self.const_expr(inner)? {
                Const::I(v) => Ok(Const::I(-v)),
                Const::F(v) => Ok(Const::F(-v)),
            },
            ExprKind::Binary(op, a, b) => {
                let (a, b) = (self.const_expr(a)?, self.const_expr(b)?);
                match (a, b) {
                    (Const::I(x), Const::I(y)) => Ok(Const::I(match *op {
                        "+" => x + y,
                        "-" => x - y,
                        "*" => x * y,
                        "/" if y != 0 => x / y,
                        _ => return err(e.pos, "unsupported constant operator"),
                    })),
                    _ => err(e.pos, "non-integer constant arithmetic"),
                }
            }
            _ => err(e.pos, "initializer is not a constant"),
        }
    }

    // ----- functions -----

    fn function(&mut self, f: &FuncDecl) -> CcResult<()> {
        let ft = Rc::new(FuncType {
            ret: f.ret.clone(),
            params: f.params.iter().map(|p| (p.name.clone(), p.ty.clone())).collect(),
        });
        let link_name = if f.is_static {
            format!("{}.{}", self.unit.unit_name(), f.name)
        } else {
            format!("_{}", f.name)
        };
        self.bind(&f.name, Binding::Func { link_name, ty: Rc::clone(&ft) });
        let fsym = self.add_sym(
            &f.name,
            &Type::Func(Rc::clone(&ft)),
            SymKindIr::Procedure,
            f.pos,
        );
        self.unit.syms[fsym].is_static_scope = f.is_static;
        self.unit.syms[fsym].is_extern_scope = !f.is_static;

        self.f = Some(FuncCtx {
            params: Vec::new(),
            locals: Vec::new(),
            stops: Vec::new(),
            body: Vec::new(),
            sym_chain: None,
            break_labels: Vec::new(),
            continue_labels: Vec::new(),
            func_name: f.name.clone(),
            ret: f.ret.clone(),
        });
        self.scopes.push(HashMap::new());

        // Parameters: chained into the symbol tree in order.
        for p in &f.params {
            let sym = self.add_sym(&p.name, &p.ty, SymKindIr::Variable, p.pos);
            let id = self.fctx().params.len() as u32;
            self.fctx().params.push(VarIr {
                name: p.name.clone(),
                ty: p.ty.clone(),
                addr_taken: false,
                storage: Storage::Unassigned,
                pos: p.pos,
                sym,
            });
            self.fctx().sym_chain = Some(sym);
            self.bind(&p.name, Binding::Param(id));
        }

        // Stopping point 0: function entry (the opening brace).
        self.stop(f.body.pos);

        // Body.
        let StmtKind::Block(stmts) = &f.body.kind else { unreachable!("body is a block") };
        self.scopes.push(HashMap::new());
        let saved_chain = self.fctx().sym_chain;
        for s in stmts {
            self.lower_stmt(s)?;
        }
        self.fctx().sym_chain = saved_chain;
        self.scopes.pop();

        // Stopping point at the closing brace (function exit).
        self.stop(f.end_pos);
        self.emit(StmtIr::Ret(None));

        self.scopes.pop();
        let ctx = self.f.take().expect("in function");
        self.unit.funcs.push(FuncIr {
            name: f.name.clone(),
            ret: f.ret.clone(),
            params: ctx.params,
            locals: ctx.locals,
            stops: ctx.stops,
            body: ctx.body,
            is_static: f.is_static,
            pos: f.pos,
            end_pos: f.end_pos,
            sym: fsym,
        });
        Ok(())
    }

    // ----- statements -----

    fn lower_stmt(&mut self, s: &Stmt) -> CcResult<()> {
        match &s.kind {
            StmtKind::Empty => Ok(()),
            StmtKind::Block(stmts) => {
                self.scopes.push(HashMap::new());
                let saved_chain = self.fctx().sym_chain;
                for st in stmts {
                    self.lower_stmt(st)?;
                }
                self.fctx().sym_chain = saved_chain;
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Decl(decls) => {
                for d in decls {
                    self.local_decl(d)?;
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.stop(e.pos);
                let t = self.expr_for_effect(e)?;
                if let Some(t) = t {
                    self.emit(StmtIr::Expr(t));
                }
                Ok(())
            }
            StmtKind::If(cond, then, els) => {
                self.stop(cond.pos);
                let lfalse = self.fresh_label();
                self.branch(cond, false, lfalse)?;
                self.lower_stmt(then)?;
                if let Some(els) = els {
                    let lend = self.fresh_label();
                    self.emit(StmtIr::Jump(lend));
                    self.emit(StmtIr::Label(lfalse));
                    self.lower_stmt(els)?;
                    self.emit(StmtIr::Label(lend));
                } else {
                    self.emit(StmtIr::Label(lfalse));
                }
                Ok(())
            }
            StmtKind::While(cond, body) => {
                let ltop = self.fresh_label();
                let lend = self.fresh_label();
                self.emit(StmtIr::Label(ltop));
                self.stop(cond.pos);
                self.branch(cond, false, lend)?;
                self.fctx().break_labels.push(lend);
                self.fctx().continue_labels.push(ltop);
                self.lower_stmt(body)?;
                self.fctx().break_labels.pop();
                self.fctx().continue_labels.pop();
                self.emit(StmtIr::Jump(ltop));
                self.emit(StmtIr::Label(lend));
                Ok(())
            }
            StmtKind::DoWhile(body, cond) => {
                let ltop = self.fresh_label();
                let lcond = self.fresh_label();
                let lend = self.fresh_label();
                self.emit(StmtIr::Label(ltop));
                self.fctx().break_labels.push(lend);
                self.fctx().continue_labels.push(lcond);
                self.lower_stmt(body)?;
                self.fctx().break_labels.pop();
                self.fctx().continue_labels.pop();
                self.emit(StmtIr::Label(lcond));
                self.stop(cond.pos);
                self.branch(cond, true, ltop)?;
                self.emit(StmtIr::Label(lend));
                Ok(())
            }
            StmtKind::For(init, cond, step, body) => {
                // Stopping points in the paper's order: init, cond, body
                // (recursively), step — Figure 1's 4, 5, 6, 7.
                if let Some(init) = init {
                    self.stop(init.pos);
                    if let Some(t) = self.expr_for_effect(init)? {
                        self.emit(StmtIr::Expr(t));
                    }
                }
                let ltop = self.fresh_label();
                let lcont = self.fresh_label();
                let lend = self.fresh_label();
                self.emit(StmtIr::Label(ltop));
                if let Some(cond) = cond {
                    self.stop(cond.pos);
                    self.branch(cond, false, lend)?;
                }
                self.fctx().break_labels.push(lend);
                self.fctx().continue_labels.push(lcont);
                self.lower_stmt(body)?;
                self.fctx().break_labels.pop();
                self.fctx().continue_labels.pop();
                self.emit(StmtIr::Label(lcont));
                if let Some(step) = step {
                    self.stop(step.pos);
                    if let Some(t) = self.expr_for_effect(step)? {
                        self.emit(StmtIr::Expr(t));
                    }
                }
                self.emit(StmtIr::Jump(ltop));
                self.emit(StmtIr::Label(lend));
                Ok(())
            }
            StmtKind::Return(e) => {
                let pos = e.as_ref().map(|e| e.pos).unwrap_or(s.pos);
                self.stop(pos);
                match e {
                    None => self.emit(StmtIr::Ret(None)),
                    Some(e) => {
                        let (t, ty) = self.expr(e)?;
                        let ret = self.fctx().ret.clone();
                        let t = self.convert(t, &ty, &ret, e.pos)?;
                        self.emit(StmtIr::Ret(Some(t)));
                    }
                }
                Ok(())
            }
            StmtKind::Break => {
                let Some(&l) = self.fctx().break_labels.last() else {
                    return err(s.pos, "break outside a loop");
                };
                self.emit(StmtIr::Jump(l));
                Ok(())
            }
            StmtKind::Continue => {
                let Some(&l) = self.fctx().continue_labels.last() else {
                    return err(s.pos, "continue outside a loop");
                };
                self.emit(StmtIr::Jump(l));
                Ok(())
            }
        }
    }

    fn local_decl(&mut self, d: &LocalDecl) -> CcResult<()> {
        if d.is_static {
            // Function-scoped static: storage in the data segment under a
            // mangled private name (found through the anchor table).
            self.statics += 1;
            let func = self.fctx().func_name.clone();
            let link_name = format!("{func}.{}.{}", d.name, self.statics);
            let sym = self.add_sym(&d.name, &d.ty, SymKindIr::Variable, d.pos);
            self.fctx().sym_chain = Some(sym);
            let init = match &d.init {
                None => Vec::new(),
                Some(e) => {
                    let c = self.const_expr(e)?;
                    vec![InitItem { offset: 0, sfx: d.ty.suffix(), value: c }]
                }
            };
            self.unit.data.push(DataIr {
                link_name: link_name.clone(),
                size: d.ty.size().max(1),
                align: d.ty.align(),
                init,
                str_init: None,
                is_private: true,
                sym: Some(sym),
            });
            self.bind(&d.name, Binding::StaticVar { link_name, ty: d.ty.clone() });
            return Ok(());
        }
        let sym = self.add_sym(&d.name, &d.ty, SymKindIr::Variable, d.pos);
        self.fctx().sym_chain = Some(sym);
        let id = self.fctx().locals.len() as u32;
        self.fctx().locals.push(VarIr {
            name: d.name.clone(),
            ty: d.ty.clone(),
            addr_taken: false,
            storage: Storage::Unassigned,
            pos: d.pos,
            sym,
        });
        self.bind(&d.name, Binding::Local(id));
        if let Some(init) = &d.init {
            // An initialized declaration is a stopping point, like any
            // other assignment.
            self.stop(init.pos);
            let (rhs, rty) = self.expr(init)?;
            let rhs = self.convert(rhs, &rty, &d.ty.decay(), init.pos)?;
            let t = Tree::Asgn(d.ty.decay().suffix(), Box::new(Tree::Local(id)), Box::new(rhs));
            self.emit(StmtIr::Expr(t));
        }
        Ok(())
    }

    /// Make a fresh compiler temporary of the given type.
    fn temp(&mut self, ty: &Type) -> u32 {
        let id = self.fctx().locals.len() as u32;
        let sym = self.unit.syms.len();
        // Temporaries get no symbol-table entry; use a placeholder node so
        // indexes stay simple.
        self.unit.syms.push(SymNode {
            name: format!("$t{id}"),
            ty: ty.clone(),
            kind: SymKindIr::Variable,
            pos: Pos::default(),
            uplink: None,
            where_: WhereIr::None,
            is_static_scope: false,
            is_extern_scope: false,
        });
        self.fctx().locals.push(VarIr {
            name: format!("$t{id}"),
            ty: ty.clone(),
            addr_taken: false,
            storage: Storage::Unassigned,
            pos: Pos::default(),
            sym,
        });
        id
    }

    // ----- conditions -----

    /// Emit a branch to `label` taken when `cond`'s truth equals `when`.
    fn branch(&mut self, cond: &Expr, when: bool, label: u32) -> CcResult<()> {
        match &cond.kind {
            ExprKind::Unary("!", inner) => self.branch(inner, !when, label),
            ExprKind::Binary("&&", a, b) => {
                if when {
                    // Jump if both true.
                    let skip = self.fresh_label();
                    self.branch(a, false, skip)?;
                    self.branch(b, true, label)?;
                    self.emit(StmtIr::Label(skip));
                } else {
                    self.branch(a, false, label)?;
                    self.branch(b, false, label)?;
                }
                Ok(())
            }
            ExprKind::Binary("||", a, b) => {
                if when {
                    self.branch(a, true, label)?;
                    self.branch(b, true, label)?;
                } else {
                    let skip = self.fresh_label();
                    self.branch(a, true, skip)?;
                    self.branch(b, false, label)?;
                    self.emit(StmtIr::Label(skip));
                }
                Ok(())
            }
            _ => {
                let (t, _) = self.expr(cond)?;
                self.emit(StmtIr::CJump(t, when, label));
                Ok(())
            }
        }
    }

    // ----- expressions -----

    /// Lower an expression used only for effect. Returns `None` when the
    /// whole effect was emitted as statements (printf expansion).
    fn expr_for_effect(&mut self, e: &Expr) -> CcResult<Option<Tree>> {
        match &e.kind {
            ExprKind::Call(name, args) if name == "printf" => {
                self.lower_printf(e.pos, args)?;
                Ok(None)
            }
            // Statement-level x++ needs no temporary.
            ExprKind::Postfix(op, inner) => {
                let t = self.incdec(inner, op, e.pos)?;
                Ok(Some(t))
            }
            _ => {
                let (t, _) = self.expr(e)?;
                Ok(Some(t))
            }
        }
    }

    fn lower_printf(&mut self, pos: Pos, args: &[Expr]) -> CcResult<()> {
        let Some(first) = args.first() else {
            return err(pos, "printf needs a format string");
        };
        let ExprKind::StrLit(fmt) = &first.kind else {
            return err(first.pos, "printf format must be a string literal");
        };
        let mut lit = String::new();
        let mut argi = 1usize;
        let bytes = fmt.as_bytes();
        let mut i = 0;
        let flush =
            |sema: &mut Self, lit: &mut String| {
                if !lit.is_empty() {
                    let label = sema.string_label(lit);
                    sema.emit(StmtIr::Expr(Tree::Call(
                        Sfx::V,
                        "$putstr".into(),
                        vec![Tree::Global(label)],
                    )));
                    lit.clear();
                }
            };
        while i < bytes.len() {
            if bytes[i] == b'%' && i + 1 < bytes.len() {
                let spec = bytes[i + 1];
                i += 2;
                if spec == b'%' {
                    lit.push('%');
                    continue;
                }
                flush(self, &mut lit);
                let Some(arg) = args.get(argi) else {
                    return err(pos, "not enough printf arguments");
                };
                argi += 1;
                let (t, ty) = self.expr(arg)?;
                match spec {
                    b'd' | b'u' | b'x' => {
                        let t = self.convert(t, &ty, &Type::Int, arg.pos)?;
                        self.emit(StmtIr::Expr(Tree::Call(Sfx::V, "$putint".into(), vec![t])));
                    }
                    b'c' => {
                        let t = self.convert(t, &ty, &Type::Int, arg.pos)?;
                        self.emit(StmtIr::Expr(Tree::Call(Sfx::V, "$putchar".into(), vec![t])));
                    }
                    b'f' | b'g' | b'e' => {
                        let t = self.convert(t, &ty, &Type::Double, arg.pos)?;
                        self.emit(StmtIr::Expr(Tree::Call(Sfx::V, "$putflt".into(), vec![t])));
                    }
                    b's' => {
                        if !matches!(ty.decay(), Type::Ptr(_)) {
                            return err(arg.pos, "%s needs a char pointer");
                        }
                        self.emit(StmtIr::Expr(Tree::Call(Sfx::V, "$putstr".into(), vec![t])));
                    }
                    other => {
                        return err(pos, format!("unsupported format %{}", other as char))
                    }
                }
            } else {
                lit.push(bytes[i] as char);
                i += 1;
            }
        }
        flush(self, &mut lit);
        Ok(())
    }

    /// The address of an lvalue; returns (address tree, object type).
    fn lvalue(&mut self, e: &Expr) -> CcResult<(Tree, Type)> {
        match &e.kind {
            ExprKind::Ident(name) => {
                let Some(b) = self.find(name).or_else(|| self.resolve_external(name)) else {
                    return err(e.pos, format!("`{name}` is undefined"));
                };
                match b {
                    Binding::Local(id) => {
                        let ty = self.fctx().locals[id as usize].ty.clone();
                        Ok((Tree::Local(id), ty))
                    }
                    Binding::Param(id) => {
                        let ty = self.fctx().params[id as usize].ty.clone();
                        Ok((Tree::Param(id), ty))
                    }
                    Binding::Global { link_name, ty } | Binding::StaticVar { link_name, ty } => {
                        Ok((Tree::Global(link_name), ty))
                    }
                    Binding::Func { .. } => err(e.pos, "function used as a variable"),
                    Binding::External(ExternalSym::Var { ty, handle }) => {
                        Ok((Tree::Global(format!("{SYM_HANDLE_PREFIX}{handle}")), ty))
                    }
                    Binding::External(ExternalSym::Func { .. }) => {
                        err(e.pos, "function used as a variable")
                    }
                }
            }
            ExprKind::Unary("*", inner) => {
                let (t, ty) = self.expr(inner)?;
                let Some(pointee) = ty.pointee().cloned() else {
                    return err(e.pos, format!("cannot dereference `{ty}`"));
                };
                Ok((t, pointee))
            }
            ExprKind::Index(base, idx) => {
                let (bt, bty) = self.expr(base)?;
                let Some(el) = bty.pointee().cloned() else {
                    return err(e.pos, format!("cannot index `{bty}`"));
                };
                let (it, ity) = self.expr(idx)?;
                if !ity.is_integer() {
                    return err(idx.pos, "array index must be an integer");
                }
                let scaled = Tree::Bin(
                    BinIr::Mul,
                    Sfx::I,
                    Box::new(it),
                    Box::new(Tree::Cnst(Sfx::I, Const::I(el.size() as i64))),
                );
                Ok((Tree::Bin(BinIr::Add, Sfx::P, Box::new(bt), Box::new(scaled)), el))
            }
            ExprKind::Member(base, fname, is_arrow) => {
                let (bt, bty) = if *is_arrow {
                    let (t, ty) = self.expr(base)?;
                    let Some(p) = ty.pointee().cloned() else {
                        return err(e.pos, "-> on a non-pointer");
                    };
                    (t, p)
                } else {
                    self.lvalue(base)?
                };
                let Type::Struct(sd) = &bty else {
                    return err(e.pos, format!("member access on `{bty}`"));
                };
                let Some(field) = sd.field(fname) else {
                    return err(e.pos, format!("no field `{fname}` in struct {}", sd.name));
                };
                let fty = field.ty.clone();
                let off = field.offset;
                Ok((
                    Tree::Bin(
                        BinIr::Add,
                        Sfx::P,
                        Box::new(bt),
                        Box::new(Tree::Cnst(Sfx::I, Const::I(off as i64))),
                    ),
                    fty,
                ))
            }
            _ => err(e.pos, "expression is not an lvalue"),
        }
    }

    fn resolve_external(&mut self, name: &str) -> Option<Binding> {
        let r = self.resolver.as_mut()?;
        let sym = r.lookup(name)?;
        Some(Binding::External(sym))
    }

    fn mark_addr_taken(&mut self, t: &Tree) {
        match t {
            Tree::Local(id) => self.fctx().locals[*id as usize].addr_taken = true,
            Tree::Param(id) => self.fctx().params[*id as usize].addr_taken = true,
            Tree::Bin(_, _, a, b) => {
                self.mark_addr_taken(a);
                self.mark_addr_taken(b);
            }
            _ => {}
        }
    }

    /// Load an lvalue as an rvalue, with promotions and array decay.
    fn load(&mut self, addr: Tree, ty: &Type) -> (Tree, Type) {
        match ty {
            Type::Array(..) => (addr, ty.decay()),
            Type::Struct(_) => (addr, ty.clone()), // struct rvalues stay addresses
            _ => {
                let sfx = ty.suffix();
                let t = Tree::Indir(sfx, Box::new(addr));
                // Integral promotion to int.
                match ty {
                    Type::Char | Type::UChar | Type::Short | Type::UShort => {
                        (Tree::Cvt(sfx, Sfx::I, Box::new(t)), Type::Int)
                    }
                    _ => (t, ty.clone()),
                }
            }
        }
    }

    /// Lower an expression to (tree, type).
    pub(crate) fn expr(&mut self, e: &Expr) -> CcResult<(Tree, Type)> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok((Tree::Cnst(Sfx::I, Const::I(*v)), Type::Int)),
            ExprKind::CharLit(c) => Ok((Tree::Cnst(Sfx::I, Const::I(*c as i64)), Type::Int)),
            ExprKind::FloatLit(v) => Ok((Tree::Cnst(Sfx::D, Const::F(*v)), Type::Double)),
            ExprKind::StrLit(s) => {
                let label = self.string_label(s);
                Ok((Tree::Global(label), Type::Ptr(Rc::new(Type::Char))))
            }
            ExprKind::SizeofType(t) => {
                Ok((Tree::Cnst(Sfx::I, Const::I(t.size() as i64)), Type::Int))
            }
            ExprKind::SizeofExpr(inner) => {
                // Type only; do not evaluate.
                let (_, ty) = self.expr(inner)?;
                Ok((Tree::Cnst(Sfx::I, Const::I(ty.size() as i64)), Type::Int))
            }
            ExprKind::Ident(_) | ExprKind::Index(..) | ExprKind::Member(..) => {
                let (addr, ty) = self.lvalue(e)?;
                Ok(self.load(addr, &ty))
            }
            ExprKind::Unary("*", _) => {
                let (addr, ty) = self.lvalue(e)?;
                Ok(self.load(addr, &ty))
            }
            ExprKind::Unary("&", inner) => {
                let (addr, ty) = self.lvalue(inner)?;
                self.mark_addr_taken(&addr);
                Ok((addr, Type::Ptr(Rc::new(ty))))
            }
            ExprKind::Unary("-", inner) => {
                let (t, ty) = self.expr(inner)?;
                if !ty.is_arith() {
                    return err(e.pos, "unary - needs arithmetic");
                }
                // Fold negated literals.
                if let Tree::Cnst(s, c) = &t {
                    let folded = match c {
                        Const::I(v) => Const::I(v.wrapping_neg()),
                        Const::F(v) => Const::F(-v),
                    };
                    return Ok((Tree::Cnst(*s, folded), ty));
                }
                Ok((Tree::Un(UnIr::Neg, ty.suffix(), Box::new(t)), ty))
            }
            ExprKind::Unary("~", inner) => {
                let (t, ty) = self.expr(inner)?;
                if !ty.is_integer() {
                    return err(e.pos, "~ needs an integer");
                }
                Ok((Tree::Un(UnIr::Bcom, ty.suffix(), Box::new(t)), ty))
            }
            ExprKind::Unary("!", inner) => {
                let (t, ty) = self.expr(inner)?;
                let zero = if ty.is_float() {
                    Tree::Cnst(ty.suffix(), Const::F(0.0))
                } else {
                    Tree::Cnst(Sfx::I, Const::I(0))
                };
                Ok((
                    Tree::Bin(BinIr::Eq, ty.suffix(), Box::new(t), Box::new(zero)),
                    Type::Int,
                ))
            }
            ExprKind::Unary(op @ ("++" | "--"), inner) => {
                let t = self.incdec(inner, op, e.pos)?;
                let ty = self.lvalue(inner)?.1;
                Ok((t, ty))
            }
            ExprKind::Postfix(op, inner) => {
                // Value context: old value via a temporary.
                let (addr, ty) = self.lvalue(inner)?;
                let tmp = self.temp(&ty);
                let (val, _) = self.load(addr.clone(), &ty);
                let save = Tree::Asgn(ty.decay().suffix(), Box::new(Tree::Local(tmp)), Box::new(val));
                self.emit(StmtIr::Expr(save));
                let t = self.incdec(inner, op, e.pos)?;
                self.emit(StmtIr::Expr(t));
                let (old, oty) = self.load(Tree::Local(tmp), &ty);
                Ok((old, oty))
            }
            ExprKind::Unary(op, _) => err(e.pos, format!("unsupported unary {op}")),
            ExprKind::Cast(to, inner) => {
                let (t, ty) = self.expr(inner)?;
                let t = self.convert(t, &ty, to, e.pos)?;
                Ok((t, to.clone()))
            }
            ExprKind::Binary(op @ ("&&" | "||"), ..) => {
                // Value context: materialize 0/1 through branches.
                let tmp = self.temp(&Type::Int);
                let ltrue = self.fresh_label();
                let lend = self.fresh_label();
                let when_true = *op == "&&" || *op == "||";
                let _ = when_true;
                self.branch(e, true, ltrue)?;
                self.emit(StmtIr::Expr(Tree::Asgn(
                    Sfx::I,
                    Box::new(Tree::Local(tmp)),
                    Box::new(Tree::Cnst(Sfx::I, Const::I(0))),
                )));
                self.emit(StmtIr::Jump(lend));
                self.emit(StmtIr::Label(ltrue));
                self.emit(StmtIr::Expr(Tree::Asgn(
                    Sfx::I,
                    Box::new(Tree::Local(tmp)),
                    Box::new(Tree::Cnst(Sfx::I, Const::I(1))),
                )));
                self.emit(StmtIr::Label(lend));
                Ok((Tree::Indir(Sfx::I, Box::new(Tree::Local(tmp))), Type::Int))
            }
            ExprKind::Binary(op, a, b) => self.binary(op, a, b, e.pos),
            ExprKind::Assign("=", lhs, rhs) => {
                let (addr, lty) = self.lvalue(lhs)?;
                if matches!(lty, Type::Struct(_) | Type::Array(..)) {
                    return err(e.pos, "aggregate assignment is not in the subset");
                }
                let (rt, rty) = self.expr(rhs)?;
                let rt = self.convert(rt, &rty, &lty, rhs.pos)?;
                Ok((Tree::Asgn(lty.suffix(), Box::new(addr), Box::new(rt)), lty))
            }
            ExprKind::Assign(op, lhs, rhs) => {
                // a op= b  →  a = a op b (address re-evaluated; addresses
                // with side effects are out of the subset).
                let bin: &'static str = &op[..op.len() - 1];
                let inner = Expr {
                    kind: ExprKind::Binary(
                        match bin {
                            "+" => "+",
                            "-" => "-",
                            "*" => "*",
                            "/" => "/",
                            "%" => "%",
                            "&" => "&",
                            "|" => "|",
                            "^" => "^",
                            "<<" => "<<",
                            ">>" => ">>",
                            _ => return err(e.pos, "bad compound assignment"),
                        },
                        lhs.clone(),
                        rhs.clone(),
                    ),
                    pos: e.pos,
                };
                let assign = Expr {
                    kind: ExprKind::Assign("=", lhs.clone(), Box::new(inner)),
                    pos: e.pos,
                };
                self.expr(&assign)
            }
            ExprKind::Call(name, args) => self.call(name, args, e.pos),
        }
    }

    fn incdec(&mut self, lv: &Expr, op: &str, pos: Pos) -> CcResult<Tree> {
        let (addr, ty) = self.lvalue(lv)?;
        let one = if ty.is_float() {
            Tree::Cnst(ty.suffix(), Const::F(1.0))
        } else if ty.is_pointer() {
            let sz = ty.pointee().map(Type::size).unwrap_or(1);
            Tree::Cnst(Sfx::I, Const::I(sz as i64))
        } else {
            Tree::Cnst(Sfx::I, Const::I(1))
        };
        let (val, vty) = self.load(addr.clone(), &ty);
        let bir = if op.starts_with('+') { BinIr::Add } else { BinIr::Sub };
        let newv = Tree::Bin(bir, vty.suffix(), Box::new(val), Box::new(one));
        let newv = self.convert(newv, &vty, &ty, pos)?;
        Ok(Tree::Asgn(ty.suffix(), Box::new(addr), Box::new(newv)))
    }

    fn binary(&mut self, op: &str, a: &Expr, b: &Expr, pos: Pos) -> CcResult<(Tree, Type)> {
        let (mut ta, tya) = self.expr(a)?;
        let (mut tb, tyb) = self.expr(b)?;
        let bir = match op {
            "+" => BinIr::Add,
            "-" => BinIr::Sub,
            "*" => BinIr::Mul,
            "/" => BinIr::Div,
            "%" => BinIr::Mod,
            "&" => BinIr::Band,
            "|" => BinIr::Bor,
            "^" => BinIr::Bxor,
            "<<" => BinIr::Lsh,
            ">>" => BinIr::Rsh,
            "==" => BinIr::Eq,
            "!=" => BinIr::Ne,
            "<" => BinIr::Lt,
            "<=" => BinIr::Le,
            ">" => BinIr::Gt,
            ">=" => BinIr::Ge,
            other => return err(pos, format!("unsupported operator {other}")),
        };
        // Pointer arithmetic.
        let pa = tya.is_pointer();
        let pb = tyb.is_pointer();
        if pa || pb {
            match bir {
                BinIr::Add | BinIr::Sub if pa && !pb => {
                    let el = tya.pointee().map(Type::size).unwrap_or(1) as i64;
                    let scaled = Tree::Bin(
                        BinIr::Mul,
                        Sfx::I,
                        Box::new(tb),
                        Box::new(Tree::Cnst(Sfx::I, Const::I(el))),
                    );
                    return Ok((
                        Tree::Bin(bir, Sfx::P, Box::new(ta), Box::new(scaled)),
                        tya.decay(),
                    ));
                }
                BinIr::Add if pb && !pa => {
                    let el = tyb.pointee().map(Type::size).unwrap_or(1) as i64;
                    let scaled = Tree::Bin(
                        BinIr::Mul,
                        Sfx::I,
                        Box::new(ta),
                        Box::new(Tree::Cnst(Sfx::I, Const::I(el))),
                    );
                    return Ok((
                        Tree::Bin(BinIr::Add, Sfx::P, Box::new(tb), Box::new(scaled)),
                        tyb.decay(),
                    ));
                }
                BinIr::Sub if pa && pb => {
                    let el = tya.pointee().map(Type::size).unwrap_or(1) as i64;
                    let diff = Tree::Bin(BinIr::Sub, Sfx::I, Box::new(ta), Box::new(tb));
                    return Ok((
                        Tree::Bin(
                            BinIr::Div,
                            Sfx::I,
                            Box::new(diff),
                            Box::new(Tree::Cnst(Sfx::I, Const::I(el))),
                        ),
                        Type::Int,
                    ));
                }
                _ if bir.is_cmp() => {
                    return Ok((
                        Tree::Bin(bir, Sfx::P, Box::new(ta), Box::new(tb)),
                        Type::Int,
                    ));
                }
                _ => return err(pos, "invalid pointer arithmetic"),
            }
        }
        if !tya.is_arith() || !tyb.is_arith() {
            return err(pos, format!("operator {op} needs arithmetic operands"));
        }
        // Usual arithmetic conversions.
        let common = usual_arith(&tya, &tyb);
        if matches!(bir, BinIr::Mod | BinIr::Band | BinIr::Bor | BinIr::Bxor | BinIr::Lsh | BinIr::Rsh)
            && common.is_float()
        {
            return err(pos, format!("operator {op} needs integer operands"));
        }
        ta = self.convert(ta, &tya, &common, pos)?;
        tb = self.convert(tb, &tyb, &common, pos)?;
        let result_ty = if bir.is_cmp() { Type::Int } else { common.clone() };
        Ok((Tree::Bin(bir, common.suffix(), Box::new(ta), Box::new(tb)), result_ty))
    }

    fn call(&mut self, name: &str, args: &[Expr], pos: Pos) -> CcResult<(Tree, Type)> {
        if name == "printf" {
            return err(pos, "printf may only appear as a statement in the subset");
        }
        if name == "exit" {
            let (t, ty) = match args.first() {
                Some(a) => self.expr(a)?,
                None => (Tree::Cnst(Sfx::I, Const::I(0)), Type::Int),
            };
            let t = self.convert(t, &ty, &Type::Int, pos)?;
            return Ok((Tree::Call(Sfx::V, "$exit".into(), vec![t]), Type::Void));
        }
        let binding = self.find(name).or_else(|| self.resolve_external(name));
        let (link_name, ret, param_tys): (String, Type, Option<Vec<Type>>) = match binding {
            Some(Binding::Func { link_name, ty }) => (
                link_name,
                ty.ret.clone(),
                Some(ty.params.iter().map(|(_, t)| t.clone()).collect()),
            ),
            Some(Binding::External(ExternalSym::Func { ret, handle })) => {
                (format!("{SYM_HANDLE_PREFIX}{handle}"), ret, None)
            }
            Some(_) => return err(pos, format!("`{name}` is not a function")),
            None => return err(pos, format!("function `{name}` is undefined")),
        };
        let mut trees = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let (t, ty) = self.expr(a)?;
            let want = match &param_tys {
                Some(ps) => ps.get(i).cloned().unwrap_or_else(|| default_promote(&ty)),
                None => default_promote(&ty),
            };
            trees.push(self.convert(t, &ty, &want.decay(), a.pos)?);
        }
        if let Some(ps) = &param_tys {
            if ps.len() != args.len() {
                return err(pos, format!("`{name}` expects {} arguments", ps.len()));
            }
        }
        let sfx = ret.decay().suffix();
        Ok((Tree::Call(sfx, link_name, trees), ret))
    }

    /// Insert a conversion from `from` to `to` (no-op when identical).
    fn convert(&mut self, t: Tree, from: &Type, to: &Type, pos: Pos) -> CcResult<Tree> {
        let from = from.decay();
        let to = to.decay();
        if from == to {
            return Ok(t);
        }
        let (fs, ts) = (from.suffix(), to.suffix());
        if fs == ts {
            return Ok(t);
        }
        // Pointer/integer interconversion is allowed with a cast; the
        // subset also permits implicit pointer<->pointer.
        match (&from, &to) {
            (a, b) if a.is_arith() && b.is_arith() => Ok(Tree::Cvt(fs, ts, Box::new(t))),
            (a, b) if a.is_pointer() && b.is_pointer() => Ok(t),
            (a, b) if a.is_pointer() && b.is_integer() => Ok(Tree::Cvt(Sfx::P, ts, Box::new(t))),
            (a, b) if a.is_integer() && b.is_pointer() => Ok(Tree::Cvt(fs, Sfx::P, Box::new(t))),
            (Type::Void, _) | (_, Type::Void) => {
                err(pos, format!("cannot convert `{from}` to `{to}`"))
            }
            _ => err(pos, format!("cannot convert `{from}` to `{to}`")),
        }
    }
}

fn usual_arith(a: &Type, b: &Type) -> Type {
    if matches!(a, Type::Double) || matches!(b, Type::Double) {
        Type::Double
    } else if matches!(a, Type::Float) || matches!(b, Type::Float) {
        Type::Float
    } else if a.is_unsigned() || b.is_unsigned() {
        Type::UInt
    } else {
        Type::Int
    }
}

fn default_promote(ty: &Type) -> Type {
    match ty {
        Type::Float => Type::Double,
        Type::Char | Type::UChar | Type::Short | Type::UShort => Type::Int,
        other => other.decay(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn lower(src: &str) -> UnitIr {
        analyze(&parse("t.c", src).unwrap()).unwrap()
    }

    const FIB: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
"#;

    #[test]
    fn fib_has_fourteen_stopping_points() {
        let u = lower(FIB);
        let f = &u.funcs[0];
        // The paper's Figure 1 shows stopping points 0..13.
        assert_eq!(f.stops.len(), 14, "stops: {:?}", f.stops);
        // Entry point is index 0 on line 2 (the opening brace).
        assert_eq!(f.stops[0].line, 2);
        // Point 13 is the closing brace.
        assert_eq!(f.stops[13].line, 15);
    }

    #[test]
    fn fib_symbol_uplinks_form_figure2_tree() {
        let u = lower(FIB);
        // Find i, a, n, j, fib.
        let find = |n: &str| u.syms.iter().position(|s| s.name == n).unwrap();
        let (n, a, i, j) = (find("n"), find("a"), find("i"), find("j"));
        assert_eq!(u.syms[a].uplink, Some(n), "a uplinks to n");
        assert_eq!(u.syms[i].uplink, Some(a), "i uplinks to a");
        assert_eq!(u.syms[j].uplink, Some(a), "j uplinks to a (sibling scope of i)");
        assert_eq!(u.syms[n].uplink, None);
    }

    #[test]
    fn stop_points_see_correct_symbols() {
        let u = lower(FIB);
        let f = &u.funcs[0];
        let name_at = |idx: usize| {
            f.stops[idx]
                .sym
                .map(|s| u.syms[s].name.clone())
                .unwrap_or_default()
        };
        // Stopping point 9 (j<n) sees j, per the paper.
        assert_eq!(name_at(9), "j");
        // Stopping point 5 (i<n) sees i.
        assert_eq!(name_at(5), "i");
        // Stopping point 1 (n>20) sees a (declared on the line above).
        assert_eq!(name_at(1), "a");
        // Stopping point 0 (function entry) sees only the parameter n.
        assert_eq!(name_at(0), "n");
        // Point 12 (printf) is outside both inner blocks: sees a.
        assert_eq!(name_at(12), "a");
    }

    #[test]
    fn static_array_becomes_private_datum() {
        let u = lower(FIB);
        let a = u.data.iter().find(|d| d.link_name.contains(".a.")).unwrap();
        assert!(a.is_private);
        assert_eq!(a.size, 80);
        // printf literals are split around the format specs.
        assert!(u.data.iter().any(|d| d.str_init.as_deref() == Some(" ")));
        assert!(u.data.iter().any(|d| d.str_init.as_deref() == Some("\n")));
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let u = lower("int f(int *p) { return p[2]; }");
        let f = &u.funcs[0];
        let has_mul_by_4 = f.body.iter().any(|s| {
            format!("{s:?}").contains("Mul") && format!("{s:?}").contains("I(4)")
        });
        assert!(has_mul_by_4, "{:#?}", f.body);
    }

    #[test]
    fn conversions_inserted() {
        let u = lower("double g; int f(int i) { g = i; return g; }");
        let txt = format!("{:?}", u.funcs[0].body);
        assert!(txt.contains("Cvt(I, D"), "{txt}");
        assert!(txt.contains("Cvt(D, I"), "{txt}");
    }

    #[test]
    fn char_loads_promote() {
        let u = lower("int f(char *s) { return s[0]; }");
        let txt = format!("{:?}", u.funcs[0].body);
        assert!(txt.contains("Indir(C"), "{txt}");
        assert!(txt.contains("Cvt(C, I"), "{txt}");
    }

    #[test]
    fn type_errors_detected() {
        for bad in [
            "int f(void) { return x; }",
            "int f(int i) { return i(); }",
            "int f(double d) { return d % 2; }",
            "struct s { int x; }; int f(struct s v) { return v; }",
            "int f(void) { break; }",
            "int f(int i) { return *i; }",
        ] {
            let ast = parse("t.c", bad);
            let Ok(ast) = ast else { continue };
            assert!(analyze(&ast).is_err(), "{bad}");
        }
    }

    #[test]
    fn short_circuit_value_and_branch() {
        lower("int f(int a, int b) { int c; c = a && b; if (a || !b) c++; return c; }");
    }

    #[test]
    fn address_taken_is_tracked() {
        let u = lower("int f(void) { int x; int *p; p = &x; return *p; }");
        let f = &u.funcs[0];
        assert!(f.locals.iter().find(|l| l.name == "x").unwrap().addr_taken);
        assert!(!f.locals.iter().find(|l| l.name == "p").unwrap().addr_taken);
    }

    #[test]
    fn external_resolver_supplies_symbols() {
        struct R;
        impl ExternalResolver for R {
            fn lookup(&mut self, name: &str) -> Option<ExternalSym> {
                (name == "i").then(|| ExternalSym::Var { ty: Type::Int, handle: "S10".into() })
            }
        }
        let (tree, ty) = analyze_expression("i + 1", &mut R).unwrap();
        assert_eq!(ty, Type::Int);
        let txt = format!("{tree:?}");
        assert!(txt.contains("@sym:S10"), "{txt}");
        assert!(analyze_expression("zz + 1", &mut R).is_err());
    }

    #[test]
    fn global_initializers_fold() {
        let u = lower("int a = 2 + 3 * 4; double d = -1.5; int t[3] = {7, 8, 9};");
        let a = &u.data[0];
        assert_eq!(a.init[0].value, Const::I(14));
        let d = &u.data[1];
        assert_eq!(d.init[0].value, Const::F(-1.5));
        let t = &u.data[2];
        assert_eq!(t.init.len(), 3);
        assert_eq!(t.init[2].offset, 8);
    }
}
