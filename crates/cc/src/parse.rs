//! Recursive-descent parser for the C subset.

use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::*;
use crate::lex::{err, lex, CcResult, Kw, Pos, Tok, Token};
use crate::types::{StructDef, Type};

/// Parse a compilation unit.
///
/// # Errors
/// Lexical and syntax errors, with positions.
pub fn parse(file: &str, src: &str) -> CcResult<Unit> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0, structs: HashMap::new() };
    let mut unit = Unit { file: file.to_string(), decls: Vec::new() };
    while !p.at_eof() {
        p.top_decl(&mut unit)?;
    }
    Ok(unit)
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
    structs: HashMap<String, Rc<StructDef>>,
}

impl Parser {
    fn cur(&self) -> &Token {
        &self.toks[self.i]
    }

    fn pos(&self) -> Pos {
        self.cur().pos
    }

    fn at_eof(&self) -> bool {
        matches!(self.cur().tok, Tok::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.toks[self.i].clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.cur().tok.is_punct(p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> CcResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            err(self.pos(), format!("expected `{p}`, found {:?}", self.cur().tok))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.cur().tok.is_kw(k) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> CcResult<(String, Pos)> {
        let pos = self.pos();
        match self.advance().tok {
            Tok::Ident(s) => Ok((s, pos)),
            other => err(pos, format!("expected identifier, found {other:?}")),
        }
    }

    // ----- types -----

    /// Does a type start here? (Used to tell declarations from statements.)
    fn starts_type(&self) -> bool {
        match &self.cur().tok {
            Tok::Keyword(k) => matches!(
                k,
                Kw::Void
                    | Kw::Char
                    | Kw::Short
                    | Kw::Int
                    | Kw::Long
                    | Kw::Unsigned
                    | Kw::Signed
                    | Kw::Float
                    | Kw::Double
                    | Kw::Struct
            ),
            _ => false,
        }
    }

    fn starts_decl(&self) -> bool {
        self.starts_type()
            || self.cur().tok.is_kw(Kw::Static)
            || self.cur().tok.is_kw(Kw::Extern)
    }

    /// Parse a base type (no declarator).
    fn base_type(&mut self) -> CcResult<Type> {
        let pos = self.pos();
        if self.eat_kw(Kw::Struct) {
            let (name, _) = self.expect_ident()?;
            // A reference to a previously defined struct.
            return match self.structs.get(&name) {
                Some(s) => Ok(Type::Struct(Rc::clone(s))),
                None => err(pos, format!("unknown struct `{name}`")),
            };
        }
        let mut unsigned = false;
        let mut signed = false;
        loop {
            if self.eat_kw(Kw::Unsigned) {
                unsigned = true;
            } else if self.eat_kw(Kw::Signed) {
                signed = true;
            } else {
                break;
            }
        }
        let base = if self.eat_kw(Kw::Void) {
            Type::Void
        } else if self.eat_kw(Kw::Char) {
            if unsigned {
                Type::UChar
            } else {
                Type::Char
            }
        } else if self.eat_kw(Kw::Short) {
            self.eat_kw(Kw::Int);
            if unsigned {
                Type::UShort
            } else {
                Type::Short
            }
        } else if self.eat_kw(Kw::Int) {
            if unsigned {
                Type::UInt
            } else {
                Type::Int
            }
        } else if self.eat_kw(Kw::Long) {
            self.eat_kw(Kw::Int);
            if unsigned {
                Type::UInt
            } else {
                Type::Int
            }
        } else if self.eat_kw(Kw::Float) {
            Type::Float
        } else if self.eat_kw(Kw::Double) {
            Type::Double
        } else if unsigned || signed {
            // `unsigned x` means `unsigned int x`.
            if unsigned {
                Type::UInt
            } else {
                Type::Int
            }
        } else {
            return err(pos, "expected a type");
        };
        if (unsigned || signed) && base.is_float() {
            return err(pos, "floating types cannot be signed/unsigned");
        }
        Ok(base)
    }

    /// Parse a declarator: `*`* name `[n]`*.
    fn declarator(&mut self, base: &Type) -> CcResult<(String, Type, Pos)> {
        let mut ty = base.clone();
        while self.eat_punct("*") {
            ty = Type::Ptr(Rc::new(ty));
        }
        let (name, pos) = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            let p = self.pos();
            let n = match self.advance().tok {
                Tok::IntLit(n) if n > 0 => n as u32,
                other => return err(p, format!("expected array size, found {other:?}")),
            };
            self.expect_punct("]")?;
            dims.push(n);
        }
        for n in dims.into_iter().rev() {
            ty = Type::Array(Rc::new(ty), n);
        }
        Ok((name, ty, pos))
    }

    // ----- top level -----

    fn top_decl(&mut self, unit: &mut Unit) -> CcResult<()> {
        let is_static = self.eat_kw(Kw::Static);
        let is_extern = !is_static && self.eat_kw(Kw::Extern);
        // Struct definition?
        if self.cur().tok.is_kw(Kw::Struct) && matches!(self.toks.get(self.i + 2).map(|t| &t.tok), Some(t) if t.is_punct("{"))
        {
            self.advance(); // struct
            let (name, pos) = self.expect_ident()?;
            self.expect_punct("{")?;
            let mut fields = Vec::new();
            while !self.eat_punct("}") {
                let base = self.base_type()?;
                loop {
                    let (fname, fty, _) = self.declarator(&base)?;
                    fields.push((fname, fty));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(";")?;
            }
            self.expect_punct(";")?;
            if self.structs.contains_key(&name) {
                return err(pos, format!("struct `{name}` redefined"));
            }
            let def = Rc::new(StructDef::layout(name.clone(), fields));
            self.structs.insert(name, Rc::clone(&def));
            unit.decls.push(TopDecl::Struct(def));
            return Ok(());
        }
        let base = self.base_type()?;
        // `void;` style degenerate declarations are rejected by declarator.
        let (name, ty, pos) = self.declarator(&base)?;
        if self.cur().tok.is_punct("(") {
            // Function definition.
            self.advance();
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                if self.cur().tok.is_kw(Kw::Void) && self.toks[self.i + 1].tok.is_punct(")") {
                    self.advance();
                    self.advance();
                } else {
                    loop {
                        let pbase = self.base_type()?;
                        let (pname, pty, ppos) = self.declarator(&pbase)?;
                        params.push(Param { name: pname, ty: pty.decay(), pos: ppos });
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
            }
            if self.eat_punct(";") {
                // A prototype: record as an extern function variable-free decl.
                unit.decls.push(TopDecl::Var(GlobalDecl {
                    name,
                    ty: Type::Func(Rc::new(crate::types::FuncType {
                        ret: ty,
                        params: params.into_iter().map(|p| (p.name, p.ty)).collect(),
                    })),
                    init: None,
                    is_static,
                    is_extern: true,
                    pos,
                }));
                return Ok(());
            }
            let body_pos = self.pos();
            if !self.cur().tok.is_punct("{") {
                return err(body_pos, "expected function body");
            }
            let body = self.block()?;
            let end_pos = self.toks[self.i.saturating_sub(1)].pos;
            unit.decls.push(TopDecl::Func(FuncDecl {
                name,
                ret: ty,
                params,
                body,
                is_static,
                pos,
                end_pos,
            }));
            return Ok(());
        }
        // Global variable(s).
        let mut name = name;
        let mut ty = ty;
        let mut pos = pos;
        loop {
            let init = if self.eat_punct("=") { Some(self.initializer()?) } else { None };
            unit.decls.push(TopDecl::Var(GlobalDecl {
                name: name.clone(),
                ty: ty.clone(),
                init,
                is_static,
                is_extern,
                pos,
            }));
            if !self.eat_punct(",") {
                break;
            }
            let (n2, t2, p2) = self.declarator(&base)?;
            name = n2;
            ty = t2;
            pos = p2;
        }
        self.expect_punct(";")?;
        Ok(())
    }

    fn initializer(&mut self) -> CcResult<Init> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            if !self.eat_punct("}") {
                loop {
                    items.push(self.assignment()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                    if self.cur().tok.is_punct("}") {
                        break; // trailing comma
                    }
                }
                self.expect_punct("}")?;
            }
            return Ok(Init::List(items));
        }
        if let Tok::StrLit(s) = &self.cur().tok {
            let s = s.clone();
            self.advance();
            return Ok(Init::Str(s));
        }
        Ok(Init::Scalar(self.assignment()?))
    }

    // ----- statements -----

    fn block(&mut self) -> CcResult<Stmt> {
        let pos = self.pos();
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return err(pos, "unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(Stmt { kind: StmtKind::Block(stmts), pos })
    }

    fn stmt(&mut self) -> CcResult<Stmt> {
        let pos = self.pos();
        if self.cur().tok.is_punct("{") {
            return self.block();
        }
        if self.starts_decl() {
            let is_static = self.eat_kw(Kw::Static);
            let base = self.base_type()?;
            let mut decls = Vec::new();
            loop {
                let (name, ty, dpos) = self.declarator(&base)?;
                let init = if self.eat_punct("=") { Some(self.assignment()?) } else { None };
                decls.push(LocalDecl { name, ty, init, is_static, pos: dpos });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::Decl(decls), pos });
        }
        if self.eat_kw(Kw::If) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw(Kw::Else) { Some(Box::new(self.stmt()?)) } else { None };
            return Ok(Stmt { kind: StmtKind::If(cond, then, els), pos });
        }
        if self.eat_kw(Kw::While) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt { kind: StmtKind::While(cond, body), pos });
        }
        if self.eat_kw(Kw::Do) {
            let body = Box::new(self.stmt()?);
            if !self.eat_kw(Kw::While) {
                return err(self.pos(), "expected `while` after do-body");
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::DoWhile(body, cond), pos });
        }
        if self.eat_kw(Kw::For) {
            self.expect_punct("(")?;
            let init =
                if self.cur().tok.is_punct(";") { None } else { Some(self.expr()?) };
            self.expect_punct(";")?;
            let cond =
                if self.cur().tok.is_punct(";") { None } else { Some(self.expr()?) };
            self.expect_punct(";")?;
            let step = if self.cur().tok.is_punct(")") { None } else { Some(self.expr()?) };
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt { kind: StmtKind::For(init, cond, step, body), pos });
        }
        if self.eat_kw(Kw::Return) {
            let e = if self.cur().tok.is_punct(";") { None } else { Some(self.expr()?) };
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::Return(e), pos });
        }
        if self.eat_kw(Kw::Break) {
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::Break, pos });
        }
        if self.eat_kw(Kw::Continue) {
            self.expect_punct(";")?;
            return Ok(Stmt { kind: StmtKind::Continue, pos });
        }
        if self.eat_punct(";") {
            return Ok(Stmt { kind: StmtKind::Empty, pos });
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt { kind: StmtKind::Expr(e), pos })
    }

    // ----- expressions -----

    /// Full expression (comma is not an operator in the subset).
    pub(crate) fn expr(&mut self) -> CcResult<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> CcResult<Expr> {
        let lhs = self.binary(0)?;
        let pos = self.pos();
        for opstr in
            ["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="]
        {
            if self.cur().tok.is_punct(opstr) {
                self.advance();
                let rhs = self.assignment()?;
                let opname: &'static str = match opstr {
                    "=" => "=",
                    "+=" => "+=",
                    "-=" => "-=",
                    "*=" => "*=",
                    "/=" => "/=",
                    "%=" => "%=",
                    "&=" => "&=",
                    "|=" => "|=",
                    "^=" => "^=",
                    "<<=" => "<<=",
                    ">>=" => ">>=",
                    _ => unreachable!(),
                };
                return Ok(Expr {
                    kind: ExprKind::Assign(opname, Box::new(lhs), Box::new(rhs)),
                    pos,
                });
            }
        }
        Ok(lhs)
    }

    /// Precedence-climbing over binary operators.
    fn binary(&mut self, min_prec: u8) -> CcResult<Expr> {
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", "<=", ">", ">="],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if min_prec as usize >= LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(min_prec + 1)?;
        loop {
            let mut matched = None;
            for opstr in LEVELS[min_prec as usize] {
                if self.cur().tok.is_punct(opstr) {
                    matched = Some(*opstr);
                    break;
                }
            }
            let Some(op) = matched else { return Ok(lhs) };
            let pos = self.pos();
            self.advance();
            let rhs = self.binary(min_prec + 1)?;
            lhs = Expr { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), pos };
        }
    }

    fn unary(&mut self) -> CcResult<Expr> {
        let pos = self.pos();
        for op in ["-", "!", "~", "*", "&", "++", "--"] {
            if self.cur().tok.is_punct(op) {
                self.advance();
                let e = self.unary()?;
                let opname: &'static str = match op {
                    "-" => "-",
                    "!" => "!",
                    "~" => "~",
                    "*" => "*",
                    "&" => "&",
                    "++" => "++",
                    "--" => "--",
                    _ => unreachable!(),
                };
                return Ok(Expr { kind: ExprKind::Unary(opname, Box::new(e)), pos });
            }
        }
        if self.cur().tok.is_kw(Kw::Sizeof) {
            self.advance();
            if self.cur().tok.is_punct("(") && self.toks[self.i + 1].tok.is_kw_type() {
                self.advance();
                let base = self.base_type()?;
                let mut ty = base;
                while self.eat_punct("*") {
                    ty = Type::Ptr(Rc::new(ty));
                }
                self.expect_punct(")")?;
                return Ok(Expr { kind: ExprKind::SizeofType(ty), pos });
            }
            let e = self.unary()?;
            return Ok(Expr { kind: ExprKind::SizeofExpr(Box::new(e)), pos });
        }
        // Cast: `(type) expr`.
        if self.cur().tok.is_punct("(") && self.toks[self.i + 1].tok.is_kw_type() {
            self.advance();
            let base = self.base_type()?;
            let mut ty = base;
            while self.eat_punct("*") {
                ty = Type::Ptr(Rc::new(ty));
            }
            self.expect_punct(")")?;
            let e = self.unary()?;
            return Ok(Expr { kind: ExprKind::Cast(ty, Box::new(e)), pos });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> CcResult<Expr> {
        let mut e = self.primary()?;
        loop {
            let pos = self.pos();
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr { kind: ExprKind::Index(Box::new(e), Box::new(idx)), pos };
            } else if self.eat_punct(".") {
                let (name, _) = self.expect_ident()?;
                e = Expr { kind: ExprKind::Member(Box::new(e), name, false), pos };
            } else if self.eat_punct("->") {
                let (name, _) = self.expect_ident()?;
                e = Expr { kind: ExprKind::Member(Box::new(e), name, true), pos };
            } else if self.cur().tok.is_punct("++") {
                self.advance();
                e = Expr { kind: ExprKind::Postfix("++", Box::new(e)), pos };
            } else if self.cur().tok.is_punct("--") {
                self.advance();
                e = Expr { kind: ExprKind::Postfix("--", Box::new(e)), pos };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> CcResult<Expr> {
        let pos = self.pos();
        match self.advance().tok {
            Tok::IntLit(v) => Ok(Expr { kind: ExprKind::IntLit(v), pos }),
            Tok::FloatLit(v) => Ok(Expr { kind: ExprKind::FloatLit(v), pos }),
            Tok::CharLit(v) => Ok(Expr { kind: ExprKind::CharLit(v), pos }),
            Tok::StrLit(s) => Ok(Expr { kind: ExprKind::StrLit(s), pos }),
            Tok::Ident(name) => {
                if self.cur().tok.is_punct("(") {
                    self.advance();
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.assignment()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    return Ok(Expr { kind: ExprKind::Call(name, args), pos });
                }
                Ok(Expr { kind: ExprKind::Ident(name), pos })
            }
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => err(pos, format!("unexpected token {other:?}")),
        }
    }
}

impl Tok {
    /// Does this token begin a type name? (Used for casts and sizeof.)
    fn is_kw_type(&self) -> bool {
        matches!(
            self,
            Tok::Keyword(
                Kw::Void
                    | Kw::Char
                    | Kw::Short
                    | Kw::Int
                    | Kw::Long
                    | Kw::Unsigned
                    | Kw::Signed
                    | Kw::Float
                    | Kw::Double
                    | Kw::Struct
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 program must parse.
    pub(crate) const FIB_C: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
"#;

    #[test]
    fn parses_fig1_fib() {
        let unit = parse("fib.c", FIB_C).unwrap();
        assert_eq!(unit.decls.len(), 1);
        match &unit.decls[0] {
            TopDecl::Func(f) => {
                assert_eq!(f.name, "fib");
                assert_eq!(f.params.len(), 1);
                assert_eq!(f.params[0].name, "n");
                assert!(f.end_pos.line >= 14);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn globals_and_structs() {
        let src = r#"
            struct point { int x; int y; double w; };
            int g = 5;
            static int tbl[3] = {1, 2, 3};
            char msg[6] = "hello";
            struct point origin;
            int use(struct point *p) { return p->x + origin.y; }
        "#;
        let unit = parse("t.c", src).unwrap();
        assert_eq!(unit.decls.len(), 6);
        match &unit.decls[0] {
            TopDecl::Struct(s) => assert_eq!(s.size, 16),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let unit = parse("t.c", "int f(void) { return 1 + 2 * 3 < 4 && 5 == 5; }").unwrap();
        let TopDecl::Func(f) = &unit.decls[0] else { panic!() };
        let StmtKind::Block(b) = &f.body.kind else { panic!() };
        let StmtKind::Return(Some(e)) = &b[0].kind else { panic!() };
        // Top is &&.
        let ExprKind::Binary("&&", l, _) = &e.kind else { panic!("{e:?}") };
        let ExprKind::Binary("<", _, _) = &l.kind else { panic!("{l:?}") };
    }

    #[test]
    fn declarators() {
        let unit = parse("t.c", "int *p; int a[2][3]; unsigned short u;").unwrap();
        let tys: Vec<String> = unit
            .decls
            .iter()
            .map(|d| match d {
                TopDecl::Var(v) => v.ty.decl_pattern(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(tys, vec!["int *%s", "int %s[2][3]", "unsigned short %s"]);
    }

    #[test]
    fn control_flow_forms() {
        let src = r#"
            int f(int n) {
                int s = 0;
                while (n > 0) { s += n; n--; }
                do s++; while (s < 0);
                for (;;) break;
                if (s) return s; else return -s;
            }
        "#;
        parse("t.c", src).unwrap();
    }

    #[test]
    fn casts_and_sizeof() {
        let src = "int f(double d) { return (int)d + sizeof(int) + sizeof d; }";
        parse("t.c", src).unwrap();
    }

    #[test]
    fn syntax_errors_have_positions() {
        let e = parse("t.c", "int f( { }").unwrap_err();
        assert!(e.pos.line >= 1);
        assert!(parse("t.c", "int x = ;").is_err());
        assert!(parse("t.c", "struct nosuch s;").is_err());
    }
}
