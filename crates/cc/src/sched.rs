//! The MIPS delay-slot scheduler.
//!
//! Our MIPS has R3000-style load delay slots: the instruction after a load
//! must not use the loaded register. The scheduler fills each slot with an
//! independent instruction drawn from the following code, or pads with a
//! no-op when none can move.
//!
//! Compiling for debugging restricts the scheduler: "the scheduler may
//! rearrange instructions only within [top-level] expressions, not within
//! basic blocks" (paper, Sec. 3), because execution may stop at any
//! stopping point and the debugger's view must match the source. In
//! restricted mode a stopping point is a scheduling barrier; the paper
//! measured 13% larger MIPS code from exactly this restriction, separate
//! from the cost of the explicit no-ops.

use crate::asm::{AsmFn, AsmIns};
use ldb_machine::Op;

/// Statistics from a scheduling pass (for the E2 experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Load delay slots encountered.
    pub slots: u32,
    /// Slots already safe (the next instruction was independent).
    pub already_safe: u32,
    /// Slots filled by moving an independent instruction up.
    pub filled: u32,
    /// Slots padded with a no-op.
    pub padded: u32,
}

/// Registers read by an item (integer registers only; the loaded register
/// hazard is an integer-register hazard).
fn reads(i: &AsmIns) -> Vec<u8> {
    match i {
        AsmIns::Op(op) => match *op {
            Op::Mov { rs, .. }
            | Op::JumpReg { rs }
            | Op::Tst { rs }
            | Op::Push { rs }
            | Op::CvtIF { rs, .. } => vec![rs],
            Op::Alu { rs, rt, .. } | Op::Cmp { rs, rt } => vec![rs, rt],
            Op::AluI { rs, .. } => vec![rs],
            Op::Load { base, .. } | Op::FLoad { base, .. } => vec![base],
            Op::Store { rs, base, .. } => vec![rs, base],
            Op::FStore { base, .. } => vec![base],
            Op::Branch { rs, rt, .. } => vec![rs, rt],
            Op::Syscall(_) => vec![], // argument set up separately
            _ => vec![],
        },
        AsmIns::Br { rs, rt, .. } => vec![*rs, *rt],
        _ => vec![],
    }
}

/// Integer register written by an item.
fn writes(i: &AsmIns) -> Option<u8> {
    match i {
        AsmIns::Op(
            Op::LoadImm { rd, .. }
            | Op::LoadUpper { rd, .. }
            | Op::Mov { rd, .. }
            | Op::Alu { rd, .. }
            | Op::AluI { rd, .. }
            | Op::Load { rd, .. }
            | Op::CvtFI { rd, .. }
            | Op::FCmp { rd, .. }
            | Op::Pop { rd },
        )
        | AsmIns::LoadAddr { rd, .. } => Some(*rd),
        _ => None,
    }
}

/// Is this item a scheduling barrier (control flow or a marker)?
fn is_barrier(i: &AsmIns, restricted: bool) -> bool {
    match i {
        AsmIns::Label(_) | AsmIns::Jmp { .. } | AsmIns::Br { .. } | AsmIns::Bcc { .. } => true,
        AsmIns::CallSym(_) => true,
        AsmIns::StopPoint(_) => restricted,
        AsmIns::Op(Op::Syscall(_)) | AsmIns::Op(Op::Break(_)) => true,
        _ => false,
    }
}

/// May this item be moved into a delay slot?
fn movable(i: &AsmIns) -> bool {
    match i {
        AsmIns::Op(op) => matches!(
            *op,
            Op::LoadImm { .. }
                | Op::LoadUpper { .. }
                | Op::Mov { .. }
                | Op::Alu { .. }
                | Op::AluI { .. }
                | Op::FAlu { .. }
                | Op::FNeg { .. }
                | Op::FMov { .. }
                | Op::CvtIF { .. }
                | Op::CvtFI { .. }
                | Op::FCmp { .. }
        ),
        AsmIns::LoadAddr { .. } => true,
        _ => false,
    }
}

fn is_insn(i: &AsmIns) -> bool {
    !matches!(i, AsmIns::Label(_) | AsmIns::StopPoint(_))
}

/// Does item `c` conflict with item `o` (for hoisting `c` over `o`)?
fn conflicts(c: &AsmIns, o: &AsmIns) -> bool {
    let (cr, cw) = (reads(c), writes(c));
    let (or_, ow) = (reads(o), writes(o));
    // RAW, WAR, WAW on integer registers.
    if let Some(w) = cw {
        if or_.contains(&w) || ow == Some(w) {
            return true;
        }
    }
    if let Some(w) = ow {
        if cr.contains(&w) {
            return true;
        }
    }
    // Floating registers: be conservative about any float-register writer.
    let fwrites = |i: &AsmIns| {
        matches!(
            i,
            AsmIns::Op(
                Op::FLoad { .. }
                    | Op::FAlu { .. }
                    | Op::FNeg { .. }
                    | Op::FMov { .. }
                    | Op::CvtIF { .. }
            )
        )
    };
    let freads = |i: &AsmIns| {
        matches!(
            i,
            AsmIns::Op(
                Op::FStore { .. }
                    | Op::FAlu { .. }
                    | Op::FNeg { .. }
                    | Op::FMov { .. }
                    | Op::CvtFI { .. }
                    | Op::FCmp { .. }
            )
        )
    };
    if (fwrites(c) && (freads(o) || fwrites(o))) || (freads(c) && fwrites(o)) {
        return true;
    }
    false
}

/// Fill the load delay slots of a MIPS function. `restricted` corresponds
/// to compiling for debugging. Returns fill statistics.
pub fn fill_delay_slots(a: &mut AsmFn, restricted: bool) -> SchedStats {
    fill_delay_slots_mode(a, restricted, true)
}

/// As [`fill_delay_slots`], with filling optionally disabled (`allow_fill
/// = false` pads every hazardous slot with a no-op — the ablation case).
pub fn fill_delay_slots_mode(a: &mut AsmFn, restricted: bool, allow_fill: bool) -> SchedStats {
    let mut stats = SchedStats::default();
    let mut i = 0;
    while i < a.items.len() {
        let loaded = match &a.items[i] {
            AsmIns::Op(Op::Load { rd, .. }) => Some(*rd),
            _ => None,
        };
        let Some(rd) = loaded else {
            i += 1;
            continue;
        };
        stats.slots += 1;
        // Find the next executed instruction; labels and markers in
        // between mean control can land between load and use, so the slot
        // must be padded before them.
        let next = a.items.get(i + 1);
        let next_is_insn = next.is_some_and(is_insn);
        if next_is_insn {
            let n = &a.items[i + 1];
            let hazard = reads(n).contains(&rd) || writes(n) == Some(rd);
            if !hazard {
                stats.already_safe += 1;
                i += 1;
                continue;
            }
            // Look ahead for an independent, movable instruction.
            let mut j = i + 2;
            let mut candidate = None;
            while allow_fill && j < a.items.len() {
                let it = &a.items[j];
                if is_barrier(it, restricted) {
                    break;
                }
                if !is_insn(it) {
                    // A marker that is not a barrier in this mode (a
                    // stopping point in full scheduling): skip over it.
                    j += 1;
                    continue;
                }
                if movable(it)
                    && !reads(it).contains(&rd)
                    && writes(it) != Some(rd)
                {
                    // Check independence from everything it jumps over.
                    let mut ok = true;
                    for k in (i + 1)..j {
                        if conflicts(it, &a.items[k]) {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        candidate = Some(j);
                        break;
                    }
                }
                // Memory operations block further motion conservatively.
                if matches!(
                    it,
                    AsmIns::Op(Op::Store { .. })
                        | AsmIns::Op(Op::FStore { .. })
                        | AsmIns::Op(Op::Load { .. })
                        | AsmIns::Op(Op::FLoad { .. })
                ) {
                    j += 1;
                    continue;
                }
                j += 1;
            }
            match candidate {
                Some(j) => {
                    let it = a.items.remove(j);
                    a.items.insert(i + 1, it);
                    stats.filled += 1;
                }
                None => {
                    a.items.insert(i + 1, AsmIns::Op(Op::Nop));
                    stats.padded += 1;
                }
            }
        } else {
            // A label, marker, or function end follows: pad.
            a.items.insert(i + 1, AsmIns::Op(Op::Nop));
            stats.padded += 1;
        }
        i += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::FrameInfo;
    use ldb_machine::{AluOp, MemSize};

    fn f(items: Vec<AsmIns>) -> AsmFn {
        AsmFn {
            name: "t".into(),
            link_name: "_t".into(),
            items,
            frame: FrameInfo::default(),
            float_consts: vec![],
            stop_count: 0,
        }
    }

    fn load(rd: u8) -> AsmIns {
        AsmIns::Op(Op::Load { size: MemSize::B4, signed: true, rd, base: 29, off: 0 })
    }

    fn add(rd: u8, rs: u8, rt: u8) -> AsmIns {
        AsmIns::Op(Op::Alu { op: AluOp::Add, rd, rs, rt })
    }

    #[test]
    fn independent_next_needs_nothing() {
        let mut a = f(vec![load(8), add(10, 11, 12)]);
        let s = fill_delay_slots(&mut a, false);
        assert_eq!(s, SchedStats { slots: 1, already_safe: 1, filled: 0, padded: 0 });
        assert_eq!(a.items.len(), 2);
    }

    #[test]
    fn dependent_next_gets_filled_from_below() {
        // load r8; add r9 = r8+r8; mov r10 = r11  →  mov moves into the slot.
        let mut a = f(vec![load(8), add(9, 8, 8), AsmIns::Op(Op::Mov { rd: 10, rs: 11 })]);
        let s = fill_delay_slots(&mut a, false);
        assert_eq!(s.filled, 1);
        assert!(matches!(a.items[1], AsmIns::Op(Op::Mov { .. })), "{:?}", a.items);
    }

    #[test]
    fn no_candidate_pads_with_nop() {
        let mut a = f(vec![load(8), add(9, 8, 8)]);
        let s = fill_delay_slots(&mut a, false);
        assert_eq!(s.padded, 1);
        assert!(matches!(a.items[1], AsmIns::Op(Op::Nop)));
    }

    #[test]
    fn restricted_mode_stops_at_stopping_points() {
        // The candidate sits beyond a stopping point: restricted mode may
        // not move it, full mode may.
        let items = vec![
            load(8),
            add(9, 8, 8),
            AsmIns::StopPoint(1),
            AsmIns::Op(Op::Mov { rd: 10, rs: 11 }),
        ];
        let mut a1 = f(items.clone());
        let s1 = fill_delay_slots(&mut a1, true);
        assert_eq!(s1.padded, 1, "restricted: {:?}", a1.items);
        let mut a2 = f(items);
        let s2 = fill_delay_slots(&mut a2, false);
        assert_eq!(s2.filled, 1, "full: {:?}", a2.items);
    }

    #[test]
    fn label_after_load_forces_pad() {
        let mut a = f(vec![load(8), AsmIns::Label(5), add(9, 8, 8)]);
        let s = fill_delay_slots(&mut a, false);
        assert_eq!(s.padded, 1);
        assert!(matches!(a.items[1], AsmIns::Op(Op::Nop)));
    }

    #[test]
    fn does_not_hoist_conflicting_instruction() {
        // Candidate writes r9 which the dependent instruction writes too —
        // moving it above would be a WAW violation against the dependent
        // read... the conflict check must reject it.
        let items = vec![
            load(8),
            add(9, 8, 8),
            add(10, 9, 9), // reads r9, written by the instruction above
        ];
        let mut a = f(items);
        let s = fill_delay_slots(&mut a, false);
        assert_eq!(s.padded, 1, "{:?}", a.items);
    }

    #[test]
    fn consecutive_loads_to_different_regs_are_safe() {
        let mut a = f(vec![load(8), load(9), add(10, 8, 9)]);
        let s = fill_delay_slots(&mut a, false);
        // First slot: next is load r9 (safe). Second: add reads r9 → pad
        // (loads are not movable candidates).
        assert_eq!(s.already_safe, 1);
        assert_eq!(s.padded, 1);
    }
}
