//! The `nm` analog and loader-table generation (paper, Sec. 3).
//!
//! "After linking a program, the driver uses the UNIX program nm to
//! generate PostScript that, when interpreted, builds a loader table."
//! The loader table contains the program's top-level dictionary, a
//! dictionary mapping anchor-symbol names to addresses, and an array of
//! (address, name) pairs for each procedure. Using `nm` output keeps ldb
//! independent of object-file formats.

use std::fmt::Write as _;

use ldb_machine::{Image, SymKind};

/// Render the symbol table the way `nm` prints it: address, kind letter,
/// name — sorted by name, as `nm` sorts.
pub fn nm_text(image: &Image) -> String {
    let mut syms: Vec<_> = image.symbols.iter().collect();
    syms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    for s in syms {
        let _ = writeln!(out, "{:08x} {} {}", s.addr, s.kind.nm_letter(), s.name);
    }
    out
}

/// Generate the loader-table PostScript from `nm`-style output plus the
/// unit's symbol-table PostScript. Interpreting the result leaves the
/// loader table (a dictionary) on the operand stack.
pub fn loader_table_ps(nm_output: &str, symtab_ps: &str) -> String {
    let mut anchors = String::new();
    let mut procs: Vec<(u32, String)> = Vec::new();
    for line in nm_output.lines() {
        let mut parts = line.split_whitespace();
        let (Some(addr), Some(kind), Some(name)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Ok(addr) = u32::from_str_radix(addr, 16) else { continue };
        if name.starts_with("_stanchor") || name == "__rpt" {
            let _ = write!(anchors, " /{name} 16#{addr:08x}");
        } else if kind == "T" {
            procs.push((addr, name.to_string()));
        }
    }
    procs.sort();
    let mut proctable = String::new();
    for (addr, name) in &procs {
        let _ = write!(proctable, " 16#{addr:08x} ({name})");
    }
    format!(
        "<< /symtab\n{symtab_ps}\n/anchormap <<{anchors} >> /proctable [{proctable} ] >>\n"
    )
}

/// Convenience: loader table straight from an image (runs `nm` internally).
pub fn loader_table_for(image: &Image, symtab_ps: &str) -> String {
    loader_table_ps(&nm_text(image), symtab_ps)
}

/// A loader table for a multi-unit program: loads each unit's symbol
/// table, then merges their top-level dictionaries with PostScript code —
/// the combined dictionary the paper describes ("any combination of
/// compilation units, up to an entire program").
pub fn loader_table_for_units(image: &Image, unit_ps: &[String]) -> String {
    if unit_ps.len() == 1 {
        return loader_table_for(image, &unit_ps[0]);
    }
    let mut merged = String::new();
    let _ = writeln!(merged, "/__MrgPut {{ 2 index 3 1 roll put }} def");
    for (i, ps) in unit_ps.iter().enumerate() {
        let _ = writeln!(merged, "/__Unit{i}
{ps}
def");
    }
    let splat = |field: &str| {
        let mut s = String::from("[");
        for i in 0..unit_ps.len() {
            s.push_str(&format!(" __Unit{i} /{field} get aload pop"));
        }
        s.push_str(" ]");
        s
    };
    let merge_dicts = |field: &str| {
        let mut s = format!("{} dict", unit_ps.len() * 16);
        for i in 0..unit_ps.len() {
            s.push_str(&format!(" __Unit{i} /{field} get {{ __MrgPut }} forall"));
        }
        s
    };
    let _ = writeln!(
        merged,
        "<< /procs {} /externs {} /statics {} /sourcemap {} /anchors {}          /architecture __Unit0 /architecture get >>",
        splat("procs"),
        merge_dicts("externs"),
        merge_dicts("statics"),
        merge_dicts("sourcemap"),
        splat("anchors"),
    );
    loader_table_ps(&nm_text(image), &merged)
}

/// Parse one `nm` line (exposed for the baseline debugger and tests).
pub fn parse_nm_line(line: &str) -> Option<(u32, char, &str)> {
    let mut parts = line.split_whitespace();
    let addr = u32::from_str_radix(parts.next()?, 16).ok()?;
    let kind = parts.next()?.chars().next()?;
    let name = parts.next()?;
    Some((addr, kind, name))
}

/// The kind letters `nm` prints for private symbols are lowercase.
pub fn is_private_kind(k: SymKind) -> bool {
    matches!(k, SymKind::Private)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile, CompileOpts};
    use crate::pssym::{emit, PsMode};
    use ldb_machine::Arch;

    const SRC: &str = "static int s; int g; int main(void) { s = 1; return g; }";

    #[test]
    fn nm_output_shape() {
        let c = compile("t.c", SRC, Arch::Sparc, CompileOpts::default()).unwrap();
        let text = nm_text(&c.linked.image);
        assert!(text.contains(" T _main"), "{text}");
        assert!(text.contains(" D _g"), "{text}");
        assert!(text.contains(" d t_c.s"), "{text}");
        assert!(text.contains("_stanchor__V"), "{text}");
        for line in text.lines() {
            assert!(parse_nm_line(line).is_some(), "{line}");
        }
    }

    #[test]
    fn loader_table_builds_in_the_interpreter() {
        let c = compile("t.c", SRC, Arch::Vax, CompileOpts::default()).unwrap();
        let symtab = emit(&c.unit, &c.funcs, Arch::Vax, PsMode::Eager);
        let loader = loader_table_for(&c.linked.image, &symtab);
        let mut interp = ldb_postscript::Interp::new();
        interp.run_str("/Regset0 {/r exch} def /Frameoff {/l exch} def").unwrap();
        interp.run_str(&loader).unwrap();
        let dict = interp.pop().unwrap().as_dict().unwrap();
        let dict = dict.borrow();
        // The three components of the paper's loader table.
        let symtab = dict.get_name("symtab").unwrap().as_dict().unwrap();
        assert!(symtab.borrow().get_name("procs").is_some());
        let am = dict.get_name("anchormap").unwrap().as_dict().unwrap();
        assert_eq!(am.borrow().len(), 1);
        let pt = dict.get_name("proctable").unwrap().as_array().unwrap();
        // (address, name) pairs: at least __start and _main.
        assert!(pt.borrow().len() >= 4);
        // Anchor address matches the linker's.
        let (k, v) = am.borrow().iter().next().map(|(k, v)| (k.to_string(), v.clone())).unwrap();
        assert!(k.starts_with("/_stanchor"));
        assert_eq!(v.as_int().unwrap() as u32, c.linked.anchor_addr);
    }

    #[test]
    fn proctable_is_sorted_by_address() {
        let src = "int a(void){return 1;} int b(void){return 2;} int main(void){return a()+b();}";
        let c = compile("t.c", src, Arch::Mips, CompileOpts::default()).unwrap();
        let loader = loader_table_for(&c.linked.image, "<< >>");
        let mut interp = ldb_postscript::Interp::new();
        interp.run_str(&loader).unwrap();
        interp.run_str("/proctable get").unwrap();
        let pt = interp.pop().unwrap().as_array().unwrap();
        let pt = pt.borrow();
        let addrs: Vec<i64> = pt
            .iter()
            .step_by(2)
            .map(|o| o.as_int().unwrap())
            .collect();
        let mut sorted = addrs.clone();
        sorted.sort();
        assert_eq!(addrs, sorted);
        assert_eq!(pt.len() % 2, 0);
    }
}
