//! The PostScript symbol-table emitter (paper, Sec. 2).
//!
//! The compiler emits a *machine-independent* symbol table as a PostScript
//! program. Interpreting it builds: one dictionary per symbol (`/S10 <<
//! ... >> def`), shared type dictionaries carrying both a declaration
//! pattern and a *printer procedure*, a `loci` array of stopping points
//! per procedure, and a top-level dictionary for the unit.
//!
//! Machine-dependent values appear only as *data* (register numbers fed to
//! the per-architecture `Regset0`, frame sizes, save masks) or as lazy
//! anchor references (`(_stanchor_...) k LazyData`), never as
//! machine-dependent code.
//!
//! Two emission modes reproduce the paper's Sec. 5 measurement: *eager*
//! writes procedures as `{...}` bodies the scanner must analyze at load
//! time; *deferred* quotes them as `(...) cvx` strings, which read ~40%
//! faster and are scanned only if executed.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::anchors::{anchor_symbol, stop_anchor_index};
use crate::asm::AsmFn;
use crate::ir::{SymKindIr, UnitIr, WhereIr};
use crate::types::Type;
use ldb_machine::Arch;

/// Emission mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsMode {
    /// Procedures as `{...}` (scanned at load time).
    Eager,
    /// Procedures as `(...) cvx` (lexing deferred until execution).
    Deferred,
}

/// Escape a string for a PostScript `(...)` literal.
pub fn ps_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('(');
    for c in s.chars() {
        match c {
            '(' => out.push_str("\\("),
            ')' => out.push_str("\\)"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push(')');
    out
}

struct Emitter {
    mode: PsMode,
    prefix: String,
    out: String,
    /// decl-pattern → type dict name.
    types: HashMap<String, String>,
    type_defs: String,
}

/// Emit the PostScript symbol table for a compiled unit.
///
/// The returned program defines every entry and leaves the unit's
/// *top-level dictionary* on the operand stack.
pub fn emit(unit: &UnitIr, funcs: &[AsmFn], arch: Arch, mode: PsMode) -> String {
    emit_prefixed(unit, funcs, arch, mode, "")
}

/// As [`emit`], with every generated name (`S3`, `T1`, `__statics`)
/// prefixed — required when several units load into one dictionary (a
/// multi-unit program's combined top-level dictionary).
pub fn emit_prefixed(
    unit: &UnitIr,
    funcs: &[AsmFn],
    arch: Arch,
    mode: PsMode,
    prefix: &str,
) -> String {
    let mut e = Emitter {
        mode,
        prefix: prefix.to_string(),
        out: String::with_capacity(16 * 1024),
        types: HashMap::new(),
        type_defs: String::new(),
    };
    e.run(unit, funcs, arch);
    e.out
}

impl Emitter {
    /// Wrap a code body per the emission mode.
    fn code(&self, body: &str) -> String {
        match self.mode {
            PsMode::Eager => format!("{{{body}}}"),
            PsMode::Deferred => format!("({body}) cvx"),
        }
    }

    /// Get (or create) the type dictionary name for `ty`.
    fn type_ref(&mut self, ty: &Type) -> String {
        let key = ty.decl_pattern();
        if let Some(n) = self.types.get(&key) {
            return n.clone();
        }
        let name = format!("{}T{}", self.prefix, self.types.len() + 1);
        // Reserve the name first so recursive types terminate.
        self.types.insert(key.clone(), name.clone());
        let printer = match ty {
            Type::Int => "INT",
            Type::UInt => "UINT",
            Type::Char => "CHAR",
            Type::UChar => "UCHAR",
            Type::Short => "SHORT",
            Type::UShort => "USHORT",
            Type::Float => "FLOAT",
            Type::Double => "DOUBLE",
            // Char pointers print the address and the string, like dbx.
            Type::Ptr(p) if matches!(p.as_ref(), Type::Char) => "PSTRING",
            Type::Ptr(_) => "PTR",
            // Char arrays print as string literals, like dbx.
            Type::Array(el, _) if matches!(el.as_ref(), Type::Char) => "CSTRING",
            Type::Array(..) => "ARRAY",
            Type::Struct(_) => "STRUCT",
            Type::Func(_) => "FUNC",
            Type::Void => "VOIDP",
        };
        let mut extra = String::new();
        let _ = write!(extra, " /&size {}", ty.size());
        match ty {
            Type::Array(el, n) => {
                let elref = self.type_ref(el);
                let _ = write!(
                    extra,
                    " /&elemtype {elref} /&elemsize {} /&arraysize {}",
                    el.size(),
                    el.size() * n
                );
            }
            Type::Ptr(p) => {
                let pref = self.type_ref(p);
                let _ = write!(extra, " /&pointee {pref}");
            }
            Type::Struct(sd) => {
                let mut fields = String::from(" /&fields [");
                for f in &sd.fields {
                    let fref = self.type_ref(&f.ty);
                    let _ = write!(fields, " {} {} {fref}", ps_string(&f.name), f.offset);
                }
                fields.push_str(" ]");
                extra.push_str(&fields);
            }
            _ => {}
        }
        let printer = self.code(printer);
        let _ = writeln!(
            self.type_defs,
            "/{name} << /decl {} /printer {printer}{extra} >> def",
            ps_string(&ty.decl_pattern()),
        );
        name
    }

    fn where_clause(&mut self, w: &WhereIr, anchor: &str) -> Option<String> {
        match w {
            WhereIr::None => None,
            WhereIr::Reg(r) => Some(format!("{r} Regset0 Absolute")),
            WhereIr::Frame(off) => Some(format!("{off} Frameoff Absolute")),
            WhereIr::Anchor(k) => {
                Some(format!("/where {}", self.code(&format!("({anchor}) {k} LazyData"))))
            }
        }
        .map(|s| {
            if s.starts_with("/where") {
                s
            } else {
                format!("/where {s}")
            }
        })
    }

    fn run(&mut self, unit: &UnitIr, funcs: &[AsmFn], arch: Arch) {
        let anchor = anchor_symbol(unit);
        let file = ps_string(&unit.file);

        let mut entries = String::new();

        // --- variable entries, in arena order (uplinks point backward) ---
        for (i, s) in unit.syms.iter().enumerate() {
            if s.kind != SymKindIr::Variable || s.name.starts_with("$t") {
                continue;
            }
            let tref = self.type_ref(&s.ty);
            let mut body = String::new();
            let _ = write!(
                body,
                "/name {} /type {tref} /sourcefile {file} /sourcey {} /sourcex {} /kind (variable)",
                ps_string(&s.name),
                s.pos.line,
                s.pos.col
            );
            if let Some(w) = self.where_clause(&s.where_, &anchor) {
                let _ = write!(body, " {w}");
            }
            if let Some(up) = s.uplink {
                let _ = write!(body, " /uplink {}S{up}", self.prefix);
            }
            let _ = writeln!(entries, "/{}S{i} << {body} >> def", self.prefix);
        }

        // --- procedure entries (reference formals/loci defined above) ---
        let mut proc_refs = Vec::new();
        let mut externs = Vec::new();
        let mut statics = Vec::new();
        for (i, s) in unit.syms.iter().enumerate() {
            if s.kind != SymKindIr::Procedure {
                if s.uplink.is_none() && !s.name.starts_with("$t") {
                    if s.is_extern_scope {
                        externs.push((s.name.clone(), i));
                    } else if s.is_static_scope {
                        statics.push((s.name.clone(), i));
                    }
                }
                continue;
            }
            // Find the matching function IR and assembler function.
            let Some((fi, f)) =
                unit.funcs.iter().enumerate().find(|(_, f)| f.sym == i)
            else {
                continue; // a prototype without a body
            };
            let tref = self.type_ref(&s.ty);
            let mut body = String::new();
            let _ = write!(
                body,
                "/name {} /type {tref} /sourcefile {file} /sourcey {} /sourcex {} /kind (procedure)",
                ps_string(&s.name),
                s.pos.line,
                s.pos.col
            );
            if let Some(last) = f.params.last() {
                let _ = write!(body, " /formals {}S{}", self.prefix, last.sym);
            }
            // Parameter types, in order: enough for a caller (the
            // debugger's call staging, or the expression server) to
            // coerce arguments and check arity.
            let mut argtypes = String::from(" /&argtypes [");
            for prm in &f.params {
                let pt = unit.syms[prm.sym].ty.clone();
                let _ = write!(argtypes, " {}", self.type_ref(&pt));
            }
            argtypes.push_str(" ]");
            body.push_str(&argtypes);
            // Machine-dependent extras: frame size and register-save mask.
            // "we have done so for two targets ... the compiler adds
            // register-save masks when compiling procedures for the 68020."
            if let Some(asm) = funcs.get(fi) {
                let _ = write!(
                    body,
                    " /framesize {} /savemask 16#{:x} /saveoffset {}",
                    asm.frame.size, asm.frame.save_mask, asm.frame.save_offset
                );
                if let Some(ra) = asm.frame.ra_offset {
                    let _ = write!(body, " /raoffset {ra}");
                }
            }
            // Stopping points. In deferred mode the whole loci array is
            // quoted: it is code, scanned only when the debugger first
            // needs this procedure's stopping points.
            let mut inner = String::new();
            for (si, stop) in f.stops.iter().enumerate() {
                let k = stop_anchor_index(unit, fi, si);
                let lazy = match self.mode {
                    PsMode::Eager => format!("{{({anchor}) {k} LazyAddr}}"),
                    PsMode::Deferred => format!("(({anchor}) {k} LazyAddr) cvx"),
                };
                let symref = match stop.sym {
                    Some(sy) if !unit.syms[sy].name.starts_with("$t") => {
                        format!("{}S{sy}", self.prefix)
                    }
                    _ => "null".to_string(),
                };
                let _ = write!(inner, " [{} {} {lazy} {symref}]", stop.line, stop.col);
            }
            let loci = match self.mode {
                PsMode::Eager => format!(" /loci [{inner} ]"),
                PsMode::Deferred => format!(" /loci ( [{inner} ] ) cvx"),
            };
            body.push_str(&loci);
            if s.is_extern_scope {
                externs.push((s.name.clone(), i));
            } else {
                statics.push((s.name.clone(), i));
            }
            proc_refs.push(i);
            let _ = writeln!(entries, "/{}S{i} << {body} >> def", self.prefix);
        }

        // --- assemble the output ---
        let _ = writeln!(
            self.out,
            "% ldb PostScript symbol table: {} ({arch})",
            unit.file
        );
        self.out.push_str(&std::mem::take(&mut self.type_defs));
        self.out.push_str(&entries);

        // Unit statics dictionary: referenced from every procedure entry
        // ("statics in the current procedure's symbol-table entry").
        let _ = write!(self.out, "/{}__statics <<", self.prefix);
        for (n, i) in &statics {
            let _ = write!(self.out, " {} {}S{i}", ps_name(n), self.prefix);
        }
        let _ = writeln!(self.out, " >> def");
        for i in &proc_refs {
            let _ = writeln!(
                self.out,
                "{p}S{i} /statics {p}__statics put",
                p = self.prefix
            );
        }

        // Top-level dictionary, left on the stack.
        let p = self.prefix.clone();
        let _ = write!(self.out, "<< /procs [");
        for i in &proc_refs {
            let _ = write!(self.out, " {p}S{i}");
        }
        let _ = write!(self.out, " ] /externs <<");
        for (n, i) in &externs {
            let _ = write!(self.out, " {} {p}S{i}", ps_name(n));
        }
        let _ = write!(self.out, " >> /statics {p}__statics /sourcemap << {} [", file);
        for i in &proc_refs {
            let _ = write!(self.out, " {p}S{i}");
        }
        let _ = write!(
            self.out,
            " ] >> /anchors [ /{anchor} ] /architecture ({})",
            arch.name()
        );
        let _ = writeln!(self.out, " >>");
    }
}

/// A PostScript literal-name token for an identifier.
fn ps_name(s: &str) -> String {
    format!("/{s}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile, CompileOpts};

    const FIB: &str = r#"void fib(int n)
{
    static int a[20];
    if (n > 20) n = 20;
    a[0] = a[1] = 1;
    { int i;
      for (i=2; i<n; i++)
          a[i] = a[i-1] + a[i-2];
    }
    { int j;
      for (j=0; j<n; j++)
          printf("%d ", a[j]);
    }
    printf("\n");
}
int main(void) { fib(10); return 0; }
"#;

    fn emit_fib(arch: Arch, mode: PsMode) -> String {
        let c = compile("fib.c", FIB, arch, CompileOpts::default()).unwrap();
        emit(&c.unit, &c.funcs, arch, mode)
    }

    #[test]
    fn has_paper_shaped_entries() {
        let ps = emit_fib(Arch::Mips, PsMode::Eager);
        // i's entry: /name (i), variable, a register location via Regset0.
        assert!(ps.contains("/name (i)"), "{ps}");
        assert!(ps.contains("Regset0 Absolute"), "{ps}");
        // a's entry: lazy anchor location.
        assert!(ps.contains("LazyData"), "{ps}");
        assert!(ps.contains("_stanchor__V"), "{ps}");
        // Types carry decl patterns and printers.
        assert!(ps.contains("/decl (int %s[20])"), "{ps}");
        assert!(ps.contains("/printer {ARRAY}"), "{ps}");
        assert!(ps.contains("/architecture (mips)"), "{ps}");
        assert!(ps.contains("/kind (procedure)"), "{ps}");
        assert!(ps.contains("/uplink S"), "{ps}");
    }

    #[test]
    fn deferred_mode_quotes_code() {
        let eager = emit_fib(Arch::Sparc, PsMode::Eager);
        let deferred = emit_fib(Arch::Sparc, PsMode::Deferred);
        assert!(eager.contains("{ARRAY}"));
        assert!(deferred.contains("(ARRAY) cvx"));
        assert!(deferred.contains("LazyAddr) cvx"));
        assert!(!deferred.contains("{ARRAY}"));
    }

    #[test]
    fn loads_into_the_interpreter() {
        for arch in Arch::ALL {
            for mode in [PsMode::Eager, PsMode::Deferred] {
                let ps = emit_fib(arch, mode);
                let mut interp = ldb_postscript::Interp::new();
                // Machine-dependent names used at load time.
                interp
                    .run_str("/Regset0 {/r exch} def /Frameoff {/l exch} def")
                    .unwrap();
                interp
                    .run_str(&ps)
                    .unwrap_or_else(|e| panic!("{arch} {mode:?}: {e}\n{ps}"));
                let top = interp.pop().unwrap().as_dict().unwrap();
                let top = top.borrow();
                assert!(top.get_name("procs").is_some(), "{arch}");
                assert_eq!(
                    top.get_name("architecture")
                        .unwrap()
                        .as_string()
                        .unwrap()
                        .as_ref(),
                    arch.name()
                );
                // externs has fib and main.
                let ext = top.get_name("externs").unwrap().as_dict().unwrap();
                assert!(ext.borrow().get_name("fib").is_some());
                assert!(ext.borrow().get_name("main").is_some());
            }
        }
    }

    #[test]
    fn uplink_tree_is_reachable_in_postscript() {
        let ps = emit_fib(Arch::Mips, PsMode::Eager);
        let mut interp = ldb_postscript::Interp::new();
        interp.run_str("/Regset0 {/r exch} def /Frameoff {/l exch} def").unwrap();
        interp.run_str(&ps).unwrap();
        // Walk: find the visible symbol at the last locus of fib.
        interp
            .run_str("/externs get /fib get /loci get dup length 1 sub get 3 get /name get")
            .unwrap();
        // The closing-brace stop sees `a` (or j, depending on block
        // structure); it must at least be a visible local of fib.
        let name = interp.pop().unwrap().as_string().unwrap();
        assert!(["a", "i", "j", "n"].contains(&name.as_ref()), "{name}");
    }

    #[test]
    fn struct_types_emit_field_tables() {
        let src = "struct pt { int x; double y; }; struct pt g; int main(void) { g.x = 1; return 0; }";
        let c = compile("s.c", src, Arch::Vax, CompileOpts::default()).unwrap();
        let ps = emit(&c.unit, &c.funcs, Arch::Vax, PsMode::Eager);
        assert!(ps.contains("/&fields [ (x) 0 T"), "{ps}");
        assert!(ps.contains("(y) 8 T"), "{ps}");
        assert!(ps.contains("/printer {STRUCT}"), "{ps}");
    }

    #[test]
    fn savemask_emitted_for_m68k() {
        // The 68020 symbol tables carry register-save masks (paper Sec. 5).
        let src = "int main(void) { int a; int b; a = 1; b = 2; return a + b; }";
        let c = compile("m.c", src, Arch::M68k, CompileOpts::default()).unwrap();
        let ps = emit(&c.unit, &c.funcs, Arch::M68k, PsMode::Eager);
        assert!(ps.contains("/savemask 16#"), "{ps}");
        assert!(ps.contains("/framesize "), "{ps}");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(ps_string("a(b)c"), "(a\\(b\\)c)");
        assert_eq!(ps_string("n\nl"), "(n\\nl)");
        assert_eq!(ps_string("back\\slash"), "(back\\\\slash)");
    }
}
