//! An LZW compressor compatible in spirit with UNIX `compress(1)`.
//!
//! The paper compares PostScript symbol-table sizes against dbx stabs
//! "after compression by the UNIX program compress, in which case the
//! ratio is about 2" (Sec. 7). This crate supplies the substrate for that
//! measurement: LZW with variable-width codes growing from 9 to 16 bits
//! and a dictionary reset when full — the parameters of `compress -b16`.
//!
//! # Examples
//! ```
//! let data = b"tobeornottobeortobeornot".repeat(10);
//! let packed = ldb_compress::compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(ldb_compress::decompress(&packed).unwrap(), data);
//! ```

use std::collections::HashMap;

const MIN_BITS: u32 = 9;
const MAX_BITS: u32 = 16;
const CLEAR: u32 = 256;
const FIRST: u32 = 257;

/// A bit-packing writer (LSB-first, like `compress`).
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { out: Vec::new(), acc: 0, nbits: 0 }
    }

    fn put(&mut self, code: u32, width: u32) {
        self.acc |= (code as u64) << self.nbits;
        self.nbits += width;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0, acc: 0, nbits: 0 }
    }

    fn get(&mut self, width: u32) -> Option<u32> {
        while self.nbits < width {
            if self.pos >= self.data.len() {
                return None;
            }
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
        let v = (self.acc & ((1u64 << width) - 1)) as u32;
        self.acc >>= width;
        self.nbits -= width;
        Some(v)
    }
}

/// Compress `data` with LZW (9→16-bit codes).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    // Header: magic + max bits, like compress(1).
    w.out.extend_from_slice(&[0x1f, 0x9d, MAX_BITS as u8]);
    if data.is_empty() {
        return w.finish();
    }
    let mut dict: HashMap<(u32, u8), u32> = HashMap::new();
    let mut next = FIRST;
    let mut width = MIN_BITS;
    let mut cur = data[0] as u32;
    for &b in &data[1..] {
        match dict.get(&(cur, b)) {
            Some(&code) => cur = code,
            None => {
                w.put(cur, width);
                dict.insert((cur, b), next);
                next += 1;
                if next > (1 << width) && width < MAX_BITS {
                    width += 1;
                }
                if next >= (1 << MAX_BITS) {
                    // Dictionary full: emit a clear code and start over.
                    w.put(CLEAR, width);
                    dict.clear();
                    next = FIRST;
                    width = MIN_BITS;
                }
                cur = b as u32;
            }
        }
    }
    w.put(cur, width);
    w.finish()
}

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzwError {
    /// Missing or wrong header.
    BadHeader,
    /// A code referenced an entry that does not exist.
    BadCode(u32),
}

impl std::fmt::Display for LzwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzwError::BadHeader => write!(f, "not LZW data"),
            LzwError::BadCode(c) => write!(f, "bad LZW code {c}"),
        }
    }
}

impl std::error::Error for LzwError {}

/// Decompress LZW data produced by [`compress`].
///
/// # Errors
/// [`LzwError`] for malformed input.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, LzwError> {
    if data.len() < 3 || data[0] != 0x1f || data[1] != 0x9d {
        return Err(LzwError::BadHeader);
    }
    let mut r = BitReader::new(&data[3..]);
    let mut out = Vec::new();
    let mut table: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();
    table.push(Vec::new()); // CLEAR placeholder
    let mut width = MIN_BITS;
    let mut prev: Option<Vec<u8>> = None;
    while let Some(code) = r.get(width) {
        if code == CLEAR {
            table.truncate(257);
            width = MIN_BITS;
            prev = None;
            continue;
        }
        let entry = if (code as usize) < table.len() {
            table[code as usize].clone()
        } else if code as usize == table.len() {
            // The KwKwK case.
            let p = prev.clone().ok_or(LzwError::BadCode(code))?;
            let mut e = p.clone();
            e.push(p[0]);
            e
        } else {
            return Err(LzwError::BadCode(code));
        };
        out.extend_from_slice(&entry);
        if let Some(p) = prev {
            let mut ne = p;
            ne.push(entry[0]);
            table.push(ne);
            // The decoder's table lags the encoder's by one entry, so it
            // widens one entry earlier by its own count.
            if table.len() >= (1 << width) && width < MAX_BITS {
                width += 1;
            }
        }
        prev = Some(entry);
    }
    Ok(out)
}

/// Compression ratio (original / compressed), for the E3 report.
pub fn ratio(data: &[u8]) -> f64 {
    let c = compress(data);
    data.len() as f64 / c.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_basics() {
        for case in [
            &b""[..],
            b"a",
            b"aaaaaaaaaaaaaaaaaaaa",
            b"abcabcabcabcabc",
            b"the quick brown fox jumps over the lazy dog",
        ] {
            let c = compress(case);
            assert_eq!(decompress(&c).unwrap(), case, "{case:?}");
        }
    }

    #[test]
    fn compresses_postscript_like_text() {
        let ps = "/S10 << /name (i) /type T4 /sourcefile (fib.c) /kind (variable) >> def\n"
            .repeat(200);
        let c = compress(ps.as_bytes());
        let r = ps.len() as f64 / c.len() as f64;
        assert!(r > 3.0, "ratio {r:.2}");
        assert_eq!(decompress(&c).unwrap(), ps.as_bytes());
    }

    #[test]
    fn kwkwk_case() {
        // Classic LZW corner: ababab... exercises code == table.len().
        let data = b"abababababababababab";
        assert_eq!(decompress(&compress(data)).unwrap(), data);
    }

    #[test]
    fn dictionary_reset_on_large_random_input() {
        // Large, low-redundancy input forces the dictionary to fill and
        // reset via CLEAR.
        let mut data = Vec::with_capacity(1 << 20);
        let mut x: u32 = 12345;
        for _ in 0..(1 << 20) {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            data.push((x >> 24) as u8);
        }
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn errors() {
        assert_eq!(decompress(b"xx"), Err(LzwError::BadHeader));
        assert_eq!(decompress(&[0x1f, 0x9d]), Err(LzwError::BadHeader));
        // A stream with a wildly out-of-range code.
        let mut w = BitWriter::new();
        w.out.extend_from_slice(&[0x1f, 0x9d, 16]);
        w.put(400, MIN_BITS); // references an entry far beyond the table
        let bad = w.finish();
        assert!(matches!(decompress(&bad), Err(LzwError::BadCode(_))));
    }

    proptest! {
        #[test]
        fn prop_round_trip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn prop_round_trip_texty(s in "[a-f /(){}<>0-9\n]{0,2000}") {
            let c = compress(s.as_bytes());
            prop_assert_eq!(decompress(&c).unwrap(), s.as_bytes());
        }

        /// Highly repetitive input — the shape of machine snapshots and
        /// symbol tables — must round-trip and actually win: past a few
        /// dictionary warm-up codes, LZW on a repeated pattern beats raw.
        #[test]
        fn prop_round_trip_repetitive(
            pat in prop::collection::vec(any::<u8>(), 1..16),
            reps in 1usize..2048,
        ) {
            let data: Vec<u8> = pat.iter().copied().cycle().take(pat.len() * reps).collect();
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), &data[..]);
            if data.len() >= 1024 {
                prop_assert!(c.len() < data.len(), "{} -> {}", data.len(), c.len());
            }
        }
    }

    // Fewer cases for the big inputs: each one is a quarter-megabyte
    // stream through both directions of the coder.
    proptest! {
        #![proptest_config(ProptestConfig { cases: 16 })]

        /// Huge, mostly-zero input with random bytes sprinkled in — the
        /// shape of a dirty-page snapshot blob. Round-trips exactly and
        /// compresses hard.
        #[test]
        fn prop_round_trip_huge_sparse(
            len in 65_536usize..262_144,
            sprinkles in prop::collection::vec((any::<usize>(), any::<u8>()), 0..64),
        ) {
            let mut data = vec![0u8; len];
            for (at, b) in &sprinkles {
                data[at % len] = *b;
            }
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), &data[..]);
            prop_assert!(c.len() * 4 < len, "{len} -> {}", c.len());
        }
    }
}
