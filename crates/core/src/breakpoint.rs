//! Breakpoints (paper, Sec. 3).
//!
//! "ldb plants a breakpoint at an instruction I by overwriting I with a
//! trap instruction... For now, ldb can set breakpoints only at no-op
//! instructions, which can be skipped instead of interpreted. The
//! implementation is machine-independent, but it manipulates
//! machine-dependent data: the bit patterns used for break and no-op, the
//! type used to fetch and store instructions, and the amount to advance
//! the program counter after 'interpreting' the no-op."
//!
//! Those four items are exactly [`MachineData::break_pattern`],
//! [`MachineData::nop_pattern`], [`MachineData::insn_unit`], and
//! [`MachineData::pc_advance`]. Everything below is shared by all four
//! targets. Planting uses the nub's recorded *plant* store, so a fresh
//! debugger can recover overwritten instructions after a crash.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ldb_machine::MachineData;
use ldb_nub::NubClient;

use crate::LdbError;

/// How execution resumes from a planted breakpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeKind {
    /// The paper's interim scheme: the overwritten instruction is a no-op;
    /// skip it by advancing the saved pc.
    SkipNop {
        /// The pc just past the no-op.
        next_pc: u32,
    },
    /// The Sec. 7.1 scheme: restore the original instruction, single-step
    /// it, re-plant the trap.
    SingleStep {
        /// The overwritten instruction.
        original: u64,
    },
}

/// The set of planted breakpoints in one target. Each records the
/// instruction it overwrote: a stopping-point no-op under the paper's
/// interim scheme, or an arbitrary instruction under the single-step
/// scheme of Sec. 7.1 (when the nub's step extension is available).
pub struct Breakpoints {
    data: &'static MachineData,
    planted: HashMap<u32, u64>,
}

impl std::fmt::Debug for Breakpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Breakpoints({:?})", self.planted.keys())
    }
}

impl Breakpoints {
    /// An empty set for a target.
    pub fn new(data: &'static MachineData) -> Breakpoints {
        Breakpoints { data, planted: HashMap::new() }
    }

    /// Plant a breakpoint at `addr`, which must hold a no-op (a stopping
    /// point compiled with `-g`).
    ///
    /// # Errors
    /// The address does not hold a no-op, or the nub connection failed.
    pub fn plant(&mut self, client: &Rc<RefCell<NubClient>>, addr: u32) -> Result<(), LdbError> {
        if self.planted.contains_key(&addr) {
            return Ok(());
        }
        let cur = client.borrow_mut().fetch('c', addr, self.data.insn_unit)?;
        if cur as u32 != self.data.nop_pattern {
            return Err(LdbError::msg(format!(
                "{addr:#x} does not hold a stopping-point no-op (found {cur:#x}); \
                 was the program compiled with -g? (plant_anywhere uses the \
                 single-step scheme instead)"
            )));
        }
        client
            .borrow_mut()
            .plant(addr, self.data.insn_unit, self.data.break_pattern as u64)?;
        self.planted.insert(addr, cur);
        Ok(())
    }

    /// Plant a breakpoint over an *arbitrary* instruction — the Sec. 7.1
    /// single-step scheme. Resuming needs the nub's step extension (see
    /// [`Breakpoints::resume_kind`]).
    ///
    /// # Errors
    /// Nub connection failure.
    pub fn plant_anywhere(
        &mut self,
        client: &Rc<RefCell<NubClient>>,
        addr: u32,
    ) -> Result<(), LdbError> {
        if self.planted.contains_key(&addr) {
            return Ok(());
        }
        // Fixed-width targets: reject misaligned plants outright. On the
        // variable-length targets (68020, VAX) the debugger cannot tell an
        // instruction boundary from the middle of one; callers must supply
        // a boundary (e.g. from the disassembler or a stopping point).
        if self.data.insn_unit > 1 && !addr.is_multiple_of(self.data.insn_unit as u32) {
            return Err(LdbError::msg(format!(
                "{addr:#x} is not aligned to the {}-byte instruction unit",
                self.data.insn_unit
            )));
        }
        let cur = client.borrow_mut().fetch('c', addr, self.data.insn_unit)?;
        client
            .borrow_mut()
            .plant(addr, self.data.insn_unit, self.data.break_pattern as u64)?;
        self.planted.insert(addr, cur);
        Ok(())
    }

    /// Remove the breakpoint at `addr`, restoring the no-op.
    ///
    /// # Errors
    /// Nub connection failure.
    pub fn remove(&mut self, client: &Rc<RefCell<NubClient>>, addr: u32) -> Result<(), LdbError> {
        if let Some(orig) = self.planted.remove(&addr) {
            client.borrow_mut().store('c', addr, self.data.insn_unit, orig)?;
        }
        Ok(())
    }

    /// Is a breakpoint planted at `addr`?
    pub fn contains(&self, addr: u32) -> bool {
        self.planted.contains_key(&addr)
    }

    /// Drop the record of a plant without touching target memory — for
    /// a target that no longer exists.
    pub fn forget(&mut self, addr: u32) {
        self.planted.remove(&addr);
    }

    /// Whether a breakpoint is planted at `addr`.
    #[must_use]
    pub fn is_planted(&self, addr: u32) -> bool {
        self.planted.contains_key(&addr)
    }

    /// All planted addresses.
    #[must_use]
    pub fn addresses(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.planted.keys().copied().collect();
        v.sort();
        v
    }

    /// The pc to resume with after stopping at `addr`: the overwritten
    /// instruction is a no-op, so it is "interpreted" by skipping it.
    pub fn resume_pc(&self, addr: u32) -> Option<u32> {
        match self.planted.get(&addr) {
            Some(&orig) if orig as u32 == self.data.nop_pattern => {
                Some(addr + self.data.pc_advance as u32)
            }
            _ => None,
        }
    }

    /// How to resume from the breakpoint at `addr`.
    pub fn resume_kind(&self, addr: u32) -> Option<ResumeKind> {
        self.planted.get(&addr).map(|&orig| {
            if orig as u32 == self.data.nop_pattern {
                ResumeKind::SkipNop { next_pc: addr + self.data.pc_advance as u32 }
            } else {
                ResumeKind::SingleStep { original: orig }
            }
        })
    }

    /// The original instruction recorded for `addr`.
    pub fn original(&self, addr: u32) -> Option<u64> {
        self.planted.get(&addr).copied()
    }

    /// Rebuild the set from the nub's plant records (after this debugger
    /// replaced a crashed one).
    ///
    /// # Errors
    /// Nub connection failure.
    pub fn recover(&mut self, client: &Rc<RefCell<NubClient>>) -> Result<usize, LdbError> {
        let plants = client.borrow_mut().query_plants()?;
        let mut n = 0;
        for (addr, size, orig) in plants {
            if size == self.data.insn_unit {
                self.planted.insert(addr, orig);
                n += 1;
            }
        }
        Ok(n)
    }
}
