//! Breakpoints (paper, Sec. 3).
//!
//! "ldb plants a breakpoint at an instruction I by overwriting I with a
//! trap instruction... For now, ldb can set breakpoints only at no-op
//! instructions, which can be skipped instead of interpreted. The
//! implementation is machine-independent, but it manipulates
//! machine-dependent data: the bit patterns used for break and no-op, the
//! type used to fetch and store instructions, and the amount to advance
//! the program counter after 'interpreting' the no-op."
//!
//! Those four items are exactly [`MachineData::break_pattern`],
//! [`MachineData::nop_pattern`], [`MachineData::insn_unit`], and
//! [`MachineData::pc_advance`]. Everything below is shared by all four
//! targets. Planting uses the nub's recorded *plant* store, so a fresh
//! debugger can recover overwritten instructions after a crash.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ldb_machine::MachineData;
use ldb_nub::NubClient;

use crate::LdbError;

/// How execution resumes from a planted breakpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeKind {
    /// The paper's interim scheme: the overwritten instruction is a no-op;
    /// skip it by advancing the saved pc.
    SkipNop {
        /// The pc just past the no-op.
        next_pc: u32,
    },
    /// The Sec. 7.1 scheme: restore the original instruction, single-step
    /// it, re-plant the trap.
    SingleStep {
        /// The overwritten instruction.
        original: u64,
    },
}

/// One planted breakpoint: the instruction it overwrote and the scheme
/// it resumes under. The scheme is chosen at plant time, not inferred
/// from the overwritten bits: a temp planted *over* a no-op by the
/// single-step scheme still resumes by stepping the no-op — which
/// retires the same one step the pristine program would, keeping the
/// step clock (and so recorded time-travel history) undisturbed.
#[derive(Debug, Clone, Copy)]
struct Plant {
    orig: u64,
    skip_nop: bool,
}

/// The set of planted breakpoints in one target. Each records the
/// instruction it overwrote: a stopping-point no-op under the paper's
/// interim scheme, or an arbitrary instruction under the single-step
/// scheme of Sec. 7.1 (when the nub's step extension is available).
pub struct Breakpoints {
    data: &'static MachineData,
    planted: HashMap<u32, Plant>,
    /// Bumped on every change to the planted set that perturbs the step
    /// clock. A skip-nop plant does: when its trap fires, the no-op is
    /// "interpreted" by advancing the pc, retiring zero steps where the
    /// pristine program retires one. A single-step plant does not: the
    /// trap fires for zero steps and the choreography steps the original
    /// instruction for one — the same clock as pristine execution, so
    /// planting or removing one (the temps of `next`/`finish`) leaves
    /// recorded history replayable. Checkpoints record the generation
    /// they were taken under: deterministic replay is only exact while
    /// the clock-perturbing plants match, so reverse execution refuses
    /// checkpoints from another generation (see `CheckpointStore`).
    gen: u64,
}

impl std::fmt::Debug for Breakpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Breakpoints({:?})", self.planted.keys())
    }
}

impl Breakpoints {
    /// An empty set for a target.
    pub fn new(data: &'static MachineData) -> Breakpoints {
        Breakpoints { data, planted: HashMap::new(), gen: 0 }
    }

    /// The current plant-set generation (bumped on every plant/unplant
    /// of a clock-perturbing — skip-nop — breakpoint).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }


    /// Plant a breakpoint at `addr`, which must hold a no-op (a stopping
    /// point compiled with `-g`).
    ///
    /// # Errors
    /// The address does not hold a no-op, or the nub connection failed.
    pub fn plant(&mut self, client: &Rc<RefCell<NubClient>>, addr: u32) -> Result<(), LdbError> {
        if self.planted.contains_key(&addr) {
            return Ok(());
        }
        let cur = client.borrow_mut().fetch('c', addr, self.data.insn_unit)?;
        if cur as u32 != self.data.nop_pattern {
            return Err(LdbError::msg(format!(
                "{addr:#x} does not hold a stopping-point no-op (found {cur:#x}); \
                 was the program compiled with -g? (plant_anywhere uses the \
                 single-step scheme instead)"
            )));
        }
        client
            .borrow_mut()
            .plant(addr, self.data.insn_unit, self.data.break_pattern as u64)?;
        self.planted.insert(addr, Plant { orig: cur, skip_nop: true });
        self.gen += 1;
        Ok(())
    }

    /// Plant a breakpoint over an *arbitrary* instruction — the Sec. 7.1
    /// single-step scheme. Resuming needs the nub's step extension (see
    /// [`Breakpoints::resume_kind`]). Used for the temps of
    /// `next`/`finish` even when the overwritten instruction happens to
    /// be a no-op: single-stepping it keeps the step clock pristine, so
    /// these plants never advance the generation.
    ///
    /// # Errors
    /// Nub connection failure.
    pub fn plant_anywhere(
        &mut self,
        client: &Rc<RefCell<NubClient>>,
        addr: u32,
    ) -> Result<(), LdbError> {
        if self.planted.contains_key(&addr) {
            return Ok(());
        }
        // Fixed-width targets: reject misaligned plants outright. On the
        // variable-length targets (68020, VAX) the debugger cannot tell an
        // instruction boundary from the middle of one; callers must supply
        // a boundary (e.g. from the disassembler or a stopping point).
        if self.data.insn_unit > 1 && !addr.is_multiple_of(self.data.insn_unit as u32) {
            return Err(LdbError::msg(format!(
                "{addr:#x} is not aligned to the {}-byte instruction unit",
                self.data.insn_unit
            )));
        }
        let cur = client.borrow_mut().fetch('c', addr, self.data.insn_unit)?;
        client
            .borrow_mut()
            .plant(addr, self.data.insn_unit, self.data.break_pattern as u64)?;
        self.planted.insert(addr, Plant { orig: cur, skip_nop: false });
        Ok(())
    }

    /// Remove the breakpoint at `addr`, restoring the no-op.
    ///
    /// # Errors
    /// Nub connection failure.
    pub fn remove(&mut self, client: &Rc<RefCell<NubClient>>, addr: u32) -> Result<(), LdbError> {
        if let Some(p) = self.planted.remove(&addr) {
            if p.skip_nop {
                self.gen += 1;
            }
            client.borrow_mut().store('c', addr, self.data.insn_unit, p.orig)?;
        }
        Ok(())
    }

    /// Is a breakpoint planted at `addr`?
    pub fn contains(&self, addr: u32) -> bool {
        self.planted.contains_key(&addr)
    }

    /// Drop the record of a plant without touching target memory — for
    /// a target that no longer exists.
    pub fn forget(&mut self, addr: u32) {
        if let Some(p) = self.planted.remove(&addr) {
            if p.skip_nop {
                self.gen += 1;
            }
        }
    }

    /// Whether a breakpoint is planted at `addr`.
    #[must_use]
    pub fn is_planted(&self, addr: u32) -> bool {
        self.planted.contains_key(&addr)
    }

    /// All planted addresses.
    #[must_use]
    pub fn addresses(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.planted.keys().copied().collect();
        v.sort();
        v
    }

    /// The pc to resume with after stopping at `addr`: the overwritten
    /// instruction is a no-op, so it is "interpreted" by skipping it.
    pub fn resume_pc(&self, addr: u32) -> Option<u32> {
        match self.planted.get(&addr) {
            Some(p) if p.skip_nop => Some(addr + self.data.pc_advance as u32),
            _ => None,
        }
    }

    /// How to resume from the breakpoint at `addr`.
    pub fn resume_kind(&self, addr: u32) -> Option<ResumeKind> {
        self.planted.get(&addr).map(|p| {
            if p.skip_nop {
                ResumeKind::SkipNop { next_pc: addr + self.data.pc_advance as u32 }
            } else {
                ResumeKind::SingleStep { original: p.orig }
            }
        })
    }

    /// The original instruction recorded for `addr`.
    pub fn original(&self, addr: u32) -> Option<u64> {
        self.planted.get(&addr).map(|p| p.orig)
    }

    /// Rebuild the set from the nub's plant records (after this debugger
    /// replaced a crashed one).
    ///
    /// # Errors
    /// Nub connection failure.
    pub fn recover(&mut self, client: &Rc<RefCell<NubClient>>) -> Result<usize, LdbError> {
        let plants = client.borrow_mut().query_plants()?;
        let mut n = 0;
        for (addr, size, orig) in plants {
            if size == self.data.insn_unit {
                // The nub records don't carry the resume scheme; a
                // recovered no-op plant is assumed to be a user
                // breakpoint (skip-nop). Conservative either way: the
                // generation advances, orphaning pre-crash checkpoints.
                let skip_nop = orig as u32 == self.data.nop_pattern;
                self.gen += 1;
                self.planted.insert(addr, Plant { orig, skip_nop });
                n += 1;
            }
        }
        Ok(n)
    }
}
