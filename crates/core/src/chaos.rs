//! Deterministic target-memory corruption — the hostile-target layer.
//!
//! [`ChaosMemory`] wraps the abstract memory a target's frame walkers and
//! printers read through and corrupts what comes back: saved frame
//! pointers, return addresses, saved-register areas, and pointed-to data
//! are all just `d`-space fetches, so a single corrupting layer above the
//! wire (and its cache) makes the *whole* inspection path hostile. Run
//! control is untouched — the nub client talks to the wire directly, so
//! breakpoints, stepping, and continues stay reliable while everything
//! the debugger believes about the stopped target may be a lie. That is
//! exactly the trust boundary of a corrupted target: the process still
//! runs, its memory is garbage.
//!
//! Like PR 1's `FaultyWire`, every decision comes from a small seeded
//! PRNG: the same seed yields the same corruption schedule forever, so a
//! chaos run that breaks the debugger once breaks it the same way under
//! `--chaos SEED` until the bug is fixed. No wall clock, no OS entropy.

use std::cell::RefCell;

use ldb_trace::{Layer, Severity, Trace};

use crate::amemory::{AbstractMemory, MemRef, MemResult};

/// splitmix64, same as the wire fault injector: small, seedable, plenty
/// random for a corruption schedule.
#[derive(Debug, Clone)]
struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True with probability `p`.
    fn hit(&mut self, p: f64) -> bool {
        p > 0.0 && ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// How to corrupt, and how often.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// PRNG seed; the whole corruption schedule is a pure function of it.
    pub seed: u64,
    /// Probability any one `d`-space fetch result is corrupted.
    pub rate: f64,
    /// Restrict *applied* corruptions to schedule indices `[lo, hi)`:
    /// corruption events outside the window are suppressed — the fetch
    /// returns the true value, the PRNG is still drawn identically, and
    /// the event is counted in [`ChaosStats::suppressed`]. This is the
    /// seed minimizer's knob: a failing seed's schedule is bisected down
    /// to the narrowest window that still reproduces its crash bucket.
    /// `None` applies the whole schedule.
    pub window: Option<(u64, u64)>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { seed: 0, rate: 0.05, window: None }
    }
}

impl ChaosConfig {
    /// Parse a `--chaos` spec: a bare seed (`--chaos 42`), a `key=value,…`
    /// list (`--chaos seed=42,rate=0.1`), or a bare seed followed by
    /// `key=value` items (`--chaos 42,rate=0.1`).
    ///
    /// # Errors
    /// Unknown keys, malformed numbers, or a rate outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::default();
        for (i, part) in spec.split(',').map(str::trim).filter(|p| !p.is_empty()).enumerate() {
            if i == 0 {
                if let Ok(seed) = part.parse::<u64>() {
                    cfg.seed = seed;
                    continue;
                }
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec item `{part}` is not key=value"))?;
            match key {
                "seed" => {
                    cfg.seed = value.parse().map_err(|_| format!("bad chaos seed `{value}`"))?;
                }
                "rate" => {
                    let r: f64 =
                        value.parse().map_err(|_| format!("bad chaos rate `{value}`"))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(format!("chaos rate `{value}` outside [0, 1]"));
                    }
                    cfg.rate = r;
                }
                // The minimizer's window, spelled `window=lo..hi` (half
                // open, in corruption-schedule indices).
                "window" => {
                    let (lo, hi) = value
                        .split_once("..")
                        .ok_or_else(|| format!("chaos window `{value}` is not lo..hi"))?;
                    let lo: u64 =
                        lo.parse().map_err(|_| format!("bad chaos window start `{lo}`"))?;
                    let hi: u64 =
                        hi.parse().map_err(|_| format!("bad chaos window end `{hi}`"))?;
                    if lo >= hi {
                        return Err(format!("chaos window `{value}` is empty"));
                    }
                    cfg.window = Some((lo, hi));
                }
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// What the chaos layer did so far (`info health` sums this across
/// targets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Fetch results corrupted.
    pub corruptions: u64,
    /// Fetches inspected (corrupted or not).
    pub fetches: u64,
    /// Scheduled corruptions suppressed by [`ChaosConfig::window`] (0
    /// without a window).
    pub suppressed: u64,
}

/// The corruption modes, weighted equally. Self-pointing is listed first
/// because it is the nastiest: a saved frame pointer that points at its
/// own slot is an instant frame-chain cycle, and a `next` field that
/// points at its own node is an instant list cycle.
const MODES: [&str; 4] = ["selfpoint", "bitflip", "zero", "garbage"];

struct ChaosState {
    rng: ChaosRng,
    stats: ChaosStats,
}

/// An [`AbstractMemory`] layer that corrupts `d`-space fetch results.
/// Stores and code fetches pass through untouched — the debugger's own
/// mutations (plants, patches) must land, and the corruption target is
/// the *data* a walker or printer trusts.
pub struct ChaosMemory {
    inner: MemRef,
    cfg: ChaosConfig,
    state: RefCell<ChaosState>,
    trace: Trace,
}

impl ChaosMemory {
    /// Wrap `inner` with the given corruption policy, journaling every
    /// corruption as a [`Layer::Dbg`] `chaos` record.
    pub fn new(inner: MemRef, cfg: ChaosConfig, trace: Trace) -> ChaosMemory {
        let state = RefCell::new(ChaosState { rng: ChaosRng::new(cfg.seed), stats: ChaosStats::default() });
        ChaosMemory { inner, cfg, state, trace }
    }

    /// The corruption counters so far.
    pub fn stats(&self) -> ChaosStats {
        self.state.borrow().stats
    }

    /// The policy in force.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }
}

impl AbstractMemory for ChaosMemory {
    fn fetch(&self, space: char, offset: i64, size: u8) -> MemResult<u64> {
        let v = self.inner.fetch(space, offset, size)?;
        if space != 'd' {
            return Ok(v);
        }
        let mut st = self.state.borrow_mut();
        st.stats.fetches += 1;
        if !st.rng.hit(self.cfg.rate) {
            return Ok(v);
        }
        let bits = u64::from(size.min(8)) * 8;
        let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mode = st.rng.below(MODES.len() as u64) as usize;
        let corrupted = match mode {
            0 => offset as u64,                        // self-point
            1 => v ^ (1u64 << st.rng.below(bits.max(1))), // bitflip
            2 => 0,                                    // zero
            _ => st.rng.next_u64(),                    // garbage
        } & mask;
        // The schedule index of this corruption event; a window outside
        // it suppresses the corruption *after* the PRNG draws, so the
        // surviving events' values are unchanged by the narrowing.
        let event = st.stats.corruptions + st.stats.suppressed;
        if let Some((lo, hi)) = self.cfg.window {
            if event < lo || event >= hi {
                st.stats.suppressed += 1;
                return Ok(v);
            }
        }
        st.stats.corruptions += 1;
        drop(st);
        self.trace.emit(
            Layer::Dbg,
            Severity::Debug,
            "chaos",
            &[
                ("addr", offset.into()),
                ("size", i64::from(size).into()),
                ("mode", MODES[mode].into()),
                ("was", (v as i64).into()),
                ("now", (corrupted as i64).into()),
            ],
        );
        Ok(corrupted)
    }

    fn store(&self, space: char, offset: i64, size: u8, value: u64) -> MemResult<()> {
        self.inner.store(space, offset, size, value)
    }

    fn name(&self) -> &'static str {
        "chaos"
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use super::*;
    use crate::amemory::FakeMemory;

    fn filled_fake() -> Rc<FakeMemory> {
        let fake = FakeMemory::default();
        for a in 0..64i64 {
            fake.store('d', a, 1, 0xAB).unwrap();
            fake.store('c', a, 1, 0xCD).unwrap();
        }
        Rc::new(fake)
    }

    #[test]
    fn same_seed_same_schedule() {
        let runs: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let chaos = ChaosMemory::new(
                    filled_fake(),
                    ChaosConfig { seed: 7, rate: 0.5, window: None },
                    Trace::off(),
                );
                (0..32).map(|a| chaos.fetch('d', a, 1).unwrap()).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        // And the schedule really corrupts something at rate 0.5.
        assert!(runs[0].iter().any(|&v| v != 0xAB));
    }

    #[test]
    fn different_seeds_differ() {
        let read = |seed| -> Vec<u64> {
            let chaos = ChaosMemory::new(
                filled_fake(),
                ChaosConfig { seed, rate: 0.5, window: None },
                Trace::off(),
            );
            (0..32).map(|a| chaos.fetch('d', a, 1).unwrap()).collect()
        };
        assert_ne!(read(1), read(2));
    }

    #[test]
    fn code_space_and_stores_pass_through() {
        let fake = filled_fake();
        let chaos =
            ChaosMemory::new(fake.clone(), ChaosConfig { seed: 3, rate: 1.0, window: None }, Trace::off());
        for a in 0..32 {
            assert_eq!(chaos.fetch('c', a, 1).unwrap(), 0xCD);
        }
        chaos.store('d', 5, 1, 0x11).unwrap();
        assert_eq!(fake.fetch('d', 5, 1).unwrap(), 0x11);
        // Every d fetch at rate 1.0 is corrupted and counted.
        let _ = chaos.fetch('d', 5, 1).unwrap();
        assert_eq!(chaos.stats().corruptions, 1);
    }

    #[test]
    fn rate_zero_is_a_no_op() {
        let chaos =
            ChaosMemory::new(filled_fake(), ChaosConfig { seed: 9, rate: 0.0, window: None }, Trace::off());
        for a in 0..32 {
            assert_eq!(chaos.fetch('d', a, 1).unwrap(), 0xAB);
        }
        assert_eq!(chaos.stats().corruptions, 0);
        assert_eq!(chaos.stats().fetches, 32);
    }

    #[test]
    fn window_suppresses_outside_events_without_shifting_survivors() {
        let read = |window| -> (Vec<u64>, ChaosStats) {
            let chaos = ChaosMemory::new(
                filled_fake(),
                ChaosConfig { seed: 11, rate: 1.0, window },
                Trace::off(),
            );
            let vals = (0..16).map(|a| chaos.fetch('d', a, 1).unwrap()).collect();
            (vals, chaos.stats())
        };
        let (full, full_stats) = read(None);
        assert_eq!(full_stats.corruptions, 16);
        assert_eq!(full_stats.suppressed, 0);
        let (windowed, stats) = read(Some((4, 8)));
        assert_eq!(stats.corruptions, 4);
        assert_eq!(stats.suppressed, 12);
        for (i, (w, f)) in windowed.iter().zip(full.iter()).enumerate() {
            if (4..8).contains(&i) {
                // Events inside the window corrupt to the same values as
                // the full schedule (the PRNG draws are unchanged).
                assert_eq!(w, f, "event {i} diverged inside the window");
            } else {
                assert_eq!(*w, 0xAB, "event {i} not suppressed outside the window");
            }
        }
    }

    #[test]
    fn parse_accepts_bare_seed_and_key_values() {
        assert_eq!(ChaosConfig::parse("42").unwrap().seed, 42);
        let cfg = ChaosConfig::parse("seed=7,rate=0.25").unwrap();
        assert_eq!(cfg.seed, 7);
        assert!((cfg.rate - 0.25).abs() < 1e-12);
        // The documented short form: bare seed, then key=value items.
        let cfg = ChaosConfig::parse("9,rate=0.5").unwrap();
        assert_eq!(cfg.seed, 9);
        assert!((cfg.rate - 0.5).abs() < 1e-12);
        assert!(ChaosConfig::parse("rate=2").is_err());
        assert!(ChaosConfig::parse("bogus=1").is_err());
        assert!(ChaosConfig::parse("0.5").is_err(), "a bare non-integer is not a seed");
        assert_eq!(ChaosConfig::parse("7,window=2..9").unwrap().window, Some((2, 9)));
        assert!(ChaosConfig::parse("window=5..5").is_err(), "empty window");
        assert!(ChaosConfig::parse("window=5").is_err(), "window needs lo..hi");
    }
}
