//! The 68020 stack walker. Frames are linked through the frame pointer
//! (`link a6`): the saved caller fp sits at fp+0 and the return address at
//! fp+4. The callee's register-save mask (recorded in the symbol table by
//! the compiler — paper, Sec. 5) locates the `movem` save area below the
//! link region: saved register of rank k lives at fp - framesize - 4(k+1).

use crate::frame::{
    assemble_dag, parent_aliases, top_aliases, wire_word, Frame, FrameWalker, WalkCtx, WalkError,
    WalkGuard,
};

/// The 68020 frame methods.
pub struct M68kFrame;

impl FrameWalker for M68kFrame {
    fn top(&self, t: &WalkCtx) -> Result<Frame, WalkError> {
        let layout = t.data.ctx;
        let ctx = t.context as i64;
        let pc = wire_word(&t.wire, ctx + layout.pc_offset as i64)?;
        let fp = wire_word(&t.wire, ctx + layout.reg(t.data.fp.expect("m68k has fp")) as i64)?;
        let meta = t.loader.frame_meta(pc, &t.wire);
        let alias = top_aliases(t, fp);
        let mem = assemble_dag(&t.wire, alias.clone());
        Ok(Frame { pc, vfp: fp, level: 0, mem, alias, meta })
    }

    fn down(&self, t: &WalkCtx, g: &mut WalkGuard, f: &Frame) -> Result<Option<Frame>, WalkError> {
        if f.vfp == 0 {
            return Ok(None);
        }
        // A frame in unknown code (the pre-main pause stub) has no meta:
        // its fp is not a frame link we can interpret, so the walk ends
        // cleanly here rather than chasing a register that may point
        // anywhere. (MIPS gets the same semantic from its meta lookup.)
        if f.meta.is_none() {
            return Ok(None);
        }
        let parent_fp = wire_word(&t.wire, f.vfp as i64)?;
        let parent_pc = wire_word(&t.wire, f.vfp as i64 + 4)?;
        if parent_fp == 0 {
            return Ok(None); // crt0 zeroes fp: the stack base
        }
        let Some(parent_meta) = t.loader.frame_meta(parent_pc, &t.wire) else {
            return Ok(None);
        };
        g.check(f, parent_fp, parent_pc)?;
        // movem pushed below the link area: rank k at fp - size - 4(k+1).
        let size = f.meta.map(|m| m.frame_size).unwrap_or(0) as i64;
        let base = f.vfp as i64 - size;
        let alias = parent_aliases(t, f, parent_pc, parent_fp, |rank| {
            base - 4 * (rank as i64 + 1)
        });
        let mem = assemble_dag(&t.wire, alias.clone());
        Ok(Some(Frame {
            pc: parent_pc,
            vfp: parent_fp,
            level: f.level + 1,
            mem,
            alias,
            meta: Some(parent_meta),
        }))
    }

    // 68020 instructions are word-aligned.
    fn pc_align(&self) -> u32 {
        2
    }
}
