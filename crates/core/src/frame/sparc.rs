//! The SPARC stack walker: a frame-pointer RISC. The old frame pointer is
//! saved at fp-4 and the return address at fp-8 (our windowless SPARC
//! convention); frame metadata comes from the symbol table, through the
//! machine-independent linker interface shared with the VAX and 68020.

use crate::frame::{
    assemble_dag, parent_aliases, top_aliases, wire_word, Frame, FrameWalker, WalkCtx, WalkError,
    WalkGuard,
};

/// The SPARC frame methods.
pub struct SparcFrame;

impl FrameWalker for SparcFrame {
    fn top(&self, t: &WalkCtx) -> Result<Frame, WalkError> {
        let layout = t.data.ctx;
        let ctx = t.context as i64;
        let pc = wire_word(&t.wire, ctx + layout.pc_offset as i64)?;
        let fp = wire_word(&t.wire, ctx + layout.reg(t.data.fp.expect("sparc has fp")) as i64)?;
        let meta = t.loader.frame_meta(pc, &t.wire);
        let alias = top_aliases(t, fp);
        let mem = assemble_dag(&t.wire, alias.clone());
        Ok(Frame { pc, vfp: fp, level: 0, mem, alias, meta })
    }

    fn down(&self, t: &WalkCtx, g: &mut WalkGuard, f: &Frame) -> Result<Option<Frame>, WalkError> {
        if f.vfp == 0 {
            return Ok(None);
        }
        // No meta means unknown code (the pre-main pause stub): fp is not
        // a frame link we can interpret, so the walk ends cleanly here.
        if f.meta.is_none() {
            return Ok(None);
        }
        let parent_pc = wire_word(&t.wire, f.vfp as i64 - 8)?;
        let parent_fp = wire_word(&t.wire, f.vfp as i64 - 4)?;
        if parent_fp == 0 {
            return Ok(None); // crt0 zeroes fp: the stack base
        }
        let Some(parent_meta) = t.loader.frame_meta(parent_pc, &t.wire) else {
            return Ok(None);
        };
        g.check(f, parent_fp, parent_pc)?;
        let save_base = f.meta
            .map(|m| f.vfp as i64 - m.save_offset as i64)
            .unwrap_or(f.vfp as i64);
        let alias = parent_aliases(t, f, parent_pc, parent_fp, |rank| {
            save_base + 4 * rank as i64
        });
        let mem = assemble_dag(&t.wire, alias.clone());
        Ok(Some(Frame {
            pc: parent_pc,
            vfp: parent_fp,
            level: f.level + 1,
            mem,
            alias,
            meta: Some(parent_meta),
        }))
    }
}
