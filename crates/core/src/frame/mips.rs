//! The MIPS stack walker: the target with no frame pointer.
//!
//! `MipsFrame::top` "takes the context from the nub ... uses the program
//! counter to find the procedure's dictionary, then computes the virtual
//! frame pointer by adding the size of the procedure's frame to the stack
//! pointer. The machine-dependent frame size is stored ... by the MIPS
//! implementation of ldb's linker interface" — which reads the runtime
//! procedure table out of the target address space.

use crate::amemory::MemError;
use crate::frame::{
    assemble_dag, parent_aliases, top_aliases, wire_word, Frame, FrameWalker, WalkCtx, WalkError,
    WalkGuard,
};

/// The MIPS frame methods.
pub struct MipsFrame;

impl FrameWalker for MipsFrame {
    fn top(&self, t: &WalkCtx) -> Result<Frame, WalkError> {
        let layout = t.data.ctx;
        let ctx = t.context as i64;
        let pc = wire_word(&t.wire, ctx + layout.pc_offset as i64)?;
        let sp = wire_word(&t.wire, ctx + layout.reg(t.data.sp) as i64)?;
        let meta = t.loader.frame_meta(pc, &t.wire);
        // No frame pointer: vfp = sp + frame size (from the RPT).
        let vfp = sp.wrapping_add(meta.map(|m| m.frame_size).unwrap_or(0));
        let alias = top_aliases(t, vfp);
        let mem = assemble_dag(&t.wire, alias.clone());
        Ok(Frame { pc, vfp, level: 0, mem, alias, meta })
    }

    fn down(&self, t: &WalkCtx, g: &mut WalkGuard, f: &Frame) -> Result<Option<Frame>, WalkError> {
        let Some(meta) = f.meta else { return Ok(None) };
        let Some(ra_off) = meta.ra_offset else { return Ok(None) };
        let parent_pc = wire_word(&t.wire, f.vfp as i64 - ra_off as i64)?;
        let Some(parent_meta) = t.loader.frame_meta(parent_pc, &t.wire) else {
            return Ok(None); // walked off the top (the startup stub)
        };
        // The caller's sp at the call was our vfp; its own frame sits
        // above it.
        let parent_vfp = f.vfp.wrapping_add(parent_meta.frame_size);
        g.check(f, parent_vfp, parent_pc)?;
        let save_base = f.vfp as i64 - meta.save_offset as i64;
        let alias = parent_aliases(t, f, parent_pc, parent_vfp, |rank| {
            save_base + 4 * rank as i64
        });
        let mem = assemble_dag(&t.wire, alias.clone());
        Ok(Some(Frame {
            pc: parent_pc,
            vfp: parent_vfp,
            level: f.level + 1,
            mem,
            alias,
            meta: Some(parent_meta),
        }))
    }
}

impl MipsFrame {
    /// Exposed for tests: the virtual-frame-pointer rule.
    pub fn vfp_rule(sp: u32, frame_size: u32) -> Result<u32, MemError> {
        Ok(sp.wrapping_add(frame_size))
    }
}
