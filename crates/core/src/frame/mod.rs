//! Stack frames (paper, Sec. 4.1).
//!
//! The machine-independent class holds the program counter, the
//! procedure's symbol-table entry, and the frame's abstract-memory DAG.
//! "Machine-dependent instances of the class supply only two methods: one
//! that walks down the stack and one that restores registers from the
//! stack" — here, the [`FrameWalker`] trait with `top` and `down`.

pub mod m68k;
pub mod mips;
pub mod sparc;
pub mod vax;

use std::collections::HashSet;
use std::rc::Rc;

use ldb_machine::{Arch, MachineData};

use crate::amemory::{
    AliasMemory, AliasTarget, JoinedMemory, MemError, MemRef, MemResult, RegisterMemory,
};
use crate::loader::{FrameMeta, Loader};

/// One procedure activation.
pub struct Frame {
    /// The program counter in this frame.
    pub pc: u32,
    /// The virtual frame pointer: the base `Storage::Frame` offsets (and
    /// the `l` space) are relative to. On the MIPS it is computed as
    /// sp + frame size; on the others it is the frame-pointer register.
    pub vfp: u32,
    /// 0 = topmost.
    pub level: u32,
    /// The joined memory presented to the rest of the debugger.
    pub mem: MemRef,
    /// The alias memory inside it (walkers build the parent's aliases from
    /// it).
    pub alias: Rc<AliasMemory>,
    /// Frame metadata of the procedure, if known.
    pub meta: Option<FrameMeta>,
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Frame {{ pc: {:#x}, vfp: {:#x}, level: {} }}", self.pc, self.vfp, self.level)
    }
}

/// What the walkers need from the target.
pub struct WalkCtx<'a> {
    /// The wire (serves `c` and `d`).
    pub wire: MemRef,
    /// Address of the nub's context block.
    pub context: u32,
    /// Machine description.
    pub data: &'static MachineData,
    /// The loader (frame metadata, proctable).
    pub loader: &'a Loader,
}

/// Why a stack walk stopped. Anything but [`WalkStop::StackBase`] means
/// the backtrace is truncated, and the variant says why — the walkers
/// never trust a saved frame pointer or return address enough to loop on
/// it (the target may be arbitrarily corrupted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkStop {
    /// Reached the stack base: the normal, complete walk.
    StackBase,
    /// The frame chain revisited a virtual frame pointer.
    Cycle {
        /// The vfp seen twice.
        vfp: u32,
    },
    /// The walk hit the hard depth cap without reaching the base.
    DepthCap {
        /// The cap that fired.
        cap: u32,
    },
    /// A candidate caller frame failed a sanity check (non-monotonic or
    /// misaligned chain).
    BadFrame {
        /// What looked wrong.
        reason: String,
    },
    /// The wire failed mid-walk (dead nub, fetch fault).
    WireError {
        /// The underlying memory error.
        detail: String,
    },
}

impl WalkStop {
    /// True for a complete, untruncated walk.
    pub fn is_clean(&self) -> bool {
        matches!(self, WalkStop::StackBase)
    }
}

impl std::fmt::Display for WalkStop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkStop::StackBase => write!(f, "StackBase"),
            WalkStop::Cycle { vfp } => write!(f, "Cycle (vfp {vfp:#x} already visited)"),
            WalkStop::DepthCap { cap } => write!(f, "DepthCap ({cap} frames)"),
            WalkStop::BadFrame { reason } => write!(f, "BadFrame ({reason})"),
            WalkStop::WireError { detail } => write!(f, "WireError ({detail})"),
        }
    }
}

/// A walker-level failure; converted to a [`WalkStop`] by [`walk_stack`].
#[derive(Debug)]
pub enum WalkError {
    /// The wire refused a fetch.
    Wire(MemError),
    /// A sanity check on a candidate frame failed.
    Bad(String),
    /// The candidate frame's vfp was already visited.
    Cycle(u32),
}

impl From<MemError> for WalkError {
    fn from(e: MemError) -> Self {
        WalkError::Wire(e)
    }
}

impl WalkError {
    fn into_stop(self) -> WalkStop {
        match self {
            WalkError::Wire(e) => WalkStop::WireError { detail: e.to_string() },
            WalkError::Bad(reason) => WalkStop::BadFrame { reason },
            WalkError::Cycle(vfp) => WalkStop::Cycle { vfp },
        }
    }
}

/// Hard cap on walk depth: far above any stack this suite produces, far
/// below anything that would make a corrupted-but-acyclic chain feel like
/// a hang.
pub const WALK_DEPTH_CAP: u32 = 64;

/// The defensive state threaded through a stack walk: the set of frame
/// pointers already visited plus the per-architecture sanity checks every
/// candidate caller frame must pass before the walk follows it.
pub struct WalkGuard {
    visited: HashSet<u32>,
    cap: u32,
    pc_align: u32,
}

impl WalkGuard {
    /// A fresh guard; `pc_align` is the architecture's instruction
    /// alignment (from [`FrameWalker::pc_align`]).
    pub fn new(cap: u32, pc_align: u32) -> Self {
        WalkGuard { visited: HashSet::new(), cap, pc_align }
    }

    /// The depth cap this guard enforces.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Record the top frame's vfp as visited.
    pub fn admit_top(&mut self, top: &Frame) {
        self.visited.insert(top.vfp);
    }

    /// Vet a candidate caller frame before the walker builds it: reject
    /// revisited vfps (a cycle), non-monotonic chains (stacks grow down,
    /// so a caller's frame sits at a higher address than its callee's on
    /// every supported architecture), and misaligned frame pointers or
    /// return addresses. Admitted vfps join the visited set.
    ///
    /// # Errors
    /// [`WalkError::Cycle`] or [`WalkError::Bad`] as above.
    pub fn check(&mut self, child: &Frame, parent_vfp: u32, parent_pc: u32) -> Result<(), WalkError> {
        if self.visited.contains(&parent_vfp) {
            return Err(WalkError::Cycle(parent_vfp));
        }
        if parent_vfp < child.vfp {
            return Err(WalkError::Bad(format!(
                "frame chain not monotonic: caller vfp {parent_vfp:#x} below callee vfp {:#x}",
                child.vfp
            )));
        }
        if !parent_vfp.is_multiple_of(4) {
            return Err(WalkError::Bad(format!("misaligned caller vfp {parent_vfp:#x}")));
        }
        if self.pc_align > 1 && !parent_pc.is_multiple_of(self.pc_align) {
            return Err(WalkError::Bad(format!("misaligned return address {parent_pc:#x}")));
        }
        self.visited.insert(parent_vfp);
        Ok(())
    }
}

/// The machine-dependent stack-walking methods.
pub trait FrameWalker {
    /// Build the topmost frame from the context the nub saved.
    ///
    /// # Errors
    /// Wire failures; missing frame metadata.
    fn top(&self, t: &WalkCtx) -> Result<Frame, WalkError>;

    /// Walk down one frame (to the caller); `None` at the stack base.
    /// Every candidate caller must pass `g.check` before it is built.
    ///
    /// # Errors
    /// Wire failures; guard rejections.
    fn down(&self, t: &WalkCtx, g: &mut WalkGuard, f: &Frame) -> Result<Option<Frame>, WalkError>;

    /// Instruction alignment for return-address sanity checks.
    fn pc_align(&self) -> u32 {
        4
    }
}

/// The guarded walk shared by every architecture: build the top frame,
/// then walk down until the base, an error, or the guard objects. Returns
/// whatever frames were recovered plus the typed reason the walk stopped
/// — a truncated backtrace is still a backtrace.
pub fn walk_stack(walker: &dyn FrameWalker, t: &WalkCtx) -> (Vec<Rc<Frame>>, WalkStop) {
    let mut guard = WalkGuard::new(WALK_DEPTH_CAP, walker.pc_align());
    let mut frames: Vec<Rc<Frame>> = Vec::new();
    let top = match walker.top(t) {
        Ok(f) => f,
        Err(e) => return (frames, e.into_stop()),
    };
    guard.admit_top(&top);
    let mut cur = Rc::new(top);
    frames.push(Rc::clone(&cur));
    loop {
        if frames.len() as u32 >= guard.cap() {
            return (frames, WalkStop::DepthCap { cap: guard.cap() });
        }
        match walker.down(t, &mut guard, &cur) {
            Ok(Some(next)) => {
                cur = Rc::new(next);
                frames.push(Rc::clone(&cur));
            }
            Ok(None) => return (frames, WalkStop::StackBase),
            Err(e) => return (frames, e.into_stop()),
        }
    }
}

/// The walker for an architecture.
pub fn frame_walker(arch: Arch) -> &'static dyn FrameWalker {
    match arch {
        Arch::Mips => &mips::MipsFrame,
        Arch::Sparc => &sparc::SparcFrame,
        Arch::M68k => &m68k::M68kFrame,
        Arch::Vax => &vax::VaxFrame,
    }
}

/// Shared construction: wrap an alias memory in register and joined
/// memories over the wire — the DAG of the paper's Figure 4.
pub fn assemble_dag(wire: &MemRef, alias: Rc<AliasMemory>) -> MemRef {
    let reg = Rc::new(RegisterMemory::new(
        alias.clone() as MemRef,
        &[('r', 4), ('x', 4), ('f', 8)],
    ));
    Rc::new(
        JoinedMemory::new()
            .route('r', reg.clone())
            .route('f', reg.clone())
            .route('x', reg)
            .route('l', alias as MemRef)
            .fallback(wire.clone()),
    )
}

/// Build a top frame's alias memory: every register aliases its context
/// slot; the pc and vfp become the extra registers x0 and x1 (x1 is an
/// immediate — it exists nowhere in target memory).
pub fn top_aliases(t: &WalkCtx, vfp: u32) -> Rc<AliasMemory> {
    let mut alias = AliasMemory::new(t.wire.clone());
    alias.map_space('l', 'd', vfp as i64);
    let ctx = t.context as i64;
    let layout = t.data.ctx;
    for r in 0..layout.nregs {
        alias.alias('r', r as i64, AliasTarget::Mem('d', ctx + layout.reg(r) as i64));
    }
    for f in 0..layout.nfregs {
        alias.alias('f', f as i64, AliasTarget::Mem('d', ctx + layout.freg(f) as i64));
    }
    alias.alias('x', 0, AliasTarget::Mem('d', ctx + layout.pc_offset as i64));
    alias.alias('x', 1, AliasTarget::Imm(vfp as u64));
    Rc::new(alias)
}

/// Build a parent frame's alias memory: reuse the child's aliases for
/// registers the child did not save, and point the saved ones at the
/// child's save area (`slot_of(rank)` gives each saved register's
/// address).
pub fn parent_aliases(
    t: &WalkCtx,
    child: &Frame,
    parent_pc: u32,
    parent_vfp: u32,
    slot_of: impl Fn(u32) -> i64,
) -> Rc<AliasMemory> {
    let mut alias = AliasMemory::new(t.wire.clone());
    alias.map_space('l', 'd', parent_vfp as i64);
    let alias = Rc::new(alias);
    // Saved registers: aliases into the child's save area.
    if let Some(meta) = &child.meta {
        let mut rank = 0u32;
        for r in 0..32u32 {
            if meta.save_mask & (1 << r) != 0 {
                alias.alias('r', r as i64, AliasTarget::Mem('d', slot_of(rank)));
                rank += 1;
            }
        }
    }
    // Everything else: inherited from the called frame ("the aliases from
    // the called frame are reused").
    alias.inherit_from(&child.alias);
    // The extra registers are immediates in parent frames.
    alias.alias('x', 0, AliasTarget::Imm(parent_pc as u64));
    alias.alias('x', 1, AliasTarget::Imm(parent_vfp as u64));
    // The stack pointer of the parent at call time is the child's vfp.
    alias.alias('r', t.data.sp as i64, AliasTarget::Imm(child.vfp as u64));
    if let Some(fp) = t.data.fp {
        alias.alias('r', fp as i64, AliasTarget::Imm(parent_vfp as u64));
    }
    alias
}

/// Read the saved pc out of a frame's context/stack through the wire.
pub(crate) fn wire_word(wire: &MemRef, addr: i64) -> MemResult<u32> {
    Ok(wire.fetch('d', addr, 4)? as u32)
}
