//! Stack frames (paper, Sec. 4.1).
//!
//! The machine-independent class holds the program counter, the
//! procedure's symbol-table entry, and the frame's abstract-memory DAG.
//! "Machine-dependent instances of the class supply only two methods: one
//! that walks down the stack and one that restores registers from the
//! stack" — here, the [`FrameWalker`] trait with `top` and `down`.

pub mod m68k;
pub mod mips;
pub mod sparc;
pub mod vax;

use std::rc::Rc;

use ldb_machine::{Arch, MachineData};

use crate::amemory::{AliasMemory, AliasTarget, JoinedMemory, MemRef, MemResult, RegisterMemory};
use crate::loader::{FrameMeta, Loader};

/// One procedure activation.
pub struct Frame {
    /// The program counter in this frame.
    pub pc: u32,
    /// The virtual frame pointer: the base `Storage::Frame` offsets (and
    /// the `l` space) are relative to. On the MIPS it is computed as
    /// sp + frame size; on the others it is the frame-pointer register.
    pub vfp: u32,
    /// 0 = topmost.
    pub level: u32,
    /// The joined memory presented to the rest of the debugger.
    pub mem: MemRef,
    /// The alias memory inside it (walkers build the parent's aliases from
    /// it).
    pub alias: Rc<AliasMemory>,
    /// Frame metadata of the procedure, if known.
    pub meta: Option<FrameMeta>,
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Frame {{ pc: {:#x}, vfp: {:#x}, level: {} }}", self.pc, self.vfp, self.level)
    }
}

/// What the walkers need from the target.
pub struct WalkCtx<'a> {
    /// The wire (serves `c` and `d`).
    pub wire: MemRef,
    /// Address of the nub's context block.
    pub context: u32,
    /// Machine description.
    pub data: &'static MachineData,
    /// The loader (frame metadata, proctable).
    pub loader: &'a Loader,
}

/// The machine-dependent stack-walking methods.
pub trait FrameWalker {
    /// Build the topmost frame from the context the nub saved.
    ///
    /// # Errors
    /// Wire failures; missing frame metadata.
    fn top(&self, t: &WalkCtx) -> MemResult<Frame>;

    /// Walk down one frame (to the caller); `None` at the stack base.
    ///
    /// # Errors
    /// Wire failures.
    fn down(&self, t: &WalkCtx, f: &Frame) -> MemResult<Option<Frame>>;
}

/// The walker for an architecture.
pub fn frame_walker(arch: Arch) -> &'static dyn FrameWalker {
    match arch {
        Arch::Mips => &mips::MipsFrame,
        Arch::Sparc => &sparc::SparcFrame,
        Arch::M68k => &m68k::M68kFrame,
        Arch::Vax => &vax::VaxFrame,
    }
}

/// Shared construction: wrap an alias memory in register and joined
/// memories over the wire — the DAG of the paper's Figure 4.
pub fn assemble_dag(wire: &MemRef, alias: Rc<AliasMemory>) -> MemRef {
    let reg = Rc::new(RegisterMemory::new(
        alias.clone() as MemRef,
        &[('r', 4), ('x', 4), ('f', 8)],
    ));
    Rc::new(
        JoinedMemory::new()
            .route('r', reg.clone())
            .route('f', reg.clone())
            .route('x', reg)
            .route('l', alias as MemRef)
            .fallback(wire.clone()),
    )
}

/// Build a top frame's alias memory: every register aliases its context
/// slot; the pc and vfp become the extra registers x0 and x1 (x1 is an
/// immediate — it exists nowhere in target memory).
pub fn top_aliases(t: &WalkCtx, vfp: u32) -> Rc<AliasMemory> {
    let mut alias = AliasMemory::new(t.wire.clone());
    alias.map_space('l', 'd', vfp as i64);
    let ctx = t.context as i64;
    let layout = t.data.ctx;
    for r in 0..layout.nregs {
        alias.alias('r', r as i64, AliasTarget::Mem('d', ctx + layout.reg(r) as i64));
    }
    for f in 0..layout.nfregs {
        alias.alias('f', f as i64, AliasTarget::Mem('d', ctx + layout.freg(f) as i64));
    }
    alias.alias('x', 0, AliasTarget::Mem('d', ctx + layout.pc_offset as i64));
    alias.alias('x', 1, AliasTarget::Imm(vfp as u64));
    Rc::new(alias)
}

/// Build a parent frame's alias memory: reuse the child's aliases for
/// registers the child did not save, and point the saved ones at the
/// child's save area (`slot_of(rank)` gives each saved register's
/// address).
pub fn parent_aliases(
    t: &WalkCtx,
    child: &Frame,
    parent_pc: u32,
    parent_vfp: u32,
    slot_of: impl Fn(u32) -> i64,
) -> Rc<AliasMemory> {
    let mut alias = AliasMemory::new(t.wire.clone());
    alias.map_space('l', 'd', parent_vfp as i64);
    let alias = Rc::new(alias);
    // Saved registers: aliases into the child's save area.
    if let Some(meta) = &child.meta {
        let mut rank = 0u32;
        for r in 0..32u32 {
            if meta.save_mask & (1 << r) != 0 {
                alias.alias('r', r as i64, AliasTarget::Mem('d', slot_of(rank)));
                rank += 1;
            }
        }
    }
    // Everything else: inherited from the called frame ("the aliases from
    // the called frame are reused").
    alias.inherit_from(&child.alias);
    // The extra registers are immediates in parent frames.
    alias.alias('x', 0, AliasTarget::Imm(parent_pc as u64));
    alias.alias('x', 1, AliasTarget::Imm(parent_vfp as u64));
    // The stack pointer of the parent at call time is the child's vfp.
    alias.alias('r', t.data.sp as i64, AliasTarget::Imm(child.vfp as u64));
    if let Some(fp) = t.data.fp {
        alias.alias('r', fp as i64, AliasTarget::Imm(parent_vfp as u64));
    }
    alias
}

/// Read the saved pc out of a frame's context/stack through the wire.
pub(crate) fn wire_word(wire: &MemRef, addr: i64) -> MemResult<u32> {
    Ok(wire.fetch('d', addr, 4)? as u32)
}
