//! The linker interface (paper, Sec. 3 and 4.3).
//!
//! ldb reads the loader table — a PostScript dictionary generated from
//! `nm` output — to learn anchor-symbol addresses and the (address, name)
//! pairs of procedures. The frame-layout side differs by target: "the
//! VAX, SPARC, and 68020 share a single, machine-independent
//! implementation of the linker interface. The MIPS cannot use this
//! implementation because it has no frame pointer" — its frame sizes come
//! from the *runtime procedure table in the target address space*.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use ldb_machine::{Arch, Rpt};
use ldb_postscript::{Budget, CompiledModule, Dict, DictRef, Interp, Object, PsResult, Scanner, Value};
use ldb_trace::{Layer, Severity};

use crate::amemory::MemRef;

/// Journal one module-load outcome ([`Layer::Ps`]) through the
/// interpreter's flight-recorder handle.
fn trace_module(
    interp: &Interp,
    kind: &'static str,
    sev: Severity,
    module: &str,
    reason: Option<&str>,
) {
    let t = interp.trace();
    if t.is_on() {
        match reason {
            None => t.emit(Layer::Ps, sev, kind, &[("module", module.to_string().into())]),
            Some(r) => {
                t.emit(
                    Layer::Ps,
                    sev,
                    kind,
                    &[("module", module.to_string().into()), ("reason", r.to_string().into())],
                );
            }
        }
    }
}

/// One module's symbol-table PostScript, named for provenance and
/// quarantine reports (see [`Loader::load_plan`]).
#[derive(Debug, Clone)]
pub struct ModuleTable {
    /// The module (source file) name, e.g. `t2.c`.
    pub name: String,
    /// The symbol-table PostScript emitted for this unit.
    pub ps: String,
}

/// One module's symbol table in compiled form (see
/// [`ldb_postscript::compile_module`]): the unit of the lazy load plan
/// ([`Loader::load_plan_compiled`]) and of the cross-session module
/// cache. The `Arc` is shared read-only — possibly with other sessions.
#[derive(Debug, Clone)]
pub struct CompiledTable {
    /// The module (source file) name, e.g. `t2.c`.
    pub name: String,
    /// The compiled symbol table.
    pub module: Arc<CompiledModule>,
}

/// A module whose symbol table was rejected by the sandbox: it faulted,
/// exhausted its budget, or failed shape validation. The table text is
/// kept so `reload` can retry it.
#[derive(Debug, Clone)]
pub struct Quarantined {
    /// The module name.
    pub module: String,
    /// Why it was quarantined (the rendered error).
    pub reason: String,
    /// The rejected PostScript, kept for retry.
    ps: String,
}

/// Frame metadata for one procedure, as the stack walkers need it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Procedure start address.
    pub proc_addr: u32,
    /// Frame size in bytes.
    pub frame_size: u32,
    /// Offset below the frame top where the return address is saved
    /// (RISC convention; CISC frames find it at fp+4).
    pub ra_offset: Option<u32>,
    /// Callee-saved registers this procedure saves.
    pub save_mask: u32,
    /// Offset below the frame top of the save area.
    pub save_offset: u32,
}

/// The loader table, parsed.
pub struct Loader {
    /// The whole loader dictionary.
    pub table: DictRef,
    /// The program's top-level symbol dictionary.
    pub top: DictRef,
    /// Anchor symbol → address.
    pub anchors: HashMap<String, u32>,
    /// (address, linker name) pairs, sorted by address.
    pub proctable: Vec<(u32, String)>,
    /// The architecture named in the symbol table.
    pub arch: Arch,
    /// Cached MIPS runtime procedure table.
    rpt: RefCell<Option<Rpt>>,
    /// Modules rejected by the sandbox, awaiting `reload`.
    quarantined: RefCell<Vec<Quarantined>>,
    /// Compiled modules admitted at connect (headers type-checked) but
    /// not yet executed: their debug info materializes on first touch
    /// (see [`Loader::force_pending`]).
    pending: RefCell<Vec<CompiledTable>>,
}

impl std::fmt::Debug for Loader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Loader {{ arch: {}, procs: {} }}", self.arch, self.proctable.len())
    }
}

impl Loader {
    /// Interpret loader-table PostScript and extract the pieces ldb
    /// needs. The arch dictionary must already be on the dictionary stack
    /// (symbol tables execute `Regset0` etc. while loading).
    ///
    /// # Errors
    /// PostScript errors (wrapped with byte-offset provenance) and
    /// malformed tables. The whole table runs under [`Budget::LOAD`]: an
    /// unbounded loop or allocation bomb in it surfaces as a `timeout` or
    /// `vmerror` instead of hanging the debugger. For per-module fault
    /// isolation use [`Loader::load_plan`].
    pub fn load(interp: &mut Interp, loader_ps: &str) -> PsResult<Loader> {
        Loader::load_budgeted(interp, loader_ps, Budget::LOAD)
    }

    /// As [`Loader::load`], under an explicit budget.
    ///
    /// # Errors
    /// As [`Loader::load`].
    pub fn load_budgeted(
        interp: &mut Interp,
        loader_ps: &str,
        budget: Budget,
    ) -> PsResult<Loader> {
        let save = interp.push_budget(budget);
        let r = run_with_provenance(interp, "<loader table>", loader_ps);
        interp.pop_budget(save);
        r?;
        let table_obj = interp.pop()?;
        let table = table_obj.as_dict()?;
        Loader::from_table(table, Vec::new())
    }

    /// Load a program from a *plan*: the trusted loader frame (anchor map
    /// and proctable from the linker, `/symtab null`) plus one symbol
    /// table per module. Each module runs under its own fresh `budget`;
    /// a module that faults, runs out of fuel, or fails validation is
    /// **quarantined** — recorded with its error and skipped — and the
    /// healthy modules' tables are merged so debugging proceeds. The load
    /// fails only when no module survives (the architecture would be
    /// unknowable).
    ///
    /// # Errors
    /// Frame errors, or every module quarantined.
    pub fn load_plan(
        interp: &mut Interp,
        frame_ps: &str,
        modules: &[ModuleTable],
        budget: Budget,
    ) -> PsResult<Loader> {
        let save = interp.push_budget(budget);
        let r = run_with_provenance(interp, "<loader frame>", frame_ps);
        interp.pop_budget(save);
        r?;
        let table = interp.pop()?.as_dict()?;

        let top: DictRef = Rc::new(RefCell::new(Dict::new(64)));
        let mut quarantined = Vec::new();
        let mut arch: Option<Arch> = None;
        for m in modules {
            match run_module(interp, &m.name, &m.ps, budget) {
                Ok(unit) => {
                    let a = unit_arch(&unit);
                    match (arch, a) {
                        (_, None) => {
                            // Validation guarantees a known architecture;
                            // defend anyway.
                            let reason = "unknown architecture".to_string();
                            trace_module(
                                interp,
                                "quarantine",
                                Severity::Warn,
                                &m.name,
                                Some(&reason),
                            );
                            quarantined.push(Quarantined {
                                module: m.name.clone(),
                                reason,
                                ps: m.ps.clone(),
                            });
                            continue;
                        }
                        (None, Some(a)) => arch = Some(a),
                        (Some(prev), Some(a)) if prev != a => {
                            let reason =
                                format!("architecture mismatch ({a} table in a {prev} program)");
                            trace_module(
                                interp,
                                "quarantine",
                                Severity::Warn,
                                &m.name,
                                Some(&reason),
                            );
                            quarantined.push(Quarantined {
                                module: m.name.clone(),
                                reason,
                                ps: m.ps.clone(),
                            });
                            continue;
                        }
                        _ => {}
                    }
                    trace_module(interp, "module_load", Severity::Info, &m.name, None);
                    merge_unit_into(&top, &unit);
                }
                Err(reason) => {
                    trace_module(interp, "quarantine", Severity::Warn, &m.name, Some(&reason));
                    quarantined.push(Quarantined {
                        module: m.name.clone(),
                        reason,
                        ps: m.ps.clone(),
                    });
                }
            }
        }
        if arch.is_none() && !modules.is_empty() {
            let reasons: Vec<String> =
                quarantined.iter().map(|q| format!("{}: {}", q.module, q.reason)).collect();
            return Err(bad(format!(
                "all {} modules quarantined: {}",
                modules.len(),
                reasons.join("; ")
            )));
        }
        table.borrow_mut().put_name("symtab", Object::lit(Value::Dict(Rc::clone(&top))));
        Loader::from_table(table, quarantined)
    }

    /// Load a program from a *compiled* plan, lazily: the trusted frame
    /// runs eagerly (anchors and the proctable must exist to plant
    /// breakpoints and walk stacks), but the per-module symbol tables are
    /// only *admitted* — their compile-time `/architecture` headers are
    /// type-checked, and execution is deferred until the first
    /// breakpoint, stack walk, or print touches debug info
    /// ([`Loader::force_pending`]). Connect therefore scans nothing at
    /// all (the frame bytecode is shareable and cacheable like any
    /// module's); a module whose header is missing or names the wrong
    /// architecture is quarantined immediately, exactly as the eager
    /// plan would have quarantined it after running.
    ///
    /// # Errors
    /// Frame errors, or every module quarantined at admission.
    pub fn load_plan_compiled(
        interp: &mut Interp,
        frame: &CompiledModule,
        modules: &[CompiledTable],
        budget: Budget,
    ) -> PsResult<Loader> {
        let save = interp.push_budget(budget);
        let r = frame.run_with_provenance(interp, "<loader frame>");
        interp.pop_budget(save);
        r?;
        let table = interp.pop()?.as_dict()?;

        let top: DictRef = Rc::new(RefCell::new(Dict::new(64)));
        let mut quarantined = Vec::new();
        let mut pending = Vec::new();
        let mut arch: Option<Arch> = None;
        for m in modules {
            let header = m.module.architecture().and_then(Arch::from_name);
            let reason = match (arch, header) {
                (_, None) => Some(match m.module.architecture() {
                    None => format!("module {}: table has no /architecture", m.name),
                    Some(a) => format!("module {}: unknown architecture ({a})", m.name),
                }),
                (Some(prev), Some(a)) if prev != a => {
                    Some(format!("architecture mismatch ({a} table in a {prev} program)"))
                }
                (None, Some(a)) => {
                    arch = Some(a);
                    None
                }
                _ => None,
            };
            match reason {
                Some(reason) => {
                    trace_module(interp, "quarantine", Severity::Warn, &m.name, Some(&reason));
                    quarantined.push(Quarantined {
                        module: m.name.clone(),
                        reason,
                        ps: m.module.source().to_string(),
                    });
                }
                None => pending.push(m.clone()),
            }
        }
        if arch.is_none() && !modules.is_empty() {
            let reasons: Vec<String> =
                quarantined.iter().map(|q| format!("{}: {}", q.module, q.reason)).collect();
            return Err(bad(format!(
                "all {} modules quarantined: {}",
                modules.len(),
                reasons.join("; ")
            )));
        }
        if let Some(a) = arch {
            top.borrow_mut().put_name("architecture", Object::string(a.name()));
        }
        table.borrow_mut().put_name("symtab", Object::lit(Value::Dict(Rc::clone(&top))));
        let loader = Loader::from_table(table, quarantined)?;
        *loader.pending.borrow_mut() = pending;
        Ok(loader)
    }

    /// Are any admitted modules still unloaded?
    pub fn has_pending(&self) -> bool {
        !self.pending.borrow().is_empty()
    }

    /// Execute every still-pending compiled module under `budget`,
    /// merging the healthy tables and quarantining the rest — the lazy
    /// plan's deferred half of [`Loader::load_plan`]. Returns how many
    /// modules loaded cleanly. Idempotent once the queue is drained.
    pub fn force_pending(&self, interp: &mut Interp, budget: Budget) -> usize {
        let pending = std::mem::take(&mut *self.pending.borrow_mut());
        let mut loaded = 0;
        for ct in pending {
            if self.force_one(interp, budget, &ct) {
                loaded += 1;
            }
        }
        loaded
    }

    /// Force pending modules one at a time until the symbol table binds
    /// procedure `name` (externs or statics). Returns whether the name
    /// resolved; modules admitted but not needed stay pending.
    pub fn force_pending_for_name(
        &self,
        interp: &mut Interp,
        budget: Budget,
        name: &str,
    ) -> bool {
        loop {
            if self.proc_entry_by_name(name).is_some() {
                return true;
            }
            let next = {
                let mut p = self.pending.borrow_mut();
                if p.is_empty() {
                    return false;
                }
                p.remove(0)
            };
            self.force_one(interp, budget, &next);
        }
    }

    /// Run one admitted module and merge or quarantine it.
    fn force_one(&self, interp: &mut Interp, budget: Budget, ct: &CompiledTable) -> bool {
        match run_compiled_module(interp, &ct.name, &ct.module, budget) {
            Ok(unit) => match unit_arch(&unit) {
                Some(a) if a == self.arch => {
                    trace_module(interp, "module_load", Severity::Info, &ct.name, None);
                    merge_unit_into(&self.top, &unit);
                    true
                }
                other => {
                    let reason = match other {
                        Some(a) => format!(
                            "architecture mismatch ({a} table in a {} program)",
                            self.arch
                        ),
                        None => "unknown architecture".into(),
                    };
                    trace_module(interp, "quarantine", Severity::Warn, &ct.name, Some(&reason));
                    self.quarantined.borrow_mut().push(Quarantined {
                        module: ct.name.clone(),
                        reason,
                        ps: ct.module.source().to_string(),
                    });
                    false
                }
            },
            Err(reason) => {
                trace_module(interp, "quarantine", Severity::Warn, &ct.name, Some(&reason));
                self.quarantined.borrow_mut().push(Quarantined {
                    module: ct.name.clone(),
                    reason,
                    ps: ct.module.source().to_string(),
                });
                false
            }
        }
    }

    /// Extract the pieces ldb needs from an already-interpreted table.
    fn from_table(table: DictRef, quarantined: Vec<Quarantined>) -> PsResult<Loader> {
        let (top, anchors, proctable, arch);
        {
            let t = table.borrow();
            let top_obj = t
                .get_name("symtab")
                .cloned()
                .ok_or_else(|| bad("loader table has no /symtab"))?;
            top = top_obj.as_dict()?;
            let mut amap = HashMap::new();
            let am = t
                .get_name("anchormap")
                .cloned()
                .ok_or_else(|| bad("loader table has no /anchormap"))?
                .as_dict()?;
            for (k, v) in am.borrow().iter() {
                amap.insert(k.to_string().trim_start_matches('/').to_string(), v.as_int()? as u32);
            }
            anchors = amap;
            let mut procs = Vec::new();
            let pt = t
                .get_name("proctable")
                .cloned()
                .ok_or_else(|| bad("loader table has no /proctable"))?
                .as_array()?;
            let pt = pt.borrow();
            let mut i = 0;
            while i + 1 < pt.len() {
                procs.push((pt[i].as_int()? as u32, pt[i + 1].as_string()?.to_string()));
                i += 2;
            }
            procs.sort();
            proctable = procs;
            let arch_name = top
                .borrow()
                .get_name("architecture")
                .cloned()
                .ok_or_else(|| bad("symbol table has no /architecture"))?
                .as_string()?;
            arch = Arch::from_name(&arch_name)
                .ok_or_else(|| bad(format!("unknown architecture ({arch_name})")))?;
        }
        Ok(Loader {
            table,
            top,
            anchors,
            proctable,
            arch,
            rpt: RefCell::new(None),
            quarantined: RefCell::new(quarantined),
            pending: RefCell::new(Vec::new()),
        })
    }

    /// The quarantined modules, as (module, reason) pairs.
    pub fn quarantined(&self) -> Vec<(String, String)> {
        self.quarantined.borrow().iter().map(|q| (q.module.clone(), q.reason.clone())).collect()
    }

    /// If `name` looks like it belongs to a quarantined module, the
    /// quarantine notice to append to a resolution failure.
    pub fn quarantine_note(&self) -> Option<String> {
        let q = self.quarantined.borrow();
        if q.is_empty() {
            return None;
        }
        let rows: Vec<String> =
            q.iter().map(|e| format!("module {} quarantined: {}", e.module, e.reason)).collect();
        Some(rows.join("; "))
    }

    /// Retry every quarantined module under `budget`, merging the tables
    /// that now load cleanly. Returns one `(module, outcome)` row per
    /// retried module; modules that fail again stay quarantined with the
    /// fresh error.
    pub fn reload_quarantined(
        &self,
        interp: &mut Interp,
        budget: Budget,
    ) -> Vec<(String, Result<(), String>)> {
        let pending = std::mem::take(&mut *self.quarantined.borrow_mut());
        let mut out = Vec::new();
        let mut keep = Vec::new();
        for q in pending {
            match run_module(interp, &q.module, &q.ps, budget) {
                Ok(unit) => match unit_arch(&unit) {
                    Some(a) if a == self.arch => {
                        trace_module(interp, "module_reload", Severity::Info, &q.module, None);
                        merge_unit_into(&self.top, &unit);
                        out.push((q.module, Ok(())));
                    }
                    other => {
                        let reason = match other {
                            Some(a) => format!(
                                "architecture mismatch ({a} table in a {} program)",
                                self.arch
                            ),
                            None => "unknown architecture".into(),
                        };
                        trace_module(interp, "quarantine", Severity::Warn, &q.module, Some(&reason));
                        out.push((q.module.clone(), Err(reason.clone())));
                        keep.push(Quarantined { reason, ..q });
                    }
                },
                Err(reason) => {
                    trace_module(interp, "quarantine", Severity::Warn, &q.module, Some(&reason));
                    out.push((q.module.clone(), Err(reason.clone())));
                    keep.push(Quarantined { reason, ..q });
                }
            }
        }
        *self.quarantined.borrow_mut() = keep;
        out
    }

    /// The procedure containing `pc`: the proctable pair with the largest
    /// address not above `pc` (mapping program counters to procedure
    /// addresses, the first step of pc → symbol-table entry).
    pub fn proc_containing(&self, pc: u32) -> Option<(u32, &str)> {
        let idx = self.proctable.partition_point(|(a, _)| *a <= pc);
        if idx == 0 {
            return None;
        }
        let (a, n) = &self.proctable[idx - 1];
        Some((*a, n))
    }

    /// The address of a procedure by linker name.
    pub fn proc_addr(&self, link_name: &str) -> Option<u32> {
        self.proctable.iter().find(|(_, n)| n == link_name).map(|(a, _)| *a)
    }

    /// Frame metadata for the procedure containing `pc`.
    ///
    /// The machine-independent implementation reads `/framesize`,
    /// `/savemask`, `/saveoffset` from the procedure's symbol-table entry;
    /// the MIPS implementation reads the runtime procedure table from the
    /// target address space through `wire`.
    pub fn frame_meta(&self, pc: u32, wire: &MemRef) -> Option<FrameMeta> {
        if self.arch == Arch::Mips {
            return self.frame_meta_mips(pc, wire);
        }
        let (proc_addr, link_name) = self.proc_containing(pc)?;
        let entry = self.proc_entry_by_link_name(link_name)?;
        let d = entry.as_dict().ok()?;
        let d = d.borrow();
        let get = |k: &str| d.get_name(k).and_then(|o| o.as_int().ok());
        Some(FrameMeta {
            proc_addr,
            frame_size: get("framesize")? as u32,
            ra_offset: get("raoffset").map(|v| v as u32),
            save_mask: get("savemask").unwrap_or(0) as u32,
            save_offset: get("saveoffset").unwrap_or(0) as u32,
        })
    }

    /// The MIPS linker interface: lazily read the runtime procedure table
    /// from target memory (paper: "gets machine-dependent data from the
    /// runtime procedure table located in the target address space").
    fn frame_meta_mips(&self, pc: u32, wire: &MemRef) -> Option<FrameMeta> {
        if self.rpt.borrow().is_none() {
            let addr = *self.anchors.get("__rpt")?;
            let rpt = Rpt::read_from(
                &mut |a| {
                    wire.fetch('d', a as i64, 4)
                        .map(|v| v as u32)
                        .map_err(|_| ldb_machine::Fault::BadAddress { addr: a, write: false })
                },
                addr,
            )
            .ok()?;
            *self.rpt.borrow_mut() = Some(rpt);
        }
        let rpt = self.rpt.borrow();
        let e = rpt.as_ref()?.lookup(pc)?;
        Some(FrameMeta {
            proc_addr: e.proc_addr,
            frame_size: e.frame_size,
            ra_offset: (e.ra_save_offset != u32::MAX).then_some(e.ra_save_offset),
            save_mask: e.save_mask,
            save_offset: e.save_offset,
        })
    }

    /// A procedure's symbol-table entry, by linker name (`_fib`).
    pub fn proc_entry_by_link_name(&self, link_name: &str) -> Option<Object> {
        // Externs carry a leading underscore; unit-private (static)
        // functions are unit-qualified (`fib_c.helper`).
        let source = link_name
            .strip_prefix('_')
            .unwrap_or_else(|| link_name.rsplit('.').next().unwrap_or(link_name));
        self.proc_entry_by_name(source)
    }

    /// A procedure's symbol-table entry, by source name (`fib`): externs
    /// first, then unit statics.
    pub fn proc_entry_by_name(&self, name: &str) -> Option<Object> {
        let top = self.top.borrow();
        for dictname in ["externs", "statics"] {
            if let Some(d) = top.get_name(dictname) {
                if let Ok(d) = d.as_dict() {
                    if let Some(e) = d.borrow().get_name(name) {
                        return Some(e.clone());
                    }
                }
            }
        }
        None
    }

    /// Iterate the `/procs` array (symbol-table entries of procedures).
    pub fn procs(&self) -> Vec<Object> {
        let top = self.top.borrow();
        match top.get_name("procs").and_then(|o| o.as_array().ok()) {
            Some(a) => a.borrow().clone(),
            None => Vec::new(),
        }
    }

    /// Share the cached runtime procedure table (tests, figures).
    pub fn rpt_cache(&self) -> Option<Rpt> {
        self.rpt.borrow().clone()
    }
}

/// A sharable loader.
pub type LoaderRef = Rc<Loader>;

fn bad(msg: impl Into<String>) -> ldb_postscript::PsError {
    ldb_postscript::PsError::runtime(ldb_postscript::ErrorKind::HostError, msg)
}

/// Run `ps` token by token so errors carry the module name and the byte
/// offset the scanner had reached when they were raised.
fn run_with_provenance(interp: &mut Interp, name: &str, ps: &str) -> PsResult<()> {
    let mut sc = Scanner::from_str(ps);
    loop {
        match sc.next_token() {
            Ok(Some(tok)) => {
                if let Err(e) = interp.run_token(&tok) {
                    return Err(e.with_context(name, Some(sc.position())));
                }
            }
            Ok(None) => return Ok(()),
            Err(e) => return Err(e.with_context(name, Some(sc.position()))),
        }
    }
}

/// Run one module's symbol table under `budget`, fully sandboxed: on any
/// failure the operand and dictionary stacks are restored, so a hostile
/// table cannot leave junk behind or `end` the host's dictionaries away.
/// The table must leave exactly one dictionary of the expected shape.
fn run_module(interp: &mut Interp, name: &str, ps: &str, budget: Budget) -> Result<DictRef, String> {
    let depth = interp.depth();
    let dicts = interp.dict_stack_snapshot();
    let save = interp.push_budget(budget);
    let ran = run_with_provenance(interp, name, ps);
    interp.pop_budget(save);
    seal_module(interp, name, depth, dicts, ran)
}

/// As [`run_module`], executing a compiled module through the fast path.
/// The sandbox is identical: same budget push, same depth watermark,
/// same dictionary-stack snapshot/restore, same shape validation.
fn run_compiled_module(
    interp: &mut Interp,
    name: &str,
    m: &CompiledModule,
    budget: Budget,
) -> Result<DictRef, String> {
    let depth = interp.depth();
    let dicts = interp.dict_stack_snapshot();
    let save = interp.push_budget(budget);
    let ran = m.run_with_provenance(interp, name);
    interp.pop_budget(save);
    seal_module(interp, name, depth, dicts, ran)
}

/// The common back half of a sandboxed module run: check the run left
/// exactly one value, validate its shape, and on any failure restore the
/// operand and dictionary stacks to their watermarks.
fn seal_module(
    interp: &mut Interp,
    name: &str,
    depth: usize,
    dicts: Vec<DictRef>,
    ran: PsResult<()>,
) -> Result<DictRef, String> {
    let r = ran.map_err(|e| e.to_string()).and_then(|()| {
        if interp.depth() != depth + 1 {
            return Err(format!(
                "module {name}: table left {} values on the stack (expected 1)",
                interp.depth() as i64 - depth as i64
            ));
        }
        let d = interp
            .pop()
            .and_then(|o| o.as_dict())
            .map_err(|e| format!("module {name}: {e}"))?;
        validate_unit_dict(name, &d)?;
        Ok(d)
    });
    if r.is_err() {
        while interp.depth() > depth {
            let _ = interp.pop();
        }
    }
    interp.restore_dict_stack(dicts);
    r
}

/// Shape-check a unit's top-level dictionary before trusting it.
fn validate_unit_dict(name: &str, d: &DictRef) -> Result<(), String> {
    let d = d.borrow();
    let arch_name = d
        .get_name("architecture")
        .ok_or_else(|| format!("module {name}: table has no /architecture"))?
        .as_string()
        .map_err(|_| format!("module {name}: /architecture is not a string"))?;
    Arch::from_name(&arch_name)
        .ok_or_else(|| format!("module {name}: unknown architecture ({arch_name})"))?;
    for (field, kind) in [("procs", "array"), ("externs", "dict"), ("statics", "dict")] {
        let o = d.get_name(field).ok_or_else(|| format!("module {name}: table has no /{field}"))?;
        let ok = match kind {
            "array" => o.as_array().is_ok(),
            _ => o.as_dict().is_ok(),
        };
        if !ok {
            return Err(format!("module {name}: /{field} is not a {kind}"));
        }
    }
    Ok(())
}

/// The architecture a validated unit dictionary names.
fn unit_arch(d: &DictRef) -> Option<Arch> {
    let d = d.borrow();
    let name = d.get_name("architecture")?.as_string().ok()?;
    Arch::from_name(&name)
}

/// Merge one healthy unit dictionary into the combined top-level symbol
/// dictionary: `procs`/`anchors` arrays concatenate, `externs`/`statics`/
/// `sourcemap` dictionaries union (later units win on collision, as in
/// the PostScript merge), `architecture` comes from the first unit.
fn merge_unit_into(top: &DictRef, unit: &DictRef) {
    let u = unit.borrow();
    let mut t = top.borrow_mut();
    for field in ["procs", "anchors"] {
        if let Some(src) = u.get_name(field).and_then(|o| o.as_array().ok()) {
            let dst = match t.get_name(field).and_then(|o| o.as_array().ok()) {
                Some(a) => a,
                None => {
                    let a = Rc::new(RefCell::new(Vec::new()));
                    t.put_name(field, Object::lit(Value::Array(Rc::clone(&a))));
                    a
                }
            };
            dst.borrow_mut().extend(src.borrow().iter().cloned());
        }
    }
    for field in ["externs", "statics", "sourcemap"] {
        if let Some(src) = u.get_name(field).and_then(|o| o.as_dict().ok()) {
            let dst = match t.get_name(field).and_then(|o| o.as_dict().ok()) {
                Some(d) => d,
                None => {
                    let d = Rc::new(RefCell::new(Dict::new(64)));
                    t.put_name(field, Object::lit(Value::Dict(Rc::clone(&d))));
                    d
                }
            };
            let mut dd = dst.borrow_mut();
            for (k, v) in src.borrow().iter() {
                dd.put(k.clone(), v.clone());
            }
        }
    }
    if t.get_name("architecture").is_none() {
        if let Some(a) = u.get_name("architecture") {
            let a = a.clone();
            t.put_name("architecture", a);
        }
    }
}
